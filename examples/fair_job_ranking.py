"""Fair candidate ranking for a job portal (the paper's Xing scenario).

An employer searches for candidates; the portal ranks them by a
deserved score (work experience + education + profile views).  This
example shows three ranking policies side by side for one query:

* **Score order** — the raw ranking; accurate but can treat nearly
  indistinguishable candidates very differently and under-represents
  the protected group near the top.
* **FA*IR re-ranking** — group-fair prefixes via binomial tests, but
  individual fairness is untouched.
* **iFair scores** — a linear regression on iFair representations;
  similar candidates receive similar scores (high yNN), no group
  quotas enforced.

Run:  python examples/fair_job_ranking.py
"""

import numpy as np

from repro import FairRanker, IFair
from repro.data.splits import train_val_test_split
from repro.data.xing import generate_xing
from repro.learners.linear import LinearRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.group import protected_share_at_k
from repro.metrics.individual import consistency_of_scores
from repro.metrics.ranking import kendall_tau
from repro.ranking.query import build_queries
from repro.utils.tables import render_table


def main():
    dataset = generate_xing(n_queries=20, candidates_per_query=40, random_state=1)
    queries = build_queries(dataset, min_size=10)
    split = train_val_test_split(dataset.n_records, random_state=1)

    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    X_star = X[:, dataset.nonprotected_indices]

    # iFair scores: representation -> linear regression on true scores.
    ifair = IFair(
        n_prototypes=10,
        lambda_util=1.0,
        mu_fair=100.0,
        init="protected_zero",
        n_restarts=1,
        max_iter=80,
        max_pairs=3000,
        random_state=1,
    ).fit(X[split.train], dataset.protected_indices)
    Z = ifair.transform(X)
    ifair_scores = LinearRegression().fit(Z[split.train], dataset.y[split.train]).predict(Z)

    ranker = FairRanker(p=0.45, alpha=0.1)

    rows = []
    for policy in ("score order", "FA*IR", "iFair"):
        kts, ynns, shares = [], [], []
        for query in queries:
            idx = query.indices
            if policy == "score order":
                scores = dataset.y[idx]
            elif policy == "FA*IR":
                result = ranker.rank(dataset.y[idx], dataset.protected[idx])
                scores = np.empty(idx.size)
                scores[result.ranking] = np.sort(result.scores)[::-1]
            else:
                scores = ifair_scores[idx]
            order = np.argsort(-scores, kind="mergesort")
            kts.append(kendall_tau(dataset.y[idx], scores))
            ynns.append(consistency_of_scores(X_star[idx], scores, k=10))
            shares.append(
                protected_share_at_k(order, dataset.protected[idx], k=10)
            )
        rows.append(
            [
                policy,
                float(np.mean(kts)),
                float(np.mean(ynns)),
                100.0 * float(np.mean(shares)),
            ]
        )

    print(render_table(
        ["Ranking policy", "Kendall tau", "yNN", "% protected in top 10"],
        rows,
        title=f"Job-candidate ranking across {len(queries)} queries",
    ))
    print()
    print(
        "FA*IR raises the protected share through quotas; iFair instead\n"
        "equalises treatment of similar candidates (highest yNN).  The two\n"
        "are composable — see examples/posthoc_parity.py."
    )


if __name__ == "__main__":
    main()
