"""Chaos tour: the serving tier healing itself under injected faults.

Stands up the multi-worker dispatcher with the chaos plane armed —
every request has a chance of crashing its worker, hanging it past the
deadline, delaying the reply, or corrupting the response frame — and
shows the resilience layer absorbing all of it:

1. fit + save a small artifact, start a 2-worker dispatcher with a
   400 ms deadline and the acceptance fault mix;
2. fire a burst of requests and verify every answer is bitwise equal
   to an undisturbed in-process engine (faults are invisible);
3. swap the model blue/green mid-chaos;
4. print the resilience ledger: deadline kills, reroutes, respawns,
   worker health.

Run:  python examples/serving_chaos_demo.py
"""

import tempfile
import time

import numpy as np

from repro.data.compas import generate_compas
from repro.serving import (
    ChaosConfig,
    EngineDispatcher,
    InferenceEngine,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
)


def main():
    # --- offline: fit once, save a blue and a green copy --------------
    dataset = generate_compas(300, charge_levels=8, random_state=7)
    artifact = fit_serving_pipeline(
        dataset, n_prototypes=4, max_iter=25, random_state=7
    )
    tmp = tempfile.mkdtemp(prefix="repro-chaos-")
    blue = save_artifact(f"{tmp}/blue", artifact)
    green = save_artifact(f"{tmp}/green", artifact)
    reference = InferenceEngine(load_artifact(blue), cache_size=0)

    # --- online: two workers, deadline armed, chaos injected ----------
    chaos = ChaosConfig(
        crash=0.05, hang=0.02, slow=0.10, corrupt=0.02,
        slow_ms=20.0, hang_s=60.0, seed=13,
    )
    print(f"chaos armed: {chaos}")
    dispatcher = EngineDispatcher(
        load_artifact(blue),
        n_workers=2,
        cache_size=0,
        deadline_s=0.4,
        max_retries=4,
        breaker_threshold=100,  # soak config: see the README runbook
        probe_interval_s=0.02,
        backoff_base_s=0.02,
        chaos=chaos,
    )
    try:
        batches = [dataset.X[i : i + 8] for i in range(0, 80, 8)]
        mismatches = 0
        for round_no in range(5):
            for batch in batches:
                got = dispatcher.score(batch)
                if not np.array_equal(got, reference.score(batch)):
                    mismatches += 1
            if round_no == 2:
                answer = dispatcher.reload(green)
                print(
                    f"  mid-chaos blue/green reload: {answer['status']} "
                    f"({answer['workers']} workers flipped)"
                )
        served = 5 * len(batches)
        print(
            f"{served} requests served under chaos, "
            f"{mismatches} wrong answers (must be 0)"
        )

        # Give the probe a moment to respawn any slot that died on the
        # final requests — the tier heals itself in the background.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if dispatcher.health()["status"] == "ok":
                break
            time.sleep(0.05)
        resilience = dispatcher.stats()["resilience"]
        workers = dispatcher.stats()["workers"]
        health = dispatcher.health()
        print(
            f"ledger: {resilience['deadline_kills']} deadline kills, "
            f"{resilience['retries']} reroutes, "
            f"{resilience['corrupt_frames']} corrupt frames, "
            f"{workers['respawns']} respawns"
        )
        print(
            f"health: {health['status']} "
            f"({health['workers_alive']}/{health['workers']} workers alive)"
        )
    finally:
        dispatcher.stop()
    print("dispatcher stopped, all shared-memory segments released")


if __name__ == "__main__":
    main()
