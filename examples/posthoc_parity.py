"""Composing iFair with FA*IR: post-hoc statistical parity (Figure 5).

iFair deliberately excludes group fairness from its objective; when a
legal quota is required, the paper shows it can be enforced *after* the
fact by re-ranking iFair-based scores with FA*IR.  This example sweeps
the FA*IR target proportion p on the Airbnb scenario and prints the
resulting utility / parity / consistency frontier.

Run:  python examples/posthoc_parity.py
"""

from repro.data.airbnb import generate_airbnb
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.posthoc import run_posthoc
from repro.utils.tables import render_table


def main():
    dataset = generate_airbnb(900, random_state=9)
    config = ExperimentConfig(
        mixture_grid=(0.1, 1.0, 100.0),
        prototype_grid=(6,),
        n_restarts=1,
        max_iter=60,
        max_pairs=2500,
        random_state=9,
    )
    report = run_posthoc(
        dataset,
        config,
        p_grid=(0.1, 0.3, 0.5, 0.7, 0.9),
        min_query_size=10,
    )
    print(render_table(
        ["FA*IR p", "MAP", "% protected in top 10", "yNN"],
        [
            [pt.p, pt.map_score, 100.0 * pt.protected_share, pt.consistency]
            for pt in report.points
        ],
        title="iFair scores + FA*IR re-ranking on Airbnb listings",
    ))
    print()
    print(
        "Whatever protected share the regulator demands, the combined\n"
        "pipeline reaches it — while the individual-fairness property of\n"
        "the learned representation (yNN) degrades only gently."
    )


if __name__ == "__main__":
    main()
