"""Serving quickstart: fit once, persist, answer live requests.

Walks the full online workflow the ``repro.serving`` package adds on
top of the paper pipeline:

1. fit a serving pipeline (scaler -> iFair -> logistic scorer ->
   per-group decision thresholds) on a synthetic COMPAS sample;
2. save it as a versioned artifact directory and reload it — the
   reloaded model reproduces ``transform`` output bitwise;
3. stand up the JSON decision service on a local port;
4. answer ``score``, ``rank`` and ``decide`` requests through the HTTP
   client and show the cache warming up across repeated traffic.

Run:  python examples/serving_quickstart.py
"""

import tempfile

import numpy as np

from repro.data.compas import generate_compas
from repro.serving import (
    DecisionService,
    HTTPClient,
    InferenceEngine,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
)


def main():
    # --- offline: fit and persist -------------------------------------
    dataset = generate_compas(500, charge_levels=20, random_state=42)
    artifact = fit_serving_pipeline(
        dataset, n_prototypes=8, max_iter=50, criterion="parity", random_state=42
    )
    tmp = tempfile.mkdtemp(prefix="repro-serving-")
    path = save_artifact(f"{tmp}/compas", artifact)
    print(f"artifact saved to {path}")

    # --- online: load, serve, request ---------------------------------
    engine = InferenceEngine(load_artifact(path), batch_size=256, cache_size=1024)
    with DecisionService(engine, port=0) as service:
        host, port = service.address
        client = HTTPClient(host, port)
        print(f"service answering on http://{host}:{port}")
        print("health:", client.health()["endpoints"])

        requests = dataset.X[:6].tolist()
        groups = dataset.protected[:6].tolist()

        scores = client.score(requests)
        print("scores:", np.round(scores, 3).tolist())

        ranked = client.rank(requests, top_k=3, groups=groups)
        print(
            f"top-3: {ranked['order']} "
            f"(protected share {ranked['protected_share']:.2f})"
        )

        decisions = client.decide(requests, groups)
        print(
            f"decisions: {decisions['decisions']} "
            f"(criterion {decisions['criterion']}, "
            f"thresholds {decisions['thresholds']})"
        )

        # repeated traffic hits the representation cache
        for _ in range(3):
            client.score(requests)
        stats = client.stats()
        print(
            f"served {stats['records']} records, "
            f"cache hit ratio {stats['cache_hit_ratio']:.2f}"
        )


if __name__ == "__main__":
    main()
