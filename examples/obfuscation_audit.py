"""Auditing representations for protected-attribute leakage (Figure 4).

"Fairness through blindness" — deleting the protected column — fails
when other attributes act as proxies.  This example quantifies the
leakage: an adversarial logistic regression tries to recover group
membership from three representations of the COMPAS-style data:

* the masked data (protected columns zeroed),
* an LFR representation (Zemel et al. 2013),
* an iFair-b representation.

Run:  python examples/obfuscation_audit.py
"""

from repro import IFair, LFR
from repro.baselines.identity import mask_columns
from repro.data.compas import generate_compas
from repro.learners.scaler import StandardScaler
from repro.metrics.obfuscation import adversarial_accuracy
from repro.utils.tables import render_table


def main():
    dataset = generate_compas(500, charge_levels=20, random_state=5)
    X = StandardScaler().fit_transform(dataset.X)
    majority = max(dataset.protected.mean(), 1.0 - dataset.protected.mean())

    representations = {}
    representations["Masked data"] = mask_columns(X, dataset.protected_indices)

    lfr = LFR(n_prototypes=6, a_x=0.01, a_y=1.0, a_z=1.0,
              n_restarts=1, max_iter=60, random_state=5)
    lfr.fit(X, dataset.y, dataset.protected)
    representations["LFR"] = lfr.transform(X)

    ifair = IFair(n_prototypes=6, lambda_util=1.0, mu_fair=1.0,
                  init="protected_zero", n_restarts=1, max_iter=60,
                  max_pairs=3000, random_state=5)
    ifair.fit(X, dataset.protected_indices)
    representations["iFair-b"] = ifair.transform(X)

    rows = [
        [name, adversarial_accuracy(Z, dataset.protected, random_state=0)]
        for name, Z in representations.items()
    ]
    rows.append(["(majority-class floor)", majority])

    print(render_table(
        ["Representation", "Adversarial accuracy"],
        rows,
        title="Can an adversary recover race from the representation? (lower = better)",
    ))
    print()
    print(
        "Masking the protected column is not enough — correlated proxies\n"
        "(geography, charge patterns) leak group membership.  The low-rank\n"
        "iFair representation compresses that proxy structure away."
    )


if __name__ == "__main__":
    main()
