"""Streaming drift tour: the online learning loop closing end to end.

Stands up the multi-worker HTTP service with the drift-response
controller armed and walks the full loop:

1. fit + save an artifact, serve it with ``online_refit=True``;
2. stream steady traffic — the controller's sliding window fills and
   the covariate-shift statistic settles at 1.0 (no flapping);
3. inject a covariate shift into the request stream — the statistic
   crosses the threshold, the controller warm-refits over the buffered
   window via ``IFair.partial_fit``, writes ``<artifact>/online/v0001``
   and hot-swaps it blue/green, with zero failed requests;
4. keep streaming the shifted traffic — the statistic has re-armed at
   1.0 over the re-anchored coordinates, so nothing re-triggers;
5. print the controller ledger from ``GET /v1/admin/online``.

Run:  python examples/streaming_drift_demo.py
"""

import json
import tempfile
import time
import urllib.request

from repro.api import (
    HTTPClient,
    fit_serving_pipeline,
    save_artifact,
    serve_artifact,
)
from repro.data.compas import generate_compas

SHIFT = 25.0
REFRESH_WINDOW = 64


def admin(host, port):
    url = f"http://{host}:{port}/v1/admin/online"
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def stream(client, X, groups, rounds, shift=0.0):
    served = 0
    for i in range(rounds):
        lo = (i * 8) % (X.shape[0] - 8)
        rows = X[lo : lo + 8] + shift
        answer = client.decide(rows.tolist(), groups[lo : lo + 8].tolist())
        served += len(answer["decisions"])
        time.sleep(0.01)
    return served


def main():
    # --- offline: fit once, save, serve with the loop armed -----------
    dataset = generate_compas(300, charge_levels=8, random_state=7)
    artifact = fit_serving_pipeline(
        dataset, n_prototypes=4, max_iter=25, random_state=7
    )
    path = save_artifact(
        tempfile.mkdtemp(prefix="repro-drift-") + "/compas", artifact
    )
    service = serve_artifact(
        path,
        port=0,
        workers=2,
        online_refit=True,
        refresh_window=REFRESH_WINDOW,
        drift_policy="shift",
        refit_cooldown_s=1.0,
    ).start()
    try:
        host, port = service.address
        client = HTTPClient(host, port)
        print(f"serving on {host}:{port} with online refit (shift policy)")

        # Stream from a pool no larger than the refresh window, so the
        # window is a faithful sample of the traffic (see the README's
        # sizing guidance: a window much smaller than the stream's
        # support reads novel-but-in-distribution rows as shift).
        X, groups = dataset.X[:REFRESH_WINDOW], dataset.protected[:REFRESH_WINDOW]

        # --- phase 1: steady traffic fills the window -----------------
        served = stream(client, X, groups, rounds=30)
        deadline = time.time() + 15
        while time.time() < deadline:
            status = admin(host, port)
            if (
                status["window_rows"] >= REFRESH_WINDOW
                and status["baseline_cost"] is not None
            ):
                break
            time.sleep(0.1)
        print(
            f"steady: {served} decisions, window {status['window_rows']} "
            f"rows, shift {status['shift']:.2f}, refits {status['refits']}"
        )

        # --- phase 2: the distribution moves --------------------------
        print(f"injecting covariate shift (+{SHIFT} on every feature)...")
        deadline = time.time() + 60
        while time.time() < deadline:
            stream(client, X, groups, rounds=5, shift=SHIFT)
            status = admin(host, port)
            if status["reloads"] >= 1:
                break
        result = status["last_result"]
        print(
            f"closed loop: refit ({result['status']}, "
            f"loss {result['loss']:.4f}) -> {result['artifact']} "
            f"-> blue/green reload ({result['reload']})"
        )

        # --- phase 3: shifted traffic is the new normal ---------------
        # The window may still hold pre-shift rows, so the controller is
        # allowed one more refit while they wash out; once the window is
        # purely the new regime the statistic sits at 1.0 and nothing
        # re-triggers.
        stream(client, X, groups, rounds=30, shift=SHIFT)
        time.sleep(1.5)  # a few control ticks over the washed-out window
        settled = admin(host, port)["refits"]
        stream(client, X, groups, rounds=30, shift=SHIFT)
        time.sleep(1.5)
        status = admin(host, port)
        print(
            f"re-armed: shift {status['shift']:.2f} over the new anchors, "
            f"refits {status['refits']} (settled at {settled}), "
            f"reloads {status['reloads']}, failures {status['failures']}"
        )
        assert status["refits"] == settled, "controller kept flapping"
    finally:
        service.stop()
    print("service stopped, all shared-memory segments released")


if __name__ == "__main__":
    main()
