"""Quickstart: learn an individually fair representation in ~30 lines.

Walks the paper's pipeline (Figure 1) end to end on a small synthetic
credit-risk dataset:

1. generate data with a protected attribute and correlated proxies;
2. fit :class:`repro.IFair` on the training split (unsupervised — no
   labels, no pre-specified protected *group*, only protected columns);
3. train an ordinary logistic regression on the transformed data;
4. compare utility, individual fairness and group fairness against the
   same classifier trained on the raw data.

Run:  python examples/quickstart.py
"""

from repro import IFair
from repro.data.credit import generate_credit
from repro.data.splits import stratified_split
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import accuracy, roc_auc
from repro.metrics.group import statistical_parity
from repro.metrics.individual import consistency
from repro.utils.tables import render_table


def main():
    dataset = generate_credit(600, random_state=42)
    split = stratified_split(dataset.y, random_state=42)

    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    X_star = X[:, dataset.nonprotected_indices]  # similarity space for yNN

    # --- learn the fair representation (iFair-b initialisation) -------
    model = IFair(
        n_prototypes=10,
        lambda_util=1.0,
        mu_fair=1.0,
        init="protected_zero",
        n_restarts=2,
        max_iter=100,
        max_pairs=3000,
        random_state=42,
    )
    model.fit(X[split.train], dataset.protected_indices)

    rows = []
    for name, features in (("Raw data", X), ("iFair representation", model.transform(X))):
        clf = LogisticRegression(l2=1.0).fit(
            features[split.train], dataset.y[split.train]
        )
        proba = clf.predict_proba(features[split.test])
        pred = (proba >= 0.5).astype(float)
        rows.append(
            [
                name,
                accuracy(dataset.y[split.test], pred),
                roc_auc(dataset.y[split.test], proba),
                consistency(X_star[split.test], pred, k=10),
                statistical_parity(pred, dataset.protected[split.test]),
            ]
        )

    print(render_table(
        ["Input to classifier", "Acc", "AUC", "yNN (individual)", "Parity (group)"],
        rows,
        title="Credit-risk classification: raw data vs iFair representation",
    ))
    print()
    print(
        "iFair trades a little utility for markedly more consistent\n"
        "treatment of similar individuals — without ever seeing labels\n"
        "or a pre-specified protected group during representation learning."
    )


if __name__ == "__main__":
    main()
