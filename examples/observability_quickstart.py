"""Observability quickstart: traces, metrics scrape, drift monitor.

Three tours through the telemetry layer on one small served model:

1. **fit tracing** — enable the process tracer, fit a serving
   pipeline, and dump the span timeline (fit -> oracle build ->
   per-restart L-BFGS) to ``fit_trace.json``;
2. **metrics scrape** — start the decision service on a free port and
   scrape ``GET /v1/metrics`` exactly like Prometheus would, printing
   the serving series (requests, cache, latency histogram);
3. **fairness drift** — serve a baseline stream, then a shifted stream
   whose group-1 records score systematically lower; the sliding-window
   monitor widens its decision-rate gap past tolerance and raises the
   drift flag, visible in ``/v1/stats`` and in every ``decide``
   response;
4. **per-worker series** — restart the service with ``workers=2``
   (forked engine workers sharing the model via shm) and scrape the
   same ``/v1/metrics`` endpoint: every worker's counters arrive under
   a ``worker="<i>"`` label, merged into one exposition by the
   dispatcher, with the unlabelled totals recoverable by summing.

Run:  python examples/observability_quickstart.py
"""

import json
import tempfile
import urllib.request

import numpy as np

from repro.data.compas import generate_compas
from repro.serving import (
    DecisionService,
    InferenceEngine,
    fit_serving_pipeline,
    save_artifact,
    serve_artifact,
)
from repro.telemetry.logs import configure_logging
from repro.telemetry.tracing import disable_tracing, enable_tracing

TRACE_PATH = "fit_trace.json"


def http_get(host, port, path):
    with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
        body = response.read().decode("utf-8")
        if response.headers.get_content_type() == "application/json":
            return json.loads(body)
        return body


def http_post(host, port, path, payload):
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def main():
    # Log records (including the drift WARNING) go to stderr as text;
    # pass json_format=True to see the shippable one-line-JSON form.
    configure_logging("INFO")

    dataset = generate_compas(400, random_state=7)

    # --- 1. trace the fit ---------------------------------------------
    tracer = enable_tracing()
    artifact = fit_serving_pipeline(
        dataset, n_prototypes=6, max_iter=40, max_pairs=2000, random_state=7
    )
    tracer.dump_json(TRACE_PATH)
    disable_tracing()
    timeline = tracer.timeline()
    print(f"fit trace: {len(timeline)} spans -> {TRACE_PATH}")
    for span in timeline:
        indent = "  " * span["depth"]
        print(f"  {indent}{span['name']:<20s} {span['duration_s'] * 1e3:8.1f} ms")
    tracer.clear()

    # --- 2. serve and scrape /v1/metrics ------------------------------
    engine = InferenceEngine(artifact)
    with DecisionService(engine, port=0) as service:
        host, port = service.address

        baseline = dataset.X[:128]
        groups = dataset.protected[:128]
        http_post(
            host,
            port,
            "/v1/decide",
            {"records": baseline.tolist(), "groups": groups.tolist()},
        )

        exposition = http_get(host, port, "/v1/metrics")
        print("\nPrometheus scrape (serving series):")
        for line in exposition.splitlines():
            if line.startswith("serving_") and "bucket" not in line:
                print(f"  {line}")

        # --- 3. drift on a shifted stream -----------------------------
        # Group-1 records drift to systematically lower scores: their
        # approval rate collapses and the max-min rate gap widens past
        # the monitor's tolerance (a WARNING logs on the rising edge).
        shifted = dataset.X[128:384].copy()
        shifted_groups = dataset.protected[128:384]
        for column in dataset.nonprotected_indices:
            shifted[shifted_groups == 1.0, column] -= 3.0
        answer = http_post(
            host,
            port,
            "/v1/decide",
            {"records": shifted.tolist(), "groups": shifted_groups.tolist()},
        )

        fairness = http_get(host, port, "/v1/stats")["fairness"]
        print("\nfairness window after the shifted stream:")
        print(f"  decision rates: {fairness['decision_rates']}")
        print(f"  rate gap:       {fairness['rate_gap']:.3f}")
        print(f"  baseline gap:   {fairness['baseline']['rate_gap']:.3f}")
        print(f"  drift flags:    {fairness['drift']}")
        print(f"  decide response carried: {answer['fairness_drift']}")

    # --- 4. per-worker series from the multi-process tier --------------
    # Two forked engine workers attach the same shm-published model;
    # each response ships the worker's metrics delta back to the
    # parent, which relabels it with worker="<i>" — so one scrape
    # shows who actually served what.
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = save_artifact(f"{tmp}/compas", artifact)
        service = serve_artifact(artifact_dir, port=0, workers=2)
        service.start()
        try:
            host, port = service.address
            for lo in range(0, 128, 16):  # spread requests over workers
                http_post(
                    host,
                    port,
                    "/v1/score",
                    {"records": dataset.X[lo : lo + 16].tolist()},
                )
            exposition = http_get(host, port, "/v1/metrics")
            print("\nper-worker scrape (workers=2):")
            for line in exposition.splitlines():
                if line.startswith("serving_requests_total{"):
                    print(f"  {line}")
            stats = http_get(host, port, "/v1/stats")
            print(f"  /v1/stats workers block: {stats['workers']}")
        finally:
            service.stop()


if __name__ == "__main__":
    main()
