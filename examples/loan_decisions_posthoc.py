"""Loan decisions: individual fairness first, legal parity second.

The paper's position: learn an individually fair representation
(application-agnostic, no group in the objective), and when a statutory
group-fairness constraint applies, enforce it *post hoc* on the
classifier outputs.  This example runs the full stack on the synthetic
German-credit data:

1. iFair-b representation  ->  logistic-regression credit scorer;
2. audit statistical parity of the raw thresholded decisions;
3. enforce parity with :class:`repro.GroupThresholdAdjuster` (per-group
   decision thresholds) and re-audit.

Run:  python examples/loan_decisions_posthoc.py
"""

from repro import GroupThresholdAdjuster, IFair
from repro.data.credit import generate_credit
from repro.data.splits import stratified_split
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import accuracy
from repro.metrics.group import statistical_parity
from repro.metrics.individual import consistency
from repro.utils.tables import render_table


def main():
    dataset = generate_credit(800, random_state=21)
    split = stratified_split(dataset.y, random_state=21)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    X_star = X[:, dataset.nonprotected_indices]

    representation = IFair(
        n_prototypes=8,
        lambda_util=1.0,
        mu_fair=1.0,
        init="protected_zero",
        n_restarts=1,
        max_iter=80,
        max_pairs=3000,
        random_state=21,
    ).fit(X[split.train], dataset.protected_indices)

    Z = representation.transform(X)
    scorer = LogisticRegression(l2=1.0).fit(Z[split.train], dataset.y[split.train])
    scores = scorer.predict_proba(Z)

    # Calibrate per-group thresholds on the validation split; evaluate
    # on the held-out test split.
    adjuster = GroupThresholdAdjuster("parity").fit(
        scores[split.val], dataset.protected[split.val]
    )

    raw_pred = (scores[split.test] >= 0.5).astype(float)
    fair_pred = adjuster.predict(scores[split.test], dataset.protected[split.test])

    rows = []
    for label, pred in (("threshold 0.5", raw_pred), ("per-group thresholds", fair_pred)):
        rows.append(
            [
                label,
                accuracy(dataset.y[split.test], pred),
                consistency(X_star[split.test], pred, k=10),
                statistical_parity(pred, dataset.protected[split.test]),
            ]
        )

    print(render_table(
        ["Decision rule", "Acc", "yNN", "Parity"],
        rows,
        title="Loan approvals on iFair representations, before/after post-hoc parity",
    ))
    print()
    print(
        "The representation keeps similar applicants' outcomes consistent;\n"
        "the statutory parity constraint is layered on top only where the\n"
        "law requires it — exactly the separation of concerns the paper argues for."
    )


if __name__ == "__main__":
    main()
