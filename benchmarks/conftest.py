"""Shared benchmark configuration.

Every ``bench_*`` module regenerates one of the paper's tables or
figures and prints it.  By default a reduced configuration keeps the
full benchmark run in the minutes range; set ``REPRO_SCALE=paper`` to
run the paper's full protocol (grids of Section V-B at full dataset
sizes — hours of compute).
"""

import os

import pytest

from repro.pipeline.config import ExperimentConfig


def _make_config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_SCALE", "fast")
    if scale == "paper":
        return ExperimentConfig.paper()
    return ExperimentConfig(
        mixture_grid=(0.1, 1.0, 100.0),
        prototype_grid=(6,),
        n_restarts=1,
        max_iter=40,
        max_pairs=2000,
        classification_records=360,
        ranking_queries=8,
        query_size=25,
        compas_charge_levels=20,
        random_state=7,
    )


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return _make_config()


def run_and_print(benchmark, runner, config, header: str):
    """Benchmark one experiment runner (single round) and print output."""
    result = benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1)
    print()
    print("=" * 72)
    print(header)
    print("=" * 72)
    print(result)
    return result
