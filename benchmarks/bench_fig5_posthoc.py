"""Figure 5 — enforcing statistical parity post-hoc (iFair + FA*IR).

Learns iFair-b representations, scores candidates with a linear
regression on them, then sweeps the FA*IR target proportion p and
reports MAP, protected share of the top-10, and consistency yNN for
Xing and Airbnb.

Expected shape: the protected share rises to whatever p demands while
the representation's consistency persists (dipping only gently at
extreme p); utility degrades gracefully.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_fig5_posthoc_parity(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["fig5"],
        config,
        "Figure 5 — FA*IR post-processing on iFair representations",
    )
