"""Extension bench — the introduction's dismissed straw man.

The paper's intro argues that "removing all sensitive attributes from
the data and then performing a standard clustering technique" does not
reconcile utility and individual fairness.  This bench tests the claim:
masked-data k-means (hard centroid representation) against iFair-b on
the credit dataset, plus the adversarial-censoring related-work
baseline for the obfuscation dimension.
"""

import pytest

from repro.baselines.adversarial import AdversarialCensoring
from repro.data.credit import generate_credit
from repro.data.splits import stratified_split
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import roc_auc
from repro.metrics.individual import consistency
from repro.metrics.obfuscation import adversarial_accuracy
from repro.pipeline.representations import FitContext, make_method
from repro.utils.tables import render_table


def test_strawman_clustering_vs_ifair(benchmark, config):
    dataset = generate_credit(360, random_state=7)
    split = stratified_split(dataset.y, random_state=7)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    X_star = X[:, dataset.nonprotected_indices]

    context = FitContext(
        X_train=X[split.train],
        protected_indices=dataset.protected_indices,
        y_train=dataset.y[split.train],
        protected_group_train=dataset.protected[split.train],
        random_state=7,
    )

    def run():
        rows = []
        specs = [
            ("Masked Data", {}),
            ("KMeans-masked", {"n_clusters": 6}),
            (
                "iFair-b",
                {
                    "n_prototypes": 6,
                    "lambda_util": 1.0,
                    "mu_fair": 1.0,
                    "max_iter": config.max_iter,
                    "n_restarts": config.n_restarts,
                    "max_pairs": config.max_pairs,
                },
            ),
        ]
        for name, params in specs:
            method = make_method(name, params).fit(context)
            Z_train = method.transform(X[split.train])
            Z_test = method.transform(X[split.test])
            clf = LogisticRegression(l2=1.0).fit(Z_train, dataset.y[split.train])
            proba = clf.predict_proba(Z_test)
            pred = (proba >= 0.5).astype(float)
            rows.append(
                [
                    name,
                    roc_auc(dataset.y[split.test], proba),
                    consistency(X_star[split.test], pred, k=10),
                    adversarial_accuracy(
                        method.transform(X), dataset.protected, random_state=0
                    ),
                ]
            )
        # Related-work adversarial censoring (obfuscation only; it is
        # supervised by the protected attribute, unlike iFair).
        censor = AdversarialCensoring(n_rounds=4).fit(
            X[split.train], dataset.protected[split.train]
        )
        Zc = censor.transform(X)
        clf = LogisticRegression(l2=1.0).fit(Zc[split.train], dataset.y[split.train])
        proba = clf.predict_proba(Zc[split.test])
        pred = (proba >= 0.5).astype(float)
        rows.append(
            [
                "Adversarial censoring",
                roc_auc(dataset.y[split.test], proba),
                consistency(X_star[split.test], pred, k=10),
                adversarial_accuracy(Zc, dataset.protected, random_state=0),
            ]
        )
        return render_table(
            ["Method", "AUC", "yNN", "Adversarial acc"],
            rows,
            title="Extension — straw-man clustering and censoring vs iFair (credit)",
        )

    print("\n" + benchmark.pedantic(run, rounds=1, iterations=1))
