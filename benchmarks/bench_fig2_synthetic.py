"""Figure 2 — synthetic-property study.

100-point Gaussian-mixture data with the protected attribute assigned
(i) at random, (ii) by X1 <= 3, (iii) by X2 <= 3.  For each variant,
iFair and LFR representations are learned (tuned for consistency) and
the classifier's Acc / yNN / Parity / EqOpp are reported — the numbers
annotated on the paper's nine subplots.

Expected shape: iFair and LFR trade blows on Acc/yNN; parity collapses
for the correlated variants; iFair representations are insensitive to
group membership.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_fig2_synthetic_study(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["fig2"],
        config,
        "Figure 2 — properties of learned representations on synthetic data",
    )
