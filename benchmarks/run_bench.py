"""Machine-readable performance trajectory for the core hot path.

Times the operations every experiment and serving request funnels
through — ``IFairObjective.loss_and_grad`` (GEMM fast path *and* the
einsum reference, so each run self-contains its own before/after),
``IFair.fit``, ``IFair.transform`` and single-record serving latency —
and appends one labelled entry to a JSON trajectory file
(``BENCH_core.json`` by default).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --quick
    PYTHONPATH=src python benchmarks/run_bench.py --label post-gemm \
        --out BENCH_core.json

``--quick`` keeps the whole run in the seconds range (CI smoke);
without it each timing uses more repeats for stabler numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.data.schema import TabularDataset
from repro.serving.engine import InferenceEngine
from repro.serving.fit import fit_serving_pipeline

# The ISSUE-2 acceptance configuration for the oracle timings.
M, N, K = 2000, 40, 10
PROTECTED = [38, 39]


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls (after warmup)."""
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_loss_and_grad(repeats: int) -> dict:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(M, N))
    theta = np.random.default_rng(1).uniform(0.1, 0.9, size=K * N + N)
    timings = {}
    for pairs_label, max_pairs in (("full", None), ("sampled50k", 50_000)):
        for kernel_label, fast in (("fast", True), ("reference", False)):
            obj = IFairObjective(
                X,
                PROTECTED,
                n_prototypes=K,
                max_pairs=max_pairs,
                random_state=0,
                fast_kernels=fast,
            )
            key = f"loss_and_grad_{pairs_label}_{kernel_label}_s"
            timings[key] = _best_of(lambda o=obj: o.loss_and_grad(theta), repeats)
    # Generic p must not regress: it runs the reference path either way.
    obj_p3 = IFairObjective(
        X, PROTECTED, n_prototypes=K, p=3.0, max_pairs=50_000, random_state=0
    )
    timings["loss_and_grad_sampled50k_p3_s"] = _best_of(
        lambda: obj_p3.loss_and_grad(theta), repeats
    )
    timings["speedup_full"] = (
        timings["loss_and_grad_full_reference_s"]
        / timings["loss_and_grad_full_fast_s"]
    )
    timings["speedup_sampled"] = (
        timings["loss_and_grad_sampled50k_reference_s"]
        / timings["loss_and_grad_sampled50k_fast_s"]
    )
    return timings


def bench_landmark(repeats: int, quick: bool) -> dict:
    """Landmark oracle at large M, where the reference path cannot run.

    At ``M = 20,000`` the reference full-pair path would allocate an
    (M, M) float64 target (3.2 GB) — it is skipped by construction.
    The moment-form fast path *can* run (O(M * N^2)) and provides the
    exact full-pair fairness value the landmark rows are scored
    against (``landmark*_fair_rel_err``), so each entry records the
    accuracy-vs-cost frontier of the new mode.
    """
    m = 4000 if quick else 20_000
    rng = np.random.default_rng(5)
    X = rng.normal(size=(m, N))
    theta = np.random.default_rng(6).uniform(0.1, 0.9, size=K * N + N)
    timings: dict = {"landmark_M": m}

    exact = IFairObjective(
        X, PROTECTED, n_prototypes=K, random_state=0
    )  # moment-form full pair
    _, fair_exact = exact.loss_components(theta)
    timings["loss_and_grad_full_fast_largeM_s"] = _best_of(
        lambda: exact.loss_and_grad(theta), repeats
    )

    for n_land in (64, 256):
        obj = IFairObjective(
            X,
            PROTECTED,
            n_prototypes=K,
            pair_mode="landmark",
            n_landmarks=n_land,
            random_state=0,
        )
        _, fair_lm = obj.loss_components(theta)
        timings[f"loss_and_grad_landmark{n_land}_s"] = _best_of(
            lambda o=obj: o.loss_and_grad(theta), repeats
        )
        timings[f"landmark{n_land}_fair_rel_err"] = abs(fair_lm - fair_exact) / fair_exact

    # Generic p has no moment form: the landmark oracle is the only
    # full-pair-quality option at this M (blocked kernels, no
    # (M, K, N) tensor).
    obj_p3 = IFairObjective(
        X,
        PROTECTED,
        n_prototypes=K,
        p=3.0,
        pair_mode="landmark",
        n_landmarks=128,
        random_state=0,
    )
    timings["loss_and_grad_landmark128_p3_s"] = _best_of(
        lambda: obj_p3.loss_and_grad(theta), repeats
    )
    return timings


def bench_fit(repeats: int) -> dict:
    rng = np.random.default_rng(2)
    X = rng.normal(size=(400, 20))

    def fit(n_jobs=None):
        IFair(
            n_prototypes=8,
            n_restarts=2,
            max_iter=30,
            max_pairs=5000,
            n_jobs=n_jobs,
            random_state=0,
        ).fit(X, [19])

    return {
        "fit_M400_N20_K8_r2_s": _best_of(fit, repeats),
        "fit_M400_N20_K8_r2_jobs2_s": _best_of(lambda: fit(2), repeats),
    }


def bench_transform(repeats: int) -> dict:
    rng = np.random.default_rng(3)
    model = IFair(
        n_prototypes=K, n_restarts=1, max_iter=10, max_pairs=2000, random_state=0
    ).fit(rng.normal(size=(300, N)), [39])
    X = rng.normal(size=(M, N))
    return {"transform_M2000_N40_K10_s": _best_of(lambda: model.transform(X), repeats)}


def bench_serving(repeats: int) -> dict:
    rng = np.random.default_rng(4)
    m, n = 400, 12
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    dataset = TabularDataset(
        name="bench",
        X=X,
        y=(rng.random(m) > 0.5).astype(float),
        protected=X[:, n - 1].copy(),
        protected_indices=[n - 1],
        task="classification",
    )
    artifact = fit_serving_pipeline(dataset, n_prototypes=8, max_iter=40, random_state=0)
    engine = InferenceEngine(artifact, cache_size=0)
    engine.transform(X[:1])  # warm up
    latencies = []
    for _ in range(max(50, repeats * 20)):
        record = rng.normal(size=(1, n))
        record[0, n - 1] = 0.0
        start = time.perf_counter()
        engine.transform(record)
        latencies.append(time.perf_counter() - start)
    latencies.sort()
    return {
        "serving_transform_1rec_p50_s": latencies[len(latencies) // 2],
        "serving_transform_1rec_p99_s": latencies[int(len(latencies) * 0.99)],
    }


def run(label: str, quick: bool) -> dict:
    repeats = 3 if quick else 10
    entry = {
        "label": label,
        "quick": quick,
        "config": {"M": M, "N": N, "K": K, "p": 2.0},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    entry.update(bench_loss_and_grad(repeats))
    entry.update(bench_landmark(repeats, quick))
    entry.update(bench_fit(max(2, repeats // 2)))
    entry.update(bench_transform(repeats))
    entry.update(bench_serving(repeats))
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--label", default="run", help="entry label in the trajectory")
    parser.add_argument(
        "--out", default="BENCH_core.json", help="trajectory JSON file to append to"
    )
    args = parser.parse_args()

    entry = run(args.label, args.quick)
    path = Path(args.out)
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"benchmark": "core-ops", "entries": []}
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"wrote {path} ({len(doc['entries'])} entries)")
    print(
        "loss_and_grad full: fast "
        f"{entry['loss_and_grad_full_fast_s'] * 1e3:.2f} ms, reference "
        f"{entry['loss_and_grad_full_reference_s'] * 1e3:.2f} ms "
        f"({entry['speedup_full']:.1f}x)"
    )
    print(
        "loss_and_grad sampled: fast "
        f"{entry['loss_and_grad_sampled50k_fast_s'] * 1e3:.2f} ms, reference "
        f"{entry['loss_and_grad_sampled50k_reference_s'] * 1e3:.2f} ms "
        f"({entry['speedup_sampled']:.1f}x)"
    )
    print(
        f"landmark @ M={entry['landmark_M']}: L=64 "
        f"{entry['loss_and_grad_landmark64_s'] * 1e3:.2f} ms "
        f"(fair rel err {entry['landmark64_fair_rel_err']:.2e}), L=256 "
        f"{entry['loss_and_grad_landmark256_s'] * 1e3:.2f} ms "
        f"(rel err {entry['landmark256_fair_rel_err']:.2e}); "
        f"p=3 L=128 {entry['loss_and_grad_landmark128_p3_s'] * 1e3:.2f} ms; "
        "reference full-pair skipped (O(M^2) target)"
    )


if __name__ == "__main__":
    main()
