"""Machine-readable performance trajectory for the core hot path.

Times the operations every experiment and serving request funnels
through — ``IFairObjective.loss_and_grad`` (GEMM fast path *and* the
einsum reference, so each run self-contains its own before/after),
``IFair.fit``, ``IFair.transform``, single-record serving latency, and
the end-to-end hyper-parameter tuning loop (serial exhaustive vs
process-parallel vs successive halving) — and appends one labelled
entry to a JSON trajectory file (``BENCH_core.json`` by default).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --quick
    PYTHONPATH=src python benchmarks/run_bench.py --label post-gemm \
        --out BENCH_core.json --tune-jobs 4

``--quick`` keeps the whole run in the seconds range (CI smoke);
without it each timing uses more repeats for stabler numbers.
``--tune-jobs`` sets the parallel worker count of the tuning rows
(default 4; CI uses 2 to match its runner).
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import time
from functools import partial
from pathlib import Path

import numpy as np

from repro.core.executor import get_shared
from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.core.tuning import GridSearch, HalvingConfig, TuningCriterion
from repro.data.census import generate_census
from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.data.splits import stratified_split
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import roc_auc
from repro.metrics.individual import consistency
from repro.serving.engine import InferenceEngine
from repro.serving.fit import fit_serving_pipeline

# The ISSUE-2 acceptance configuration for the oracle timings.
M, N, K = 2000, 40, 10
PROTECTED = [38, 39]

# The ISSUE-4 tuning benchmark: the paper's protocol shape (best-of-3
# restarts, mixture x prototype grid) on a census sample, with widely
# spaced mixtures so the three criteria have clear winners.  Seeded:
# the halving-agreement check below is pinned to this configuration.
TUNE_SEED = 11
TUNE_RECORDS = 500
TUNE_MIXTURES = (0.01, 1.0, 100.0)
TUNE_PROTOTYPES = (4, 8, 12)
TUNE_RESTARTS = 3
TUNE_MAX_ITER = 64
TUNE_HALVING = HalvingConfig(n_rungs=3, promote_fraction=0.2)


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls (after warmup)."""
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_loss_and_grad(repeats: int) -> dict:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(M, N))
    theta = np.random.default_rng(1).uniform(0.1, 0.9, size=K * N + N)
    timings = {}
    for pairs_label, max_pairs in (("full", None), ("sampled50k", 50_000)):
        for kernel_label, fast in (("fast", True), ("reference", False)):
            obj = IFairObjective(
                X,
                PROTECTED,
                n_prototypes=K,
                max_pairs=max_pairs,
                random_state=0,
                fast_kernels=fast,
            )
            key = f"loss_and_grad_{pairs_label}_{kernel_label}_s"
            timings[key] = _best_of(lambda o=obj: o.loss_and_grad(theta), repeats)
    # Generic p must not regress: it runs the reference path either way.
    obj_p3 = IFairObjective(
        X, PROTECTED, n_prototypes=K, p=3.0, max_pairs=50_000, random_state=0
    )
    timings["loss_and_grad_sampled50k_p3_s"] = _best_of(
        lambda: obj_p3.loss_and_grad(theta), repeats
    )
    timings["speedup_full"] = (
        timings["loss_and_grad_full_reference_s"]
        / timings["loss_and_grad_full_fast_s"]
    )
    timings["speedup_sampled"] = (
        timings["loss_and_grad_sampled50k_reference_s"]
        / timings["loss_and_grad_sampled50k_fast_s"]
    )
    return timings


def bench_landmark(repeats: int, quick: bool) -> dict:
    """Landmark oracle at large M, where the reference path cannot run.

    At ``M = 20,000`` the reference full-pair path would allocate an
    (M, M) float64 target (3.2 GB) — it is skipped by construction.
    The moment-form fast path *can* run (O(M * N^2)) and provides the
    exact full-pair fairness value the landmark rows are scored
    against (``landmark*_fair_rel_err``), so each entry records the
    accuracy-vs-cost frontier of the new mode.
    """
    m = 4000 if quick else 20_000
    rng = np.random.default_rng(5)
    X = rng.normal(size=(m, N))
    theta = np.random.default_rng(6).uniform(0.1, 0.9, size=K * N + N)
    timings: dict = {"landmark_M": m}

    exact = IFairObjective(
        X, PROTECTED, n_prototypes=K, random_state=0
    )  # moment-form full pair
    _, fair_exact = exact.loss_components(theta)
    timings["loss_and_grad_full_fast_largeM_s"] = _best_of(
        lambda: exact.loss_and_grad(theta), repeats
    )

    for n_land in (64, 256):
        obj = IFairObjective(
            X,
            PROTECTED,
            n_prototypes=K,
            pair_mode="landmark",
            n_landmarks=n_land,
            random_state=0,
        )
        _, fair_lm = obj.loss_components(theta)
        timings[f"loss_and_grad_landmark{n_land}_s"] = _best_of(
            lambda o=obj: o.loss_and_grad(theta), repeats
        )
        timings[f"landmark{n_land}_fair_rel_err"] = abs(fair_lm - fair_exact) / fair_exact

    # Generic p has no moment form: the landmark oracle is the only
    # full-pair-quality option at this M (blocked kernels, no
    # (M, K, N) tensor).
    obj_p3 = IFairObjective(
        X,
        PROTECTED,
        n_prototypes=K,
        p=3.0,
        pair_mode="landmark",
        n_landmarks=128,
        random_state=0,
    )
    timings["loss_and_grad_landmark128_p3_s"] = _best_of(
        lambda: obj_p3.loss_and_grad(theta), repeats
    )
    return timings


def bench_fit(repeats: int) -> dict:
    rng = np.random.default_rng(2)
    X = rng.normal(size=(400, 20))

    def fit(n_jobs=None, backend="process"):
        IFair(
            n_prototypes=8,
            n_restarts=2,
            max_iter=30,
            max_pairs=5000,
            n_jobs=n_jobs,
            backend=backend,
            random_state=0,
        ).fit(X, [19])

    return {
        "fit_M400_N20_K8_r2_s": _best_of(fit, repeats),
        # jobs2 restarts now fork real worker processes (PR 4); the
        # thread row keeps the old GIL-bound escape hatch measurable.
        "fit_M400_N20_K8_r2_jobs2_s": _best_of(lambda: fit(2), repeats),
        "fit_M400_N20_K8_r2_jobs2_thread_s": _best_of(
            lambda: fit(2, "thread"), repeats
        ),
    }


def bench_transform(repeats: int) -> dict:
    rng = np.random.default_rng(3)
    model = IFair(
        n_prototypes=K, n_restarts=1, max_iter=10, max_pairs=2000, random_state=0
    ).fit(rng.normal(size=(300, N)), [39])
    X = rng.normal(size=(M, N))
    return {"transform_M2000_N40_K10_s": _best_of(lambda: model.transform(X), repeats)}


def bench_serving(repeats: int) -> dict:
    rng = np.random.default_rng(4)
    m, n = 400, 12
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    dataset = TabularDataset(
        name="bench",
        X=X,
        y=(rng.random(m) > 0.5).astype(float),
        protected=X[:, n - 1].copy(),
        protected_indices=[n - 1],
        task="classification",
    )
    artifact = fit_serving_pipeline(dataset, n_prototypes=8, max_iter=40, random_state=0)
    engine = InferenceEngine(artifact, cache_size=0)
    # Warm-up phase: the first calls pay allocator growth and code-path
    # warming that steady-state traffic never sees; without it the p99
    # row measures cold-start noise instead of the hot loop.
    for _ in range(100):
        record = rng.normal(size=(1, n))
        record[0, n - 1] = 0.0
        engine.transform(record)
    latencies = []
    for _ in range(max(300, repeats * 100)):
        record = rng.normal(size=(1, n))
        record[0, n - 1] = 0.0
        start = time.perf_counter()
        engine.transform(record)
        latencies.append(time.perf_counter() - start)
    latencies.sort()
    return {
        "serving_transform_1rec_p50_s": latencies[len(latencies) // 2],
        "serving_transform_1rec_p99_s": latencies[int(len(latencies) * 0.99)],
    }


# ----------------------------------------------------------------------
# end-to-end tuning throughput (ISSUE 4)


def _tune_candidate_build(spec: dict, params: dict) -> IFair:
    """Fit one tuning candidate from the shared-memory broadcast."""
    shared = get_shared()
    return IFair(init="protected_zero", random_state=spec["seed"], **params).fit(
        shared["X"][shared["train"]], spec["protected_indices"]
    )


def _tune_candidate_evaluate(spec: dict, model: IFair) -> tuple:
    """Validation (AUC, yNN) of one candidate, as in Section V-B."""
    shared = get_shared()
    X, y, X_star = shared["X"], shared["y"], shared["X_star"]
    train, val = shared["train"], shared["val"]
    clf = LogisticRegression(l2=1.0).fit(model.transform(X[train]), y[train])
    proba = clf.predict_proba(model.transform(X[val]))
    pred = (proba >= 0.5).astype(np.float64)
    try:
        auc = float(roc_auc(y[val], proba))
    except ValidationError:  # single-class split: score as NaN, keep timing
        auc = float("nan")
    ynn = float(consistency(X_star[val], pred, k=10))
    return auc, ynn


def bench_tuning(tune_jobs: int, quick: bool = False) -> dict:
    """Wall-clock of the experiment tuning loop, four execution modes.

    Serial exhaustive is the paper protocol baseline; ``jobs=J``
    exhaustive isolates the process-pool scaling (≈ J x on a J-core
    machine, ≈ 1 x on a single core — ``tuning_cpu_count`` records
    which one this entry measured); halving isolates the algorithmic
    cut (independent of cores); jobs+halving is the shipped
    configuration and the headline ``tuning_speedup_parallel`` row.
    Every mode must select the same candidate under all three criteria
    — the ``halving_agree_*`` flags record it.
    """
    # Quick mode (CI smoke) shrinks the dataset and grid; both shapes
    # are seeded configurations whose halving agreement is pinned.
    records = 250 if quick else TUNE_RECORDS
    prototypes = (4, 8) if quick else TUNE_PROTOTYPES
    max_iter = 48 if quick else TUNE_MAX_ITER
    dataset = generate_census(records, random_state=TUNE_SEED)
    split = stratified_split(dataset.y, random_state=TUNE_SEED)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    grid = [
        {
            "lambda_util": lam,
            "mu_fair": mu,
            "n_prototypes": k,
            "n_restarts": TUNE_RESTARTS,
            "max_iter": max_iter,
            "max_pairs": 2000,
        }
        for lam, mu, k in itertools.product(
            TUNE_MIXTURES, TUNE_MIXTURES, prototypes
        )
    ]
    spec = {
        "seed": TUNE_SEED,
        "protected_indices": [int(i) for i in np.atleast_1d(dataset.protected_indices)],
    }
    shared = {
        "X": X,
        "X_star": X[:, dataset.nonprotected_indices],
        "y": dataset.y,
        "train": split.train,
        "val": split.val,
    }

    def run_mode(n_jobs, strategy):
        search = GridSearch(
            partial(_tune_candidate_build, spec),
            partial(_tune_candidate_evaluate, spec),
            grid,
            n_jobs=n_jobs,
            strategy=strategy,
            halving=TUNE_HALVING,
            keep_artifacts=False,
            shared=shared,
        )
        start = time.perf_counter()
        result = search.run()
        return time.perf_counter() - start, result

    t_serial, r_serial = run_mode(None, "exhaustive")
    t_jobs, r_jobs = run_mode(tune_jobs, "exhaustive")
    t_halving, r_halving = run_mode(None, "halving")
    t_both, r_both = run_mode(tune_jobs, "halving")

    timings = {
        "tuning_grid_points": len(grid),
        "tuning_cpu_count": os.cpu_count(),
        "tuning_jobs": tune_jobs,
        "tuning_serial_exhaustive_s": t_serial,
        f"tuning_jobs{tune_jobs}_exhaustive_s": t_jobs,
        "tuning_serial_halving_s": t_halving,
        f"tuning_jobs{tune_jobs}_halving_s": t_both,
        "tuning_halving_fits": r_halving.n_fits,
        "tuning_exhaustive_fits": r_serial.n_fits,
        "tuning_speedup_jobs": t_serial / t_jobs,
        "tuning_speedup_halving": t_serial / t_halving,
        # The shipped configuration (n_jobs=J + halving) against the
        # paper-protocol baseline — the headline acceptance row.
        "tuning_speedup_parallel": t_serial / t_both,
    }
    for criterion in TuningCriterion:
        winner = r_serial.best(criterion).order
        timings[f"halving_agree_{criterion.value}"] = bool(
            r_halving.best(criterion).order == winner
            and r_both.best(criterion).order == winner
        )
        timings[f"jobs_agree_{criterion.value}"] = bool(
            r_jobs.best(criterion).order == winner
        )
    return timings


def run(label: str, quick: bool, tune_jobs: int) -> dict:
    repeats = 3 if quick else 10
    entry = {
        "label": label,
        "quick": quick,
        "config": {"M": M, "N": N, "K": K, "p": 2.0},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    entry.update(bench_loss_and_grad(repeats))
    entry.update(bench_landmark(repeats, quick))
    entry.update(bench_fit(max(2, repeats // 2)))
    entry.update(bench_transform(repeats))
    entry.update(bench_serving(repeats))
    entry.update(bench_tuning(tune_jobs, quick=quick))
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--label", default="run", help="entry label in the trajectory")
    parser.add_argument(
        "--out", default="BENCH_core.json", help="trajectory JSON file to append to"
    )
    parser.add_argument(
        "--tune-jobs",
        type=int,
        default=4,
        help="worker count of the parallel tuning rows (default 4)",
    )
    args = parser.parse_args()

    entry = run(args.label, args.quick, args.tune_jobs)
    path = Path(args.out)
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"benchmark": "core-ops", "entries": []}
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"wrote {path} ({len(doc['entries'])} entries)")
    print(
        "loss_and_grad full: fast "
        f"{entry['loss_and_grad_full_fast_s'] * 1e3:.2f} ms, reference "
        f"{entry['loss_and_grad_full_reference_s'] * 1e3:.2f} ms "
        f"({entry['speedup_full']:.1f}x)"
    )
    print(
        "loss_and_grad sampled: fast "
        f"{entry['loss_and_grad_sampled50k_fast_s'] * 1e3:.2f} ms, reference "
        f"{entry['loss_and_grad_sampled50k_reference_s'] * 1e3:.2f} ms "
        f"({entry['speedup_sampled']:.1f}x)"
    )
    print(
        f"landmark @ M={entry['landmark_M']}: L=64 "
        f"{entry['loss_and_grad_landmark64_s'] * 1e3:.2f} ms "
        f"(fair rel err {entry['landmark64_fair_rel_err']:.2e}), L=256 "
        f"{entry['loss_and_grad_landmark256_s'] * 1e3:.2f} ms "
        f"(rel err {entry['landmark256_fair_rel_err']:.2e}); "
        f"p=3 L=128 {entry['loss_and_grad_landmark128_p3_s'] * 1e3:.2f} ms; "
        "reference full-pair skipped (O(M^2) target)"
    )
    jobs = entry["tuning_jobs"]
    agree = all(
        entry[f"halving_agree_{c.value}"] and entry[f"jobs_agree_{c.value}"]
        for c in TuningCriterion
    )
    print(
        f"tuning ({entry['tuning_grid_points']}-point grid, "
        f"{entry['tuning_cpu_count']} cpus): serial exhaustive "
        f"{entry['tuning_serial_exhaustive_s']:.2f} s, jobs={jobs} "
        f"{entry[f'tuning_jobs{jobs}_exhaustive_s']:.2f} s "
        f"({entry['tuning_speedup_jobs']:.2f}x), halving "
        f"{entry['tuning_serial_halving_s']:.2f} s "
        f"({entry['tuning_speedup_halving']:.2f}x, "
        f"{entry['tuning_halving_fits']} fits vs "
        f"{entry['tuning_exhaustive_fits']}), jobs+halving "
        f"{entry[f'tuning_jobs{jobs}_halving_s']:.2f} s; best "
        f"{entry['tuning_speedup_parallel']:.2f}x, selection agreement "
        f"{'OK' if agree else 'BROKEN'} under all three criteria"
    )


if __name__ == "__main__":
    main()
