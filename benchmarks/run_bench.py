"""Machine-readable performance trajectory for the core hot path.

Times the operations every experiment and serving request funnels
through — ``IFairObjective.loss_and_grad`` (GEMM fast path *and* the
einsum reference, so each run self-contains its own before/after),
``IFair.fit``, ``IFair.transform``, single-record serving latency, and
the end-to-end hyper-parameter tuning loop (serial exhaustive vs
process-parallel vs successive halving) — and appends one labelled
entry to a JSON trajectory file (``BENCH_core.json`` by default).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --quick
    PYTHONPATH=src python benchmarks/run_bench.py --label post-gemm \
        --out BENCH_core.json --tune-jobs 4
    PYTHONPATH=src python benchmarks/run_bench.py --quick \
        --compare BENCH_core.json --tolerance 3.0
    PYTHONPATH=src python benchmarks/run_bench.py --quick --scaling \
        --label ci-scaling --out BENCH_ci.json

``--quick`` keeps the whole run in the seconds range (CI smoke);
without it each timing uses more repeats for stabler numbers.
``--tune-jobs`` sets the parallel worker count of the tuning rows
(default 4; CI uses 2 to match its runner).

``--compare BASELINE.json`` is the CI perf-regression gate: after the
run, every metric in :data:`GATE_LOWER_IS_BETTER` is compared against
the most recent baseline entry carrying it, and the process exits
non-zero when any is slower than ``(1 + tolerance) x`` the baseline
(or a :data:`GATE_MUST_STAY_TRUE` flag flipped to false).  Gated
metrics are restricted to shapes identical under ``--quick`` and full
runs, so a CI smoke run can be held against the committed full-run
trajectory.

``--scaling`` replaces the full bench with the multi-core scaling
measurement of ROADMAP residual (a): the quick tuning grid is run
exhaustively at ``n_jobs=1`` and ``n_jobs=2`` and the measured
speedup is appended as its own entry — observed scaling on the
runner's real cores, not asserted scaling.

``--load`` replaces the full bench with the serving-tier load rows
only (:mod:`bench_load`): sustained RPS at ``workers=1`` vs
``workers=2`` over real sockets, with two blue/green reloads fired
mid-traffic.  The full bench includes the same rows, so CI smoke runs
gate them either way.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import sys
import time
from functools import partial
from pathlib import Path

import numpy as np

from repro.core.executor import get_shared, shutdown_session_pools
from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.core.tuning import GridSearch, HalvingConfig, TuningCriterion
from repro.data.census import generate_census
from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.data.splits import stratified_split
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import roc_auc
from repro.metrics.individual import consistency
from repro.serving.engine import InferenceEngine
from repro.serving.fit import fit_serving_pipeline
from repro.telemetry.tracing import disable_tracing, enable_tracing, get_tracer

# The ISSUE-2 acceptance configuration for the oracle timings.
M, N, K = 2000, 40, 10
PROTECTED = [38, 39]

# The ISSUE-4 tuning benchmark: the paper's protocol shape (best-of-3
# restarts, mixture x prototype grid) on a census sample, with widely
# spaced mixtures so the three criteria have clear winners.  Seeded:
# the halving-agreement check below is pinned to this configuration.
TUNE_SEED = 11
TUNE_RECORDS = 500
TUNE_MIXTURES = (0.01, 1.0, 100.0)
TUNE_PROTOTYPES = (4, 8, 12)
TUNE_RESTARTS = 3
TUNE_MAX_ITER = 64
TUNE_HALVING = HalvingConfig(n_rungs=3, promote_fraction=0.2)


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls (after warmup)."""
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_loss_and_grad(repeats: int) -> dict:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(M, N))
    theta = np.random.default_rng(1).uniform(0.1, 0.9, size=K * N + N)
    timings = {}
    for pairs_label, max_pairs in (("full", None), ("sampled50k", 50_000)):
        for kernel_label, fast in (("fast", True), ("reference", False)):
            obj = IFairObjective(
                X,
                PROTECTED,
                n_prototypes=K,
                max_pairs=max_pairs,
                random_state=0,
                fast_kernels=fast,
            )
            key = f"loss_and_grad_{pairs_label}_{kernel_label}_s"
            timings[key] = _best_of(lambda o=obj: o.loss_and_grad(theta), repeats)
    # Generic p must not regress: it runs the reference path either way.
    obj_p3 = IFairObjective(
        X, PROTECTED, n_prototypes=K, p=3.0, max_pairs=50_000, random_state=0
    )
    timings["loss_and_grad_sampled50k_p3_s"] = _best_of(
        lambda: obj_p3.loss_and_grad(theta), repeats
    )
    timings["speedup_full"] = (
        timings["loss_and_grad_full_reference_s"]
        / timings["loss_and_grad_full_fast_s"]
    )
    timings["speedup_sampled"] = (
        timings["loss_and_grad_sampled50k_reference_s"]
        / timings["loss_and_grad_sampled50k_fast_s"]
    )
    return timings


def bench_landmark(repeats: int, quick: bool) -> dict:
    """Landmark oracle at large M, where the reference path cannot run.

    At ``M = 20,000`` the reference full-pair path would allocate an
    (M, M) float64 target (3.2 GB) — it is skipped by construction.
    The moment-form fast path *can* run (O(M * N^2)) and provides the
    exact full-pair fairness value the landmark rows are scored
    against (``landmark*_fair_rel_err``), so each entry records the
    accuracy-vs-cost frontier of the new mode.
    """
    m = 4000 if quick else 20_000
    rng = np.random.default_rng(5)
    X = rng.normal(size=(m, N))
    theta = np.random.default_rng(6).uniform(0.1, 0.9, size=K * N + N)
    timings: dict = {"landmark_M": m}

    exact = IFairObjective(
        X, PROTECTED, n_prototypes=K, random_state=0
    )  # moment-form full pair
    _, fair_exact = exact.loss_components(theta)
    timings["loss_and_grad_full_fast_largeM_s"] = _best_of(
        lambda: exact.loss_and_grad(theta), repeats
    )

    for n_land in (64, 256):
        obj = IFairObjective(
            X,
            PROTECTED,
            n_prototypes=K,
            pair_mode="landmark",
            n_landmarks=n_land,
            random_state=0,
        )
        _, fair_lm = obj.loss_components(theta)
        timings[f"loss_and_grad_landmark{n_land}_s"] = _best_of(
            lambda o=obj: o.loss_and_grad(theta), repeats
        )
        timings[f"landmark{n_land}_fair_rel_err"] = abs(fair_lm - fair_exact) / fair_exact

    # Generic p has no moment form: the landmark oracle is the only
    # full-pair-quality option at this M (blocked kernels, no
    # (M, K, N) tensor).
    obj_p3 = IFairObjective(
        X,
        PROTECTED,
        n_prototypes=K,
        p=3.0,
        pair_mode="landmark",
        n_landmarks=128,
        random_state=0,
    )
    timings["loss_and_grad_landmark128_p3_s"] = _best_of(
        lambda: obj_p3.loss_and_grad(theta), repeats
    )
    return timings


def bench_fit(repeats: int) -> dict:
    rng = np.random.default_rng(2)
    X = rng.normal(size=(400, 20))

    def fit(n_jobs=None, backend="process", pool="per-call"):
        return IFair(
            n_prototypes=8,
            n_restarts=2,
            max_iter=30,
            max_pairs=5000,
            n_jobs=n_jobs,
            backend=backend,
            pool=pool,
            random_state=0,
        ).fit(X, [19])

    timings = {
        "fit_M400_N20_K8_r2_s": _best_of(fit, repeats),
        # jobs2 restarts now fork real worker processes (PR 4); the
        # thread row keeps the old GIL-bound escape hatch measurable.
        "fit_M400_N20_K8_r2_jobs2_s": _best_of(lambda: fit(2), repeats),
        "fit_M400_N20_K8_r2_jobs2_thread_s": _best_of(
            lambda: fit(2, "thread"), repeats
        ),
        # The session-pool row (ROADMAP residual (b)): _best_of's
        # warm-up call primes the broker pool and publishes X into the
        # arena cache, so every timed fit measures the warm path — no
        # worker spawn, no re-broadcast.
        "fit_M400_N20_K8_r2_jobs2_warm_s": _best_of(
            lambda: fit(2, pool="session"), repeats
        ),
    }
    timings["fit_warm_pool_parity"] = bool(
        np.array_equal(fit().theta_, fit(2, pool="session").theta_)
    )
    shutdown_session_pools()
    return timings


def bench_transform(repeats: int) -> dict:
    rng = np.random.default_rng(3)
    model = IFair(
        n_prototypes=K, n_restarts=1, max_iter=10, max_pairs=2000, random_state=0
    ).fit(rng.normal(size=(300, N)), [39])
    X = rng.normal(size=(M, N))
    return {"transform_M2000_N40_K10_s": _best_of(lambda: model.transform(X), repeats)}


def _serving_engine(n: int = 12):
    """A small fitted engine for the serving-latency rows."""
    rng = np.random.default_rng(4)
    m = 400
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    dataset = TabularDataset(
        name="bench",
        X=X,
        y=(rng.random(m) > 0.5).astype(float),
        protected=X[:, n - 1].copy(),
        protected_indices=[n - 1],
        task="classification",
    )
    artifact = fit_serving_pipeline(dataset, n_prototypes=8, max_iter=40, random_state=0)
    return InferenceEngine(artifact, cache_size=0), rng


def _serving_latencies(engine, rng, n: int, samples: int) -> list:
    """Sorted single-record transform latencies after warm-up."""
    # Warm-up phase: the first calls pay allocator growth and code-path
    # warming that steady-state traffic never sees; without it the p99
    # row measures cold-start noise instead of the hot loop.
    for _ in range(100):
        record = rng.normal(size=(1, n))
        record[0, n - 1] = 0.0
        engine.transform(record)
    latencies = []
    for _ in range(samples):
        record = rng.normal(size=(1, n))
        record[0, n - 1] = 0.0
        start = time.perf_counter()
        engine.transform(record)
        latencies.append(time.perf_counter() - start)
    latencies.sort()
    return latencies


def bench_serving(repeats: int) -> dict:
    n = 12
    engine, rng = _serving_engine(n)
    latencies = _serving_latencies(engine, rng, n, max(300, repeats * 100))
    return {
        "serving_transform_1rec_p50_s": latencies[len(latencies) // 2],
        "serving_transform_1rec_p99_s": latencies[int(len(latencies) * 0.99)],
    }


def bench_load_rows(quick: bool) -> dict:
    """Serving-tier sustained-RPS rows (PR 7), from :mod:`bench_load`.

    Lazily imported by path so this module stays loadable standalone
    (the gate's unit tests exec it outside a package context).
    """
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_load

    return bench_load.bench_workers(quick=quick)


def bench_sharded_rows(quick: bool) -> dict:
    """Sharded landmark-oracle rows (PR 8), from :mod:`bench_sharded`.

    Quick runs time the M = 100k sharded fit and the parity flag; full
    runs add the M = 1,000,000 acceptance rows.
    """
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_sharded

    return bench_sharded.bench_sharded(quick=quick)


def bench_chaos_rows(quick: bool) -> dict:
    """Serving chaos-soak rows (PR 9), from :mod:`bench_chaos`.

    Correctness under injected worker faults: error/shed rates, p99 of
    verified answers, deadline kills and respawns, with two blue/green
    reloads fired mid-chaos.
    """
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_chaos

    return bench_chaos.bench_chaos(quick=quick)


def bench_online_rows(quick: bool) -> dict:
    """Online drift-response rows (PR 10), from :mod:`bench_online`.

    The closed loop under live traffic: warm-refit latency, wall time
    from injected covariate shift to the blue/green reload landing,
    and the client-observed p99 during the swap.
    """
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_online

    return bench_online.bench_online(quick=quick)


# ----------------------------------------------------------------------
# telemetry overhead (PR 6)

#: Allowed slowdown of tracing-on over tracing-off.  The fit row is
#: tens of milliseconds, so span bookkeeping (a handful per restart)
#: must vanish into it; the serving row is single-record microseconds,
#: where one span per model pass is measurable but must stay bounded.
TELEMETRY_FIT_TOLERANCE = 0.25
TELEMETRY_SERVING_TOLERANCE = 1.0


def bench_telemetry(repeats: int, trace_out=None) -> dict:
    """Overhead of the observability layer on the PR-5 acceptance rows.

    The metrics registry is always on (counters/histograms are part of
    the request and fit paths by design); the toggle this measures is
    span tracing, the only telemetry component with an off switch.
    Each row times the identical workload with tracing disabled and
    enabled; ``telemetry_overhead_ok`` is the in-run gate, and the
    flag also rides the CI ``GATE_MUST_STAY_TRUE`` list.

    ``trace_out`` (a path) dumps the tracing-on fit's span timeline as
    a JSON file — the CI workflow uploads it as an artifact.
    """
    rng = np.random.default_rng(2)
    X = rng.normal(size=(400, 20))

    def fit():
        return IFair(
            n_prototypes=8,
            n_restarts=2,
            max_iter=30,
            max_pairs=5000,
            random_state=0,
        ).fit(X, [19])

    disable_tracing()
    fit_off = _best_of(fit, repeats)
    tracer = enable_tracing()
    tracer.clear()
    try:
        fit_on = _best_of(fit, repeats)
        if trace_out is not None:
            tracer.dump_json(str(trace_out))
    finally:
        disable_tracing()
        tracer.clear()

    n = 12
    engine, serving_rng = _serving_engine(n)
    samples = max(300, repeats * 100)
    p50_off = _serving_latencies(engine, serving_rng, n, samples)[samples // 2]
    enable_tracing()
    try:
        p50_on = _serving_latencies(engine, serving_rng, n, samples)[samples // 2]
    finally:
        disable_tracing()
        get_tracer().clear()

    fit_ratio = fit_on / fit_off
    serving_ratio = p50_on / p50_off
    return {
        "telemetry_fit_off_s": fit_off,
        "telemetry_fit_on_s": fit_on,
        "telemetry_fit_overhead_ratio": fit_ratio,
        "telemetry_serving_p50_off_s": p50_off,
        "telemetry_serving_p50_on_s": p50_on,
        "telemetry_serving_overhead_ratio": serving_ratio,
        "telemetry_overhead_ok": bool(
            fit_ratio <= 1.0 + TELEMETRY_FIT_TOLERANCE
            and serving_ratio <= 1.0 + TELEMETRY_SERVING_TOLERANCE
        ),
    }


# ----------------------------------------------------------------------
# end-to-end tuning throughput (ISSUE 4)


def _tune_candidate_build(spec: dict, params: dict) -> IFair:
    """Fit one tuning candidate from the shared-memory broadcast."""
    shared = get_shared()
    return IFair(init="protected_zero", random_state=spec["seed"], **params).fit(
        shared["X"][shared["train"]], spec["protected_indices"]
    )


def _tune_candidate_evaluate(spec: dict, model: IFair) -> tuple:
    """Validation (AUC, yNN) of one candidate, as in Section V-B."""
    shared = get_shared()
    X, y, X_star = shared["X"], shared["y"], shared["X_star"]
    train, val = shared["train"], shared["val"]
    clf = LogisticRegression(l2=1.0).fit(model.transform(X[train]), y[train])
    proba = clf.predict_proba(model.transform(X[val]))
    pred = (proba >= 0.5).astype(np.float64)
    try:
        auc = float(roc_auc(y[val], proba))
    except ValidationError:  # single-class split: score as NaN, keep timing
        auc = float("nan")
    ynn = float(consistency(X_star[val], pred, k=10))
    return auc, ynn


def _tuning_setup(quick: bool):
    """Grid, spec and shared arrays of the seeded tuning benchmark.

    Quick mode (CI smoke) shrinks the dataset and grid; both shapes
    are seeded configurations whose halving agreement is pinned.
    """
    records = 250 if quick else TUNE_RECORDS
    prototypes = (4, 8) if quick else TUNE_PROTOTYPES
    max_iter = 48 if quick else TUNE_MAX_ITER
    dataset = generate_census(records, random_state=TUNE_SEED)
    split = stratified_split(dataset.y, random_state=TUNE_SEED)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    grid = [
        {
            "lambda_util": lam,
            "mu_fair": mu,
            "n_prototypes": k,
            "n_restarts": TUNE_RESTARTS,
            "max_iter": max_iter,
            "max_pairs": 2000,
        }
        for lam, mu, k in itertools.product(
            TUNE_MIXTURES, TUNE_MIXTURES, prototypes
        )
    ]
    spec = {
        "seed": TUNE_SEED,
        "protected_indices": [int(i) for i in np.atleast_1d(dataset.protected_indices)],
    }
    shared = {
        "X": X,
        "X_star": X[:, dataset.nonprotected_indices],
        "y": dataset.y,
        "train": split.train,
        "val": split.val,
    }
    return grid, spec, shared


def _run_tune_mode(grid, spec, shared, n_jobs, strategy, pool="per-call"):
    """One timed GridSearch run over the benchmark problem."""
    search = GridSearch(
        partial(_tune_candidate_build, spec),
        partial(_tune_candidate_evaluate, spec),
        grid,
        n_jobs=n_jobs,
        strategy=strategy,
        halving=TUNE_HALVING,
        keep_artifacts=False,
        shared=shared,
        pool=pool,
    )
    start = time.perf_counter()
    result = search.run()
    return time.perf_counter() - start, result


def bench_tuning(tune_jobs: int, quick: bool = False) -> dict:
    """Wall-clock of the experiment tuning loop, four execution modes.

    Serial exhaustive is the paper protocol baseline; ``jobs=J``
    exhaustive isolates the process-pool scaling (≈ J x on a J-core
    machine, ≈ 1 x on a single core — ``tuning_cpu_count`` records
    which one this entry measured); halving isolates the algorithmic
    cut (independent of cores); jobs+halving is the shipped
    configuration and the headline ``tuning_speedup_parallel`` row.
    Every mode must select the same candidate under all three criteria
    — the ``halving_agree_*`` flags record it.
    """
    grid, spec, shared = _tuning_setup(quick)

    def run_mode(n_jobs, strategy):
        return _run_tune_mode(grid, spec, shared, n_jobs, strategy)

    t_serial, r_serial = run_mode(None, "exhaustive")
    t_jobs, r_jobs = run_mode(tune_jobs, "exhaustive")
    t_halving, r_halving = run_mode(None, "halving")
    t_both, r_both = run_mode(tune_jobs, "halving")

    timings = {
        "tuning_grid_points": len(grid),
        "tuning_cpu_count": os.cpu_count(),
        "tuning_jobs": tune_jobs,
        "tuning_serial_exhaustive_s": t_serial,
        f"tuning_jobs{tune_jobs}_exhaustive_s": t_jobs,
        "tuning_serial_halving_s": t_halving,
        f"tuning_jobs{tune_jobs}_halving_s": t_both,
        "tuning_halving_fits": r_halving.n_fits,
        "tuning_exhaustive_fits": r_serial.n_fits,
        "tuning_speedup_jobs": t_serial / t_jobs,
        "tuning_speedup_halving": t_serial / t_halving,
        # The shipped configuration (n_jobs=J + halving) against the
        # paper-protocol baseline — the headline acceptance row.
        "tuning_speedup_parallel": t_serial / t_both,
    }
    for criterion in TuningCriterion:
        winner = r_serial.best(criterion).order
        timings[f"halving_agree_{criterion.value}"] = bool(
            r_halving.best(criterion).order == winner
            and r_both.best(criterion).order == winner
        )
        timings[f"jobs_agree_{criterion.value}"] = bool(
            r_jobs.best(criterion).order == winner
        )
    return timings


def bench_tune_scaling(quick: bool = True, jobs: tuple = (1, 2)) -> dict:
    """Measured multi-core tuning scaling (ROADMAP residual (a)).

    Runs the exhaustive tuning grid at each worker count in ``jobs``
    and records the observed speedups relative to the first entry —
    on a multi-core runner this is the first *measured* (not asserted)
    scaling row of the trajectory.  No assertion is made about the
    value: on one core the expected speedup is ~1x (the executor's
    deterministic decomposition adds ~no overhead), on J >= 2 cores it
    should approach min(J, jobs).
    """
    grid, spec, shared = _tuning_setup(quick)
    timings: dict = {
        "scaling_grid_points": len(grid),
        "tuning_cpu_count": os.cpu_count(),
        "scaling_jobs": list(jobs),
    }
    reference = None
    for n_jobs in jobs:
        seconds, _ = _run_tune_mode(
            grid, spec, shared, None if n_jobs == 1 else n_jobs, "exhaustive"
        )
        timings[f"scaling_jobs{n_jobs}_s"] = seconds
        if reference is None:
            reference = seconds
        else:
            timings[f"scaling_speedup_jobs{n_jobs}"] = reference / seconds
    return timings


# ----------------------------------------------------------------------
# CI perf-regression gate

#: Timing metrics (seconds, lower is better) whose problem shapes are
#: identical under --quick and full runs, so a CI smoke entry can be
#: gated against the committed full-run trajectory.  Deliberately
#: excluded: landmark rows (M differs between quick and full) and the
#: absolute tuning rows (records/grid/machine-core dependent).
GATE_LOWER_IS_BETTER = (
    "loss_and_grad_full_fast_s",
    "loss_and_grad_sampled50k_fast_s",
    "loss_and_grad_sampled50k_p3_s",
    "fit_M400_N20_K8_r2_s",
    "fit_M400_N20_K8_r2_jobs2_s",
    "fit_M400_N20_K8_r2_jobs2_warm_s",
    "transform_M2000_N40_K10_s",
    "serving_transform_1rec_p50_s",
    "serving_transform_1rec_p99_s",
    # Load rows keep a quick-identical shape (same clients/batch; only
    # the measured duration differs), so they gate like the others.
    "load_workers1_p50_s",
    "load_workers2_p50_s",
    # Sharded-oracle fit at M = 100k: quick and full runs use the
    # identical shape (the M = 1e6 rows are full-run-only, not gated).
    "m1e5_fit_s",
)

#: Correctness flags that must never flip to false once recorded true
#: (selection agreement across execution modes, warm-pool parity).
GATE_MUST_STAY_TRUE = (
    "halving_agree_max_utility",
    "halving_agree_max_fairness",
    "halving_agree_optimal",
    "jobs_agree_max_utility",
    "jobs_agree_max_fairness",
    "jobs_agree_optimal",
    "fit_warm_pool_parity",
    "telemetry_overhead_ok",
    # Serving-tier scaling flags: thresholds are cpu-count-conditioned
    # inside bench_load (strict on the 2-core CI runner), so the flag
    # itself is machine-portable and must stay true everywhere.
    "workers2_rps_speedup_ok",
    "workers2_p99_ok",
    "reload_under_load_ok",
    # Sharded oracle == single-process oracle (rtol 1e-10) AND bitwise
    # n_jobs-independence at a fixed shard plan.
    "sharded_parity_ok",
    # Chaos soak: zero non-shed errors / wrong answers under the
    # injected fault mix with reloads mid-chaos, and any shed answer
    # well-formed with the success p99 inside the retry envelope
    # (envelope slack is cpu-count-conditioned inside bench_chaos).
    "chaos_error_rate_ok",
    "chaos_shed_p99_ok",
    # Online drift response: the closed loop must land (refit + reload
    # + checksum change + online_version on the served artifact) with
    # zero controller failures and zero client errors.
    "online_refit_ok",
    "drift_reload_ok",
)


def baseline_value(doc: dict, key: str):
    """Most recent baseline entry carrying ``key`` (None if absent)."""
    for entry in reversed(doc.get("entries", [])):
        if key in entry:
            return entry[key]
    return None


def compare_to_baseline(entry: dict, doc: dict, tolerance: float) -> list:
    """Gate ``entry`` against a trajectory; returns violation strings.

    A timing metric fails when it exceeds ``(1 + tolerance)`` times
    its baseline (tolerance absorbs machine differences between the
    committed trajectory and the CI runner — order-of-magnitude
    regressions still trip it); a flag fails when the baseline was
    true and the entry is false.  Metrics missing on either side are
    skipped: the gate compares, it does not enforce coverage.
    """
    if tolerance < 0:
        raise ValidationError("tolerance must be non-negative")
    violations = []
    for key in GATE_LOWER_IS_BETTER:
        base = baseline_value(doc, key)
        current = entry.get(key)
        if base is None or current is None or base <= 0:
            continue
        ratio = current / base
        if ratio > 1.0 + tolerance:
            violations.append(
                f"{key}: {current:.6g}s is {ratio:.2f}x baseline "
                f"{base:.6g}s (allowed {1.0 + tolerance:.2f}x)"
            )
    for key in GATE_MUST_STAY_TRUE:
        base = baseline_value(doc, key)
        current = entry.get(key)
        if base is True and current is False:
            violations.append(f"{key}: flipped to false (baseline true)")
    return violations


def run(label: str, quick: bool, tune_jobs: int, trace_out=None) -> dict:
    repeats = 3 if quick else 10
    entry = {
        "label": label,
        "quick": quick,
        "config": {"M": M, "N": N, "K": K, "p": 2.0},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    entry.update(bench_loss_and_grad(repeats))
    entry.update(bench_landmark(repeats, quick))
    # Fit rows carry the warm-pool acceptance claim; give them the
    # full repeat budget (each is only tens of milliseconds).
    entry.update(bench_fit(repeats))
    entry.update(bench_transform(repeats))
    entry.update(bench_serving(repeats))
    entry.update(bench_load_rows(quick))
    entry.update(bench_sharded_rows(quick))
    entry.update(bench_chaos_rows(quick))
    entry.update(bench_online_rows(quick))
    entry.update(bench_telemetry(repeats, trace_out=trace_out))
    entry.update(bench_tuning(tune_jobs, quick=quick))
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--label", default="run", help="entry label in the trajectory")
    parser.add_argument(
        "--out", default="BENCH_core.json", help="trajectory JSON file to append to"
    )
    parser.add_argument(
        "--tune-jobs",
        type=int,
        default=4,
        help="worker count of the parallel tuning rows (default 4)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="TRACE.json",
        default=None,
        help=(
            "dump the tracing-enabled fit's span timeline to this JSON "
            "file (CI uploads it as a workflow artifact)"
        ),
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help=(
            "only measure tuning wall-clock at n_jobs=1 vs n_jobs=2 "
            "and append the observed multi-core scaling entry"
        ),
    )
    parser.add_argument(
        "--load",
        action="store_true",
        help=(
            "only measure the serving tier under concurrent HTTP load "
            "(workers=1 vs workers=2 + blue/green reload) and append "
            "the observed scaling entry"
        ),
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help=(
            "only measure the sharded landmark-oracle rows (M = 100k "
            "fit + parity flag; with no --quick also the M = 1,000,000 "
            "acceptance fits) and append the entry"
        ),
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "only measure the serving tier under injected worker "
            "faults (crash/hang/slow/corrupt + blue/green reloads "
            "mid-chaos) and append the correctness-under-faults entry"
        ),
    )
    parser.add_argument(
        "--online",
        action="store_true",
        help=(
            "only measure the online drift-response loop (warm-refit "
            "latency, drift-to-reload wall time, served p99 during "
            "the hot swap) and append the entry"
        ),
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE.json",
        default=None,
        help=(
            "perf-regression gate: compare this run's entry against "
            "the trajectory in BASELINE.json and exit non-zero on a "
            "regression beyond --tolerance"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help=(
            "allowed slowdown fraction for --compare (0.5 = 1.5x the "
            "baseline; CI uses a larger value to absorb runner-vs-"
            "baseline machine differences)"
        ),
    )
    args = parser.parse_args()

    # Snapshot the baseline BEFORE running/appending: with --out and
    # --compare naming the same trajectory (the documented local
    # usage), gating after the write would compare the new entry
    # against itself and pass vacuously.  Reading first also fails
    # fast on a missing baseline instead of after minutes of bench.
    baseline_doc = None
    if args.compare is not None:
        baseline_path = Path(args.compare)
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            raise SystemExit(2)
        baseline_doc = json.loads(baseline_path.read_text())

    single_mode = (
        args.scaling or args.load or args.sharded or args.chaos or args.online
    )
    if single_mode:
        entry = {
            "label": args.label,
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        }
        if args.scaling:
            entry.update(bench_tune_scaling(args.quick))
        if args.load:
            entry.update(bench_load_rows(args.quick))
        if args.sharded:
            entry.update(bench_sharded_rows(args.quick))
        if args.chaos:
            entry.update(bench_chaos_rows(args.quick))
        if args.online:
            entry.update(bench_online_rows(args.quick))
    else:
        entry = run(args.label, args.quick, args.tune_jobs, trace_out=args.trace_out)
    path = Path(args.out)
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"benchmark": "core-ops", "entries": []}
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"wrote {path} ({len(doc['entries'])} entries)")
    if args.scaling:
        jobs = entry["scaling_jobs"]
        speedups = ", ".join(
            f"jobs{j} {entry[f'scaling_jobs{j}_s']:.2f} s"
            + (
                f" ({entry[f'scaling_speedup_jobs{j}']:.2f}x)"
                if f"scaling_speedup_jobs{j}" in entry
                else ""
            )
            for j in jobs
        )
        print(
            f"tuning scaling ({entry['scaling_grid_points']}-point grid, "
            f"{entry['tuning_cpu_count']} cpus): {speedups}"
        )
    if "load_workers1_rps" in entry:
        import bench_load  # already on sys.path via bench_load_rows

        bench_load.print_summary(entry)
    if "m1e5_fit_s" in entry:
        sharded = (
            f"sharded oracle: M=1e5 fit {entry['m1e5_fit_s']:.2f} s, "
            f"parity {'OK' if entry['sharded_parity_ok'] else 'BROKEN'}"
        )
        if "m1e6_fit_s" in entry:
            sharded += (
                f"; M=1e6 fit {entry['m1e6_fit_s']:.2f} s, stochastic "
                f"{entry['m1e6_stochastic_fit_s']:.2f} s"
            )
        print(sharded)
    if "chaos_rps" in entry:
        import bench_chaos  # already on sys.path via bench_chaos_rows

        bench_chaos.print_summary(entry)
    if "online_drift_to_reload_s" in entry:
        import bench_online  # already on sys.path via bench_online_rows

        bench_online.print_summary(entry)
    if single_mode:
        _gate_and_exit(args, entry, baseline_doc)
        return
    _print_summary(entry)
    _gate_and_exit(args, entry, baseline_doc)


def _print_summary(entry: dict) -> None:
    """Human-readable digest of one full bench entry."""
    if "loss_and_grad_full_fast_s" not in entry:
        return  # partial entry (e.g. a stubbed run in tests)
    print(
        "loss_and_grad full: fast "
        f"{entry['loss_and_grad_full_fast_s'] * 1e3:.2f} ms, reference "
        f"{entry['loss_and_grad_full_reference_s'] * 1e3:.2f} ms "
        f"({entry['speedup_full']:.1f}x)"
    )
    print(
        "loss_and_grad sampled: fast "
        f"{entry['loss_and_grad_sampled50k_fast_s'] * 1e3:.2f} ms, reference "
        f"{entry['loss_and_grad_sampled50k_reference_s'] * 1e3:.2f} ms "
        f"({entry['speedup_sampled']:.1f}x)"
    )
    print(
        f"landmark @ M={entry['landmark_M']}: L=64 "
        f"{entry['loss_and_grad_landmark64_s'] * 1e3:.2f} ms "
        f"(fair rel err {entry['landmark64_fair_rel_err']:.2e}), L=256 "
        f"{entry['loss_and_grad_landmark256_s'] * 1e3:.2f} ms "
        f"(rel err {entry['landmark256_fair_rel_err']:.2e}); "
        f"p=3 L=128 {entry['loss_and_grad_landmark128_p3_s'] * 1e3:.2f} ms; "
        "reference full-pair skipped (O(M^2) target)"
    )
    print(
        "fit M400 jobs2: cold pool "
        f"{entry['fit_M400_N20_K8_r2_jobs2_s'] * 1e3:.1f} ms, warm session "
        f"pool {entry['fit_M400_N20_K8_r2_jobs2_warm_s'] * 1e3:.1f} ms "
        f"(serial {entry['fit_M400_N20_K8_r2_s'] * 1e3:.1f} ms), parity "
        f"{'OK' if entry['fit_warm_pool_parity'] else 'BROKEN'}"
    )
    print(
        "telemetry overhead: fit "
        f"{entry['telemetry_fit_overhead_ratio']:.3f}x, serving p50 "
        f"{entry['telemetry_serving_overhead_ratio']:.3f}x "
        f"({'OK' if entry['telemetry_overhead_ok'] else 'OVER TOLERANCE'})"
    )
    jobs = entry["tuning_jobs"]
    agree = all(
        entry[f"halving_agree_{c.value}"] and entry[f"jobs_agree_{c.value}"]
        for c in TuningCriterion
    )
    print(
        f"tuning ({entry['tuning_grid_points']}-point grid, "
        f"{entry['tuning_cpu_count']} cpus): serial exhaustive "
        f"{entry['tuning_serial_exhaustive_s']:.2f} s, jobs={jobs} "
        f"{entry[f'tuning_jobs{jobs}_exhaustive_s']:.2f} s "
        f"({entry['tuning_speedup_jobs']:.2f}x), halving "
        f"{entry['tuning_serial_halving_s']:.2f} s "
        f"({entry['tuning_speedup_halving']:.2f}x, "
        f"{entry['tuning_halving_fits']} fits vs "
        f"{entry['tuning_exhaustive_fits']}), jobs+halving "
        f"{entry[f'tuning_jobs{jobs}_halving_s']:.2f} s; best "
        f"{entry['tuning_speedup_parallel']:.2f}x, selection agreement "
        f"{'OK' if agree else 'BROKEN'} under all three criteria"
    )


def _gate_and_exit(args, entry: dict, baseline_doc) -> None:
    """Apply the --compare regression gate; exits non-zero on failure.

    ``baseline_doc`` was loaded before this run's entry was appended,
    so the gate never compares an entry against itself.
    """
    if baseline_doc is None:
        return
    violations = compare_to_baseline(entry, baseline_doc, args.tolerance)
    if not violations:
        print(
            f"perf gate vs {args.compare}: OK "
            f"(tolerance {args.tolerance:.2f})"
        )
        return
    print(
        f"perf gate vs {args.compare}: {len(violations)} regression(s) "
        f"beyond tolerance {args.tolerance:.2f}:",
        file=sys.stderr,
    )
    for violation in violations:
        print(f"  - {violation}", file=sys.stderr)
    raise SystemExit(1)


if __name__ == "__main__":
    main()
