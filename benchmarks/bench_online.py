"""Online learning loop under live traffic (ISSUE 10 acceptance).

Drives the drift-response controller end to end over real sockets: a
small client pool hammers ``/v1/decide`` on a two-worker service with
``online_refit=True`` while the bench injects a covariate shift into
the request stream and clocks the loop closing:

- ``online_refit_mean_s`` — mean warm-refit latency, read back from
  the ``online_refit_seconds`` histogram on ``/v1/metrics`` (the refit
  runs off the request path, so this bounds *staleness*, not service
  latency);
- ``online_drift_to_reload_s`` — wall time from the first shifted
  request to the blue/green reload of the refreshed artifact landing;
- ``online_served_p99_s`` — client-observed p99 *during* the
  drift-and-refit phase: the hot swap must not dent the serving path.

Gate flags:

- ``online_refit_ok`` — at least one warm refit ran, zero controller
  failures, zero client errors across the whole run;
- ``drift_reload_ok`` — the closed loop landed: reload counted, the
  active checksum changed, and the served artifact reports
  ``online_version >= 1``.

Usage::

    PYTHONPATH=src python benchmarks/bench_online.py --quick
    PYTHONPATH=src python benchmarks/bench_online.py \
        --label pr10-online --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.data.compas import generate_compas
from repro.serving import (
    HTTPClient,
    fit_serving_pipeline,
    save_artifact,
    serve_artifact,
)

CLIENTS = 3
WORKERS = 2
REFRESH_WINDOW = 64
SHIFT = 25.0
COOLDOWN_S = 0.5


def _get(host: str, port: int, path: str):
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as r:
        return json.loads(r.read())


def _metrics_value(host: str, port: int, name: str) -> float:
    """One scalar series from the Prometheus text on ``/v1/metrics``."""
    url = f"http://{host}:{port}/v1/metrics"
    with urllib.request.urlopen(url, timeout=10) as r:
        text = r.read().decode("utf-8")
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            return float(line.rsplit(" ", 1)[1])
    return float("nan")


def bench_online(quick: bool = True) -> dict:
    """The online-loop rows: refit latency, drift-to-reload, served p99."""
    steady_s = 1.0 if quick else 3.0
    settle_s = 1.5 if quick else 4.0
    entry: dict = {
        "online_clients": CLIENTS,
        "online_workers": WORKERS,
        "online_refresh_window": REFRESH_WINDOW,
        "online_shift": SHIFT,
        "online_cooldown_s": COOLDOWN_S,
    }

    dataset = generate_compas(300, charge_levels=8, random_state=7)
    # Pool no larger than the window, so steady traffic reads as steady
    # (see the README's refresh-window sizing guidance).
    X = dataset.X[:REFRESH_WINDOW]
    groups = dataset.protected[:REFRESH_WINDOW]

    with tempfile.TemporaryDirectory(prefix="bench_online_") as root:
        artifact = fit_serving_pipeline(
            dataset, n_prototypes=4, max_iter=25, random_state=7
        )
        path = save_artifact(f"{root}/artifact", artifact)
        service = serve_artifact(
            path,
            port=0,
            workers=WORKERS,
            batch_size=32,
            online_refit=True,
            refresh_window=REFRESH_WINDOW,
            drift_policy="shift",
            refit_cooldown_s=COOLDOWN_S,
        ).start()
        try:
            host, port = service.address
            checksum0 = _get(host, port, "/v1/health")["artifact_checksum"]

            errors: list = []
            samples: list = []  # (timestamp, latency_s)
            stop = threading.Event()
            shifted = threading.Event()

            def hammer(thread_id: int) -> None:
                client = HTTPClient(host, port)
                i = thread_id
                while not stop.is_set():
                    lo = (i * 8) % (X.shape[0] - 8)
                    rows = X[lo : lo + 8] + (SHIFT if shifted.is_set() else 0.0)
                    start = time.perf_counter()
                    try:
                        answer = client.decide(
                            rows.tolist(), groups[lo : lo + 8].tolist()
                        )
                        assert len(answer["decisions"]) == 8
                    except Exception as exc:  # noqa: BLE001 - ledger, not flow
                        errors.append(repr(exc))
                        return
                    samples.append((start, time.perf_counter() - start))
                    i += 1
                    time.sleep(0.005)

            threads = [
                threading.Thread(target=hammer, args=(k,))
                for k in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            try:
                # phase 1: steady traffic fills the window and the
                # baseline calibrates (median over several ticks)
                deadline = time.time() + 30
                while time.time() < deadline:
                    status = _get(host, port, "/v1/admin/online")
                    if (
                        status["window_rows"] >= REFRESH_WINDOW
                        and status["baseline_cost"] is not None
                    ):
                        break
                    time.sleep(0.1)
                time.sleep(steady_s)

                # phase 2: inject the shift, clock the loop closing
                t_shift = time.perf_counter()
                shifted.set()
                reload_s = float("inf")
                deadline = time.time() + 60
                while time.time() < deadline:
                    status = _get(host, port, "/v1/admin/online")
                    if status["reloads"] >= 1:
                        reload_s = time.perf_counter() - t_shift
                        break
                    time.sleep(0.05)
                t_reload = time.perf_counter()

                # phase 3: let the swapped model settle under traffic
                time.sleep(settle_s)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60)

            status = _get(host, port, "/v1/admin/online")
            health = _get(host, port, "/v1/health")
            refit_count = _metrics_value(
                host, port, "online_refit_seconds_count"
            )
            refit_sum = _metrics_value(host, port, "online_refit_seconds_sum")
        finally:
            service.stop()

    during = sorted(
        lat for (at, lat) in samples if t_shift <= at <= t_reload + settle_s
    )
    entry["online_requests"] = len(samples)
    entry["online_errors"] = len(errors)
    entry["online_refits"] = status["refits"]
    entry["online_reloads"] = status["reloads"]
    entry["online_failures"] = status["failures"]
    entry["online_drift_to_reload_s"] = reload_s
    entry["online_refit_mean_s"] = (
        refit_sum / refit_count if refit_count else float("inf")
    )
    if during:
        entry["online_served_p50_s"] = during[len(during) // 2]
        entry["online_served_p99_s"] = during[
            min(len(during) - 1, int(len(during) * 0.99))
        ]
    else:
        entry["online_served_p50_s"] = entry["online_served_p99_s"] = float(
            "inf"
        )

    entry["online_refit_ok"] = bool(
        status["refits"] >= 1
        and status["failures"] == 0
        and not errors
        and len(samples) > 0
    )
    entry["drift_reload_ok"] = bool(
        status["reloads"] >= 1
        and np.isfinite(reload_s)
        and health["artifact_checksum"] != checksum0
        and health["metadata"].get("online_version", 0) >= 1
    )
    return entry


def print_summary(entry: dict) -> None:
    print(
        f"online loop ({entry['online_clients']} clients, "
        f"{entry['online_workers']} workers, window "
        f"{entry['online_refresh_window']}): "
        f"{entry['online_requests']} requests, "
        f"{entry['online_errors']} errors; "
        f"refit {entry['online_refit_mean_s'] * 1e3:.0f} ms, "
        f"drift-to-reload {entry['online_drift_to_reload_s']:.2f} s, "
        f"served p99 during swap "
        f"{entry['online_served_p99_s'] * 1e3:.1f} ms; "
        f"{entry['online_refits']} refits, {entry['online_reloads']} "
        f"reloads, {entry['online_failures']} failures"
    )
    for flag in ("online_refit_ok", "drift_reload_ok"):
        print(f"  {flag}: {'OK' if entry[flag] else 'FAILED'}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="short measurement")
    parser.add_argument("--label", default="online", help="trajectory entry label")
    parser.add_argument(
        "--out", default=None,
        help="append the entry to this trajectory JSON (optional)",
    )
    args = parser.parse_args()

    entry = {
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    entry.update(bench_online(quick=args.quick))
    print_summary(entry)
    if args.out:
        path = Path(args.out)
        if path.exists():
            doc = json.loads(path.read_text())
        else:
            doc = {"benchmark": "core-ops", "entries": []}
        doc["entries"].append(entry)
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {path} ({len(doc['entries'])} entries)")


if __name__ == "__main__":
    main()
