"""Sustained-RPS load generator for the serving tier.

Drives a live :class:`~repro.serving.service.DecisionService` over real
sockets with concurrent keep-alive clients (stdlib ``http.client``),
once against the single in-process engine (``workers=1``) and once
against the multi-process dispatcher (``workers=2``), recording
sustained RPS, p50/p99 latency, and the worker-scaling efficiency.
During the ``workers=2`` run a background thread fires two blue/green
``POST /v1/admin/reload`` swaps mid-traffic; the gate requires zero
failed requests across the flip.

The client/batch shape is identical under ``--quick`` and full runs
(only the measured duration changes), so the quick CI rows can be
gated against the committed full-run baseline by
``run_bench.py --compare``.

Scaling thresholds are defined for the 2-core CI runner.  On a
single-core machine two workers cannot beat one (there is nothing to
scale onto), so the ``workers2_*_ok`` flags degrade to no-collapse
checks there; ``load_cpu_count`` records which machine produced each
entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_load.py --quick
    PYTHONPATH=src python benchmarks/bench_load.py \
        --label pr7-serving-workers --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.data.schema import TabularDataset
from repro.serving import save_artifact, serve_artifact
from repro.serving.fit import fit_serving_pipeline

# One request shape for every mode and machine: gate-stable.
CLIENTS = 4
BATCH = 16
FEATURES = 12

# Strict thresholds (>= 2 cores: the CI runner) and degraded ones
# (1 core: no parallelism exists to measure, only overhead bounds).
SPEEDUP_MIN_MULTICORE = 1.6
SPEEDUP_MIN_SINGLECORE = 0.40
P99_RATIO_MAX_MULTICORE = 1.5
P99_RATIO_MAX_SINGLECORE = 4.0


def _fit_dataset(n: int = FEATURES, m: int = 300) -> TabularDataset:
    """The run_bench serving dataset shape, sized for a fast fit."""
    rng = np.random.default_rng(4)
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    return TabularDataset(
        name="bench-load",
        X=X,
        y=(rng.random(m) > 0.5).astype(float),
        protected=X[:, n - 1].copy(),
        protected_indices=[n - 1],
        task="classification",
    )


def _save_artifacts(root: str) -> tuple:
    """Fit once, save twice: a blue and a green (identical) artifact."""
    dataset = _fit_dataset()
    artifact = fit_serving_pipeline(
        dataset, n_prototypes=8, max_iter=30, random_state=0
    )
    blue = save_artifact(os.path.join(root, "blue"), artifact)
    green = save_artifact(os.path.join(root, "green"), artifact)
    return blue, green, dataset


def _bodies(dataset: TabularDataset, count: int = 64) -> list:
    """Pre-encoded request bodies — JSON cost stays out of the clients."""
    rng = np.random.default_rng(9)
    bodies = []
    for _ in range(count):
        rows = rng.integers(0, dataset.n_records, size=BATCH)
        bodies.append(
            json.dumps({"records": dataset.X[rows].tolist()}).encode("utf-8")
        )
    return bodies


def run_load(host, port, bodies, duration, path="/v1/score"):
    """Hammer ``path`` with keep-alive clients for ``duration`` seconds.

    Returns ``(rps, p50_s, p99_s, failures)`` aggregated over all
    clients.  Every connection is closed before returning so the
    server's handler threads can drain (``DecisionService.stop`` joins
    them).
    """
    barrier = threading.Barrier(CLIENTS + 1)
    deadline = [0.0]
    results = [None] * CLIENTS

    def client_main(k):
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        latencies, failures = [], 0
        try:
            barrier.wait(timeout=30)
            i = k
            while time.perf_counter() < deadline[0]:
                body = bodies[i % len(bodies)]
                i += 1
                start = time.perf_counter()
                try:
                    conn.request(
                        "POST", path, body,
                        {"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    response.read()
                    if response.status != 200:
                        failures += 1
                        continue
                except (http.client.HTTPException, OSError):
                    failures += 1
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=10.0)
                    continue
                latencies.append(time.perf_counter() - start)
        finally:
            conn.close()
            results[k] = (latencies, failures)

    threads = [
        threading.Thread(target=client_main, args=(k,)) for k in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    # Arm the clock before releasing the barrier so no client reads a
    # stale deadline.
    deadline[0] = time.perf_counter() + duration
    barrier.wait(timeout=30)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=duration + 60)
    elapsed = max(time.perf_counter() - started, 1e-9)

    latencies = sorted(
        lat for result in results if result for lat in result[0]
    )
    failures = sum(result[1] for result in results if result)
    if not latencies:
        return 0.0, float("inf"), float("inf"), failures
    rps = len(latencies) / elapsed
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    return rps, p50, p99, failures


def _reload_loop(host, port, targets, duration, state):
    """Fire one blue/green swap per target, spread across the run."""
    gap = duration / (len(targets) + 1)
    for target in targets:
        time.sleep(gap)
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            conn.request(
                "POST",
                "/v1/admin/reload",
                json.dumps({"artifact": target}).encode("utf-8"),
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            if response.status != 200 or body.get("status") != "ok":
                state["failures"] += 1
            else:
                state["done"] += 1
        except (http.client.HTTPException, OSError, ValueError):
            state["failures"] += 1
        finally:
            conn.close()


def bench_workers(quick: bool = True) -> dict:
    """The load rows: workers=1 vs workers=2 + reload-under-load."""
    duration = 1.2 if quick else 4.0
    cpus = os.cpu_count() or 1
    entry: dict = {
        "load_clients": CLIENTS,
        "load_batch": BATCH,
        "load_duration_s": duration,
        "load_cpu_count": cpus,
    }
    measured = {}
    with tempfile.TemporaryDirectory(prefix="bench_load_") as root:
        blue, green, dataset = _save_artifacts(root)
        bodies = _bodies(dataset)
        for workers in (1, 2):
            service = serve_artifact(
                blue, port=0, workers=workers, cache_size=0
            )
            service.start()
            try:
                host, port = service.address
                # Warm both tiers off the clock (forked engines included).
                warm = http.client.HTTPConnection(host, port, timeout=10.0)
                for _ in range(3 * workers):
                    warm.request(
                        "POST", "/v1/score", bodies[0],
                        {"Content-Type": "application/json"},
                    )
                    warm.getresponse().read()
                warm.close()

                reload_state = {"done": 0, "failures": 0}
                reloader = None
                if workers == 2:
                    reloader = threading.Thread(
                        target=_reload_loop,
                        args=(host, port, [green, blue], duration, reload_state),
                    )
                    reloader.start()
                rps, p50, p99, failures = run_load(
                    host, port, bodies, duration
                )
                if reloader is not None:
                    reloader.join(timeout=60)
            finally:
                service.stop()
            measured[workers] = (rps, p50, p99, failures)
            entry[f"load_workers{workers}_rps"] = rps
            entry[f"load_workers{workers}_p50_s"] = p50
            entry[f"load_workers{workers}_p99_s"] = p99
            entry[f"load_workers{workers}_failures"] = failures
            if workers == 2:
                entry["load_reloads_done"] = reload_state["done"]
                entry["load_reload_failures"] = reload_state["failures"]

    rps1, _, p99_1, failures1 = measured[1]
    rps2, _, p99_2, failures2 = measured[2]
    speedup = (rps2 / rps1) if rps1 > 0 else 0.0
    entry["load_workers2_rps_speedup"] = speedup
    entry["load_workers2_scaling_efficiency"] = speedup / 2.0
    multicore = cpus >= 2
    speedup_floor = (
        SPEEDUP_MIN_MULTICORE if multicore else SPEEDUP_MIN_SINGLECORE
    )
    p99_ceiling = (
        P99_RATIO_MAX_MULTICORE if multicore else P99_RATIO_MAX_SINGLECORE
    )
    entry["workers2_rps_speedup_ok"] = bool(speedup >= speedup_floor)
    entry["workers2_p99_ok"] = bool(p99_2 <= p99_ceiling * p99_1)
    entry["reload_under_load_ok"] = bool(
        entry["load_reloads_done"] == 2
        and entry["load_reload_failures"] == 0
        and failures1 == 0
        and failures2 == 0
    )
    return entry


def print_summary(entry: dict) -> None:
    print(
        f"load ({entry['load_clients']} keep-alive clients x batch "
        f"{entry['load_batch']}, {entry['load_duration_s']:.1f} s, "
        f"{entry['load_cpu_count']} cpus): workers1 "
        f"{entry['load_workers1_rps']:.0f} rps "
        f"(p99 {entry['load_workers1_p99_s'] * 1e3:.1f} ms), workers2 "
        f"{entry['load_workers2_rps']:.0f} rps "
        f"(p99 {entry['load_workers2_p99_s'] * 1e3:.1f} ms) = "
        f"{entry['load_workers2_rps_speedup']:.2f}x "
        f"({entry['load_workers2_scaling_efficiency']:.0%} efficiency); "
        f"{entry['load_reloads_done']} reloads under load, "
        f"{entry['load_reload_failures'] + entry['load_workers2_failures']} "
        "failed requests"
    )
    for flag in ("workers2_rps_speedup_ok", "workers2_p99_ok", "reload_under_load_ok"):
        print(f"  {flag}: {'OK' if entry[flag] else 'FAILED'}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="short measurement")
    parser.add_argument("--label", default="load", help="trajectory entry label")
    parser.add_argument(
        "--out", default=None,
        help="append the entry to this trajectory JSON (optional)",
    )
    args = parser.parse_args()

    entry = {
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    entry.update(bench_workers(quick=args.quick))
    print_summary(entry)
    if args.out:
        path = Path(args.out)
        if path.exists():
            doc = json.loads(path.read_text())
        else:
            doc = {"benchmark": "core-ops", "entries": []}
        doc["entries"].append(entry)
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {path} ({len(doc['entries'])} entries)")


if __name__ == "__main__":
    main()
