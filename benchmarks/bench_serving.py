"""Serving benchmark: single-record latency and batched throughput.

Unlike the ``bench_table*`` modules (pytest-benchmark wrappers over the
paper pipeline), this is a directly runnable end-to-end benchmark of
the online serving subsystem::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --records 2000 --http

It fits a compas serving pipeline, saves and reloads the artifact (so
the persistence path is in the loop), then reports:

* single-record ``score`` latency percentiles, in-process and — with
  ``--http`` — through the JSON service;
* batched throughput (records/sec) across request batch sizes;
* cache behaviour: throughput at 0%, 50% and 90% record-repeat ratios.
"""

from __future__ import annotations

import argparse
import statistics
import tempfile
import time

import numpy as np

from repro.data.compas import generate_compas
from repro.serving import (
    DecisionService,
    HTTPClient,
    InferenceEngine,
    InProcessClient,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
)
from repro.utils.tables import render_table


def _percentiles(samples_s):
    ms = sorted(s * 1e3 for s in samples_s)
    pick = lambda q: ms[min(len(ms) - 1, int(q * len(ms)))]
    return statistics.fmean(ms), pick(0.50), pick(0.95), pick(0.99)


def bench_latency(client, records, n_calls: int, warmup: int = 50):
    """Mean/p50/p95/p99 single-record latency in milliseconds.

    The warm-up phase matters for the tail: the first calls pay
    allocator growth, lazy imports and socket setup that steady-state
    traffic never sees, and with only one of them "p99" would measure
    cold-start noise rather than the serving hot loop.
    """
    rng = np.random.default_rng(0)
    pool = [records[i] for i in rng.integers(0, len(records), size=n_calls)]
    # Warm-up records are perturbed copies: same compute cost, but
    # distinct bytes, so they cannot pre-populate the engine's
    # per-record representation cache with entries the timed pool
    # would then hit (which would bias the percentiles low).
    for i in range(warmup):
        client.score([[x + 1e-9 for x in pool[i % len(pool)]]])
    samples = []
    for record in pool:
        start = time.perf_counter()
        client.score([record])
        samples.append(time.perf_counter() - start)
    return _percentiles(samples)


def bench_throughput(engine, records, batch_sizes, repeats: int = 5):
    """Records/sec of ``score`` per request batch size (cold cache)."""
    rows = []
    for batch in batch_sizes:
        reqs = [records[np.random.default_rng(b).integers(0, len(records), batch)]
                for b in range(repeats)]
        best = 0.0
        for req in reqs:
            fresh = InferenceEngine(engine.artifact, batch_size=256, cache_size=0)
            start = time.perf_counter()
            fresh.score(req)
            elapsed = time.perf_counter() - start
            best = max(best, batch / elapsed)
        rows.append([batch, f"{best:,.0f}"])
    return rows


def bench_cache(artifact, records, repeat_ratios, n_requests: int = 300):
    """Throughput and hit ratio under repeated-record traffic."""
    rows = []
    rng = np.random.default_rng(1)
    for ratio in repeat_ratios:
        engine = InferenceEngine(artifact, batch_size=256, cache_size=4096)
        hot = records[:8]
        start = time.perf_counter()
        for _ in range(n_requests):
            if rng.random() < ratio:
                engine.score(hot[rng.integers(0, len(hot))][None, :])
            else:
                engine.score(records[rng.integers(0, len(records))][None, :])
        elapsed = time.perf_counter() - start
        stats = engine.stats()
        rows.append(
            [
                f"{ratio:.0%}",
                f"{stats['cache_hit_ratio']:.2f}",
                f"{n_requests / elapsed:,.0f}",
            ]
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=600)
    parser.add_argument("--n-prototypes", type=int, default=8)
    parser.add_argument("--latency-calls", type=int, default=300)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--http", action="store_true", help="also measure latency over HTTP"
    )
    args = parser.parse_args()

    print(f"fitting compas serving pipeline ({args.records} records) ...")
    dataset = generate_compas(args.records, charge_levels=40, random_state=args.seed)
    artifact = fit_serving_pipeline(
        dataset,
        n_prototypes=args.n_prototypes,
        max_iter=50,
        max_pairs=2000,
        random_state=args.seed,
    )
    with tempfile.TemporaryDirectory() as tmp:
        artifact = load_artifact(save_artifact(f"{tmp}/artifact", artifact))
    engine = InferenceEngine(artifact, batch_size=256, cache_size=4096)
    records = dataset.X

    mean, p50, p95, p99 = bench_latency(
        InProcessClient(engine), records.tolist(), args.latency_calls
    )
    latency_rows = [
        ["in-process", f"{mean:.3f}", f"{p50:.3f}", f"{p95:.3f}", f"{p99:.3f}"]
    ]
    if args.http:
        with DecisionService(engine, port=0) as service:
            host, port = service.address
            mean, p50, p95, p99 = bench_latency(
                HTTPClient(host, port), records.tolist(), args.latency_calls
            )
        latency_rows.append(
            ["http", f"{mean:.3f}", f"{p50:.3f}", f"{p95:.3f}", f"{p99:.3f}"]
        )
    print()
    print(
        render_table(
            ["transport", "mean ms", "p50 ms", "p95 ms", "p99 ms"],
            latency_rows,
            title=f"single-record score latency ({args.latency_calls} calls, warmed)",
        )
    )

    print()
    print(
        render_table(
            ["batch size", "records/sec"],
            bench_throughput(engine, records, (1, 8, 64, 256, 1024)),
            title="batched score throughput (cold cache, best of 5)",
        )
    )

    print()
    print(
        render_table(
            ["repeat ratio", "hit ratio", "requests/sec"],
            bench_cache(artifact, records, (0.0, 0.5, 0.9)),
            title="cache behaviour under repeated-record traffic",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
