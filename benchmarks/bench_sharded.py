"""Sharded landmark-oracle rows: training at M = 100k / 1M (ISSUE 8).

Quick mode (CI smoke) times a full M = 100,000 sharded landmark fit —
the ``m1e5_fit_s`` row gates in ``GATE_LOWER_IS_BETTER`` because its
shape is identical under quick and full runs — and verifies the
sharded oracle against the single-process objective at rtol 1e-10
(``sharded_parity_ok``, a ``GATE_MUST_STAY_TRUE`` flag that also
checks bitwise n_jobs-independence at a fixed shard plan).

Full mode adds the headline acceptance row: an M = 1,000,000 landmark
fit (``m1e6_fit_s``) plus a stochastic mini-batch fit at the same M
(``m1e6_stochastic_fit_s``) whose per-call cost is bounded by
``batch_size`` instead of M.

Usage (standalone)::

    PYTHONPATH=src python benchmarks/bench_sharded.py [--full]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core.executor import shutdown_session_pools
from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.core.shards import ShardedLandmarkOracle

N, K, L = 8, 4, 32
FIT_SHARDS = 8
MAX_ITER = 3
PARITY_M = 4000


def _matrix(m: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, N))
    X[:, N - 1] = (rng.random(m) > 0.5).astype(float)
    return X


def _timed_fit(X: np.ndarray, **overrides) -> tuple:
    params = dict(
        n_prototypes=K,
        pair_mode="landmark",
        n_landmarks=L,
        oracle_shards=FIT_SHARDS,
        n_restarts=1,
        max_iter=MAX_ITER,
        random_state=0,
    )
    params.update(overrides)
    start = time.perf_counter()
    model = IFair(**params).fit(X, [N - 1])
    return time.perf_counter() - start, model


def _parity_ok() -> bool:
    """Sharded-vs-single-process parity + fixed-plan n_jobs bitwiseness."""
    X = _matrix(PARITY_M, seed=5)
    objective = IFairObjective(
        X,
        [N - 1],
        n_prototypes=K,
        pair_mode="landmark",
        n_landmarks=L,
        random_state=0,
    )
    theta = np.random.default_rng(6).uniform(0.1, 0.9, size=objective.n_params)
    loss_ref, grad_ref = objective.loss_and_grad(theta)
    serial = ShardedLandmarkOracle(objective, n_shards=FIT_SHARDS, n_jobs=1)
    loss_1, grad_1 = serial.loss_and_grad(theta)
    with ShardedLandmarkOracle(
        objective, n_shards=FIT_SHARDS, n_jobs=2
    ) as oracle:
        loss_2, grad_2 = oracle.loss_and_grad(theta)

    grad_scale = float(np.abs(grad_ref).max())
    parity = (
        abs(loss_1 - loss_ref) <= 1e-10 * abs(loss_ref)
        and bool(
            np.allclose(
                grad_1, grad_ref, rtol=1e-10, atol=1e-10 * grad_scale
            )
        )
    )
    bitwise = loss_1 == loss_2 and bool(np.array_equal(grad_1, grad_2))
    return parity and bitwise


def bench_sharded(quick: bool = True) -> dict:
    entry: dict = {
        "sharded_N": N,
        "sharded_K": K,
        "sharded_L": L,
        "sharded_shards": FIT_SHARDS,
        "sharded_max_iter": MAX_ITER,
        "sharded_parity_ok": _parity_ok(),
    }
    # The gated timing row: identical shape under quick and full runs.
    m1e5_s, model = _timed_fit(_matrix(100_000))
    entry["m1e5_fit_s"] = m1e5_s
    entry["m1e5_loss"] = float(model.loss_)

    if not quick:
        m1e6 = _matrix(1_000_000)
        m1e6_s, model = _timed_fit(m1e6, oracle_jobs=2)
        entry["m1e6_fit_s"] = m1e6_s
        entry["m1e6_loss"] = float(model.loss_)
        sto_s, sto_model = _timed_fit(
            m1e6, batch_mode="stochastic", batch_size=100_000
        )
        entry["m1e6_stochastic_fit_s"] = sto_s
        entry["m1e6_stochastic_loss"] = float(sto_model.loss_)
    shutdown_session_pools()
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="include the M = 1,000,000 acceptance rows",
    )
    args = parser.parse_args()
    print(json.dumps(bench_sharded(quick=not args.full), indent=2))


if __name__ == "__main__":
    main()
