"""Figure 4 — adversarial accuracy of recovering the protected group.

Trains a logistic-regression adversary to predict protected-group
membership from Masked Data, LFR representations (classification
datasets only) and iFair-b representations, on all five datasets.

Expected shape: masking leaves substantial leakage through correlated
proxies; iFair-b pushes adversarial accuracy down toward the
majority-class floor.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_fig4_obfuscation(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["fig4"],
        config,
        "Figure 4 — adversarial accuracy (lower = better obfuscation)",
    )
