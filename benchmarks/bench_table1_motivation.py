"""Table I — the motivating Xing example.

Reconstructs the paper's opening observation: a prefix-group-fair
ranking (FA*IR-style) that is individually unfair — candidates with
near-identical qualifications land on ranks far apart.  The printed
table mirrors Table I's columns (rank, work experience, education
experience, gender) and reports the mean rank gap among the most
similar candidate pairs.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_table1_motivation(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["table1"],
        config,
        "Table I — motivating example (group-fair yet individually unfair)",
    )
