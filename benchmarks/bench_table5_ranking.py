"""Table V — learning-to-rank task (Xing and Airbnb).

Full / Masked / SVD / SVD-masked / FA*IR(p) / iFair-b evaluated per
query; reported values are means of MAP(AP@10), Kendall's tau,
consistency yNN and the protected share of the top 10.

Expected shape: Full/Masked data achieve the best utility (perfect on
Xing, whose score is linear in the features); iFair-b achieves the best
individual fairness at a utility cost; FA*IR lifts the protected share
(especially at high p) but gains nothing on yNN.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_table5_ranking(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["table5"],
        config,
        "Table V — ranking task on Xing and Airbnb",
    )
