"""Figure 3 — utility vs individual-fairness trade-off (classification).

For Compas / Census / Credit, every method's grid candidates are
evaluated on the test split and plotted as (AUC, yNN) points; rows
marked ``*`` are Pareto-optimal across methods.

Expected shape: Full/Masked/SVD sit at high AUC but low yNN; LFR and
the iFair variants dominate the trade-off, with iFair-b reaching the
highest-consistency operating points.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_fig3_tradeoff(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["fig3"],
        config,
        "Figure 3 — AUC vs yNN trade-off with Pareto fronts",
    )
