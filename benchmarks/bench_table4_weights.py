"""Table IV — sensitivity of iFair to Xing ranking-score weights.

Sweeps the (work, education, views) weights of the Xing deserved score
over the paper's grid and reports the ground-truth protected base rate
plus iFair-b's MAP / KT / yNN / protected share for each weighting.

Expected shape: the choice of weights has no significant effect on the
measures of interest (the paper's conclusion for this table).
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_table4_weight_sensitivity(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["table4"],
        config,
        "Table IV — Xing score-weight sensitivity for iFair-b",
    )
