"""Ablation benches for iFair's design choices.

DESIGN.md calls out four knobs whose effect the paper leaves implicit;
each bench sweeps one while holding the rest fixed on the synthetic
credit dataset and prints the resulting quality frontier:

* prototype count K (the low-rank bottleneck),
* the sampled-pairs approximation of the O(M^2) fairness loss,
* the iFair-a vs iFair-b initialisation,
* the Minkowski exponent p of the clustering distance,
* the number of optimisation restarts ("best of 3" in the paper).
"""

import numpy as np
import pytest

from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.data.credit import generate_credit
from repro.data.splits import stratified_split
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import roc_auc
from repro.metrics.individual import consistency
from repro.utils.tables import render_table


@pytest.fixture(scope="module")
def ablation_data():
    dataset = generate_credit(360, random_state=7)
    split = stratified_split(dataset.y, random_state=7)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    return dataset, split, X


def _evaluate(dataset, split, X, model):
    """Fit -> transform -> downstream classifier -> (AUC, yNN, recon)."""
    model.fit(X[split.train], dataset.protected_indices)
    Z_train, Z_test = model.transform(X[split.train]), model.transform(X[split.test])
    clf = LogisticRegression(l2=1.0).fit(Z_train, dataset.y[split.train])
    proba = clf.predict_proba(Z_test)
    pred = (proba >= 0.5).astype(float)
    X_star = X[:, dataset.nonprotected_indices]
    auc = roc_auc(dataset.y[split.test], proba)
    ynn = consistency(X_star[split.test], pred, k=10)
    recon = model.reconstruction_error(X[split.test])
    return auc, ynn, recon


def _model(**kwargs):
    defaults = dict(
        n_prototypes=6,
        lambda_util=1.0,
        mu_fair=1.0,
        init="protected_zero",
        n_restarts=1,
        max_iter=40,
        max_pairs=2000,
        random_state=7,
    )
    defaults.update(kwargs)
    return IFair(**defaults)


def test_ablation_prototype_count(benchmark, ablation_data):
    """K sweep: smaller K compresses harder (better obfuscation/yNN,
    worse reconstruction and utility)."""
    dataset, split, X = ablation_data

    def sweep():
        rows = []
        for k in (2, 4, 8, 16):
            auc, ynn, recon = _evaluate(dataset, split, X, _model(n_prototypes=k))
            rows.append([k, auc, ynn, recon])
        return render_table(
            ["K", "AUC", "yNN", "test recon MSE"], rows,
            title="Ablation — prototype count", precision=3,
        )

    print("\n" + benchmark.pedantic(sweep, rounds=1, iterations=1))


def test_ablation_pair_subsampling(benchmark, ablation_data):
    """max_pairs sweep: the sampled fairness loss tracks the exact one
    at a fraction of the cost."""
    dataset, split, X = ablation_data

    def sweep():
        rows = []
        for max_pairs in (100, 500, 2000, None):
            auc, ynn, recon = _evaluate(
                dataset, split, X, _model(max_pairs=max_pairs)
            )
            rows.append([str(max_pairs), auc, ynn, recon])
        return render_table(
            ["max_pairs", "AUC", "yNN", "test recon MSE"], rows,
            title="Ablation — fairness-loss pair budget", precision=3,
        )

    print("\n" + benchmark.pedantic(sweep, rounds=1, iterations=1))


def test_ablation_initialisation(benchmark, ablation_data):
    """iFair-a (random alpha) vs iFair-b (near-zero protected alpha)."""
    dataset, split, X = ablation_data

    def sweep():
        rows = []
        for init, label in (("random", "iFair-a"), ("protected_zero", "iFair-b")):
            auc, ynn, recon = _evaluate(dataset, split, X, _model(init=init))
            rows.append([label, auc, ynn, recon])
        return render_table(
            ["Init", "AUC", "yNN", "test recon MSE"], rows,
            title="Ablation — attribute-weight initialisation", precision=3,
        )

    print("\n" + benchmark.pedantic(sweep, rounds=1, iterations=1))


def test_ablation_minkowski_exponent(benchmark, ablation_data):
    """p sweep: the paper defaults to p = 2 (Gaussian kernel); p = 1
    gives a robust Manhattan variant."""
    dataset, split, X = ablation_data

    def sweep():
        rows = []
        for p in (1.0, 2.0, 3.0):
            auc, ynn, recon = _evaluate(dataset, split, X, _model(p=p))
            rows.append([p, auc, ynn, recon])
        return render_table(
            ["p", "AUC", "yNN", "test recon MSE"], rows,
            title="Ablation — Minkowski exponent", precision=3,
        )

    print("\n" + benchmark.pedantic(sweep, rounds=1, iterations=1))


def test_ablation_restarts(benchmark, ablation_data):
    """Multi-start: the paper reports best-of-3; measure the loss gain."""
    dataset, split, X = ablation_data

    def sweep():
        rows = []
        for restarts in (1, 3, 5):
            model = _model(n_restarts=restarts)
            model.fit(X[split.train], dataset.protected_indices)
            rows.append([restarts, model.loss_, len(model.restarts_)])
        return render_table(
            ["restarts", "best training loss", "runs"], rows,
            title="Ablation — optimisation restarts", precision=2,
        )

    print("\n" + benchmark.pedantic(sweep, rounds=1, iterations=1))


def test_ablation_gradient_vs_numeric(benchmark):
    """Analytic gradients vs scipy finite differences: the speedup that
    makes the grid search tractable."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 25))
    obj = IFairObjective(X, [24], n_prototypes=8)
    theta = rng.uniform(0.1, 0.9, size=obj.n_params)

    import time

    def compare():
        t0 = time.perf_counter()
        obj.loss_and_grad(theta)
        analytic = time.perf_counter() - t0
        t0 = time.perf_counter()
        from scipy.optimize import approx_fprime

        approx_fprime(theta, obj.loss, 1e-6)
        numeric = time.perf_counter() - t0
        return render_table(
            ["method", "seconds / gradient"],
            [["analytic", analytic], ["finite differences", numeric]],
            title=f"Ablation — gradient cost ({obj.n_params} parameters)",
            precision=4,
        )

    print("\n" + benchmark.pedantic(compare, rounds=1, iterations=1))
