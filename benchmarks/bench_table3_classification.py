"""Table III — classification task, three tuning criteria.

For each of Compas / Census / Credit: the Full-Data baseline plus LFR /
iFair-a / iFair-b tuned by (a) max utility, (b) max individual
fairness, (c) "Optimal" (harmonic mean of AUC and yNN), reporting
Acc / AUC / EqOpp / Parity / yNN on the test split.

Expected shape: iFair variants reach markedly higher yNN than the
Full-Data baseline at a modest accuracy cost, and match or beat LFR's
utility at comparable fairness; group-fairness measures (EqOpp/Parity)
improve as a side effect even though iFair never optimises them.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_table3_classification(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["table3"],
        config,
        "Table III — classification with three hyper-parameter tuning criteria",
    )
