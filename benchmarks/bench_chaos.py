"""Chaos soak for the serving resilience layer (ISSUE 9 acceptance).

Drives a live multi-worker :class:`~repro.serving.service.DecisionService`
over real sockets with the :mod:`bench_load` client pool while the
:mod:`~repro.serving.chaos` plane injects the acceptance fault mix —
worker crashes (p=0.02), hangs (p=0.01), slow replies (p=0.05) and a
pinch of corrupt frames — and a background thread fires two blue/green
reloads mid-traffic.  Every 200 answer is checked against the
fault-free expectation precomputed from an undisturbed in-process
engine, so the headline row is a *correctness-under-faults* rate, not
just throughput:

- ``chaos_error_rate`` — non-shed failures + wrong answers, per
  request.  The gate flag ``chaos_error_rate_ok`` requires exactly
  zero of both (and both reloads landing).
- ``chaos_shed_rate`` — 429/503 answers.  The bench applies no
  admission bound (the client pool is far below any sane capacity),
  so sheds too must be zero — and any that appear must still be
  well-formed (``Retry-After`` + JSON body) for
  ``chaos_shed_p99_ok`` to hold, alongside the success-latency p99
  staying inside the deadline x attempts retry envelope.

The breaker threshold is raised far above the injected death rate:
the crash-loop breaker targets deterministic failures (poisoned
artifact), and a chaos soak would trip a default-tuned one on
recoverable faults (see the serving runbook in README).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick
    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --label pr9-serving-chaos --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.serving import ChaosConfig, serve_artifact
from repro.serving.engine import InferenceEngine
from repro.serving.artifacts import load_artifact
from repro.serving.client import InProcessClient

_BENCH_DIR = str(Path(__file__).resolve().parent)
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)
import bench_load  # noqa: E402  (same client/artifact shapes as the load rows)

# The ISSUE 9 acceptance fault mix, plus corrupt frames for coverage.
CHAOS = ChaosConfig(
    crash=0.02, hang=0.01, slow=0.05, corrupt=0.01,
    slow_ms=10.0, hang_s=60.0, seed=29,
)
DEADLINE_S = 0.4
MAX_RETRIES = 4
WORKERS = 2

# Success-latency ceiling: the retry envelope (deadline x attempts)
# plus scheduling slack; doubled on a single-core box where the client
# pool, the probe and both workers contend for one CPU.
P99_SLACK_MULTICORE_S = 1.0
P99_SLACK_SINGLECORE_S = 3.0


def _expected_answers(artifact_dir: str, bodies: list) -> list:
    """Fault-free /v1/score answers, JSON-round-tripped like the wire."""
    client = InProcessClient(InferenceEngine(load_artifact(artifact_dir), cache_size=0))
    return [
        client.request("POST", "/v1/score", json.loads(body))["scores"]
        for body in bodies
    ]


def run_chaos_load(host, port, bodies, expected, duration):
    """Hammer /v1/score under chaos, verifying every answer.

    Returns ``(latencies, counts)`` where counts tallies ``ok``,
    ``mismatch``, ``shed`` (well-formed 429/503), ``malformed_shed``
    (429/503 missing Retry-After or a JSON body) and ``error``
    (transport failures and any other status).
    """
    clients = bench_load.CLIENTS
    barrier = threading.Barrier(clients + 1)
    deadline = [0.0]
    results = [None] * clients

    def client_main(k):
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        latencies = []
        counts = dict(ok=0, mismatch=0, shed=0, malformed_shed=0, error=0)
        try:
            barrier.wait(timeout=30)
            i = k
            while time.perf_counter() < deadline[0]:
                index = i % len(bodies)
                i += 1
                start = time.perf_counter()
                try:
                    conn.request(
                        "POST", "/v1/score", bodies[index],
                        {"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    payload = response.read()
                except (http.client.HTTPException, OSError):
                    counts["error"] += 1
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=30.0)
                    continue
                elapsed = time.perf_counter() - start
                if response.status == 200:
                    try:
                        answer = json.loads(payload.decode("utf-8"))["scores"]
                    except (ValueError, KeyError):
                        answer = None
                    if answer == expected[index]:
                        counts["ok"] += 1
                        latencies.append(elapsed)
                    else:
                        counts["mismatch"] += 1
                elif response.status in (429, 503):
                    well_formed = response.getheader("Retry-After") is not None
                    try:
                        well_formed &= "error" in json.loads(payload.decode("utf-8"))
                    except ValueError:
                        well_formed = False
                    counts["shed" if well_formed else "malformed_shed"] += 1
                else:
                    counts["error"] += 1
        finally:
            conn.close()
            results[k] = (latencies, counts)

    threads = [
        threading.Thread(target=client_main, args=(k,)) for k in range(clients)
    ]
    for thread in threads:
        thread.start()
    deadline[0] = time.perf_counter() + duration
    barrier.wait(timeout=30)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=duration + 120)
    elapsed = max(time.perf_counter() - started, 1e-9)

    latencies = sorted(
        lat for result in results if result for lat in result[0]
    )
    totals = dict(ok=0, mismatch=0, shed=0, malformed_shed=0, error=0)
    for result in results:
        if result:
            for key, value in result[1].items():
                totals[key] += value
    totals["elapsed_s"] = elapsed
    return latencies, totals


def bench_chaos(quick: bool = True) -> dict:
    """The chaos soak rows: correctness + latency under the fault mix."""
    duration = 1.2 if quick else 4.0
    cpus = os.cpu_count() or 1
    entry: dict = {
        "chaos_clients": bench_load.CLIENTS,
        "chaos_batch": bench_load.BATCH,
        "chaos_duration_s": duration,
        "chaos_cpu_count": cpus,
        "chaos_deadline_s": DEADLINE_S,
        "chaos_max_retries": MAX_RETRIES,
        "chaos_spec": {
            "crash": CHAOS.crash, "hang": CHAOS.hang,
            "slow": CHAOS.slow, "corrupt": CHAOS.corrupt,
        },
    }
    with tempfile.TemporaryDirectory(prefix="bench_chaos_") as root:
        blue, green, dataset = bench_load._save_artifacts(root)
        bodies = bench_load._bodies(dataset)
        expected = _expected_answers(blue, bodies)
        service = serve_artifact(
            blue,
            port=0,
            workers=WORKERS,
            cache_size=0,
            deadline_s=DEADLINE_S,
            max_retries=MAX_RETRIES,
            breaker_threshold=10_000,
            chaos=CHAOS,
        )
        service.start()
        try:
            host, port = service.address
            # Warm every forked worker off the clock.
            warm = http.client.HTTPConnection(host, port, timeout=30.0)
            for _ in range(3 * WORKERS):
                warm.request(
                    "POST", "/v1/score", bodies[0],
                    {"Content-Type": "application/json"},
                )
                warm.getresponse().read()
            warm.close()

            reload_state = {"done": 0, "failures": 0}
            reloader = threading.Thread(
                target=bench_load._reload_loop,
                args=(host, port, [green, blue], duration, reload_state),
            )
            reloader.start()
            latencies, totals = run_chaos_load(
                host, port, bodies, expected, duration
            )
            reloader.join(timeout=120)

            stats_conn = http.client.HTTPConnection(host, port, timeout=30.0)
            stats_conn.request("GET", "/v1/stats")
            stats = json.loads(stats_conn.getresponse().read().decode("utf-8"))
            stats_conn.close()
        finally:
            service.stop()

    total = sum(
        totals[key] for key in ("ok", "mismatch", "shed", "malformed_shed", "error")
    )
    hard_errors = totals["mismatch"] + totals["malformed_shed"] + totals["error"]
    sheds = totals["shed"] + totals["malformed_shed"]
    entry["chaos_requests"] = total
    entry["chaos_rps"] = totals["ok"] / totals["elapsed_s"]
    if latencies:
        entry["chaos_p50_s"] = latencies[len(latencies) // 2]
        entry["chaos_p99_s"] = latencies[
            min(len(latencies) - 1, int(len(latencies) * 0.99))
        ]
    else:
        entry["chaos_p50_s"] = entry["chaos_p99_s"] = float("inf")
    entry["chaos_error_rate"] = (hard_errors / total) if total else 1.0
    entry["chaos_shed_rate"] = (sheds / total) if total else 0.0
    entry["chaos_mismatches"] = totals["mismatch"]
    entry["chaos_deadline_kills"] = stats["resilience"]["deadline_kills"]
    entry["chaos_retries"] = stats["resilience"]["retries"]
    entry["chaos_respawns"] = stats["workers"]["respawns"]
    entry["chaos_reloads_done"] = reload_state["done"]
    entry["chaos_reload_failures"] = reload_state["failures"]

    entry["chaos_error_rate_ok"] = bool(
        total > 0
        and hard_errors == 0
        and reload_state["done"] == 2
        and reload_state["failures"] == 0
    )
    slack = P99_SLACK_MULTICORE_S if cpus >= 2 else P99_SLACK_SINGLECORE_S
    envelope = DEADLINE_S * (1 + MAX_RETRIES) + slack
    entry["chaos_p99_envelope_s"] = envelope
    entry["chaos_shed_p99_ok"] = bool(
        totals["malformed_shed"] == 0 and entry["chaos_p99_s"] <= envelope
    )
    return entry


def print_summary(entry: dict) -> None:
    print(
        f"chaos ({entry['chaos_clients']} clients x batch "
        f"{entry['chaos_batch']}, {entry['chaos_duration_s']:.1f} s, "
        f"faults crash={entry['chaos_spec']['crash']} "
        f"hang={entry['chaos_spec']['hang']} "
        f"slow={entry['chaos_spec']['slow']} "
        f"corrupt={entry['chaos_spec']['corrupt']}): "
        f"{entry['chaos_requests']} requests at "
        f"{entry['chaos_rps']:.0f} rps, p99 "
        f"{entry['chaos_p99_s'] * 1e3:.1f} ms "
        f"(envelope {entry['chaos_p99_envelope_s']:.1f} s), error rate "
        f"{entry['chaos_error_rate']:.4f}, shed rate "
        f"{entry['chaos_shed_rate']:.4f}; "
        f"{entry['chaos_deadline_kills']} deadline kills, "
        f"{entry['chaos_respawns']} respawns, "
        f"{entry['chaos_retries']} reroutes, "
        f"{entry['chaos_reloads_done']} reloads mid-chaos"
    )
    for flag in ("chaos_error_rate_ok", "chaos_shed_p99_ok"):
        print(f"  {flag}: {'OK' if entry[flag] else 'FAILED'}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="short measurement")
    parser.add_argument("--label", default="chaos", help="trajectory entry label")
    parser.add_argument(
        "--out", default=None,
        help="append the entry to this trajectory JSON (optional)",
    )
    args = parser.parse_args()

    entry = {
        "label": args.label,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    entry.update(bench_chaos(quick=args.quick))
    print_summary(entry)
    if args.out:
        path = Path(args.out)
        if path.exists():
            doc = json.loads(path.read_text())
        else:
            doc = {"benchmark": "core-ops", "entries": []}
        doc["entries"].append(entry)
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {path} ({len(doc['entries'])} entries)")


if __name__ == "__main__":
    main()
