"""Table II — dataset statistics.

Regenerates the experimental-settings table from the synthetic
generators: record counts, encoded dimensionality, per-group base
rates, outcome and protected attributes for all five datasets.
"""

from benchmarks.conftest import run_and_print
from repro.pipeline.registry import EXPERIMENTS


def test_table2_datasets(benchmark, config):
    run_and_print(
        benchmark,
        EXPERIMENTS["table2"],
        config,
        "Table II — experimental settings and dataset statistics",
    )
