"""Micro-benchmarks of the core computational kernels.

These time the pieces that dominate the experiment pipeline: the iFair
objective (loss + analytic gradient), a full iFair fit, the transform,
the LFR objective, FA*IR re-ranking, and the O(n log n) Kendall's tau.
Useful for tracking performance regressions independently of the
end-to-end experiments.
"""

import numpy as np
import pytest

from repro.baselines.fair_ranking import FairRanker
from repro.baselines.lfr import LFRObjective
from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.metrics.ranking import kendall_tau

RNG = np.random.default_rng(0)
X_MED = RNG.normal(size=(200, 40))
PROTECTED = [38, 39]


@pytest.fixture(scope="module")
def objective():
    return IFairObjective(
        X_MED, PROTECTED, lambda_util=1.0, mu_fair=1.0, n_prototypes=10
    )


@pytest.fixture(scope="module")
def objective_reference():
    return IFairObjective(
        X_MED, PROTECTED, lambda_util=1.0, mu_fair=1.0, n_prototypes=10,
        fast_kernels=False,
    )


@pytest.fixture(scope="module")
def theta(objective):
    return np.random.default_rng(1).uniform(0.1, 0.9, size=objective.n_params)


def test_ifair_loss(benchmark, objective, theta):
    benchmark(objective.loss, theta)


def test_ifair_loss_and_grad(benchmark, objective, theta):
    benchmark(objective.loss_and_grad, theta)


def test_ifair_loss_and_grad_reference(benchmark, objective_reference, theta):
    """The einsum reference path — the fast-kernel speedup denominator."""
    benchmark(objective_reference.loss_and_grad, theta)


def test_ifair_loss_and_grad_issue_scale(benchmark):
    """The ISSUE-2 acceptance configuration: M=2000, N=40, K=10, p=2."""
    X = np.random.default_rng(3).normal(size=(2000, 40))
    obj = IFairObjective(X, PROTECTED, n_prototypes=10)
    theta = np.random.default_rng(1).uniform(0.1, 0.9, size=obj.n_params)
    obj.loss_and_grad(theta)  # warm the workspace
    benchmark.pedantic(obj.loss_and_grad, args=(theta,), rounds=5, iterations=1)


def test_ifair_fit_small(benchmark):
    X = RNG.normal(size=(80, 12))

    def fit():
        return IFair(
            n_prototypes=5, n_restarts=1, max_iter=25, random_state=0,
            max_pairs=1000,
        ).fit(X, [11])

    benchmark.pedantic(fit, rounds=3, iterations=1)


def test_ifair_transform(benchmark):
    X = RNG.normal(size=(150, 20))
    model = IFair(
        n_prototypes=6, n_restarts=1, max_iter=20, random_state=0, max_pairs=800
    ).fit(X, [19])
    benchmark(model.transform, X)


def test_lfr_loss_and_grad(benchmark):
    X = RNG.normal(size=(150, 20))
    y = (RNG.random(150) > 0.5).astype(float)
    s = (RNG.random(150) > 0.5).astype(float)
    obj = LFRObjective(X, y, s, n_prototypes=8)
    theta = np.random.default_rng(2).uniform(0.1, 0.9, size=obj.n_params)
    benchmark(obj.loss_and_grad, theta)


def test_fair_reranking(benchmark):
    scores = RNG.normal(size=500)
    protected = (RNG.random(500) > 0.6).astype(float)
    ranker = FairRanker(p=0.5)
    benchmark(ranker.rank, scores, protected)


def test_kendall_tau_large(benchmark):
    a = RNG.normal(size=5000)
    b = RNG.normal(size=5000)
    benchmark(kendall_tau, a, b)
