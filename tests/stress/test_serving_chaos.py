"""Chaos stress tests for the deadline-aware serving resilience layer.

The headline claim of ISSUE 9: under injected worker faults — crashes,
hangs, slow replies, corrupt frames — the serving tier never returns a
wrong or dropped answer.  Every request is either served with a body
bitwise identical to a fault-free run, or (when admission control is
engaged) shed with a well-formed 429/503 carrying a retry hint.  The
suite drives the :class:`~repro.serving.chaos.ChaosPlane` through the
dispatcher directly and over a live HTTP service, including blue/green
reloads fired mid-chaos, and finishes every scenario with a
zero-leaked-shm check.

The sustained high-volume variant rides at the bottom behind the
``nightly`` marker (see ``tests/conftest.py``).
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.serving import (
    ChaosConfig,
    DispatchError,
    EngineDispatcher,
    HTTPClient,
    InferenceEngine,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
    serve_artifact,
)
from repro.utils.shm import leaked_segments

# The ISSUE 9 acceptance fault mix: p(crash)=0.02, p(hang)=0.01,
# p(slow)=0.05 per request, plus a pinch of frame corruption to cover
# the fourth fault kind.  Hangs are "forever" relative to the deadline;
# only the watchdog kill ends them.
CHAOS = dict(crash=0.02, hang=0.01, slow=0.05, corrupt=0.01,
             slow_ms=10.0, hang_s=60.0)

# max_retries=4 makes the per-request failure probability ~(p_fault)^5
# once retries may return to a healthy re-picked worker — effectively
# zero at suite scale, which is what "zero non-shed errors" needs.
# The breaker threshold sits far above the injected death rate: the
# breaker exists for deterministic crash loops (poisoned artifact,
# broken engine), and a chaos soak would trip a default-tuned one on
# perfectly recoverable random faults.
RESILIENCE = dict(
    deadline_s=0.4, max_retries=4, cache_size=0, breaker_threshold=100
)


@pytest.fixture(scope="module")
def artifact_dirs(tiny_compas, tmp_path_factory):
    """Blue and green copies of one artifact: reload keeps answers."""
    artifact = fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=20, max_pairs=400, random_state=3
    )
    root = tmp_path_factory.mktemp("chaos")
    blue = save_artifact(str(root / "blue"), artifact)
    green = save_artifact(str(root / "green"), artifact)
    return blue, green


@pytest.fixture(scope="module")
def engine(artifact_dirs):
    """The fault-free reference: one in-process engine, no chaos."""
    return InferenceEngine(load_artifact(artifact_dirs[0]), cache_size=0)


@pytest.fixture(scope="module")
def batches(tiny_compas):
    rng = np.random.default_rng(17)
    rows = [rng.integers(0, tiny_compas.n_records, size=8) for _ in range(16)]
    return [tiny_compas.X[r] for r in rows]


class TestHungWorker:
    def test_hang_is_deadline_killed_and_peer_answers(
        self, artifact_dirs, batches, tmp_path
    ):
        """A hung worker is killed at the deadline; a peer answers.

        The one-shot ``hang_once`` token arms a single hang: whichever
        worker draws it sleeps far past the deadline.  The watchdog
        must SIGKILL it, reroute the request to the live peer, and the
        probe must respawn the slot — all invisible to the caller.
        """
        token = tmp_path / "hang-token"
        dispatcher = EngineDispatcher(
            load_artifact(artifact_dirs[0]),
            n_workers=2,
            deadline_s=0.3,
            probe_interval_s=0.02,
            backoff_base_s=0.02,
            cache_size=0,
            chaos=ChaosConfig(hang_once=str(token), hang_s=60.0),
        )
        try:
            # Token not yet written: the plane is armed but inert.
            baseline = dispatcher.score(batches[0])
            before = dispatcher.stats()["resilience"]["deadline_kills"]

            token.write_text("armed")
            start = time.perf_counter()
            answer = dispatcher.score(batches[0])
            elapsed = time.perf_counter() - start

            assert not token.exists()  # exactly one worker claimed it
            np.testing.assert_array_equal(answer, baseline)
            # One deadline burn + the peer's service time, no more.
            assert elapsed < 0.3 * 2 + 1.0
            resilience = dispatcher.stats()["resilience"]
            assert resilience["deadline_kills"] == before + 1
            assert "serving_deadline_kills_total" in dispatcher.metrics_text()

            # The probe respawns the killed slot in the background.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                workers = dispatcher.stats()["workers"]
                if workers["alive"] == 2:
                    break
                time.sleep(0.05)
            assert workers["alive"] == 2
            assert workers["respawns"] >= 1
            np.testing.assert_array_equal(dispatcher.score(batches[0]), baseline)
        finally:
            dispatcher.stop()
        assert leaked_segments() == []


class TestSustainedChaos:
    def _hammer(self, dispatcher, engine, batches, per_thread, threads=4):
        """Concurrent clients; returns (errors, mismatches, served)."""
        errors, mismatches, served = [], [], [0]
        lock = threading.Lock()
        barrier = threading.Barrier(threads)

        def client_main(k):
            barrier.wait(timeout=30)
            for i in range(per_thread):
                batch = batches[(k + i) % len(batches)]
                try:
                    got = dispatcher.score(batch)
                except DispatchError as exc:
                    with lock:
                        errors.append(exc)
                    continue
                expected = engine.score(batch)
                with lock:
                    served[0] += 1
                    if not np.array_equal(got, expected):
                        mismatches.append((k, i))

        workers = [
            threading.Thread(target=client_main, args=(k,))
            for k in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=120)
        return errors, mismatches, served[0]

    def test_zero_errors_bitwise_answers_and_reloads_mid_chaos(
        self, artifact_dirs, engine, batches
    ):
        """The quick acceptance run: ~120 requests under the fault mix.

        No admission bound is set, so *nothing* may be shed: every
        request must come back bitwise equal to the fault-free engine,
        through crashes, hangs, slow replies, corrupt frames, and two
        blue/green reloads fired mid-traffic.
        """
        blue, green = artifact_dirs
        dispatcher = EngineDispatcher(
            load_artifact(blue),
            n_workers=2,
            probe_interval_s=0.02,
            backoff_base_s=0.02,
            chaos=ChaosConfig(seed=7, **CHAOS),
            **RESILIENCE,
        )
        try:
            reload_errors = []

            def reloader():
                # Two blue/green swaps spread across the run; both
                # artifacts are identical so answers never change.
                for target in (green, blue):
                    time.sleep(0.4)
                    try:
                        answer = dispatcher.reload(target)
                        if answer["status"] != "ok":
                            reload_errors.append(answer)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        reload_errors.append(exc)

            flipper = threading.Thread(target=reloader)
            flipper.start()
            errors, mismatches, served = self._hammer(
                dispatcher, engine, batches, per_thread=30
            )
            flipper.join(timeout=60)

            assert errors == []  # zero non-shed errors
            assert mismatches == []  # bitwise identical to fault-free
            assert served == 4 * 30
            assert reload_errors == []

            # decide bodies match too, modulo each worker's private
            # fairness-drift window.
            groups = (batches[0][:, -1] > 0.5).astype(float)
            got = dispatcher.decide(batches[0], groups)
            expected = json.loads(
                json.dumps(engine.decide(batches[0], groups))
            )
            got.pop("fairness_drift")
            expected.pop("fairness_drift")
            assert got == expected

            # The chaos plane really fired: the fault mix at this
            # volume makes at least one retry overwhelmingly likely.
            resilience = dispatcher.stats()["resilience"]
            assert resilience["retries"] >= 1
        finally:
            dispatcher.stop()
        assert leaked_segments() == []

    def test_shed_requests_are_the_only_failures_and_well_formed(
        self, artifact_dirs, engine, batches
    ):
        """With a tight admission bound, failures are 429/503 + hint."""
        dispatcher = EngineDispatcher(
            load_artifact(artifact_dirs[0]),
            n_workers=2,
            max_inflight=1,
            shed_queue_s=0.01,
            chaos=ChaosConfig(slow=1.0, slow_ms=50.0, seed=3),
            **RESILIENCE,
        )
        try:
            errors, mismatches, served = self._hammer(
                dispatcher, engine, batches, per_thread=6
            )
            assert mismatches == []  # whatever was served is exact
            assert served >= 1
            assert errors  # the bound is far below the offered load
            for exc in errors:
                assert exc.status in (429, 503)
                assert exc.retry_after_s is not None
                assert exc.retry_after_s > 0
            assert dispatcher.stats()["resilience"]["shed"] >= len(errors)
        finally:
            dispatcher.stop()
        assert leaked_segments() == []


class TestHTTPUnderChaos:
    def test_client_retry_budget_rides_through_faults(
        self, artifact_dirs, engine, batches
    ):
        """End to end over sockets: HTTPClient + chaos dispatcher.

        The service sheds nothing (no admission bound), so with the
        dispatcher's own reroute retries underneath, the client's
        budget exists only as a second belt — every call must succeed
        and match the fault-free engine.
        """
        service = serve_artifact(
            artifact_dirs[0],
            port=0,
            workers=2,
            chaos=ChaosConfig(seed=11, **CHAOS),
            **RESILIENCE,
        )
        service.start()
        try:
            host, port = service.address
            client = HTTPClient(host, port, retries=3, backoff_s=0.02)
            health = client.health()
            assert health["status"] in ("ok", "degraded")
            assert "resilience" in health
            for i in range(30):
                batch = batches[i % len(batches)]
                got = client.score(batch.tolist())
                expected = json.loads(
                    json.dumps(engine.score(batch).tolist())
                )
                assert got == expected
            stats = client.stats()
            assert stats["resilience"]["deadline_s"] == 0.4
        finally:
            service.stop()
        assert leaked_segments() == []


@pytest.mark.nightly
class TestSustainedChaosNightly(TestSustainedChaos):
    def test_high_volume_chaos_with_reload_storm(
        self, artifact_dirs, engine, batches
    ):
        """600+ requests, doubled fault rates, four mid-run reloads."""
        blue, green = artifact_dirs
        chaos = dict(CHAOS, crash=0.04, hang=0.02, slow=0.10, corrupt=0.02)
        dispatcher = EngineDispatcher(
            load_artifact(blue),
            n_workers=2,
            probe_interval_s=0.02,
            backoff_base_s=0.02,
            chaos=ChaosConfig(seed=23, **chaos),
            **RESILIENCE,
        )
        try:
            stop_flipping = threading.Event()
            reload_errors = []

            def reloader():
                targets = (green, blue, green, blue)
                for target in targets:
                    if stop_flipping.wait(timeout=1.0):
                        return
                    try:
                        answer = dispatcher.reload(target)
                        if answer["status"] != "ok":
                            reload_errors.append(answer)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        reload_errors.append(exc)

            flipper = threading.Thread(target=reloader)
            flipper.start()
            try:
                errors, mismatches, served = self._hammer(
                    dispatcher, engine, batches, per_thread=150
                )
            finally:
                stop_flipping.set()
                flipper.join(timeout=120)

            assert errors == []
            assert mismatches == []
            assert served == 4 * 150
            assert reload_errors == []
            resilience = dispatcher.stats()["resilience"]
            assert resilience["retries"] >= 1
        finally:
            dispatcher.stop()
        assert leaked_segments() == []
