"""Fault-injection and warm-pool stress tests for the sharded oracle.

The headline claim of ISSUE 8's harness: killing a shard worker
mid-reduction is *invisible* — the executor respawns the worker,
retries the shard, and the refitted theta is bitwise identical to an
undisturbed fit, with no shared-memory segments leaked.  The warm-pool
tests cover the companion staleness hazard: a session pool serving two
consecutive oracles with different shard plans over the same broadcast
must never hand one plan the other's memoised ``D*`` rows.

The M = 1,000,000 acceptance fit rides at the bottom behind the
``nightly`` marker (see ``tests/conftest.py``).
"""

import numpy as np
import pytest

from repro.core.executor import shutdown_session_pools
from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.core.shards import FAULT_ENV, ShardedLandmarkOracle
from repro.telemetry.metrics import get_registry
from repro.utils.shm import leaked_segments


def _binary_last_column(m, n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    return X


def _sharded_fit(X, oracle_jobs):
    return IFair(
        n_prototypes=3,
        pair_mode="landmark",
        n_landmarks=12,
        oracle_shards=4,
        oracle_jobs=oracle_jobs,
        n_restarts=1,
        max_iter=6,
        random_state=0,
    ).fit(X, [X.shape[1] - 1])


class TestFaultInjection:
    def test_worker_killed_mid_reduction_is_invisible(
        self, tmp_path, monkeypatch
    ):
        """Kill the worker serving shard 1; assert a bitwise-equal fit."""
        X = _binary_last_column(120, 6, seed=4)
        clean = _sharded_fit(X, oracle_jobs=None)

        token = tmp_path / "fault-token"
        token.write_text("armed")
        monkeypatch.setenv(FAULT_ENV, f"1:{token}")
        registry = get_registry()
        respawns = registry.counter("executor_worker_respawns_total")
        retries = registry.counter("executor_task_retries_total")
        respawns_before = respawns.value
        retries_before = retries.value

        faulted = _sharded_fit(X, oracle_jobs=2)

        # The fault consumed its token (one worker died once)...
        assert not token.exists()
        assert respawns.value > respawns_before
        assert retries.value > retries_before
        # ...and the retried fit is indistinguishable from a clean one.
        np.testing.assert_array_equal(clean.theta_, faulted.theta_)
        assert clean.loss_ == faulted.loss_

        shutdown_session_pools()
        assert leaked_segments() == []

    def test_fault_hook_is_inert_in_the_parent(self, tmp_path, monkeypatch):
        """In-process evaluation must ignore the env hook entirely."""
        token = tmp_path / "parent-token"
        token.write_text("armed")
        monkeypatch.setenv(FAULT_ENV, f"0:{token}")
        X = _binary_last_column(40, 5, seed=9)
        model = _sharded_fit(X, oracle_jobs=None)
        assert np.isfinite(model.loss_)
        assert token.exists()  # never consumed: no worker ever saw it


class TestWarmPoolMemo:
    def test_consecutive_plans_on_one_session_pool_stay_exact(self):
        """Different shard plans over one warm broadcast: no stale D*.

        Both oracles reuse the session workers (and the arena-cached
        broadcast, hence the memoised shard support); the second plan's
        row ranges overlap the first's without being equal — exactly
        the aliasing the range-keyed ``D*`` cache exists to prevent.
        """
        X = _binary_last_column(200, 6, seed=12)
        objective = IFairObjective(
            X,
            [5],
            n_prototypes=3,
            pair_mode="landmark",
            n_landmarks=12,
            random_state=0,
        )
        theta = np.random.default_rng(1).uniform(
            0.1, 0.9, size=objective.n_params
        )
        loss_ref, grad_ref = objective.loss_and_grad(theta)
        try:
            results = []
            for n_shards in (4, 3, 5):
                with ShardedLandmarkOracle(
                    objective, n_shards=n_shards, n_jobs=2, pool="session"
                ) as oracle:
                    results.append(oracle.loss_and_grad(theta))
        finally:
            shutdown_session_pools()
        for loss, grad in results:
            assert loss == pytest.approx(loss_ref, rel=1e-10)
            np.testing.assert_allclose(
                grad, grad_ref, rtol=1e-10,
                atol=1e-10 * np.abs(grad_ref).max(),
            )
        assert leaked_segments() == []

    def test_consecutive_fits_on_one_session_pool_match_cold_fits(self):
        """Back-to-back sharded fits on warm workers stay bitwise."""
        X = _binary_last_column(120, 6, seed=20)

        def fit(pool):
            return IFair(
                n_prototypes=3,
                pair_mode="landmark",
                n_landmarks=12,
                oracle_shards=4,
                oracle_jobs=2,
                pool=pool,
                n_restarts=1,
                max_iter=5,
                random_state=0,
            ).fit(X, [5])

        try:
            warm_first = fit("session")
            warm_second = fit("session")  # memo-hit path
        finally:
            shutdown_session_pools()
        cold = fit("per-call")
        np.testing.assert_array_equal(cold.theta_, warm_first.theta_)
        np.testing.assert_array_equal(cold.theta_, warm_second.theta_)
        assert leaked_segments() == []


@pytest.mark.nightly
class TestMillionRowAcceptance:
    def test_m1e6_sharded_fit_completes(self):
        """The ISSUE 8 acceptance shape: M = 1,000,000 rows."""
        m, n = 1_000_000, 8
        rng = np.random.default_rng(0)
        X = rng.normal(size=(m, n))
        X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
        model = IFair(
            n_prototypes=4,
            pair_mode="landmark",
            n_landmarks=32,
            oracle_shards=8,
            oracle_jobs=2,
            n_restarts=1,
            max_iter=3,
            random_state=0,
        ).fit(X, [n - 1])
        assert np.isfinite(model.loss_)
        shutdown_session_pools()
        assert leaked_segments() == []
