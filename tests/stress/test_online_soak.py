"""Streaming-drift soak: the online refit loop under chaos faults.

The drift-response controller's chaos-safety claim: worker faults
injected while the loop is refitting and hot-swapping must never
degrade the serving path (shed/unavailable replies excepted) and must
never wedge the controller — failed refits/reloads are counted and
retried on later ticks.  The sustained variant rides behind the
``nightly`` marker like the other soaks (HYPOTHESIS_PROFILE=nightly).
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.serving import (
    ChaosConfig,
    HTTPClient,
    ServiceError,
    fit_serving_pipeline,
    save_artifact,
    serve_artifact,
)
from repro.utils.shm import leaked_segments

REFRESH_WINDOW = 64
SHIFT = 25.0
# Recoverable fault storm, same shape as the ISSUE 9 acceptance mix.
CHAOS = dict(crash=0.02, slow=0.05, corrupt=0.01, slow_ms=5.0)


@pytest.fixture(scope="module")
def artifact_dir(tiny_compas, tmp_path_factory):
    artifact = fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=20, max_pairs=400, random_state=3
    )
    return save_artifact(
        str(tmp_path_factory.mktemp("online-soak") / "compas"), artifact
    )


def _get(host, port, path):
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as r:
        return json.loads(r.read())


@pytest.mark.nightly
class TestOnlineSoak:
    def test_streaming_drift_soak_under_chaos(self, tiny_compas, artifact_dir):
        service = serve_artifact(
            artifact_dir,
            port=0,
            workers=2,
            batch_size=32,
            cache_size=0,
            max_retries=4,
            breaker_threshold=100,
            chaos=ChaosConfig(seed=29, **CHAOS),
            online_refit=True,
            refresh_window=REFRESH_WINDOW,
            drift_policy="either",
            refit_cooldown_s=1.0,
        ).start()
        try:
            host, port = service.address
            X, groups = tiny_compas.X, tiny_compas.protected
            hard_errors, served, shed = [], [0], [0]
            stop = threading.Event()
            phase_shift = [0.0]

            def hammer(thread_id):
                client = HTTPClient(host, port)
                i = thread_id
                while not stop.is_set():
                    lo = (i * 8) % (X.shape[0] - 8)
                    rows = X[lo : lo + 8] + phase_shift[0]
                    try:
                        answer = client.decide(
                            rows.tolist(), groups[lo : lo + 8].tolist()
                        )
                        assert len(answer["decisions"]) == 8
                        served[0] += 1
                    except ServiceError:
                        shed[0] += 1  # well-formed 429/503 under faults
                    except Exception as exc:  # pragma: no cover
                        hard_errors.append(repr(exc))
                        return
                    i += 1
                    time.sleep(0.002)

            threads = [
                threading.Thread(target=hammer, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            try:
                # several drift/recover cycles under continuous chaos
                for cycle in range(3):
                    phase_shift[0] = 0.0
                    time.sleep(2.0)
                    phase_shift[0] = SHIFT * (cycle + 1)
                    deadline = time.time() + 30
                    while time.time() < deadline:
                        status = _get(host, port, "/v1/admin/online")
                        if status["reloads"] >= cycle + 1:
                            break
                        time.sleep(0.2)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)

            status = _get(host, port, "/v1/admin/online")
            assert not hard_errors, hard_errors[:5]
            assert served[0] > 100
            assert status["refits"] >= 2
            assert status["reloads"] >= 2
            # the loop survived every injected fault: still running,
            # and any failed attempt was counted rather than fatal
            assert status["running"]
            health = _get(host, port, "/v1/health")
            assert health["status"] in ("ok", "degraded")
        finally:
            service.stop()
        assert leaked_segments() == []
