"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_cell, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(0.123456, precision=3) == "0.123"

    def test_int_unchanged(self):
        assert format_cell(42) == "42"

    def test_string_unchanged(self):
        assert format_cell("abc") == "abc"

    def test_bool_not_treated_as_float(self):
        assert format_cell(True) == "True"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        # All data lines have the same width.
        assert len({len(line) for line in lines}) == 1

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [[1]])

    def test_contains_all_cells(self):
        out = render_table(["col"], [["hello"], ["world"]])
        assert "hello" in out and "world" in out

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
