"""Tests for repro.metrics.classification."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.classification import accuracy, confusion_counts, roc_auc


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 1], [0, 1, 1]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 0, 1]) == 0.5

    def test_all_wrong(self):
        assert accuracy([0, 1], [1, 0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([0, 1], [0, 1, 1])


class TestConfusionCounts:
    def test_known_values(self):
        counts = confusion_counts([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert counts == {"tp": 2, "tn": 1, "fp": 1, "fn": 1}

    def test_sums_to_n(self):
        counts = confusion_counts([1, 0, 1, 0], [0, 0, 1, 1])
        assert sum(counts.values()) == 4


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_scores(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_near_half(self, rng):
        y = (rng.random(2000) > 0.5).astype(float)
        scores = rng.random(2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_give_half_credit(self):
        # All scores equal: AUC must be exactly 0.5 with tie handling.
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_known_small_case(self):
        # pos scores {3, 1}, neg scores {2, 0}: pairs (3>2, 3>0, 1<2, 1>0) -> 3/4
        assert roc_auc([1, 0, 1, 0], [3.0, 2.0, 1.0, 0.0]) == pytest.approx(0.75)

    def test_single_class_raises(self):
        with pytest.raises(ValidationError, match="positive and negative"):
            roc_auc([1, 1, 1], [0.1, 0.2, 0.3])

    def test_invariant_to_monotone_transform(self, rng):
        y = (rng.random(100) > 0.4).astype(float)
        scores = rng.normal(size=100)
        assert roc_auc(y, scores) == pytest.approx(roc_auc(y, np.exp(scores)))
