"""Tests for repro.data.generator (LatentFactorSampler)."""

import numpy as np
import pytest

from repro.data.generator import LatentFactorSampler
from repro.exceptions import ValidationError


@pytest.fixture
def sampler():
    return LatentFactorSampler(0)


class TestLatent:
    def test_shape(self, sampler):
        assert sampler.latent(50, 3).shape == (50, 3)

    def test_standard_moments(self):
        z = LatentFactorSampler(0).latent(20000, 1)
        assert z.mean() == pytest.approx(0.0, abs=0.05)
        assert z.std() == pytest.approx(1.0, abs=0.05)

    def test_invalid_sizes(self, sampler):
        with pytest.raises(ValidationError):
            sampler.latent(0, 1)


class TestProtectedGroups:
    def test_prevalence_hit(self, sampler):
        z = sampler.latent(5000, 1)
        s = sampler.protected_groups(z, prevalence=0.3)
        assert s.mean() == pytest.approx(0.3, abs=0.02)

    def test_correlation_creates_group_difference(self):
        sampler = LatentFactorSampler(0)
        z = sampler.latent(5000, 1)
        s = sampler.protected_groups(z, prevalence=0.5, correlation=0.8)
        assert z[s == 1, 0].mean() > z[s == 0, 0].mean() + 0.5

    def test_zero_correlation_independent(self):
        sampler = LatentFactorSampler(0)
        z = sampler.latent(5000, 1)
        s = sampler.protected_groups(z, prevalence=0.5, correlation=0.0)
        assert abs(z[s == 1, 0].mean() - z[s == 0, 0].mean()) < 0.1

    def test_invalid_prevalence(self, sampler):
        z = sampler.latent(10, 1)
        with pytest.raises(ValidationError):
            sampler.protected_groups(z, prevalence=1.0)

    def test_invalid_correlation(self, sampler):
        z = sampler.latent(10, 1)
        with pytest.raises(ValidationError):
            sampler.protected_groups(z, 0.5, correlation=2.0)


class TestNumericAttribute:
    def test_loading_drives_correlation(self):
        sampler = LatentFactorSampler(0)
        z = sampler.latent(3000, 1)
        s = np.zeros(3000)
        col = sampler.numeric_attribute(z, s, loading=5.0, noise=1.0)
        assert np.corrcoef(col, z[:, 0])[0, 1] > 0.9

    def test_group_shift(self):
        sampler = LatentFactorSampler(0)
        z = np.zeros((2000, 1))
        s = np.concatenate([np.ones(1000), np.zeros(1000)])
        col = sampler.numeric_attribute(z, s, loading=0.0, group_shift=3.0, noise=0.5)
        assert col[:1000].mean() - col[1000:].mean() == pytest.approx(3.0, abs=0.2)

    def test_clip_min(self, sampler):
        z = sampler.latent(100, 1)
        col = sampler.numeric_attribute(z, np.zeros(100), clip_min=0.0)
        assert np.all(col >= 0.0)


class TestCategoricalAttribute:
    def test_codes_in_range(self, sampler):
        s = (np.arange(200) % 2).astype(float)
        codes = sampler.categorical_attribute(s, 5, group_skew=0.5)
        assert codes.min() >= 0 and codes.max() < 5

    def test_group_skew_changes_distributions(self):
        sampler = LatentFactorSampler(0)
        s = np.concatenate([np.ones(3000), np.zeros(3000)])
        codes = sampler.categorical_attribute(s, 4, group_skew=1.0)
        hist1 = np.bincount(codes[:3000], minlength=4) / 3000
        hist0 = np.bincount(codes[3000:], minlength=4) / 3000
        assert np.abs(hist1 - hist0).sum() > 0.2

    def test_zero_skew_similar_distributions(self):
        sampler = LatentFactorSampler(0)
        s = np.concatenate([np.ones(3000), np.zeros(3000)])
        codes = sampler.categorical_attribute(s, 4, group_skew=0.0)
        hist1 = np.bincount(codes[:3000], minlength=4) / 3000
        hist0 = np.bincount(codes[3000:], minlength=4) / 3000
        assert np.abs(hist1 - hist0).sum() < 0.1

    def test_invalid_args(self, sampler):
        s = np.zeros(10)
        with pytest.raises(ValidationError):
            sampler.categorical_attribute(s, 1)
        with pytest.raises(ValidationError):
            sampler.categorical_attribute(s, 3, group_skew=2.0)


class TestOneHot:
    def test_encoding(self, sampler):
        block = sampler.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            block, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range_rejected(self, sampler):
        with pytest.raises(ValidationError):
            sampler.one_hot(np.array([3]), 3)


class TestOutcome:
    def test_base_rates_hit_without_noise(self):
        sampler = LatentFactorSampler(0)
        q = sampler.rng.normal(size=4000)
        s = (sampler.rng.random(4000) < 0.5).astype(float)
        y = sampler.outcome_by_group_rate(q, s, 0.3, 0.6, label_noise=0.0)
        assert y[s == 1].mean() == pytest.approx(0.3, abs=0.03)
        assert y[s == 0].mean() == pytest.approx(0.6, abs=0.03)

    def test_outcome_correlates_with_qualification(self):
        sampler = LatentFactorSampler(0)
        q = sampler.rng.normal(size=2000)
        s = np.zeros(2000)
        y = sampler.outcome_by_group_rate(q, s, 0.5, 0.5, label_noise=0.0)
        assert q[y == 1].mean() > q[y == 0].mean() + 0.5

    def test_invalid_rates(self, sampler):
        q = np.zeros(10)
        s = np.zeros(10)
        with pytest.raises(ValidationError):
            sampler.outcome_by_group_rate(q, s, 0.0, 0.5)
        with pytest.raises(ValidationError):
            sampler.outcome_by_group_rate(q, s, 0.5, 0.5, label_noise=0.6)
