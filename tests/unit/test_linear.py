"""Tests for repro.learners.linear."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learners.linear import LinearRegression, RidgeRegression


class TestLinearRegression:
    def test_recovers_exact_linear_map(self, rng):
        X = rng.normal(size=(50, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w + 3.0
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-8)

    def test_predictions_match_targets_noiseless(self, rng):
        X = rng.normal(size=(30, 2))
        y = X @ np.array([1.0, 2.0]) - 1.0
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-8)

    def test_handles_rank_deficient_via_lstsq(self, rng):
        X = rng.normal(size=(20, 2))
        X = np.hstack([X, X[:, :1]])  # duplicated column
        y = X[:, 0] + 1.0
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict([[1.0]])

    def test_feature_mismatch_raises(self, rng):
        model = LinearRegression().fit(rng.normal(size=(10, 2)), rng.normal(size=10))
        with pytest.raises(ValidationError):
            model.predict(np.zeros((2, 3)))


class TestRidgeRegression:
    def test_matches_ols_when_l2_tiny(self, rng):
        X = rng.normal(size=(60, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.3
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(l2=1e-10).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_shrinkage_with_large_l2(self, rng):
        X = rng.normal(size=(40, 3))
        y = X @ np.array([1.0, 1.0, 1.0])
        small = RidgeRegression(l2=0.01).fit(X, y)
        large = RidgeRegression(l2=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalised(self, rng):
        # Shifted targets: intercept must absorb the shift even with huge l2.
        X = rng.normal(size=(80, 2))
        y = X @ np.array([0.5, 0.5]) + 100.0
        model = RidgeRegression(l2=1e6).fit(X, y)
        assert model.predict(X).mean() == pytest.approx(y.mean(), abs=1.0)

    def test_negative_l2_rejected(self):
        with pytest.raises(ValidationError):
            RidgeRegression(l2=-0.5)

    def test_solves_collinear_design(self, rng):
        X = rng.normal(size=(20, 2))
        X = np.hstack([X, X])  # perfectly collinear
        y = rng.normal(size=20)
        model = RidgeRegression(l2=1.0).fit(X, y)  # must not raise
        assert np.all(np.isfinite(model.predict(X)))
