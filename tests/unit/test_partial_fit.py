"""``IFair.partial_fit``: warm-started sliding-window online refits.

The contract under test: a ``partial_fit`` refit is *exactly* a
warm-started batch fit over the buffered window — bitwise, not merely
close — so every offline guarantee (determinism under seed, restart
selection, landmark behaviour) transfers to the online path unchanged.
"""

import json
import os

import numpy as np
import pytest

from repro.core import IFair
from repro.exceptions import ValidationError

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "golden", "cases.json"
)


def _golden_matrix():
    """A frozen input matrix from the committed golden corpus."""
    with open(GOLDEN_PATH) as fh:
        doc = json.load(fh)
    assert doc["format"] == "repro-golden-cases"
    case = doc["cases"][0]
    X = np.asarray(case["X"], dtype=np.float64)
    protected = list(case["params"]["protected"])
    return X, protected


PARAMS = dict(n_prototypes=3, max_iter=20, max_pairs=200, random_state=11)


def test_validation():
    X, protected = _golden_matrix()
    model = IFair(**PARAMS)
    with pytest.raises(ValidationError):
        model.partial_fit(X, protected, window_size=1)
    with pytest.raises(ValidationError):
        model.partial_fit(np.zeros((0, 3)), protected)
    model.partial_fit(X, protected)
    with pytest.raises(ValidationError):  # width change rejected
        model.partial_fit(np.zeros((2, X.shape[1] + 1)), protected)


def test_single_row_defers_refit():
    X, protected = _golden_matrix()
    model = IFair(**PARAMS)
    model.partial_fit(X[:1], protected)
    assert model.prototypes_ is None  # nothing to fit on yet
    assert model.n_buffered == 1
    assert model.n_partial_fits_ == 0
    model.partial_fit(X[1:6], protected)
    assert model.prototypes_ is not None
    assert model.n_buffered == 6
    assert model.n_partial_fits_ == 1


def test_cold_partial_fit_matches_batch_fit_bitwise():
    X, protected = _golden_matrix()
    batch = IFair(**PARAMS).fit(X, protected)
    online = IFair(**PARAMS).partial_fit(X, protected)
    assert np.array_equal(online.theta_, batch.theta_)
    assert online.loss_ == batch.loss_


def test_warm_partial_fit_matches_warm_batch_fit_bitwise():
    X, protected = _golden_matrix()
    fitted = IFair(**PARAMS).fit(X[:10], protected)
    theta = fitted.theta_.copy()

    online = IFair(**PARAMS).fit(X[:10], protected)
    online.partial_fit(X, protected)

    # the window holds exactly the rows fed through partial_fit, and
    # the refit warm-starts from the already-fitted theta
    reference = IFair(**PARAMS, warm_start_theta=theta)
    reference.fit(X, protected)
    assert np.array_equal(online.theta_, reference.theta_)
    assert online.loss_ == reference.loss_


def test_window_bound_evicts_oldest_rows():
    X, protected = _golden_matrix()
    window = 8
    model = IFair(**PARAMS)
    for start in range(0, X.shape[0], 4):
        model.partial_fit(X[start : start + 4], protected, window_size=window)
    assert model.n_buffered == window

    # the final refit is a warm batch fit over exactly the last rows
    tail = X[X.shape[0] - window :]
    warm = IFair(**PARAMS)
    for start in range(0, X.shape[0] - 4, 4):
        warm.partial_fit(X[start : start + 4], protected, window_size=window)
    reference = IFair(**PARAMS, warm_start_theta=warm.theta_.copy())
    reference.fit(tail, protected)
    assert np.array_equal(model.theta_, reference.theta_)


def test_chunked_increments_track_batch_loss_on_window():
    """Chunked online refits land on the window's optimum: the final
    loss matches a cold batch fit over the same final window within a
    loose rtol (warm starts may find a *better* basin; they must not
    be meaningfully worse)."""
    X, protected = _golden_matrix()
    window = X.shape[0]
    model = IFair(**PARAMS)
    for start in range(0, X.shape[0], 5):
        model.partial_fit(X[start : start + 5], protected, window_size=window)
    assert model.n_buffered == X.shape[0]
    batch = IFair(**PARAMS).fit(X, protected)
    assert model.loss_ <= batch.loss_ * 1.10


def test_landmark_count_capped_at_window():
    X, protected = _golden_matrix()
    model = IFair(
        n_prototypes=2,
        max_iter=5,
        pair_mode="landmark",
        n_landmarks=10_000,  # far beyond any window
        random_state=0,
    )
    model.partial_fit(X[:6], protected, window_size=6)
    assert model.n_landmarks == 10_000  # knob restored after the refit
    assert model.landmarks_ is not None
    assert model.landmarks_.size <= 6


def test_partial_fit_counter_metric():
    from repro.telemetry.metrics import get_registry

    X, protected = _golden_matrix()
    before = get_registry().value("partial_fit_total")
    IFair(**PARAMS).partial_fit(X[:4], protected)
    assert get_registry().value("partial_fit_total") == before + 1
