"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_binary_labels,
    check_matrix,
    check_protected_indices,
    check_vector,
    nonprotected_indices,
)


class TestCheckMatrix:
    def test_coerces_lists(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_promotes_1d_to_column(self):
        assert check_matrix([1.0, 2.0, 3.0]).shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nan_by_default(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_matrix([[1.0, np.nan]])

    def test_allow_nan_flag(self):
        out = check_matrix([[1.0, np.nan]], allow_nan=True)
        assert np.isnan(out[0, 1])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_matrix([[np.inf, 1.0]])

    def test_min_rows(self):
        with pytest.raises(ValidationError, match="at least 3"):
            check_matrix([[1.0], [2.0]], min_rows=3)

    def test_min_cols(self):
        with pytest.raises(ValidationError):
            check_matrix([[1.0], [2.0]], min_cols=2)


class TestCheckVector:
    def test_flattens(self):
        assert check_vector([[1], [2]]).shape == (2,)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            check_vector([])

    def test_length_enforced(self):
        with pytest.raises(ValidationError, match="length 3"):
            check_vector([1, 2], length=3)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_vector([1.0, np.nan])


class TestCheckBinaryLabels:
    def test_accepts_01(self):
        out = check_binary_labels([0, 1, 1, 0])
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_accepts_single_class(self):
        out = check_binary_labels([1, 1, 1])
        assert out.tolist() == [1.0, 1.0, 1.0]

    def test_rejects_other_values(self):
        with pytest.raises(ValidationError, match="0/1"):
            check_binary_labels([0, 2])

    def test_rejects_fractional(self):
        with pytest.raises(ValidationError):
            check_binary_labels([0.5, 1.0])


class TestProtectedIndices:
    def test_none_is_empty(self):
        assert check_protected_indices(None, 5).size == 0

    def test_empty_iterable(self):
        assert check_protected_indices([], 5).size == 0

    def test_sorted_output(self):
        out = check_protected_indices([3, 1], 5)
        assert out.tolist() == [1, 3]

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError, match="duplicates"):
            check_protected_indices([1, 1], 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            check_protected_indices([5], 5)
        with pytest.raises(ValidationError):
            check_protected_indices([-1], 5)

    def test_nonprotected_complement(self):
        prot = check_protected_indices([1, 3], 5)
        rest = nonprotected_indices(prot, 5)
        assert rest.tolist() == [0, 2, 4]

    def test_complement_of_empty_is_everything(self):
        rest = nonprotected_indices(np.empty(0, dtype=np.intp), 4)
        assert rest.tolist() == [0, 1, 2, 3]
