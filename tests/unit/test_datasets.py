"""Tests for the five dataset generators (Table II fidelity)."""

import numpy as np
import pytest

from repro.data.airbnb import airbnb_schema, generate_airbnb
from repro.data.census import census_schema, generate_census
from repro.data.compas import compas_schema, generate_compas
from repro.data.credit import credit_schema, generate_credit
from repro.data.xing import (
    compute_scores,
    generate_xing,
    xing_schema,
)
from repro.exceptions import ValidationError


class TestSchemaWidths:
    """The encoded dimensionalities documented in Table II."""

    def test_compas_width(self):
        assert compas_schema().encoded_width == 431

    def test_census_width(self):
        assert census_schema().encoded_width == 101

    def test_credit_width(self):
        assert credit_schema().encoded_width == 63

    def test_airbnb_width(self):
        assert airbnb_schema().encoded_width == 33

    def test_xing_width(self):
        assert xing_schema().encoded_width == 59


@pytest.mark.parametrize(
    "generator,kwargs",
    [
        (generate_compas, {"n_records": 200, "charge_levels": 10}),
        (generate_census, {"n_records": 200}),
        (generate_credit, {"n_records": 200}),
    ],
)
class TestClassificationGenerators:
    def test_shapes_consistent(self, generator, kwargs):
        ds = generator(random_state=0, **kwargs)
        assert ds.X.shape[0] == ds.y.size == ds.protected.size
        assert len(ds.feature_names) == ds.n_features

    def test_binary_outcome(self, generator, kwargs):
        ds = generator(random_state=0, **kwargs)
        assert set(np.unique(ds.y)) <= {0.0, 1.0}

    def test_both_groups_present(self, generator, kwargs):
        ds = generator(random_state=0, **kwargs)
        assert 0.05 < ds.protected.mean() < 0.95

    def test_deterministic(self, generator, kwargs):
        a = generator(random_state=5, **kwargs)
        b = generator(random_state=5, **kwargs)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_protected_indices_are_onehot_columns(self, generator, kwargs):
        ds = generator(random_state=0, **kwargs)
        block = ds.X[:, ds.protected_indices]
        np.testing.assert_allclose(block.sum(axis=1), 1.0)

    def test_protected_column_encodes_group(self, generator, kwargs):
        ds = generator(random_state=0, **kwargs)
        # The second protected one-hot column is the s=1 indicator.
        np.testing.assert_array_equal(ds.X[:, ds.protected_indices[1]], ds.protected)

    def test_too_few_records_rejected(self, generator, kwargs):
        small = dict(kwargs)
        small["n_records"] = 5
        with pytest.raises(ValidationError):
            generator(random_state=0, **small)


class TestBaseRates:
    """Base rates approximate Table II at moderate scale."""

    def test_compas(self):
        ds = generate_compas(3000, charge_levels=20, random_state=0)
        assert ds.base_rate(1) == pytest.approx(0.52, abs=0.05)
        assert ds.base_rate(0) == pytest.approx(0.40, abs=0.05)

    def test_census(self):
        ds = generate_census(3000, random_state=0)
        assert ds.base_rate(1) == pytest.approx(0.12, abs=0.05)
        assert ds.base_rate(0) == pytest.approx(0.31, abs=0.05)

    def test_credit(self):
        ds = generate_credit(1000, random_state=0)
        assert ds.base_rate(1) == pytest.approx(0.67, abs=0.07)
        assert ds.base_rate(0) == pytest.approx(0.72, abs=0.07)


class TestMaskingInsufficiency:
    """The core phenomenon: proxies leak the protected attribute."""

    def test_compas_proxies_leak(self):
        from repro.learners.scaler import StandardScaler
        from repro.metrics.obfuscation import adversarial_accuracy

        ds = generate_compas(600, charge_levels=10, random_state=0)
        X = StandardScaler().fit_transform(ds.X)
        X_masked = X.copy()
        X_masked[:, ds.protected_indices] = 0.0
        majority = max(ds.protected.mean(), 1 - ds.protected.mean())
        acc = adversarial_accuracy(X_masked, ds.protected, random_state=0)
        assert acc > majority + 0.03


class TestRankingGenerators:
    def test_xing_query_structure(self):
        ds = generate_xing(n_queries=5, candidates_per_query=12, random_state=0)
        assert ds.n_records == 60
        assert np.unique(ds.query_ids).size == 5
        counts = np.bincount(ds.query_ids)
        assert np.all(counts == 12)

    def test_xing_score_linear_in_features(self):
        ds = generate_xing(n_queries=4, candidates_per_query=10, random_state=0)
        recomputed = compute_scores(ds)
        np.testing.assert_allclose(recomputed, ds.y)

    def test_xing_custom_weights_change_scores(self):
        ds = generate_xing(n_queries=4, candidates_per_query=10, random_state=0)
        alt = compute_scores(ds, weights=(1.0, 0.0, 0.0))
        assert not np.allclose(alt, ds.y)

    def test_xing_weight_validation(self):
        ds = generate_xing(n_queries=2, candidates_per_query=5, random_state=0)
        with pytest.raises(ValidationError):
            compute_scores(ds, weights=(1.0, 1.0))

    def test_xing_protected_scores_lower(self):
        ds = generate_xing(n_queries=20, candidates_per_query=40, random_state=0)
        assert ds.y[ds.protected == 1].mean() < ds.y[ds.protected == 0].mean()

    def test_airbnb_has_queries(self):
        ds = generate_airbnb(500, random_state=0)
        assert ds.query_ids is not None
        assert np.unique(ds.query_ids).size > 5

    def test_airbnb_score_not_perfectly_linear(self):
        from repro.learners.linear import LinearRegression

        ds = generate_airbnb(800, random_state=0)
        model = LinearRegression().fit(ds.X, ds.y)
        residual = ds.y - model.predict(ds.X)
        assert residual.std() > 0.1  # hidden quality component persists

    def test_airbnb_task_marked_ranking(self):
        ds = generate_airbnb(300, random_state=0)
        assert ds.task == "ranking"

    def test_xing_invalid_sizes(self):
        with pytest.raises(ValidationError):
            generate_xing(n_queries=0)
