"""Tests for repro.baselines.lfr."""

import numpy as np
import pytest

from repro.baselines.lfr import LFR, LFRObjective
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture
def lfr_data(rng):
    X = rng.normal(size=(40, 4))
    y = (X[:, 0] + 0.3 * rng.normal(size=40) > 0).astype(float)
    s = (rng.random(40) > 0.5).astype(float)
    return X, y, s


class TestLFRObjective:
    def test_param_count(self, lfr_data):
        X, y, s = lfr_data
        obj = LFRObjective(X, y, s, n_prototypes=3)
        assert obj.n_params == 3 * 4 + 4 + 3

    def test_pack_unpack_roundtrip(self, lfr_data, rng):
        X, y, s = lfr_data
        obj = LFRObjective(X, y, s, n_prototypes=3)
        V = rng.normal(size=(3, 4))
        alpha = rng.uniform(size=4)
        w = rng.uniform(size=3)
        V2, a2, w2 = obj.unpack(obj.pack(V, alpha, w))
        np.testing.assert_allclose(V, V2)
        np.testing.assert_allclose(alpha, a2)
        np.testing.assert_allclose(w, w2)

    def test_components_nonnegative(self, lfr_data, rng):
        X, y, s = lfr_data
        obj = LFRObjective(X, y, s, n_prototypes=3)
        theta = rng.uniform(0.2, 0.8, size=obj.n_params)
        l_x, l_y, l_z = obj.forward(theta)
        assert l_x >= 0 and l_y >= 0 and l_z >= 0

    def test_loss_weighting(self, lfr_data, rng):
        X, y, s = lfr_data
        obj = LFRObjective(X, y, s, a_x=2.0, a_y=3.0, a_z=4.0, n_prototypes=2)
        theta = rng.uniform(0.2, 0.8, size=obj.n_params)
        l_x, l_y, l_z = obj.forward(theta)
        assert obj.loss(theta) == pytest.approx(2 * l_x + 3 * l_y + 4 * l_z)

    def test_single_group_rejected(self, rng):
        X = rng.normal(size=(10, 3))
        y = (rng.random(10) > 0.5).astype(float)
        with pytest.raises(ValidationError, match="protected and unprotected"):
            LFRObjective(X, y, np.ones(10), n_prototypes=2)

    def test_negative_weights_rejected(self, lfr_data):
        X, y, s = lfr_data
        with pytest.raises(ValidationError):
            LFRObjective(X, y, s, a_x=-1.0)


class TestLFREstimator:
    def test_fit_produces_parameters(self, lfr_data):
        X, y, s = lfr_data
        model = LFR(n_prototypes=3, n_restarts=1, max_iter=40, random_state=0)
        model.fit(X, y, s)
        assert model.prototypes_.shape == (3, 4)
        assert model.label_weights_.shape == (3,)
        assert np.all((model.label_weights_ >= 0) & (model.label_weights_ <= 1))

    def test_transform_shape(self, lfr_data):
        X, y, s = lfr_data
        model = LFR(n_prototypes=3, n_restarts=1, max_iter=40, random_state=0)
        assert model.fit(X, y, s).transform(X).shape == X.shape

    def test_predict_proba_in_range(self, lfr_data):
        X, y, s = lfr_data
        model = LFR(n_prototypes=3, n_restarts=1, max_iter=40, random_state=0)
        p = model.fit(X, y, s).predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_classifier_learns_signal(self, lfr_data):
        X, y, s = lfr_data
        model = LFR(
            n_prototypes=5, a_x=0.01, a_y=1.0, a_z=0.0,
            n_restarts=2, max_iter=150, random_state=0,
        )
        acc = np.mean(model.fit(X, y, s).predict(X) == y)
        assert acc > 0.7

    def test_parity_term_reduces_group_gap(self, rng):
        # Group-correlated feature; with a_z high, cluster occupancy
        # (and hence predictions) should depend less on the group.
        n = 80
        s = (rng.random(n) > 0.5).astype(float)
        X = np.column_stack([s + 0.3 * rng.normal(size=n), rng.normal(size=n)])
        y = (rng.random(n) < 0.3 + 0.4 * s).astype(float)
        fair = LFR(n_prototypes=4, a_z=10.0, n_restarts=1, max_iter=80, random_state=0)
        unfair = LFR(n_prototypes=4, a_z=0.0, n_restarts=1, max_iter=80, random_state=0)
        gap_of = lambda m: abs(
            m.fit(X, y, s).predict_proba(X)[s == 1].mean()
            - m.predict_proba(X)[s == 0].mean()
        )
        assert gap_of(fair) <= gap_of(unfair) + 0.05

    def test_restart_bookkeeping(self, lfr_data):
        X, y, s = lfr_data
        model = LFR(n_prototypes=2, n_restarts=3, max_iter=20, random_state=0)
        model.fit(X, y, s)
        assert len(model.restarts_) == 3
        assert model.loss_ == pytest.approx(min(r.loss for r in model.restarts_))

    def test_use_before_fit_raises(self, lfr_data):
        X, _, _ = lfr_data
        with pytest.raises(NotFittedError):
            LFR().transform(X)

    def test_feature_mismatch_raises(self, lfr_data):
        X, y, s = lfr_data
        model = LFR(n_prototypes=2, n_restarts=1, max_iter=10, random_state=0)
        model.fit(X, y, s)
        with pytest.raises(ValidationError):
            model.transform(np.zeros((2, 9)))

    def test_bad_restarts_rejected(self):
        with pytest.raises(ValidationError):
            LFR(n_restarts=0)


class TestLandmarkFairnessExtension:
    """The optional individual-fairness regulariser (mu_fair > 0)."""

    def test_default_objective_is_unchanged(self, lfr_data, rng):
        X, y, s = lfr_data
        classic = LFRObjective(X, y, s, n_prototypes=3)
        extended = LFRObjective(X, y, s, n_prototypes=3, mu_fair=0.0)
        theta = rng.uniform(0.2, 0.8, size=classic.n_params)
        assert classic.loss(theta) == extended.loss(theta)
        la, ga = classic.loss_and_grad(theta)
        lb, gb = extended.loss_and_grad(theta)
        assert la == lb
        assert np.array_equal(ga, gb)

    def test_fair_term_enters_loss(self, lfr_data, rng):
        X, y, s = lfr_data
        classic = LFRObjective(X, y, s, n_prototypes=3)
        fair = LFRObjective(
            X, y, s, n_prototypes=3, mu_fair=0.5, n_landmarks=8, random_state=0
        )
        theta = rng.uniform(0.2, 0.8, size=classic.n_params)
        assert fair.loss(theta) > classic.loss(theta)
        loss_direct, _ = fair.loss_and_grad(theta)
        assert loss_direct == pytest.approx(fair.loss(theta), rel=1e-12)

    def test_fair_gradient_matches_finite_differences(self, lfr_data, rng):
        X, y, s = lfr_data
        obj = LFRObjective(
            X, y, s, n_prototypes=3, mu_fair=0.3, n_landmarks=6, random_state=1
        )
        theta = rng.uniform(0.3, 0.7, size=obj.n_params)
        _, grad = obj.loss_and_grad(theta)
        eps = 1e-6
        scale = max(1.0, float(np.max(np.abs(grad))))
        for i in range(0, obj.n_params, max(1, obj.n_params // 10)):
            up, down = theta.copy(), theta.copy()
            up[i] += eps
            down[i] -= eps
            numeric = (obj.loss(up) - obj.loss(down)) / (2 * eps)
            assert abs(numeric - grad[i]) / scale < 1e-5

    def test_negative_mu_rejected(self, lfr_data):
        X, y, s = lfr_data
        with pytest.raises(ValidationError):
            LFRObjective(X, y, s, n_prototypes=3, mu_fair=-1.0)

    def test_estimator_threads_landmark_params(self, lfr_data):
        X, y, s = lfr_data
        model = LFR(
            n_prototypes=3,
            mu_fair=0.2,
            n_landmarks=8,
            n_restarts=1,
            max_iter=20,
            random_state=0,
        ).fit(X, y, s)
        assert np.isfinite(model.loss_)
        assert model.transform(X).shape == X.shape

    def test_regulariser_improves_distance_preservation(self, lfr_data):
        """Higher mu_fair must not worsen the landmark fairness term."""
        from repro.utils.kernels import LandmarkFairness
        from repro.utils.landmarks import select_landmarks

        X, y, s = lfr_data
        idx = select_landmarks(X, 10, random_state=0)
        term = LandmarkFairness(X, idx)
        base = LFR(n_prototypes=3, n_restarts=1, max_iter=60, random_state=0)
        fair = LFR(
            n_prototypes=3,
            mu_fair=5.0,
            n_landmarks=10,
            n_restarts=1,
            max_iter=60,
            random_state=0,
        )
        base_loss = term.loss(base.fit(X, y, s).transform(X))
        fair_loss = term.loss(fair.fit(X, y, s).transform(X))
        assert fair_loss <= base_loss * 1.05
