"""Tests for the session worker-pool broker and the shm arena cache.

The lifecycle guarantees of the session pool mode:

* **warm reuse** — consecutive session executors land on the same
  worker processes (the broker lends one persistent pool per width);
* **idle reaping** — a pool without leases is shut down after the
  broker's idle timeout, and an explicit ``reap_idle`` does it now;
* **crash-respawn** — a worker dying inside a session pool is
  respawned with the full config table, and the pool keeps serving;
* **fork safety** — a forked child forgets the parent's pools and
  arena entries instead of talking to (or unlinking) what it doesn't
  own;
* **parity** — per-call and session execution produce identical
  results, and unpicklable task functions quietly fall back to a
  per-call pool.
"""

import os
import time

import numpy as np
import pytest

from repro.core.executor import (
    ParallelExecutor,
    PoolBroker,
    TaskError,
    WorkerCrashError,
    WorkerPool,
    get_config_token,
    get_shared,
    run_tasks,
    shutdown_session_pools,
)
from repro.exceptions import ValidationError
from repro.utils.shm import arena, leaked_segments


def _pid(payload):
    return os.getpid()


def _pid_and_token(payload):
    return os.getpid(), get_config_token()


def _shared_sum(i):
    return float(get_shared()["X"][i].sum())


@pytest.fixture(autouse=True)
def _clean_session_state():
    """Every test starts and ends with no broker pools or arena entries."""
    shutdown_session_pools()
    yield
    shutdown_session_pools()
    assert leaked_segments() == []


class TestWarmReuse:
    def test_consecutive_executors_reuse_worker_pids(self):
        first = set(run_tasks(_pid, range(4), n_jobs=2, pool="session"))
        second = set(run_tasks(_pid, range(4), n_jobs=2, pool="session"))
        assert first == second
        assert len(first) == 2

    def test_config_tokens_differ_per_executor(self):
        # The worker-side cache key must not collide across the
        # sequential fits one session pool serves.
        first = run_tasks(_pid_and_token, [0], n_jobs=2, pool="session")
        second = run_tasks(_pid_and_token, [0], n_jobs=2, pool="session")
        assert first[0][0] == second[0][0]  # same worker...
        assert first[0][1] != second[0][1]  # ...different config token

    def test_different_widths_get_different_pools(self):
        run_tasks(_pid, range(2), n_jobs=2, pool="session")
        run_tasks(_pid, range(3), n_jobs=3, pool="session")
        assert set(PoolBroker.instance().stats()) == {2, 3}

    def test_per_call_still_spawns_fresh_pools(self):
        first = set(run_tasks(_pid, range(4), n_jobs=2))
        second = set(run_tasks(_pid, range(4), n_jobs=2))
        assert first.isdisjoint(second)


class TestLeases:
    def test_lease_refcounts_and_sharing(self):
        broker = PoolBroker.instance()
        lease_a = broker.lease(2)
        lease_b = broker.lease(2)
        assert lease_a.pool is lease_b.pool
        assert broker.stats()[2]["refs"] == 2
        lease_a.release()
        lease_a.release()  # idempotent
        assert broker.stats()[2]["refs"] == 1
        lease_b.release()

    def test_reap_idle_shuts_lease_free_pools_down(self):
        broker = PoolBroker.instance()
        run_tasks(_pid, [0], n_jobs=2, pool="session")
        pool = broker.lease(2).pool  # observe, then release below
        broker._release(2)
        pids = pool.worker_pids()
        assert pids
        broker.reap_idle()
        assert 2 not in broker.stats()
        deadline = time.time() + 5.0
        while any(_alive(pid) for pid in pids) and time.time() < deadline:
            time.sleep(0.01)
        assert not any(_alive(pid) for pid in pids)

    def test_leased_pool_survives_reap_idle(self):
        broker = PoolBroker.instance()
        lease = broker.lease(2)
        lease.pool.start()
        broker.reap_idle()
        assert broker.stats()[2]["started"]
        lease.release()

    def test_idle_timer_reaps_after_timeout(self):
        broker = PoolBroker.instance()
        broker.idle_timeout = 0.05
        try:
            run_tasks(_pid, [0], n_jobs=2, pool="session")
            deadline = time.time() + 5.0
            while 2 in broker.stats() and time.time() < deadline:
                time.sleep(0.02)
            assert 2 not in broker.stats()
        finally:
            broker.idle_timeout = 30.0


class TestCrashRespawn:
    def test_crash_retried_inside_session_pool(self, tmp_path):
        # A closure cannot ride a session pool; use a marker-driven
        # module-level crasher instead.
        out = run_tasks(
            _crash_once_task,
            [(str(tmp_path), i) for i in range(4)],
            n_jobs=2,
            pool="session",
        )
        assert out == [0, 10, 20, 30]

    def test_pool_survives_crash_and_stays_warm(self, tmp_path):
        broker = PoolBroker.instance()
        before = set(run_tasks(_pid, range(4), n_jobs=2, pool="session"))
        run_tasks(
            _crash_once_task,
            [(str(tmp_path), 0)],
            n_jobs=2,
            pool="session",
        )
        after = set(run_tasks(_pid, range(4), n_jobs=2, pool="session"))
        # One worker died and was respawned; the pool object survived.
        assert len(broker.stats()) == 1
        assert before & after  # the surviving worker is still there
        assert before != after  # the crashed slot was respawned

    def test_persistent_crash_raises_and_pool_recovers(self):
        with pytest.raises(WorkerCrashError):
            run_tasks(_always_crash, [0], n_jobs=2, max_retries=0, pool="session")
        assert run_tasks(_pid, [0], n_jobs=2, pool="session")


class TestForkSafety:
    def test_forked_child_forgets_broker_and_arena(self):
        X = np.ones((3, 3))
        run_tasks(_shared_sum, [0], n_jobs=2, shared={"X": X}, pool="session")
        broker = PoolBroker.instance()
        assert broker.stats() and arena().stats()["entries"] == 1
        pid = os.fork()
        if pid == 0:  # child: inherited state must be forgotten
            ok = (
                PoolBroker.instance()._pools == {}
                and arena().stats()["entries"] == 0
            )
            os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # The parent's pool and cache are untouched by the child exit.
        assert broker.stats() and arena().stats()["entries"] == 1


class TestSessionParity:
    def test_results_identical_to_per_call(self):
        X = np.arange(20.0).reshape(5, 4)
        per_call = run_tasks(_shared_sum, range(5), n_jobs=2, shared={"X": X})
        session = run_tasks(
            _shared_sum, range(5), n_jobs=2, shared={"X": X}, pool="session"
        )
        assert per_call == session

    def test_unpicklable_fn_falls_back_to_per_call(self):
        captured = np.array([1.5, 2.5])
        executor = ParallelExecutor(
            lambda i: float(captured[i]), 2, pool="session"
        )
        with executor:
            assert executor.map([0, 1]) == [1.5, 2.5]
            assert executor._lease is None  # fell back to a private pool

    def test_config_install_failure_surfaces_as_task_error(self):
        # Pickling succeeds in the parent but unpickling fails in the
        # worker (e.g. a name the worker's modules don't have): tasks
        # must answer with the install error, not kill the worker.
        with ParallelExecutor(_EvilUnpickle(), 2, pool="session") as executor:
            with pytest.raises(TaskError, match="config install failed"):
                executor.map([0, 1])
        # The same (still alive) pool serves healthy configs after.
        before = set(run_tasks(_pid, range(4), n_jobs=2, pool="session"))
        assert before == set(PoolBroker.instance().lease(2).pool.worker_pids())
        PoolBroker.instance()._release(2)

    def test_invalid_pool_mode_rejected(self):
        with pytest.raises(ValidationError):
            ParallelExecutor(_pid, 2, pool="daily")
        with pytest.raises(ValidationError):
            WorkerPool(0)


class TestArenaCache:
    def test_same_bytes_reuse_the_segment(self):
        X = np.arange(6.0).reshape(2, 3)
        lease_a = arena().publish({"X": X})
        lease_b = arena().publish({"X": X.copy()})  # same bytes, new object
        assert lease_a.handles["X"].name == lease_b.handles["X"].name
        assert arena().stats()["entries"] == 1
        lease_a.release()
        lease_b.release()

    def test_different_bytes_get_different_segments(self):
        lease_a = arena().publish({"X": np.zeros((2, 2))})
        lease_b = arena().publish({"X": np.ones((2, 2))})
        assert lease_a.handles["X"].name != lease_b.handles["X"].name
        lease_a.release()
        lease_b.release()

    def test_release_keeps_segment_cached_until_reap(self):
        lease = arena().publish({"X": np.ones((2, 2))})
        name = lease.handles["X"].name
        lease.release()
        assert name in leaked_segments()  # warm, deliberately alive
        assert arena().reap() == 1
        assert name not in leaked_segments()

    def test_reap_spares_leased_segments(self):
        lease = arena().publish({"X": np.ones((2, 2))})
        assert arena().reap() == 0
        lease.release()
        assert arena().reap() == 1

    def test_executor_shutdown_leaves_broadcast_warm(self):
        X = np.arange(12.0).reshape(3, 4)
        run_tasks(_shared_sum, [0], n_jobs=2, shared={"X": X}, pool="session")
        stats = arena().stats()
        assert stats["entries"] == 1 and stats["leased"] == 0
        run_tasks(_shared_sum, [1], n_jobs=2, shared={"X": X}, pool="session")
        assert arena().stats()["hits"] >= 1

    def test_empty_publish_rejected(self):
        with pytest.raises(ValidationError):
            arena().publish({})

    def test_reaping_last_pool_clears_cached_arena_entries(self):
        X = np.ones((4, 4))
        run_tasks(_shared_sum, [0], n_jobs=2, shared={"X": X}, pool="session")
        assert arena().stats()["entries"] == 1
        PoolBroker.instance().reap_idle()
        assert arena().stats()["entries"] == 0
        assert leaked_segments() == []


def _crash_once_task(payload):
    marker_dir, i = payload
    marker = os.path.join(marker_dir, str(i))
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(23)
    return i * 10


def _always_crash(payload):
    os._exit(29)


def _raise_on_unpickle():
    raise RuntimeError("this callable refuses to unpickle")


class _EvilUnpickle:
    """Pickles by reduction to a raising constructor (worker-side boom)."""

    def __call__(self, payload):  # pragma: no cover - never reached
        return payload

    def __reduce__(self):
        return (_raise_on_unpickle, ())


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


class TestStartFailureHygiene:
    def test_failed_publish_leaves_no_lease_behind(self):
        executor = ParallelExecutor(
            _pid, 2, shared={"X": np.empty((0, 3))}, pool="session"
        )
        with pytest.raises(ValidationError, match="must not be empty"):
            executor.start()
        # Nothing held: no broker refcount, no arena entry, restartable.
        assert all(
            entry["refs"] == 0
            for entry in PoolBroker.instance().stats().values()
        )
        assert arena().stats()["leased"] == 0
        executor._shared_input = {"X": np.ones((2, 3))}
        assert len(executor.map([0, 1])) == 2  # restartable after fix-up
        executor.shutdown()
