"""Unit tests for the telemetry package (metrics, tracing, logs)."""

import io
import json
import logging
import math
import threading

import pytest

from repro.exceptions import ValidationError
from repro.telemetry.logs import configure_logging, get_logger
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    parse_metric_key,
    prometheus_text,
    snapshot_diff,
)
from repro.telemetry.tracing import Tracer, disable_tracing, enable_tracing, get_tracer


# ----------------------------------------------------------------------
# counters / gauges / histograms


def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("hits_total")
    counter.inc()
    counter.inc(2.5)
    assert registry.value("hits_total") == 3.5
    with pytest.raises(ValidationError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("pool_workers")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert registry.value("pool_workers") == 3.0


def test_labeled_instruments_are_distinct():
    registry = MetricsRegistry()
    registry.counter("req_total", {"verb": "score"}).inc()
    registry.counter("req_total", {"verb": "rank"}).inc(2)
    assert registry.value("req_total", {"verb": "score"}) == 1.0
    assert registry.value("req_total", {"verb": "rank"}) == 2.0
    # handles are stable: same (name, labels) -> same instrument
    assert registry.counter("req_total", {"verb": "score"}) is registry.counter(
        "req_total", {"verb": "score"}
    )


def test_metric_key_roundtrip():
    assert parse_metric_key("plain") == ("plain", {})
    name, labels = parse_metric_key("req_total|b=2|a=1")
    assert name == "req_total"
    assert labels == {"a": "1", "b": "2"}


def test_histogram_quantiles_without_samples():
    hist = Histogram(bounds=(0.001, 0.01, 0.1, 1.0))
    assert math.isnan(hist.quantile(0.5))
    for _ in range(90):
        hist.observe(0.005)
    for _ in range(10):
        hist.observe(0.5)
    assert hist.count == 100
    # p50 lands in the (0.001, 0.01] bucket, p99 in (0.1, 1.0]
    assert 0.001 < hist.quantile(0.5) <= 0.01
    assert 0.1 < hist.quantile(0.99) <= 1.0
    # +Inf observations clamp to the last finite edge
    hist2 = Histogram(bounds=(0.001, 0.01))
    hist2.observe(5.0)
    assert hist2.quantile(0.5) == 0.01


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValidationError):
        Histogram(bounds=())
    with pytest.raises(ValidationError):
        Histogram(bounds=(1.0, 1.0))
    with pytest.raises(ValidationError):
        Histogram(bounds=(2.0, 1.0))


def test_histogram_thread_safety():
    hist = Histogram()

    def work():
        for _ in range(1000):
            hist.observe(0.01)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert hist.count == 4000


# ----------------------------------------------------------------------
# snapshots: diff + merge


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("tasks_total").inc(3)
    registry.counter("bytes_total", {"kind": "shm"}).inc(1024)
    registry.gauge("workers").set(2)
    hist = registry.histogram("latency_seconds")
    for value in (0.001, 0.02, 0.3):
        hist.observe(value)
    return registry


def test_snapshot_is_json_safe():
    snapshot = _sample_registry().snapshot()
    json.dumps(snapshot)  # must not raise
    assert snapshot["counters"]["tasks_total"] == 3.0
    assert snapshot["histograms"]["latency_seconds"]["count"] == 3


def test_snapshot_diff_and_merge_roundtrip():
    registry = _sample_registry()
    before = registry.snapshot()
    registry.counter("tasks_total").inc(2)
    registry.gauge("workers").set(5)
    registry.histogram("latency_seconds").observe(0.9)
    after = registry.snapshot()

    delta = snapshot_diff(after, before)
    assert delta["counters"] == {"tasks_total": 2.0}
    assert delta["gauges"] == {"workers": 5.0}
    assert delta["histograms"]["latency_seconds"]["count"] == 1

    # before + delta == after
    rebuilt = MetricsRegistry()
    rebuilt.merge(before)
    rebuilt.merge(delta)
    assert rebuilt.snapshot() == after


def test_snapshot_diff_empty_when_unchanged():
    snapshot = _sample_registry().snapshot()
    assert snapshot_diff(snapshot, snapshot) == {}
    assert snapshot_diff({}, None) == {}


def test_merge_snapshots_adds_counters_across_workers():
    registries = [_sample_registry() for _ in range(3)]
    merged = merge_snapshots([r.snapshot() for r in registries])
    assert merged["counters"]["tasks_total"] == 9.0
    assert merged["histograms"]["latency_seconds"]["count"] == 9


def test_merge_rejects_mismatched_histogram_bounds():
    a = MetricsRegistry()
    a.histogram("h", bounds=(0.1, 1.0)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("h", bounds=(0.2, 2.0)).observe(0.5)
    with pytest.raises(ValidationError):
        a.merge(b.snapshot())


def test_registry_reset():
    registry = _sample_registry()
    registry.reset()
    snapshot = registry.snapshot()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


def test_get_registry_is_singleton():
    assert get_registry() is get_registry()


# ----------------------------------------------------------------------
# Prometheus exposition


def test_prometheus_text_format():
    text = _sample_registry().to_prometheus()
    lines = text.strip().split("\n")
    assert "# TYPE tasks_total counter" in lines
    assert "tasks_total 3" in lines
    assert 'bytes_total{kind="shm"} 1024' in lines
    assert "# TYPE workers gauge" in lines
    assert "workers 2" in lines
    assert "# TYPE latency_seconds histogram" in lines
    assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
    assert "latency_seconds_count 3" in lines
    assert text.endswith("\n")
    # buckets are cumulative
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if line.startswith("latency_seconds_bucket")
    ]
    assert counts == sorted(counts)


def test_prometheus_text_merges_multiple_snapshots():
    a = MetricsRegistry()
    a.counter("serving_requests_total").inc(2)
    b = MetricsRegistry()
    b.counter("fit_total").inc(1)
    text = prometheus_text(a.snapshot(), b.snapshot())
    assert "serving_requests_total 2" in text
    assert "fit_total 1" in text


# ----------------------------------------------------------------------
# tracing


def test_tracer_disabled_is_noop():
    tracer = Tracer()
    with tracer.span("anything", key="value"):
        pass
    assert tracer.timeline() == []


def test_tracer_records_nested_spans():
    tracer = Tracer()
    tracer.enabled = True
    with tracer.span("outer", n=1):
        with tracer.span("inner"):
            pass
    timeline = tracer.timeline()
    assert [s["name"] for s in timeline] == ["inner", "outer"] or [
        s["name"] for s in timeline
    ] == ["outer", "inner"]
    by_name = {s["name"]: s for s in timeline}
    assert by_name["inner"]["parent"] == "outer"
    assert by_name["inner"]["depth"] == 1
    assert by_name["outer"]["depth"] == 0
    assert by_name["outer"]["meta"] == {"n": 1}
    assert by_name["inner"]["duration_s"] >= 0.0
    # timeline is sorted by start time
    starts = [s["start_s"] for s in tracer.timeline()]
    assert starts == sorted(starts)


def test_tracer_drain_and_ingest():
    worker = Tracer()
    worker.enabled = True
    with worker.span("task"):
        pass
    shipped = worker.drain()
    assert worker.timeline() == []
    parent = Tracer()
    parent.ingest(shipped)
    assert [s["name"] for s in parent.timeline()] == ["task"]


def test_tracer_bounded():
    tracer = Tracer(max_spans=5)
    tracer.enabled = True
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.timeline()) == 5


def test_tracer_dump_json(tmp_path):
    tracer = Tracer()
    tracer.enabled = True
    with tracer.span("phase"):
        pass
    path = tmp_path / "trace.json"
    tracer.dump_json(str(path))
    timeline = json.loads(path.read_text())
    assert timeline[0]["name"] == "phase"


def test_enable_disable_tracing_toggle_singleton():
    tracer = enable_tracing()
    try:
        assert tracer is get_tracer()
        assert tracer.enabled
    finally:
        disable_tracing()
    assert not get_tracer().enabled


# ----------------------------------------------------------------------
# logging


def _fresh_logging():
    root = logging.getLogger("repro")
    for handler in [
        h for h in root.handlers if getattr(h, "_repro_handler", False)
    ]:
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


def test_configure_logging_json_lifts_extras():
    stream = io.StringIO()
    try:
        configure_logging("INFO", json_format=True, stream=stream)
        get_logger("unit").info("served", extra={"path": "/v1/score", "status": 200})
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "served"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.unit"
        assert record["path"] == "/v1/score"
        assert record["status"] == 200
    finally:
        _fresh_logging()


def test_configure_logging_line_format_appends_extras():
    stream = io.StringIO()
    try:
        configure_logging("INFO", stream=stream)
        get_logger("unit").info("hello", extra={"k": "v"})
        line = stream.getvalue().strip()
        assert "repro.unit: hello" in line
        assert "k=v" in line
    finally:
        _fresh_logging()


def test_configure_logging_idempotent():
    stream = io.StringIO()
    try:
        configure_logging("INFO", stream=stream)
        configure_logging("INFO", stream=stream)
        get_logger("unit").info("once")
        assert stream.getvalue().count("once") == 1
    finally:
        _fresh_logging()


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure_logging("LOUD")


def test_unconfigured_library_is_quiet(capsys):
    get_logger("unit").warning("should not reach stderr by default")
    captured = capsys.readouterr()
    assert captured.err == ""


def test_get_logger_namespacing():
    assert get_logger("core").name == "repro.core"
    assert get_logger("repro.core").name == "repro.core"
