"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main
from repro.pipeline.registry import EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.scale == "fast"
        assert args.seed == 7

    def test_run_all_accepted(self):
        args = build_parser().parse_args(["run", "all"])
        assert args.experiment == "all"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table42"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--scale", "huge"])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_run_motivation(self, capsys):
        assert main(["run", "table1", "--seed", "3"]) == 0
        assert "Brand Strategist" in capsys.readouterr().out
