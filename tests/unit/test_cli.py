"""Tests for the repro CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.pipeline.registry import EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.experiment == "table2"
        assert args.scale == "fast"
        assert args.seed == 7

    def test_run_all_accepted(self):
        args = build_parser().parse_args(["run", "all"])
        assert args.experiment == "all"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table42"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--scale", "huge"])

    def test_json_flag(self):
        args = build_parser().parse_args(["run", "table2", "--json"])
        assert args.json is True
        assert build_parser().parse_args(["run", "table2"]).json is False

    def test_fit_save_command(self):
        args = build_parser().parse_args(
            ["fit-save", "compas", "--out", "/tmp/a", "--n-prototypes", "5"]
        )
        assert args.command == "fit-save"
        assert args.dataset == "compas"
        assert args.n_prototypes == 5
        assert args.criterion == "parity"

    def test_fit_save_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit-save", "compas"])

    def test_serve_command(self):
        args = build_parser().parse_args(
            ["serve", "--artifact", "/tmp/a", "--port", "9000"]
        )
        assert args.command == "serve"
        assert args.port == 9000
        assert args.batch_size == 256
        assert args.online_refit is False

    def test_serve_online_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--artifact", "/tmp/a", "--workers", "2",
                "--online-refit", "--refresh-window", "128",
                "--drift-policy", "both", "--refit-cooldown", "5.0",
            ]
        )
        assert args.online_refit is True
        assert args.refresh_window == 128
        assert args.drift_policy == "both"
        assert args.refit_cooldown == 5.0

    def test_serve_rejects_bogus_drift_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--artifact", "/tmp/a", "--drift-policy", "bogus"]
            )


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_run_motivation(self, capsys):
        assert main(["run", "table1", "--seed", "3"]) == 0
        assert "Brand Strategist" in capsys.readouterr().out

    def test_run_json_emits_machine_readable_report(self, capsys):
        assert main(["run", "table2", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "dataset_statistics"
        assert {r["dataset"] for r in payload["rows"]} >= {"compas", "census"}

    def test_run_json_motivation(self, capsys):
        assert main(["run", "table1", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "motivation"
        assert payload["rows"]


class TestServingCommands:
    def test_fit_save_then_serve_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "artifact")
        code = main(
            [
                "fit-save",
                "credit",
                "--out",
                out,
                "--records",
                "120",
                "--n-prototypes",
                "3",
                "--max-iter",
                "15",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        assert "saved credit serving artifact" in capsys.readouterr().out

        from repro.serving import InferenceEngine, InProcessClient, load_artifact

        engine = InferenceEngine(load_artifact(out))
        client = InProcessClient(engine)
        assert client.health()["metadata"]["dataset"] == "credit"
        n = engine.artifact.n_features
        scores = client.score([[0.0] * n, [1.0] * n])
        assert len(scores) == 2

    def test_serve_unknown_artifact_errors(self, tmp_path, capsys):
        assert main(["serve", "--artifact", str(tmp_path / "missing")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_online_knobs_without_online_refit_error(self, capsys):
        code = main(
            ["serve", "--artifact", "/tmp/a", "--refresh-window", "128"]
        )
        assert code == 1
        assert "--online-refit" in capsys.readouterr().err

    def test_online_refit_needs_multiple_workers(self, tmp_path, capsys):
        out = str(tmp_path / "artifact")
        assert main(
            [
                "fit-save", "credit", "--out", out, "--records", "120",
                "--n-prototypes", "3", "--max-iter", "15", "--seed", "3",
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            ["serve", "--artifact", out, "--workers", "1", "--online-refit"]
        )
        assert code == 1
        assert "workers" in capsys.readouterr().err


class TestPairModeFlags:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.pair_mode == "auto"
        assert args.landmarks is None
        assert args.landmark_method == "kmeans++"

    def test_run_landmark_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "table2",
                "--pair-mode",
                "landmark",
                "--landmarks",
                "64",
                "--landmark-method",
                "farthest",
            ]
        )
        assert args.pair_mode == "landmark"
        assert args.landmarks == 64
        assert args.landmark_method == "farthest"

    def test_fit_save_landmark_flags(self):
        args = build_parser().parse_args(
            [
                "fit-save",
                "compas",
                "--out",
                "x",
                "--pair-mode",
                "landmark",
                "--landmarks",
                "32",
            ]
        )
        assert args.pair_mode == "landmark"
        assert args.landmarks == 32

    def test_invalid_pair_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--pair-mode", "bogus"])

    def test_flags_reach_the_config(self):
        from repro.cli import _config

        args = build_parser().parse_args(
            ["run", "table2", "--pair-mode", "landmark", "--landmarks", "48"]
        )
        config = _config(args)
        assert config.pair_mode == "landmark"
        assert config.n_landmarks == 48

    def test_fit_save_with_landmarks_runs(self, tmp_path, capsys):
        code = main(
            [
                "fit-save",
                "credit",
                "--out",
                str(tmp_path / "art"),
                "--records",
                "120",
                "--n-prototypes",
                "4",
                "--max-iter",
                "10",
                "--pair-mode",
                "landmark",
                "--landmarks",
                "12",
            ]
        )
        assert code == 0
        from repro.serving.artifacts import load_artifact

        loaded = load_artifact(str(tmp_path / "art"))
        assert loaded.model.landmarks_.size == 12

    def test_landmark_flags_without_landmark_mode_rejected(self, capsys, tmp_path):
        assert main(["run", "table2", "--landmarks", "8"]) == 1
        assert "--pair-mode landmark" in capsys.readouterr().err
        assert main(["run", "table2", "--landmark-method", "farthest"]) == 1
        code = main(
            ["fit-save", "credit", "--out", str(tmp_path / "a"), "--landmarks", "8"]
        )
        assert code == 1


class TestPoolFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.pool == "per-call"
        assert args.tune_promote == "rank"

    def test_run_session_pool_reaches_the_config(self):
        from repro.cli import _config

        args = build_parser().parse_args(
            [
                "run",
                "table2",
                "--pool",
                "session",
                "--tune-strategy",
                "halving",
                "--tune-promote",
                "extrapolate",
            ]
        )
        config = _config(args)
        assert config.tune_pool == "session"
        assert config.tune_strategy == "halving"
        assert config.tune_promote == "extrapolate"

    def test_default_flags_leave_config_defaults(self):
        from repro.cli import _config

        config = _config(build_parser().parse_args(["run", "table2"]))
        assert config.tune_pool == "per-call"
        assert config.tune_promote == "rank"

    def test_invalid_pool_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table2", "--pool", "hourly"])

    def test_fit_save_accepts_pool_flags(self):
        args = build_parser().parse_args(
            [
                "fit-save",
                "compas",
                "--out",
                "x",
                "--pool",
                "session",
                "--tune",
                "--tune-strategy",
                "halving",
                "--tune-promote",
                "extrapolate",
            ]
        )
        assert args.pool == "session"
        assert args.tune_promote == "extrapolate"
