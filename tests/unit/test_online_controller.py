"""The drift-response controller, decoupled from HTTP and workers.

A fake engine exposes exactly the surface the controller consumes
(``artifact``, ``registry``, ``drift_flags``, ``reload``), so every
policy/cooldown/failure branch is exercised deterministically without
sockets or forked processes.
"""

import json
import os

import numpy as np
import pytest

from repro.data.compas import generate_compas
from repro.exceptions import ValidationError
from repro.serving import fit_serving_pipeline, load_artifact, save_artifact
from repro.serving.online import DRIFT_POLICIES, DriftPolicy, OnlineController
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def dataset():
    return generate_compas(80, charge_levels=4, random_state=3)


@pytest.fixture(scope="module")
def artifact_dir(dataset, tmp_path_factory):
    artifact = fit_serving_pipeline(
        dataset, n_prototypes=2, max_iter=10, max_pairs=200, random_state=3
    )
    path = str(tmp_path_factory.mktemp("online") / "artifact")
    save_artifact(path, artifact)
    return path


class FakeEngine:
    """The controller-facing slice of an engine/dispatcher."""

    def __init__(self, artifact_path, *, reload_error=None):
        self.artifact = load_artifact(artifact_path)
        self.registry = MetricsRegistry()
        self.drift = False
        self.reloads = []
        self.reload_error = reload_error

    def drift_flags(self):
        return {"any": self.drift}

    def reload(self, path):
        if self.reload_error is not None:
            raise self.reload_error
        self.reloads.append(path)
        self.artifact = load_artifact(path)
        return {"status": "ok", "checksum": self.artifact.checksum}


def _payload(rows):
    return json.dumps({"records": np.asarray(rows).tolist()}).encode()


def _controller(engine, artifact_path, **overrides):
    defaults = dict(
        policy="either",
        refresh_window=64,
        min_window=16,
        cooldown_s=0.0,
        check_interval_s=0.01,
        shift_threshold=1.25,
        # Single-tick baseline + raw ratio: keeps each branch test a
        # one-step affair; calibration/smoothing get their own tests.
        calibration_ticks=1,
        shift_smoothing=1.0,
        refit_restarts=1,
        refit_max_iter=10,
    )
    defaults.update(overrides)
    return OnlineController(engine, artifact_path, DriftPolicy(**defaults))


def _feed(controller, rows):
    controller.tap("/v1/decide", _payload(rows))


def test_policy_validation():
    assert DRIFT_POLICIES == ("monitor", "shift", "either", "both")
    with pytest.raises(ValidationError):
        DriftPolicy(policy="bogus")
    with pytest.raises(ValidationError):
        DriftPolicy(refresh_window=1)
    with pytest.raises(ValidationError):
        DriftPolicy(min_window=128, refresh_window=64)
    with pytest.raises(ValidationError):
        DriftPolicy(shift_threshold=0.0)
    with pytest.raises(ValidationError):
        DriftPolicy(cooldown_s=-1.0)
    with pytest.raises(ValidationError):
        DriftPolicy(check_interval_s=0.0)
    with pytest.raises(ValidationError):
        DriftPolicy(refit_restarts=0)
    with pytest.raises(ValidationError):
        DriftPolicy(calibration_ticks=0)
    with pytest.raises(ValidationError):
        DriftPolicy(shift_smoothing=0.0)
    with pytest.raises(ValidationError):
        DriftPolicy(shift_smoothing=1.5)


def test_tap_is_safe_and_filters_admin(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir)
    controller.tap("/v1/admin/reload", _payload(dataset.X[:4]))
    controller.tap("/v1/decide", b"")  # empty body
    controller.tap("/v1/decide", b"not json at all")
    controller.tap("/v1/decide", b'{"records": "wrong type"}')
    controller.tap("/v1/decide", _payload(np.full((2, 3), np.nan)))  # bad width
    controller.step()
    assert controller.status()["window_rows"] == 0


def test_ingest_builds_window_and_bounds_it(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, refresh_window=32, min_window=16)
    for start in range(0, 80, 8):
        _feed(controller, dataset.X[start : start + 8])
    controller.step()
    status = controller.status()
    assert status["window_rows"] == 32  # bounded sliding window
    assert status["baseline_cost"] > 0.0
    assert status["shift"] == pytest.approx(1.0)


def test_no_signal_means_no_refit(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir)
    for _ in range(4):
        _feed(controller, dataset.X[:20])
        assert controller.step() is None
    status = controller.status()
    assert status["refits"] == 0
    assert engine.reloads == []


def test_monitor_policy_drives_refit_and_reload(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, policy="monitor")
    _feed(controller, dataset.X[:32])
    controller.step()
    engine.drift = True
    _feed(controller, dataset.X[32:48])
    result = controller.step()
    assert result["status"] == "refitted"
    assert result["reload"] == "ok"
    assert engine.reloads == [result["artifact"]]
    # the versioned artifact round-trips and shares the frozen heads
    refreshed = load_artifact(result["artifact"])
    assert refreshed.metadata["online_version"] == 1
    assert refreshed.thresholds is not None
    status = controller.status()
    assert status["refits"] == 1
    assert status["reloads"] == 1
    assert status["failures"] == 0


def test_shift_policy_ignores_monitor_flag(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, policy="shift")
    _feed(controller, dataset.X[:32])
    controller.step()
    engine.drift = True  # monitor screams, shift policy doesn't care
    _feed(controller, dataset.X[32:48])
    assert controller.step() is None
    # a genuinely shifted window does trigger
    _feed(controller, dataset.X[:48] + 30.0)
    result = controller.step()
    assert result["status"] == "refitted"


def test_both_policy_needs_agreement(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, policy="both")
    _feed(controller, dataset.X[:32])
    controller.step()
    engine.drift = True  # drift alone: not enough
    _feed(controller, dataset.X[32:48])
    assert controller.step() is None
    _feed(controller, dataset.X[:48] + 30.0)  # now both agree
    result = controller.step()
    assert result["status"] == "refitted"


def test_cooldown_rate_limits_refits(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, policy="monitor", cooldown_s=3600.0)
    engine.drift = True
    _feed(controller, dataset.X[:32])
    result = controller.step()
    assert result["status"] == "refitted"
    _feed(controller, dataset.X[32:48])
    assert controller.step() is None  # cooling down
    assert controller.status()["refits"] == 1
    assert controller.status()["cooldown_remaining_s"] > 0.0
    # manual trigger bypasses the cooldown
    result = controller.trigger()
    assert result["status"] == "refitted"
    assert controller.status()["refits"] == 2


def test_failed_reload_is_contained(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir, reload_error=RuntimeError("worker storm"))
    controller = _controller(engine, artifact_dir, policy="monitor")
    engine.drift = True
    _feed(controller, dataset.X[:32])
    result = controller.step()  # must not raise
    assert result["status"] == "failed"
    assert "worker storm" in result["error"]
    status = controller.status()
    assert status["failures"] == 1
    assert status["reloads"] == 0
    assert status["last_error"] is not None
    # recovery: the fault clears and the next trigger succeeds
    engine.reload_error = None
    _feed(controller, dataset.X[32:48])
    assert controller.trigger()["status"] == "refitted"
    assert controller.status()["last_error"] is None


def test_trigger_without_rows_is_skipped(artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir)
    result = controller.trigger()
    assert result["status"] == "skipped"


def test_refit_rebaselines_shift(dataset, artifact_dir):
    """After responding to a shift the statistic re-arms at 1.0 over
    re-anchored coordinates — it watches for the *next* departure
    instead of re-reporting the handled one (no flapping)."""
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, policy="shift")
    _feed(controller, dataset.X[:32])
    controller.step()
    _feed(controller, dataset.X[:48] + 30.0)
    assert controller.step()["status"] == "refitted"
    status = controller.status()
    assert status["shift"] == pytest.approx(1.0)
    assert not status["shift_flagged"]
    # steady (still-shifted) traffic does not re-trigger
    _feed(controller, dataset.X[:16] + 30.0)
    assert controller.step() is None


def test_baseline_calibrates_over_median_of_ticks(dataset, artifact_dir):
    """The baseline freezes at the median of ``calibration_ticks``
    window costs, not the first realisation — one noisy-low snapshot
    must not inflate every later ratio into a spurious refit."""
    engine = FakeEngine(artifact_dir)
    controller = _controller(
        engine, artifact_dir, policy="shift", calibration_ticks=3
    )
    _feed(controller, dataset.X[:32])
    controller.step()  # tick 1: anchors chosen, calibrating
    status = controller.status()
    assert status["calibrating"]
    assert status["baseline_cost"] is None and status["shift"] is None
    assert not status["shift_flagged"]  # calibration never flags
    controller.step()  # tick 2
    assert controller.status()["calibrating"]
    controller.step()  # tick 3: median frozen
    status = controller.status()
    assert not status["calibrating"]
    assert status["baseline_cost"] > 0.0
    assert status["shift"] == pytest.approx(1.0)


def test_shift_is_ema_smoothed(dataset, artifact_dir):
    """A single near-threshold spike is absorbed by the EMA; the same
    ratio *sustained* converges up and triggers within a few ticks."""
    from repro.utils.landmarks import anchor_assignment_cost

    engine = FakeEngine(artifact_dir)
    controller = _controller(
        engine, artifact_dir, policy="shift", shift_smoothing=0.3
    )
    _feed(controller, dataset.X[:32])
    controller.step()  # baseline frozen (calibration_ticks=1)
    _feed(controller, dataset.X[:48] + 30.0)
    controller._ingest_tapped()
    # pin the raw ratio at exactly 1.5 (above the 1.25 threshold)
    W = controller._window_matrix()
    cost = anchor_assignment_cost(W, controller._anchors)
    controller._baseline_cost = cost / 1.5
    controller._update_shift()
    status = controller.status()
    assert status["shift"] == pytest.approx(0.7 * 1.0 + 0.3 * 1.5)
    assert not status["shift_flagged"]  # the one-tick spike is absorbed
    # the ratio persists -> the EMA converges toward 1.5 and triggers
    results = [controller.step() for _ in range(5)]
    refits = [r for r in results if r is not None]
    assert refits and refits[0]["status"] == "refitted"


def test_rebaseline_recalibrates(dataset, artifact_dir):
    """After a refit the baseline is re-calibrated over several ticks
    (the post-refit window is the noisiest possible snapshot)."""
    engine = FakeEngine(artifact_dir)
    controller = _controller(
        engine, artifact_dir, policy="shift", calibration_ticks=3
    )
    _feed(controller, dataset.X[:32])
    for _ in range(3):
        controller.step()
    _feed(controller, dataset.X[:48] + 30.0)
    result = None
    for _ in range(20):
        result = controller.step()
        if result is not None:
            break
    assert result["status"] == "refitted"
    status = controller.status()
    assert status["calibrating"]
    assert status["baseline_cost"] is None
    # steady ticks complete the calibration and the statistic re-arms
    for _ in range(3):
        assert controller.step() is None
    status = controller.status()
    assert not status["calibrating"]
    assert status["baseline_cost"] > 0.0
    assert status["shift"] == pytest.approx(1.0)


def test_metrics_exported(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, policy="monitor")
    engine.drift = True
    _feed(controller, dataset.X[:32])
    controller.step()
    snapshot = engine.registry.snapshot()
    assert snapshot["counters"]["online_refits_total"] == 1
    assert snapshot["counters"]["drift_reloads_total"] == 1
    assert snapshot["gauges"]["online_window_rows"] == 32.0
    assert snapshot["histograms"]["online_refit_seconds"]["count"] == 1


def test_start_stop_lifecycle(artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir)
    controller.start()
    with pytest.raises(ValidationError):
        controller.start()
    assert controller.status()["running"]
    controller.stop()
    assert not controller.status()["running"]


def test_online_artifacts_are_versioned(dataset, artifact_dir):
    engine = FakeEngine(artifact_dir)
    controller = _controller(engine, artifact_dir, policy="monitor")
    engine.drift = True
    _feed(controller, dataset.X[:32])
    first = controller.step()
    _feed(controller, dataset.X[32:64])
    second = controller.trigger()
    assert first["version"] == 1 and second["version"] == 2
    assert os.path.isdir(os.path.join(artifact_dir, "online", "v0001"))
    assert os.path.isdir(os.path.join(artifact_dir, "online", "v0002"))
