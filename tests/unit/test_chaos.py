"""Unit tests for the serving chaos fault plane (config + draws)."""

import os

import pytest

from repro.exceptions import ValidationError
from repro.serving.chaos import CHAOS_ENV, ChaosConfig, ChaosPlane


class TestChaosConfig:
    def test_parse_roundtrip(self):
        config = ChaosConfig.parse(
            "crash=0.02, hang=0.01, slow=0.05, slow_ms=30, seed=7"
        )
        assert config.crash == 0.02
        assert config.hang == 0.01
        assert config.slow == 0.05
        assert config.slow_ms == 30.0
        assert config.seed == 7
        assert config.enabled

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValidationError):
            ChaosConfig.parse("explode=1.0")

    def test_parse_rejects_malformed_entry(self):
        with pytest.raises(ValidationError):
            ChaosConfig.parse("crash")

    def test_probabilities_validated(self):
        with pytest.raises(ValidationError):
            ChaosConfig(crash=1.5)
        with pytest.raises(ValidationError):
            ChaosConfig(crash=-0.1)
        with pytest.raises(ValidationError):
            ChaosConfig(crash=0.6, hang=0.6)  # sum > 1

    def test_disabled_by_default(self):
        assert not ChaosConfig().enabled

    def test_token_faults_count_as_enabled(self, tmp_path):
        assert ChaosConfig(hang_once=str(tmp_path / "token")).enabled

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert ChaosConfig.from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "crash=0.5,seed=3")
        config = ChaosConfig.from_env()
        assert config == ChaosConfig(crash=0.5, seed=3)
        monkeypatch.setenv(CHAOS_ENV, "  ")
        assert ChaosConfig.from_env() is None


class TestChaosPlane:
    def test_certain_fault_always_fires(self):
        plane = ChaosPlane(ChaosConfig(crash=1.0, seed=0))
        assert all(plane.draw() == "crash" for _ in range(20))

    def test_no_fault_when_disabled(self):
        plane = ChaosPlane(ChaosConfig(), worker_index=1)
        assert all(plane.draw() is None for _ in range(20))

    def test_seeded_draws_are_deterministic_per_worker(self):
        config = ChaosConfig(crash=0.2, hang=0.2, slow=0.2, seed=42)
        plane = ChaosPlane(config, worker_index=0)
        first = [plane.draw() for _ in range(50)]
        replay = ChaosPlane(config, worker_index=0)
        assert [replay.draw() for _ in range(50)] == first
        sibling = ChaosPlane(config, worker_index=1)
        assert [sibling.draw() for _ in range(50)] != first

    def test_mixed_probabilities_cover_all_kinds(self):
        plane = ChaosPlane(
            ChaosConfig(crash=0.25, hang=0.25, slow=0.25, corrupt=0.25, seed=1)
        )
        kinds = {plane.draw() for _ in range(200)}
        assert kinds == {"crash", "hang", "slow", "corrupt"}

    def test_one_shot_token_claimed_exactly_once(self, tmp_path):
        token = tmp_path / "hang-token"
        token.write_text("x")
        plane = ChaosPlane(ChaosConfig(hang_once=str(token)), worker_index=0)
        assert plane.draw() == "hang"
        assert not os.path.exists(str(token))
        assert plane.draw() is None  # token spent

    def test_slow_inject_returns_and_sleeps_briefly(self):
        plane = ChaosPlane(ChaosConfig(slow=1.0, slow_ms=1.0, seed=0))
        assert plane.inject(conn=None) is False  # answered normally after

    def test_corrupt_inject_consumes_request(self):
        sent = []

        class _Conn:
            def send(self, frame):
                sent.append(frame)

        plane = ChaosPlane(ChaosConfig(corrupt=1.0, seed=0))
        assert plane.inject(_Conn()) is True
        assert len(sent) == 1 and sent[0][0] == "chaos-corrupt-frame"
