"""Tests for repro.utils.shm."""

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.shm import (
    SEGMENT_PREFIX,
    SharedArrays,
    attach,
    leaked_segments,
)


@pytest.fixture
def arrays():
    rng = np.random.default_rng(5)
    return {
        "X": rng.normal(size=(6, 4)),
        "y": np.arange(6, dtype=np.int64),
    }


class TestSharedArrays:
    def test_roundtrip_values_shape_dtype(self, arrays):
        with SharedArrays(arrays) as shm:
            attached = attach(shm.handles)
            for key, original in arrays.items():
                view = attached.arrays[key]
                assert view.shape == original.shape
                assert view.dtype == original.dtype
                np.testing.assert_array_equal(view, original)
            attached.close()

    def test_views_are_read_only(self, arrays):
        with SharedArrays(arrays) as shm:
            with pytest.raises(ValueError):
                shm.arrays["X"][0, 0] = 1.0
            attached = attach(shm.handles)
            with pytest.raises(ValueError):
                attached.arrays["X"][0, 0] = 1.0
            attached.close()

    def test_handles_are_picklable(self, arrays):
        with SharedArrays(arrays) as shm:
            restored = pickle.loads(pickle.dumps(shm.handles))
            assert set(restored) == {"X", "y"}
            assert restored["X"].shape == (6, 4)
            attached = attach(restored)
            np.testing.assert_array_equal(attached.arrays["X"], arrays["X"])
            attached.close()

    def test_segments_carry_the_module_prefix(self, arrays):
        with SharedArrays(arrays) as shm:
            for handle in shm.handles.values():
                assert handle.name.startswith(SEGMENT_PREFIX)

    def test_unlink_removes_segments(self, arrays):
        shm = SharedArrays(arrays)
        assert len(leaked_segments()) == 2
        shm.unlink()
        assert leaked_segments() == []
        shm.unlink()  # idempotent

    def test_context_manager_cleans_up_on_exception(self, arrays):
        with pytest.raises(RuntimeError):
            with SharedArrays(arrays):
                assert len(leaked_segments()) == 2
                raise RuntimeError("boom")
        assert leaked_segments() == []

    def test_copies_are_independent_of_source(self):
        source = np.ones((3, 3))
        with SharedArrays({"X": source}) as shm:
            source[:] = 7.0
            np.testing.assert_array_equal(shm.arrays["X"], np.ones((3, 3)))

    def test_non_contiguous_input_is_copied(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        with SharedArrays({"X": base[:, ::2]}) as shm:
            np.testing.assert_array_equal(shm.arrays["X"], base[:, ::2])

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValidationError):
            SharedArrays({})

    def test_empty_array_rejected(self):
        with pytest.raises(ValidationError):
            SharedArrays({"X": np.empty((0, 3))})
        assert leaked_segments() == []

    def test_attach_close_keeps_segment_alive(self, arrays):
        with SharedArrays(arrays) as shm:
            with attach(shm.handles) as attached:
                np.testing.assert_array_equal(attached.arrays["X"], arrays["X"])
            # worker detached; the parent's copy is untouched
            np.testing.assert_array_equal(shm.arrays["X"], arrays["X"])
        assert leaked_segments() == []
