"""Unit tests for the multi-process serving dispatcher.

The dispatcher must be *transparent*: N shm-backed engine workers
answer bitwise-identically to one in-process engine, survive worker
crashes, swap models blue/green without dropping capacity, and ship
per-worker telemetry back into one mergeable registry — all without
leaking shared-memory segments.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.exceptions import ReproError, ValidationError
from repro.serving import (
    ArtifactError,
    DispatchError,
    EngineDispatcher,
    InferenceEngine,
    InProcessClient,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
)
from repro.utils.shm import leaked_segments


@pytest.fixture(scope="module")
def artifact_dir(tiny_compas, tmp_path_factory):
    artifact = fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=25, max_pairs=500, random_state=3
    )
    return save_artifact(
        str(tmp_path_factory.mktemp("dispatch") / "compas"), artifact
    )


@pytest.fixture(scope="module")
def engine(artifact_dir):
    return InferenceEngine(load_artifact(artifact_dir), cache_size=256)


@pytest.fixture(scope="module")
def dispatcher(artifact_dir):
    with EngineDispatcher(
        load_artifact(artifact_dir), n_workers=2, cache_size=256
    ) as running:
        yield running


@pytest.fixture(scope="module")
def records(tiny_compas):
    return tiny_compas.X[:12]


@pytest.fixture(scope="module")
def groups(tiny_compas):
    return tiny_compas.protected[:12]


class TestParity:
    def test_transform_bitwise(self, dispatcher, engine, records):
        assert np.array_equal(
            dispatcher.transform(records), engine.transform(records)
        )

    def test_score_bitwise(self, dispatcher, engine, records):
        assert np.array_equal(dispatcher.score(records), engine.score(records))

    def test_rank_matches_json_roundtrip(self, dispatcher, engine, records):
        expected = json.loads(json.dumps(engine.rank(records, top_k=5)))
        assert dispatcher.rank(records, top_k=5) == expected

    def test_decide_matches_modulo_drift_window(
        self, dispatcher, engine, records, groups
    ):
        # fairness_drift reflects each worker's private sliding window,
        # which legitimately depends on which worker served what.
        got = dispatcher.decide(records, groups)
        expected = json.loads(json.dumps(engine.decide(records, groups)))
        got.pop("fairness_drift")
        expected.pop("fairness_drift")
        assert got == expected

    def test_in_process_client_works_against_dispatcher(
        self, dispatcher, engine, records
    ):
        client = InProcessClient(dispatcher)
        assert client.score(records.tolist()) == json.loads(
            json.dumps(engine.score(records).tolist())
        )


class TestErrors:
    def test_bad_width_maps_to_400(self, dispatcher):
        with pytest.raises(DispatchError) as excinfo:
            dispatcher.score([[1.0, 2.0]])
        assert excinfo.value.status == 400

    def test_n_workers_must_be_positive(self, artifact_dir):
        with pytest.raises(ValidationError):
            EngineDispatcher(load_artifact(artifact_dir), n_workers=0)

    def test_stopped_dispatcher_refuses(self, artifact_dir, records):
        dispatcher = EngineDispatcher(load_artifact(artifact_dir), n_workers=1)
        dispatcher.stop()
        dispatcher.stop()  # idempotent
        with pytest.raises(DispatchError):
            dispatcher.score(records)


class TestTelemetry:
    def test_metrics_carry_worker_labels(self, dispatcher, records):
        dispatcher.score(records)
        text = dispatcher.metrics_text()
        assert 'serving_requests_total{worker="' in text
        assert "serving_dispatch_seconds" in text

    def test_stats_reduce_across_workers(self, dispatcher, records):
        for _ in range(4):
            dispatcher.score(records)
        stats = dispatcher.stats()
        assert stats["requests"] == sum(
            stats["workers"]["requests"].values()
        )
        assert stats["records"] >= stats["requests"] * len(records)
        assert stats["workers"]["n"] == 2
        assert stats["workers"]["alive"] == 2
        assert "score" in stats["endpoints"]

    def test_health_surface(self, dispatcher, artifact_dir):
        # The duck-typed engine surface dispatch() reads for /v1/health.
        assert dispatcher.artifact.checksum
        assert dispatcher.uptime_s >= 0.0
        assert dispatcher.endpoints() == ["transform", "score", "rank", "decide"]
        assert dispatcher.n_workers == 2


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_requests_survive(
        self, artifact_dir, records
    ):
        dispatcher = EngineDispatcher(
            load_artifact(artifact_dir), n_workers=2, cache_size=0
        )
        try:
            baseline = dispatcher.score(records)
            victim = dispatcher._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            for _ in range(6):  # hits both workers
                assert np.array_equal(dispatcher.score(records), baseline)
            stats = dispatcher.stats()["workers"]
            assert stats["respawns"] >= 1
            assert stats["alive"] == 2
        finally:
            dispatcher.stop()


class TestReload:
    def test_reload_same_artifact_changes_nothing(
        self, dispatcher, engine, artifact_dir, records
    ):
        before = dispatcher.score(records)
        answer = dispatcher.reload(artifact_dir)
        assert answer["status"] == "ok"
        assert answer["checksum"] == engine.artifact.checksum
        assert answer["previous_checksum"] == engine.artifact.checksum
        assert answer["workers"] == 2
        assert np.array_equal(dispatcher.score(records), before)

    def test_reload_new_artifact_swaps_checksum_and_answers(
        self, tiny_compas, artifact_dir, tmp_path, records
    ):
        other = fit_serving_pipeline(
            tiny_compas, n_prototypes=3, max_iter=20, max_pairs=400,
            random_state=11,
        )
        other_dir = save_artifact(str(tmp_path / "other"), other)
        dispatcher = EngineDispatcher(load_artifact(artifact_dir), n_workers=2)
        try:
            old = dispatcher.score(records)
            answer = dispatcher.reload(other_dir)
            assert answer["checksum"] == other.checksum
            assert dispatcher.artifact.checksum == other.checksum
            fresh = InferenceEngine(load_artifact(other_dir))
            assert np.array_equal(dispatcher.score(records), fresh.score(records))
            assert not np.array_equal(dispatcher.score(records), old)
            # ...and back: the blue artifact's segments were released
            # but republish cleanly.
            assert dispatcher.reload(artifact_dir)["checksum"] != other.checksum
            assert np.array_equal(dispatcher.score(records), old)
        finally:
            dispatcher.stop()

    def test_reload_missing_artifact_fails_and_keeps_serving(
        self, dispatcher, records, tmp_path
    ):
        before = dispatcher.score(records)
        with pytest.raises(ArtifactError):
            dispatcher.reload(str(tmp_path / "nope"))
        with pytest.raises(ValidationError):
            dispatcher.reload("")
        assert np.array_equal(dispatcher.score(records), before)


class TestCleanup:
    def test_stop_releases_all_segments(self, artifact_dir, records):
        before = set(leaked_segments())
        dispatcher = EngineDispatcher(load_artifact(artifact_dir), n_workers=2)
        dispatcher.score(records)
        dispatcher.stop()
        assert set(leaked_segments()) <= before
