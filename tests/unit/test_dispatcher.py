"""Unit tests for the multi-process serving dispatcher.

The dispatcher must be *transparent*: N shm-backed engine workers
answer bitwise-identically to one in-process engine, survive worker
crashes, swap models blue/green without dropping capacity, and ship
per-worker telemetry back into one mergeable registry — all without
leaking shared-memory segments.
"""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ReproError, ValidationError
from repro.serving import (
    AdmissionError,
    ArtifactError,
    ChaosConfig,
    DispatchError,
    EngineDispatcher,
    InferenceEngine,
    InProcessClient,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
)
from repro.utils.shm import leaked_segments


@pytest.fixture(scope="module")
def artifact_dir(tiny_compas, tmp_path_factory):
    artifact = fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=25, max_pairs=500, random_state=3
    )
    return save_artifact(
        str(tmp_path_factory.mktemp("dispatch") / "compas"), artifact
    )


@pytest.fixture(scope="module")
def engine(artifact_dir):
    return InferenceEngine(load_artifact(artifact_dir), cache_size=256)


@pytest.fixture(scope="module")
def dispatcher(artifact_dir):
    with EngineDispatcher(
        load_artifact(artifact_dir), n_workers=2, cache_size=256
    ) as running:
        yield running


@pytest.fixture(scope="module")
def records(tiny_compas):
    return tiny_compas.X[:12]


@pytest.fixture(scope="module")
def groups(tiny_compas):
    return tiny_compas.protected[:12]


class TestParity:
    def test_transform_bitwise(self, dispatcher, engine, records):
        assert np.array_equal(
            dispatcher.transform(records), engine.transform(records)
        )

    def test_score_bitwise(self, dispatcher, engine, records):
        assert np.array_equal(dispatcher.score(records), engine.score(records))

    def test_rank_matches_json_roundtrip(self, dispatcher, engine, records):
        expected = json.loads(json.dumps(engine.rank(records, top_k=5)))
        assert dispatcher.rank(records, top_k=5) == expected

    def test_decide_matches_modulo_drift_window(
        self, dispatcher, engine, records, groups
    ):
        # fairness_drift reflects each worker's private sliding window,
        # which legitimately depends on which worker served what.
        got = dispatcher.decide(records, groups)
        expected = json.loads(json.dumps(engine.decide(records, groups)))
        got.pop("fairness_drift")
        expected.pop("fairness_drift")
        assert got == expected

    def test_in_process_client_works_against_dispatcher(
        self, dispatcher, engine, records
    ):
        client = InProcessClient(dispatcher)
        assert client.score(records.tolist()) == json.loads(
            json.dumps(engine.score(records).tolist())
        )


class TestErrors:
    def test_bad_width_maps_to_400(self, dispatcher):
        with pytest.raises(DispatchError) as excinfo:
            dispatcher.score([[1.0, 2.0]])
        assert excinfo.value.status == 400

    def test_n_workers_must_be_positive(self, artifact_dir):
        with pytest.raises(ValidationError):
            EngineDispatcher(load_artifact(artifact_dir), n_workers=0)

    def test_stopped_dispatcher_refuses(self, artifact_dir, records):
        dispatcher = EngineDispatcher(load_artifact(artifact_dir), n_workers=1)
        dispatcher.stop()
        dispatcher.stop()  # idempotent
        with pytest.raises(DispatchError):
            dispatcher.score(records)


class TestTelemetry:
    def test_metrics_carry_worker_labels(self, dispatcher, records):
        dispatcher.score(records)
        text = dispatcher.metrics_text()
        assert 'serving_requests_total{worker="' in text
        assert "serving_dispatch_seconds" in text

    def test_stats_reduce_across_workers(self, dispatcher, records):
        for _ in range(4):
            dispatcher.score(records)
        stats = dispatcher.stats()
        assert stats["requests"] == sum(
            stats["workers"]["requests"].values()
        )
        assert stats["records"] >= stats["requests"] * len(records)
        assert stats["workers"]["n"] == 2
        assert stats["workers"]["alive"] == 2
        assert "score" in stats["endpoints"]

    def test_health_surface(self, dispatcher, artifact_dir):
        # The duck-typed engine surface dispatch() reads for /v1/health.
        assert dispatcher.artifact.checksum
        assert dispatcher.uptime_s >= 0.0
        assert dispatcher.endpoints() == ["transform", "score", "rank", "decide"]
        assert dispatcher.n_workers == 2


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_requests_survive(
        self, artifact_dir, records
    ):
        dispatcher = EngineDispatcher(
            load_artifact(artifact_dir), n_workers=2, cache_size=0
        )
        try:
            baseline = dispatcher.score(records)
            victim = dispatcher._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            # Requests survive throughout: the first to hit the dead
            # slot is rerouted to the live peer, never failed.
            for _ in range(6):
                assert np.array_equal(dispatcher.score(records), baseline)
            # The probe respawns the slot in the background (backoff +
            # ping verification), so rotation recovers shortly after.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = dispatcher.stats()["workers"]
                if stats["alive"] == 2:
                    break
                time.sleep(0.05)
            assert stats["respawns"] >= 1
            assert stats["alive"] == 2
            assert np.array_equal(dispatcher.score(records), baseline)
        finally:
            dispatcher.stop()


class TestAdmission:
    def test_overload_is_shed_with_429_and_retry_hint(
        self, artifact_dir, records
    ):
        # One worker that answers slowly (chaos slow fault on every
        # request), one admission slot, a 20 ms queue budget: of three
        # simultaneous calls one is served and the others are shed.
        dispatcher = EngineDispatcher(
            load_artifact(artifact_dir),
            n_workers=1,
            cache_size=0,
            max_inflight=1,
            shed_queue_s=0.02,
            chaos=ChaosConfig(slow=1.0, slow_ms=400.0, seed=5),
        )
        try:
            outcomes = []
            barrier = threading.Barrier(3)

            def call():
                barrier.wait()
                try:
                    dispatcher.score(records)
                    outcomes.append(("ok", None))
                except DispatchError as exc:
                    outcomes.append((exc.status, exc))

            threads = [threading.Thread(target=call) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            statuses = [status for status, _ in outcomes]
            assert statuses.count("ok") >= 1
            assert statuses.count(429) >= 1
            shed_exc = next(exc for status, exc in outcomes if status == 429)
            assert isinstance(shed_exc, AdmissionError)
            assert shed_exc.retry_after_s and shed_exc.retry_after_s > 0
            assert dispatcher.stats()["resilience"]["shed"] >= 1
        finally:
            dispatcher.stop()

    def test_unbounded_by_default(self, dispatcher):
        assert dispatcher.max_inflight is None
        assert dispatcher.stats()["resilience"]["inflight"] == 0


class TestBreaker:
    def test_crash_loop_evicts_then_probe_readmits(
        self, artifact_dir, records
    ):
        dispatcher = EngineDispatcher(
            load_artifact(artifact_dir),
            n_workers=1,
            cache_size=0,
            max_retries=1,
            breaker_threshold=1,
            evict_probation_s=30.0,  # held open until the test heals it
            backoff_base_s=0.02,
            probe_interval_s=0.02,
            chaos=ChaosConfig(crash=1.0, seed=2),
        )
        try:
            # Every attempt crashes its worker; with the only slot dead
            # the request surfaces a definitive 503.
            with pytest.raises(DispatchError) as excinfo:
                dispatcher.score(records)
            assert excinfo.value.status == 503
            assert dispatcher.stats()["resilience"]["evictions"] >= 1
            assert dispatcher.health()["status"] == "unavailable"
            assert dispatcher.health()["workers_evicted"] == [0]
            # Breaker open: refusals are fast (no deadline burn) and
            # carry a retry hint.
            t0 = time.perf_counter()
            with pytest.raises(DispatchError) as refused:
                dispatcher.score(records)
            assert time.perf_counter() - t0 < 1.0
            assert refused.value.status == 503
            assert refused.value.retry_after_s is not None
            # Heal the fault and let probation expire: the probe
            # respawns, ping-verifies, and re-admits the slot.
            dispatcher._chaos = None
            for worker in dispatcher._workers:
                worker.not_before = 0.0
            deadline = time.monotonic() + 15.0
            answer = None
            while time.monotonic() < deadline:
                try:
                    answer = dispatcher.score(records)
                    break
                except DispatchError:
                    time.sleep(0.05)
            assert answer is not None
            assert dispatcher.health()["status"] == "ok"
            resilience = dispatcher.stats()["resilience"]
            assert resilience["readmissions"] >= 1
            assert resilience["evicted"] == []
        finally:
            dispatcher.stop()


class TestReload:
    def test_reload_same_artifact_changes_nothing(
        self, dispatcher, engine, artifact_dir, records
    ):
        before = dispatcher.score(records)
        answer = dispatcher.reload(artifact_dir)
        assert answer["status"] == "ok"
        assert answer["checksum"] == engine.artifact.checksum
        assert answer["previous_checksum"] == engine.artifact.checksum
        assert answer["workers"] == 2
        assert np.array_equal(dispatcher.score(records), before)

    def test_reload_new_artifact_swaps_checksum_and_answers(
        self, tiny_compas, artifact_dir, tmp_path, records
    ):
        other = fit_serving_pipeline(
            tiny_compas, n_prototypes=3, max_iter=20, max_pairs=400,
            random_state=11,
        )
        other_dir = save_artifact(str(tmp_path / "other"), other)
        dispatcher = EngineDispatcher(load_artifact(artifact_dir), n_workers=2)
        try:
            old = dispatcher.score(records)
            answer = dispatcher.reload(other_dir)
            assert answer["checksum"] == other.checksum
            assert dispatcher.artifact.checksum == other.checksum
            fresh = InferenceEngine(load_artifact(other_dir))
            assert np.array_equal(dispatcher.score(records), fresh.score(records))
            assert not np.array_equal(dispatcher.score(records), old)
            # ...and back: the blue artifact's segments were released
            # but republish cleanly.
            assert dispatcher.reload(artifact_dir)["checksum"] != other.checksum
            assert np.array_equal(dispatcher.score(records), old)
        finally:
            dispatcher.stop()

    def test_reload_missing_artifact_fails_and_keeps_serving(
        self, dispatcher, records, tmp_path
    ):
        before = dispatcher.score(records)
        with pytest.raises(ArtifactError):
            dispatcher.reload(str(tmp_path / "nope"))
        with pytest.raises(ValidationError):
            dispatcher.reload("")
        assert np.array_equal(dispatcher.score(records), before)


class TestCleanup:
    def test_stop_releases_all_segments(self, artifact_dir, records):
        before = set(leaked_segments())
        dispatcher = EngineDispatcher(load_artifact(artifact_dir), n_workers=2)
        dispatcher.score(records)
        dispatcher.stop()
        assert set(leaked_segments()) <= before
