"""Tests for repro.metrics.ranking."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.ranking import (
    average_precision_at_k,
    kendall_tau,
    mean_average_precision,
    ndcg_at_k,
)


class TestKendallTau:
    def test_identical_orderings(self, rng):
        a = rng.normal(size=50)
        assert kendall_tau(a, a) == pytest.approx(1.0)

    def test_reversed_orderings(self):
        a = np.arange(20.0)
        assert kendall_tau(a, -a) == pytest.approx(-1.0)

    def test_known_small_case(self):
        # a = [1,2,3], b = [1,3,2]: 2 concordant, 1 discordant -> 1/3
        assert kendall_tau([1, 2, 3], [1, 3, 2]) == pytest.approx(1.0 / 3.0)

    def test_matches_scipy(self, rng):
        from scipy import stats

        for _ in range(5):
            a = rng.normal(size=40)
            b = rng.normal(size=40)
            want = stats.kendalltau(a, b).statistic
            assert kendall_tau(a, b) == pytest.approx(want, abs=1e-10)

    def test_matches_scipy_with_ties(self, rng):
        from scipy import stats

        for _ in range(5):
            a = rng.integers(0, 5, size=30).astype(float)
            b = rng.integers(0, 5, size=30).astype(float)
            want = stats.kendalltau(a, b).statistic
            assert kendall_tau(a, b) == pytest.approx(want, abs=1e-10)

    def test_all_tied_returns_zero(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_short_raises(self):
        with pytest.raises(ValidationError):
            kendall_tau([1.0], [2.0])

    def test_symmetry(self, rng):
        a, b = rng.normal(size=25), rng.normal(size=25)
        assert kendall_tau(a, b) == pytest.approx(kendall_tau(b, a))


class TestAveragePrecision:
    def test_perfect_ranking(self):
        ranking = list(range(20))
        assert average_precision_at_k(ranking, ranking, k=10) == 1.0

    def test_disjoint_rankings(self):
        true = list(range(10))
        pred = list(range(100, 110))
        assert average_precision_at_k(true, pred, k=10) == 0.0

    def test_known_value(self):
        # relevant = {0}; predicted finds it at position 2 of the top-2
        # -> precision 1/2 at the hit, denominator min(k, 1) = 1.
        assert average_precision_at_k([0], [5, 0], k=2) == pytest.approx(0.5)

    def test_item_outside_topk_scores_zero(self):
        assert average_precision_at_k([0], [5, 0], k=1) == 0.0

    def test_order_within_topk_matters(self):
        true = [0, 1, 2, 3]
        early = [0, 1, 9, 8]
        late = [9, 8, 0, 1]
        k = 4
        assert average_precision_at_k(true, early, k) > average_precision_at_k(
            true, late, k
        )

    def test_bounded_01(self, rng):
        items = list(range(30))
        for _ in range(10):
            pred = list(rng.permutation(30))
            ap = average_precision_at_k(items, pred, k=10)
            assert 0.0 <= ap <= 1.0

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            average_precision_at_k([], [1], k=5)

    def test_bad_k_raises(self):
        with pytest.raises(ValidationError):
            average_precision_at_k([1], [1], k=0)


class TestMeanAveragePrecision:
    def test_mean_of_two_queries(self):
        t1, p1 = [0, 1], [0, 1]
        t2, p2 = [0, 1], [5, 6]
        out = mean_average_precision([t1, t2], [p1, p2], k=2)
        assert out == pytest.approx(0.5)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            mean_average_precision([[1]], [[1], [2]])

    def test_no_queries_raises(self):
        with pytest.raises(ValidationError):
            mean_average_precision([], [])


class TestNdcg:
    def test_ideal_ranking_scores_one(self):
        scores = np.array([3.0, 2.0, 1.0, 0.0])
        assert ndcg_at_k(scores, [0, 1, 2, 3], k=4) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        scores = np.array([3.0, 2.0, 1.0, 0.0])
        assert ndcg_at_k(scores, [3, 2, 1, 0], k=4) < 1.0

    def test_zero_relevance_returns_zero(self):
        assert ndcg_at_k(np.zeros(4), [0, 1, 2, 3], k=4) == 0.0

    def test_bounded(self, rng):
        scores = rng.random(15)
        pred = list(rng.permutation(15))
        assert 0.0 <= ndcg_at_k(scores, pred, k=10) <= 1.0
