"""Tests for repro.utils.kernels (the GEMM + landmark kernel layer)."""

import math
import threading

import numpy as np
import pytest

from repro.utils import kernels
from repro.utils.mathkit import softmax


@pytest.fixture
def case(make_kernel_case):
    return make_kernel_case(m=25, k=4, n=6)


def _tensor_dists(X, V, alpha):
    diff = X[:, None, :] - V[None, :, :]
    return (diff * diff) @ alpha


class TestForwardKernels:
    def test_gemm_matches_tensor(self, case):
        X, V, alpha = case
        np.testing.assert_allclose(
            kernels.weighted_sq_dists_gemm(X, V, alpha),
            _tensor_dists(X, V, alpha),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_rowstable_matches_tensor(self, case):
        X, V, alpha = case
        np.testing.assert_allclose(
            kernels.weighted_sq_dists_rowstable(X, V, alpha),
            _tensor_dists(X, V, alpha),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_gemm_precomputed_square_and_out(self, case):
        X, V, alpha = case
        out = np.empty((X.shape[0], V.shape[0]))
        got = kernels.weighted_sq_dists_gemm(X, V, alpha, x_sq=X * X, out=out)
        assert got is out
        np.testing.assert_allclose(got, _tensor_dists(X, V, alpha), rtol=1e-12)

    def test_distances_nonnegative(self, rng):
        # Cancellation-prone case: records equal to a prototype.
        V = rng.normal(size=(3, 5))
        X = np.repeat(V, 4, axis=0)
        alpha = rng.uniform(0.1, 1.0, size=5)
        assert np.all(kernels.weighted_sq_dists_gemm(X, V, alpha) >= 0.0)
        assert np.all(kernels.weighted_sq_dists_rowstable(X, V, alpha) >= 0.0)

    @pytest.mark.parametrize("block", [1, 3, 7, 25])
    @pytest.mark.parametrize("n_features", [6, 40])  # tensor / einsum branch
    def test_rowstable_is_bitwise_chunk_stable(self, rng, block, n_features):
        X = rng.normal(size=(25, n_features))
        V = rng.normal(size=(8, n_features))
        alpha = rng.uniform(0.1, 1.0, size=n_features)
        full = kernels.weighted_sq_dists_rowstable(X, V, alpha)
        chunked = np.vstack(
            [
                kernels.weighted_sq_dists_rowstable(X[s : s + block], V, alpha)
                for s in range(0, X.shape[0], block)
            ]
        )
        assert np.array_equal(full, chunked)

    def test_rowstable_einsum_branch_matches_tensor(self, rng):
        # Force the einsum branch (K * N above the dispatch threshold).
        X = rng.normal(size=(12, 50))
        V = rng.normal(size=(6, 50))
        alpha = rng.uniform(0.1, 1.0, size=50)
        np.testing.assert_allclose(
            kernels.weighted_sq_dists_rowstable(X, V, alpha),
            _tensor_dists(X, V, alpha),
            rtol=1e-12,
            atol=1e-12,
        )


class TestSoftmaxNegInplace:
    def test_matches_mathkit_softmax_bitwise(self, case):
        X, V, alpha = case
        d = kernels.weighted_sq_dists_gemm(X, V, alpha)
        expected = softmax(-d, axis=1)
        got = kernels.softmax_neg_inplace(d)
        assert got is d  # in-place, same buffer
        assert np.array_equal(got, expected)


class TestBackwardKernel:
    def test_matches_einsum_reference(self, case, rng):
        X, V, alpha = case
        P = rng.normal(size=(X.shape[0], V.shape[0]))
        diff = X[:, None, :] - V[None, :, :]
        ref_alpha = -np.einsum("mk,mkn->n", P, diff * diff)
        ref_V = 2.0 * alpha[None, :] * np.einsum("mk,mkn->kn", P, diff)
        got_alpha, got_V = kernels.sq_dist_backward(P, X, V, alpha)
        np.testing.assert_allclose(got_alpha, ref_alpha, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(got_V, ref_V, rtol=1e-10, atol=1e-10)


class TestPairScatter:
    def test_diffs_bitwise_equal_fancy_indexing(self, rng):
        X = rng.normal(size=(20, 5))
        ii = rng.integers(0, 20, size=40)
        jj = rng.integers(0, 20, size=40)
        ps = kernels.PairScatter(ii, jj, 20)
        assert np.array_equal(ps.diffs(X), X[ii] - X[jj])

    def test_scatter_matches_add_at(self, rng):
        m, n, n_pairs = 20, 5, 60
        ii = rng.integers(0, m, size=n_pairs)
        jj = rng.integers(0, m, size=n_pairs)
        contrib = rng.normal(size=(n_pairs, n))
        expected = rng.normal(size=(m, n))
        got = expected.copy()
        np.add.at(expected, ii, contrib)
        np.add.at(expected, jj, -contrib)
        kernels.PairScatter(ii, jj, m).scatter_add(got, contrib)
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)

    def test_repeated_indices_accumulate(self):
        G = np.zeros((3, 2))
        ii = np.array([0, 0, 0])
        jj = np.array([2, 2, 1])
        kernels.PairScatter(ii, jj, 3).scatter_add(G, np.ones((3, 2)))
        np.testing.assert_allclose(G[0], [3.0, 3.0])
        np.testing.assert_allclose(G[1], [-1.0, -1.0])
        np.testing.assert_allclose(G[2], [-2.0, -2.0])


class TestWorkspace:
    def test_buffers_are_reused(self):
        ws = kernels.Workspace()
        a = ws.take("a", (4, 3))
        assert ws.take("a", (4, 3)) is a
        # Shape change reallocates; original name keeps the new buffer.
        b = ws.take("a", (5, 3))
        assert b is not a
        assert ws.take("a", (5, 3)) is b

    def test_distinct_names_distinct_buffers(self):
        ws = kernels.Workspace()
        assert ws.take("x", (2, 2)) is not ws.take("y", (2, 2))

    def test_thread_local_isolation(self):
        ws = kernels.Workspace()
        main_buf = ws.take("d", (8, 8))
        seen = {}

        def worker():
            seen["buf"] = ws.take("d", (8, 8))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["buf"] is not main_buf


class TestBlockedMinkowskiKernels:
    """Row-blocked generic-p kernels vs the (M, K, N) tensor forms."""

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    def test_forward_matches_tensor(self, make_kernel_case, p):
        X, V, alpha = make_kernel_case(m=30, k=4, n=5)
        diff = X[:, None, :] - V[None, :, :]
        expected = (np.abs(diff) ** p) @ alpha
        np.testing.assert_allclose(
            kernels.minkowski_dists_blocked(X, V, alpha, p),
            expected,
            rtol=1e-12,
            atol=1e-12,
        )

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    def test_backward_matches_tensor(self, make_kernel_case, p):
        X, V, alpha = make_kernel_case(m=30, k=4, n=5)
        P = np.random.default_rng(9).normal(size=(30, 4))
        diff = X[:, None, :] - V[None, :, :]
        absdiff = np.abs(diff)
        ref_alpha = -np.einsum("mk,mkn->n", P, absdiff ** p)
        deriv = np.sign(diff) * absdiff ** (p - 1.0)
        ref_V = p * alpha[None, :] * np.einsum("mk,mkn->kn", P, deriv)
        got_alpha, got_V = kernels.minkowski_backward_blocked(P, X, V, alpha, p)
        np.testing.assert_allclose(got_alpha, ref_alpha, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(got_V, ref_V, rtol=1e-10, atol=1e-10)

    def test_blocking_is_row_exact(self, make_kernel_case, monkeypatch):
        """A tiny block budget (forcing many blocks) must not change
        per-row results — each row is an independent contraction."""
        X, V, alpha = make_kernel_case(m=23, k=3, n=4)
        one_shot = kernels.minkowski_dists_blocked(X, V, alpha, 3.0)
        monkeypatch.setattr(kernels, "_BLOCK_ELEMENTS", 16)
        many_blocks = kernels.minkowski_dists_blocked(X, V, alpha, 3.0)
        assert np.array_equal(one_shot, many_blocks)


def _dense_landmark_reference(X_tilde, X_star, idx, scale):
    """Straightforward dense evaluation of the landmark term."""
    dt = np.sum((X_tilde[:, None, :] - X_tilde[idx][None, :, :]) ** 2, axis=2)
    ds = np.sum((X_star[:, None, :] - X_star[idx][None, :, :]) ** 2, axis=2)
    E = dt - ds
    loss = scale * float(np.sum(E * E))
    G = np.zeros_like(X_tilde)
    row = E.sum(axis=1)
    G += 4.0 * scale * (row[:, None] * X_tilde - E @ X_tilde[idx])
    np.add.at(
        G,
        idx,
        -4.0 * scale * (E.T @ X_tilde - E.sum(axis=0)[:, None] * X_tilde[idx]),
    )
    return loss, G


class TestLandmarkFairness:
    @pytest.fixture
    def landmark_case(self, make_data):
        X_star = make_data(18, 4, seed=21)
        X_tilde = make_data(18, 4, seed=22)
        idx = np.array([0, 3, 7, 11, 17])
        return X_star, X_tilde, idx

    def test_loss_matches_dense_reference(self, landmark_case):
        X_star, X_tilde, idx = landmark_case
        lf = kernels.LandmarkFairness(X_star, idx, scale=18 / 5)
        expected, _ = _dense_landmark_reference(X_tilde, X_star, idx, 18 / 5)
        assert lf.loss(X_tilde) == pytest.approx(expected, rel=1e-12)

    def test_grad_matches_dense_reference(self, landmark_case):
        X_star, X_tilde, idx = landmark_case
        lf = kernels.LandmarkFairness(X_star, idx, scale=18 / 5)
        exp_loss, exp_G = _dense_landmark_reference(X_tilde, X_star, idx, 18 / 5)
        loss, G = lf.loss_and_grad_x(X_tilde)
        assert loss == pytest.approx(exp_loss, rel=1e-12)
        np.testing.assert_allclose(G, exp_G, rtol=1e-10, atol=1e-10)

    def test_anchor_order_is_irrelevant(self, landmark_case):
        X_star, X_tilde, idx = landmark_case
        a = kernels.LandmarkFairness(X_star, idx, scale=1.0)
        b = kernels.LandmarkFairness(X_star, idx[::-1].copy(), scale=1.0)
        assert a.loss(X_tilde) == b.loss(X_tilde)
        la, Ga = a.loss_and_grad_x(X_tilde)
        lb, Gb = b.loss_and_grad_x(X_tilde)
        assert la == lb
        assert np.array_equal(Ga, Gb.copy())

    def test_default_scale_is_m_over_l(self, landmark_case):
        X_star, _, idx = landmark_case
        assert kernels.LandmarkFairness(X_star, idx).scale == pytest.approx(18 / 5)

    def test_blocking_matches_one_shot(self, landmark_case, monkeypatch):
        X_star, X_tilde, idx = landmark_case
        one = kernels.LandmarkFairness(X_star, idx, scale=2.0)
        loss_one, G_one = one.loss_and_grad_x(X_tilde)
        G_one = G_one.copy()
        monkeypatch.setattr(kernels, "_BLOCK_ELEMENTS", 8)  # ~1 row per block
        many = kernels.LandmarkFairness(X_star, idx, scale=2.0)
        loss_many, G_many = many.loss_and_grad_x(X_tilde)
        assert loss_one == pytest.approx(loss_many, rel=1e-13)
        np.testing.assert_allclose(G_one, G_many, rtol=1e-12, atol=1e-12)

    def test_at_full_rank_matches_full_pair_moments(self, make_data):
        """Anchors = every record: the landmark loss is the full
        ordered-pair loss (here checked against the moment form)."""
        X_star = make_data(16, 3, seed=31)
        X_tilde = make_data(16, 3, seed=32)
        lf = kernels.LandmarkFairness(X_star, np.arange(16), scale=1.0)
        moment = kernels.FullPairFairness(X_star)
        assert lf.loss(X_tilde) == pytest.approx(moment.loss(X_tilde), rel=1e-10)

    def test_invalid_anchors_rejected(self, make_data):
        X_star = make_data(10, 3)
        with pytest.raises(ValueError, match="distinct"):
            kernels.LandmarkFairness(X_star, [1, 1])
        with pytest.raises(ValueError, match="range"):
            kernels.LandmarkFairness(X_star, [0, 10])
        with pytest.raises(ValueError, match="anchor"):
            kernels.LandmarkFairness(X_star, [])


class TestCompensatedSum:
    def test_exact_on_trivial_sums(self):
        acc = kernels.CompensatedSum()
        for value in (1.5, 2.25, -0.75):
            acc.add(value)
        assert acc.result == 3.0

    def test_chaining_and_initial_value(self):
        assert kernels.CompensatedSum(1.0).add(2.0).add(3.0).result == 6.0

    def test_keeps_ten_digits_where_naive_loses_everything(self):
        """The accumulator contract behind the ROADMAP watch-item:
        summing many small addends in the shadow of huge cancelling
        ones must keep >= 10 significant digits."""
        tiny = [1e-4] * 100_000
        seq = [1e12] + tiny + [-1e12]
        exact = math.fsum(seq)
        assert exact == pytest.approx(10.0, rel=1e-12)

        naive = 0.0
        for value in seq:
            naive += value
        # Every tiny addend falls below half an ulp of 1e12 and is
        # rounded away: the naive loop keeps essentially zero digits.
        assert abs(naive - exact) / exact > 1e-2

        acc = kernels.CompensatedSum()
        for value in seq:
            acc.add(value)
        assert abs(acc.result - exact) / exact < 1e-10


class TestNearCancellationRegression:
    """The ROADMAP watch-item: a fit driving D_tilde -> D* to many
    digits destroys the moment expansion's significance; the landmark
    oracle computes the error entries directly (with compensated
    cross-block accumulation) and must keep >= 10 significant digits.
    """

    @pytest.fixture
    def near_cancellation(self, make_data):
        m, n = 60, 4
        X_star = make_data(m, n, seed=41)
        # D_tilde -> D*: the transform nearly reproduces the targets.
        X_tilde = X_star + 1e-4 * make_data(m, n, seed=42)
        return X_star, X_tilde

    def _exact_direct_loss(self, X_star, X_tilde):
        """fsum over directly computed squared errors (same expanded-
        square formula as the kernel, exact summation)."""
        idx = np.arange(X_star.shape[0])
        aa = np.einsum("mn,mn->m", X_tilde, X_tilde)
        dt = np.maximum(aa[:, None] + aa[None, :] - 2.0 * X_tilde @ X_tilde.T, 0.0)
        ss = np.einsum("mn,mn->m", X_star, X_star)
        ds = np.maximum(ss[:, None] + ss[None, :] - 2.0 * X_star @ X_star.T, 0.0)
        E = dt - ds
        return math.fsum((E * E).ravel().tolist())

    def test_landmark_oracle_keeps_ten_digits(self, near_cancellation):
        X_star, X_tilde = near_cancellation
        exact = self._exact_direct_loss(X_star, X_tilde)
        lf = kernels.LandmarkFairness(X_star, np.arange(60), scale=1.0)
        assert abs(lf.loss(X_tilde) - exact) / exact < 1e-10
        loss_grad, _ = lf.loss_and_grad_x(X_tilde)
        assert abs(loss_grad - exact) / exact < 1e-10

    def test_moment_form_demonstrably_loses_digits(self, near_cancellation):
        """The watch-item is real: on the same inputs the moment
        expansion's cancellation error is orders of magnitude above
        the landmark oracle's."""
        X_star, X_tilde = near_cancellation
        exact = self._exact_direct_loss(X_star, X_tilde)
        moment = kernels.FullPairFairness(X_star)
        moment_err = abs(moment.loss(X_tilde) - exact) / exact
        assert moment_err > 1e-9
