"""Tests for repro.utils.kernels (the GEMM fast-kernel layer)."""

import threading

import numpy as np
import pytest

from repro.utils import kernels
from repro.utils.mathkit import softmax


@pytest.fixture
def case(rng):
    X = rng.normal(size=(25, 6))
    V = rng.normal(size=(4, 6))
    alpha = rng.uniform(0.1, 1.0, size=6)
    return X, V, alpha


def _tensor_dists(X, V, alpha):
    diff = X[:, None, :] - V[None, :, :]
    return (diff * diff) @ alpha


class TestForwardKernels:
    def test_gemm_matches_tensor(self, case):
        X, V, alpha = case
        np.testing.assert_allclose(
            kernels.weighted_sq_dists_gemm(X, V, alpha),
            _tensor_dists(X, V, alpha),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_rowstable_matches_tensor(self, case):
        X, V, alpha = case
        np.testing.assert_allclose(
            kernels.weighted_sq_dists_rowstable(X, V, alpha),
            _tensor_dists(X, V, alpha),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_gemm_precomputed_square_and_out(self, case):
        X, V, alpha = case
        out = np.empty((X.shape[0], V.shape[0]))
        got = kernels.weighted_sq_dists_gemm(X, V, alpha, x_sq=X * X, out=out)
        assert got is out
        np.testing.assert_allclose(got, _tensor_dists(X, V, alpha), rtol=1e-12)

    def test_distances_nonnegative(self, rng):
        # Cancellation-prone case: records equal to a prototype.
        V = rng.normal(size=(3, 5))
        X = np.repeat(V, 4, axis=0)
        alpha = rng.uniform(0.1, 1.0, size=5)
        assert np.all(kernels.weighted_sq_dists_gemm(X, V, alpha) >= 0.0)
        assert np.all(kernels.weighted_sq_dists_rowstable(X, V, alpha) >= 0.0)

    @pytest.mark.parametrize("block", [1, 3, 7, 25])
    @pytest.mark.parametrize("n_features", [6, 40])  # tensor / einsum branch
    def test_rowstable_is_bitwise_chunk_stable(self, rng, block, n_features):
        X = rng.normal(size=(25, n_features))
        V = rng.normal(size=(8, n_features))
        alpha = rng.uniform(0.1, 1.0, size=n_features)
        full = kernels.weighted_sq_dists_rowstable(X, V, alpha)
        chunked = np.vstack(
            [
                kernels.weighted_sq_dists_rowstable(X[s : s + block], V, alpha)
                for s in range(0, X.shape[0], block)
            ]
        )
        assert np.array_equal(full, chunked)

    def test_rowstable_einsum_branch_matches_tensor(self, rng):
        # Force the einsum branch (K * N above the dispatch threshold).
        X = rng.normal(size=(12, 50))
        V = rng.normal(size=(6, 50))
        alpha = rng.uniform(0.1, 1.0, size=50)
        np.testing.assert_allclose(
            kernels.weighted_sq_dists_rowstable(X, V, alpha),
            _tensor_dists(X, V, alpha),
            rtol=1e-12,
            atol=1e-12,
        )


class TestSoftmaxNegInplace:
    def test_matches_mathkit_softmax_bitwise(self, case):
        X, V, alpha = case
        d = kernels.weighted_sq_dists_gemm(X, V, alpha)
        expected = softmax(-d, axis=1)
        got = kernels.softmax_neg_inplace(d)
        assert got is d  # in-place, same buffer
        assert np.array_equal(got, expected)


class TestBackwardKernel:
    def test_matches_einsum_reference(self, case, rng):
        X, V, alpha = case
        P = rng.normal(size=(X.shape[0], V.shape[0]))
        diff = X[:, None, :] - V[None, :, :]
        ref_alpha = -np.einsum("mk,mkn->n", P, diff * diff)
        ref_V = 2.0 * alpha[None, :] * np.einsum("mk,mkn->kn", P, diff)
        got_alpha, got_V = kernels.sq_dist_backward(P, X, V, alpha)
        np.testing.assert_allclose(got_alpha, ref_alpha, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(got_V, ref_V, rtol=1e-10, atol=1e-10)


class TestPairScatter:
    def test_diffs_bitwise_equal_fancy_indexing(self, rng):
        X = rng.normal(size=(20, 5))
        ii = rng.integers(0, 20, size=40)
        jj = rng.integers(0, 20, size=40)
        ps = kernels.PairScatter(ii, jj, 20)
        assert np.array_equal(ps.diffs(X), X[ii] - X[jj])

    def test_scatter_matches_add_at(self, rng):
        m, n, n_pairs = 20, 5, 60
        ii = rng.integers(0, m, size=n_pairs)
        jj = rng.integers(0, m, size=n_pairs)
        contrib = rng.normal(size=(n_pairs, n))
        expected = rng.normal(size=(m, n))
        got = expected.copy()
        np.add.at(expected, ii, contrib)
        np.add.at(expected, jj, -contrib)
        kernels.PairScatter(ii, jj, m).scatter_add(got, contrib)
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)

    def test_repeated_indices_accumulate(self):
        G = np.zeros((3, 2))
        ii = np.array([0, 0, 0])
        jj = np.array([2, 2, 1])
        kernels.PairScatter(ii, jj, 3).scatter_add(G, np.ones((3, 2)))
        np.testing.assert_allclose(G[0], [3.0, 3.0])
        np.testing.assert_allclose(G[1], [-1.0, -1.0])
        np.testing.assert_allclose(G[2], [-2.0, -2.0])


class TestWorkspace:
    def test_buffers_are_reused(self):
        ws = kernels.Workspace()
        a = ws.take("a", (4, 3))
        assert ws.take("a", (4, 3)) is a
        # Shape change reallocates; original name keeps the new buffer.
        b = ws.take("a", (5, 3))
        assert b is not a
        assert ws.take("a", (5, 3)) is b

    def test_distinct_names_distinct_buffers(self):
        ws = kernels.Workspace()
        assert ws.take("x", (2, 2)) is not ws.take("y", (2, 2))

    def test_thread_local_isolation(self):
        ws = kernels.Workspace()
        main_buf = ws.take("d", (8, 8))
        seen = {}

        def worker():
            seen["buf"] = ws.take("d", (8, 8))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["buf"] is not main_buf
