"""Tests for repro.core.executor."""

import os
import tempfile

import numpy as np
import pytest

from repro.core.executor import (
    EXECUTOR_BACKENDS,
    ParallelExecutor,
    TaskError,
    WorkerCrashError,
    effective_n_jobs,
    get_shared,
    get_state,
    in_worker,
    run_tasks,
)
from repro.exceptions import ValidationError
from repro.utils.shm import leaked_segments


def _double(payload):
    return payload * 2


def _shared_row_sum(i):
    return float(get_shared()["X"][i].sum()) * get_state()["scale"]


def _raise_on_two(payload):
    if payload == 2:
        raise ValueError("payload two is broken")
    return payload


def _crash(payload):
    os._exit(17)


class TestEffectiveNJobs:
    def test_none_and_one_are_serial(self):
        assert effective_n_jobs(None) == 1
        assert effective_n_jobs(1) == 1

    def test_minus_one_uses_cpus(self):
        assert effective_n_jobs(-1) == (os.cpu_count() or 1)

    def test_limit_clamps(self):
        assert effective_n_jobs(8, limit=3) == 3

    @pytest.mark.parametrize("bad", [0, -2])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValidationError):
            effective_n_jobs(bad)


class TestBackends:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_map_preserves_order(self, backend):
        out = run_tasks(_double, list(range(7)), n_jobs=2, backend=backend)
        assert out == [0, 2, 4, 6, 8, 10, 12]

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_state_and_shared_reach_tasks(self, backend):
        X = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = run_tasks(
            _shared_row_sum,
            [0, 1, 2],
            n_jobs=2,
            backend=backend,
            state={"scale": 2.0},
            shared={"X": X},
        )
        assert out == [12.0, 44.0, 76.0]

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValidationError):
            ParallelExecutor(_double, 2, backend="greenlet")

    def test_empty_payloads(self):
        assert run_tasks(_double, [], n_jobs=2) == []

    def test_n_jobs_one_runs_inline(self):
        executor = ParallelExecutor(_double, 1, backend="process")
        assert executor.backend == "serial"
        assert executor.map([1, 2]) == [2, 4]

    def test_closures_work_under_fork(self):
        captured = np.array([10.0, 20.0])
        out = run_tasks(lambda i: float(captured[i]), [0, 1], n_jobs=2)
        assert out == [10.0, 20.0]


class TestWorkerFlags:
    def test_parent_not_in_worker(self):
        assert not in_worker()

    def test_process_tasks_see_worker_flag(self):
        assert run_tasks(lambda _: in_worker(), [0], n_jobs=2) == [True]

    def test_thread_tasks_see_worker_flag(self):
        assert run_tasks(lambda _: in_worker(), [0], n_jobs=2, backend="thread") == [
            True
        ]

    def test_serial_map_leaves_flag_down(self):
        # A serial search over parallel fits is legitimate; only real
        # pools raise the nested-parallelism guard.
        assert run_tasks(lambda _: in_worker(), [0]) == [False]

    def test_nested_jobs_collapse_inside_worker(self):
        out = run_tasks(lambda _: effective_n_jobs(8), [0], n_jobs=2)
        assert out == [1]


class TestTaskErrors:
    def test_task_error_carries_remote_traceback(self):
        with pytest.raises(TaskError) as excinfo:
            run_tasks(_raise_on_two, [0, 1, 2, 3], n_jobs=2)
        assert excinfo.value.task_index == 2
        assert excinfo.value.exc_type == "ValueError"
        assert "payload two is broken" in str(excinfo.value)
        assert "Traceback" in excinfo.value.remote_traceback

    def test_pool_survives_task_error(self):
        with ParallelExecutor(_raise_on_two, 2) as executor:
            with pytest.raises(TaskError):
                executor.map([0, 2])
            assert executor.map([0, 1, 3]) == [0, 1, 3]

    def test_serial_backend_raises_directly(self):
        with pytest.raises(ValueError):
            run_tasks(_raise_on_two, [2])


class TestCrashRecovery:
    def test_crash_retried_on_fresh_worker(self, tmp_path):
        marker_dir = str(tmp_path)

        def crash_once(i):
            marker = os.path.join(marker_dir, str(i))
            if not os.path.exists(marker):
                open(marker, "w").close()
                os._exit(13)
            return i * 10

        out = run_tasks(crash_once, [0, 1, 2, 3], n_jobs=2)
        assert out == [0, 10, 20, 30]

    def test_persistent_crash_raises_after_retries(self):
        with pytest.raises(WorkerCrashError) as excinfo:
            run_tasks(_crash, [0], n_jobs=2, max_retries=1)
        assert excinfo.value.task_index == 0
        assert excinfo.value.attempts == 2

    def test_pool_usable_after_crash_abort(self):
        executor = ParallelExecutor(_crash, 2, max_retries=0)
        with pytest.raises(WorkerCrashError):
            executor.map([0])
        # The crashed pool was torn down; a new map restarts it.
        executor.fn = _double
        assert executor.map([3]) == [6]
        executor.shutdown()


class TestSharedMemoryLifecycle:
    def test_no_segments_leak_after_map(self):
        X = np.ones((4, 4))
        run_tasks(_shared_row_sum, [0], n_jobs=2, state={"scale": 1.0}, shared={"X": X})
        assert leaked_segments() == []

    def test_no_segments_leak_after_task_error(self):
        X = np.ones((4, 4))
        with pytest.raises(TaskError):
            run_tasks(_raise_on_two, [2], n_jobs=2, shared={"X": X})
        assert leaked_segments() == []

    def test_no_segments_leak_after_crash(self):
        X = np.ones((4, 4))
        with pytest.raises(WorkerCrashError):
            run_tasks(_crash, [0], n_jobs=2, max_retries=0, shared={"X": X})
        assert leaked_segments() == []


@pytest.mark.nightly
class TestExecutorStress:
    """High-volume checks, run on the scheduled nightly profile."""

    def test_many_tasks_preserve_order(self):
        out = run_tasks(_double, list(range(200)), n_jobs=4)
        assert out == [2 * i for i in range(200)]

    def test_repeated_crash_recovery(self, tmp_path):
        marker_dir = str(tmp_path)

        def crash_once(i):
            marker = os.path.join(marker_dir, str(i))
            if not os.path.exists(marker):
                open(marker, "w").close()
                os._exit(11)
            return i

        out = run_tasks(crash_once, list(range(12)), n_jobs=3, max_retries=1)
        assert out == list(range(12))
