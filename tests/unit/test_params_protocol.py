"""The sklearn-compatible parameter protocol (get_params/set_params).

One contract across the library (:class:`repro.learners.base.ParamsMixin`):
``get_params()`` returns the constructor arguments by ``__init__``
introspection, ``set_params`` validates eagerly and never un-fits, and
``type(est)(**est.get_params())`` reconstructs an equivalent estimator
— which is exactly what ``sklearn.base.clone`` does.
"""

import numpy as np
import pytest

from repro.baselines import LFR
from repro.core import IFair
from repro.data.compas import generate_compas
from repro.exceptions import ValidationError
from repro.learners.base import ParamsMixin
from repro.learners.knn import KNearestNeighbors
from repro.learners.linear import LinearRegression, RidgeRegression
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler

# The executor's worker-state channel and the serving artifact both
# round-trip IFair through get_params(); this exact key set (and order)
# is what they historically shipped — introspection must reproduce it.
IFAIR_PARAM_KEYS = [
    "n_prototypes",
    "lambda_util",
    "mu_fair",
    "p",
    "init",
    "protected_alpha_init",
    "n_restarts",
    "max_iter",
    "tol",
    "max_pairs",
    "pair_mode",
    "n_landmarks",
    "landmark_method",
    "n_jobs",
    "backend",
    "pool",
    "warm_start_theta",
    "oracle_jobs",
    "oracle_shards",
    "batch_mode",
    "batch_size",
    "random_state",
]

ESTIMATORS = [
    IFair(n_prototypes=3, max_iter=5),
    LFR(n_prototypes=3, max_iter=5),
    LogisticRegression(l2=0.5, max_iter=50),
    RidgeRegression(l2=2.0),
    LinearRegression(),
    KNearestNeighbors(k=3),
    StandardScaler(with_mean=True),
]


def test_ifair_param_keys_pinned():
    assert list(IFair().get_params()) == IFAIR_PARAM_KEYS


@pytest.mark.parametrize(
    "estimator", ESTIMATORS, ids=lambda e: type(e).__name__
)
def test_roundtrip_reconstructs_equal_estimator(estimator):
    params = estimator.get_params()
    rebuilt = type(estimator)(**params)
    assert rebuilt.get_params() == params


@pytest.mark.parametrize(
    "estimator", ESTIMATORS, ids=lambda e: type(e).__name__
)
def test_every_param_is_a_stored_attribute(estimator):
    for name, value in estimator.get_params().items():
        assert getattr(estimator, name) is value or getattr(
            estimator, name
        ) == value


def test_get_params_deep_defaults_match_zero_arg():
    model = IFair()
    assert model.get_params() == model.get_params(deep=True)
    assert model.get_params() == model.get_params(deep=False)


def test_set_params_unknown_name_raises_with_valid_list():
    with pytest.raises(ValidationError, match="n_prototypes"):
        IFair().set_params(bogus=1)


def test_set_params_runs_constructor_validation():
    with pytest.raises(ValidationError):
        IFair().set_params(pair_mode="bogus")


def test_set_params_returns_self_and_updates():
    model = IFair()
    assert model.set_params(max_iter=7, mu_fair=2.5) is model
    assert model.max_iter == 7
    assert model.mu_fair == 2.5


def test_set_params_preserves_fitted_state():
    dataset = generate_compas(40, charge_levels=4, random_state=0)
    model = IFair(n_prototypes=2, max_iter=5, max_pairs=50, random_state=0)
    model.fit(dataset.X, dataset.protected_indices)
    prototypes = model.prototypes_.copy()
    model.set_params(max_iter=9)
    assert model.max_iter == 9
    assert np.array_equal(model.prototypes_, prototypes)
    assert model.alpha_ is not None
    # the fitted model still transforms without refitting
    model.transform(dataset.X[:5])


def test_var_kwargs_constructor_is_rejected():
    class Sloppy(ParamsMixin):
        def __init__(self, **kwargs):
            pass

    with pytest.raises(ValidationError, match="explicitly"):
        Sloppy().get_params()


def test_bare_mixin_has_no_params():
    class Bare(ParamsMixin):
        pass

    assert Bare().get_params() == {}


def test_nested_estimator_params():
    class Wrapper(ParamsMixin):
        def __init__(self, inner=None):
            self.inner = inner

    wrapped = Wrapper(inner=RidgeRegression(l2=3.0))
    params = wrapped.get_params()
    assert params["inner__l2"] == 3.0
    wrapped.set_params(inner__l2=0.5)
    assert wrapped.inner.l2 == 0.5


def test_sklearn_clone_roundtrip():
    sklearn_base = pytest.importorskip("sklearn.base")
    for estimator in (IFair(n_prototypes=3, max_iter=5), LFR(n_prototypes=3)):
        cloned = sklearn_base.clone(estimator)
        assert type(cloned) is type(estimator)
        assert cloned is not estimator
        assert cloned.get_params() == estimator.get_params()
