"""Tests for repro.serving.engine (batching, caching, the four verbs)."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serving.engine import InferenceEngine, LRUCache, MicroBatcher
from repro.serving.fit import fit_serving_pipeline


@pytest.fixture(scope="module")
def artifact(tiny_compas):
    return fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=25, max_pairs=500, random_state=3
    )


@pytest.fixture
def engine(artifact):
    return InferenceEngine(artifact, batch_size=16, cache_size=128)


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        assert cache.get(b"a") is None
        cache.put(b"a", np.ones(2))
        assert np.array_equal(cache.get(b"a"), np.ones(2))
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_lru(self):
        cache = LRUCache(2)
        cache.put(b"a", np.zeros(1))
        cache.put(b"b", np.zeros(1))
        cache.get(b"a")  # refresh a
        cache.put(b"c", np.zeros(1))  # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert len(cache) == 2

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        cache.put(b"a", np.zeros(1))
        assert cache.get(b"a") is None
        assert len(cache) == 0


class TestMicroBatcher:
    def test_single_caller_passthrough(self):
        calls = []

        def fn(X):
            calls.append(X.shape[0])
            return X * 2.0

        batcher = MicroBatcher(fn)
        out = batcher.submit(np.ones((3, 2)))
        assert np.array_equal(out, 2.0 * np.ones((3, 2)))
        assert calls == [3]

    def test_concurrent_callers_coalesce(self):
        shapes = []
        leader_entered = threading.Event()
        release = threading.Event()

        def fn(X):
            # The first model pass blocks until the test says go, so the
            # four followers pile up behind the in-flight leader.
            if not shapes:
                leader_entered.set()
                assert release.wait(timeout=5.0)
            shapes.append(X.shape[0])
            return X + 1.0

        batcher = MicroBatcher(fn)
        results = {}

        def worker(i):
            results[i] = batcher.submit(np.full((2, 2), float(i)))

        leader = threading.Thread(target=worker, args=(0,))
        leader.start()
        assert leader_entered.wait(timeout=5.0)
        followers = [threading.Thread(target=worker, args=(i,)) for i in range(1, 5)]
        for t in followers:
            t.start()
        while len(batcher._queue) < 4:  # all followers queued behind the leader
            time.sleep(0.001)
        release.set()
        for t in [leader] + followers:
            t.join(timeout=5.0)
        for i in range(5):
            assert np.array_equal(results[i], np.full((2, 2), float(i) + 1.0))
        # one pass for the leader's rows, then the leader hands off and
        # a promoted follower runs one coalesced pass for the rest
        assert shapes == [2, 8]
        assert batcher.n_flushes == 2
        assert batcher.n_coalesced == 3
        # leadership token was released: the batcher is reusable
        assert np.array_equal(
            batcher.submit(np.zeros((1, 2))), np.ones((1, 2))
        )

    def test_sustained_concurrent_stream_terminates(self):
        # Regression: the leader must hand off once its own rows are
        # answered instead of draining later arrivals forever.
        batcher = MicroBatcher(lambda X: X * 2.0)
        mismatches = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(50):
                rows = rng.normal(size=(int(rng.integers(1, 4)), 3))
                out = batcher.submit(rows)
                if not np.array_equal(out, rows * 2.0):
                    mismatches.append(seed)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert not mismatches
        assert batcher._flushing is False

    def test_error_propagates_to_callers(self):
        def fn(X):
            raise ValueError("boom")

        batcher = MicroBatcher(fn)
        with pytest.raises(ValueError, match="boom"):
            batcher.submit(np.ones((1, 1)))
        # the batcher stays usable for the next request
        batcher._fn = lambda X: X
        assert batcher.submit(np.ones((1, 1))).shape == (1, 1)


class TestEngineVerbs:
    def test_transform_matches_offline_pipeline(self, engine, artifact, tiny_compas):
        X = tiny_compas.X[:12]
        expected = artifact.model.transform(artifact.scaler.transform(X))
        assert np.array_equal(engine.transform(X.tolist()), expected)

    def test_score_matches_scorer(self, engine, artifact, tiny_compas):
        X = tiny_compas.X[:12]
        Z = artifact.model.transform(artifact.scaler.transform(X))
        expected = artifact.scorer.predict_proba(Z)
        assert np.allclose(engine.score(X), expected, rtol=0, atol=1e-12)

    def test_rank_orders_by_score(self, engine, tiny_compas):
        X = tiny_compas.X[:10]
        result = engine.rank(X, groups=tiny_compas.protected[:10].tolist())
        scores = np.asarray(result["scores"])
        order = result["order"]
        assert len(order) == 10
        assert np.array_equal(
            np.sort(scores)[::-1], scores[np.asarray(order)]
        )
        assert 0.0 <= result["protected_share"] <= 1.0

    def test_rank_top_k_prefix(self, engine, tiny_compas):
        X = tiny_compas.X[:10]
        full = engine.rank(X)
        top3 = engine.rank(X, top_k=3)
        assert top3["order"] == full["order"][:3]
        assert top3["top_k"] == 3

    def test_decide_respects_group_thresholds(self, engine, artifact, tiny_compas):
        X = tiny_compas.X[:20]
        groups = tiny_compas.protected[:20]
        result = engine.decide(X, groups.tolist())
        scores = np.asarray(result["scores"])
        decisions = np.asarray(result["decisions"])
        for g in (0.0, 1.0):
            threshold = artifact.thresholds.thresholds_[g]
            mask = groups == g
            assert np.array_equal(
                decisions[mask], (scores[mask] > threshold).astype(float)
            )

    def test_single_record_request(self, engine, tiny_compas):
        scores = engine.score(tiny_compas.X[0].tolist())
        assert scores.shape == (1,)

    def test_evaluate_ranking_reuses_batch_engine(self, engine, tiny_compas):
        X = tiny_compas.X[:15]
        evaluation = engine.evaluate_ranking(
            X, tiny_compas.y[:15], tiny_compas.protected[:15], k=5
        )
        assert 0.0 <= evaluation.map_score <= 1.0
        assert -1.0 <= evaluation.kendall <= 1.0

    def test_verbs_unavailable_without_components(self, artifact):
        bare = InferenceEngine(
            type(artifact)(
                model=artifact.model,
                protected_indices=artifact.protected_indices,
                scaler=artifact.scaler,
            )
        )
        assert bare.endpoints() == ["transform"]
        with pytest.raises(ValidationError, match="no scorer"):
            bare.score([[0.0] * artifact.n_features])

    def test_feature_width_checked(self, engine):
        with pytest.raises(ValidationError, match="features"):
            engine.transform([[1.0, 2.0]])

    def test_non_finite_rejected(self, engine, artifact):
        bad = [[float("nan")] * artifact.n_features]
        with pytest.raises(ValidationError, match="NaN"):
            engine.transform(bad)


class TestEngineCache:
    def test_repeat_records_hit_cache(self, artifact, tiny_compas):
        engine = InferenceEngine(artifact, cache_size=64)
        X = tiny_compas.X[:8]
        first = engine.transform(X)
        stats = engine.stats()
        assert stats["cache_misses"] == 8 and stats["cache_hits"] == 0
        second = engine.transform(X)
        stats = engine.stats()
        assert stats["cache_hits"] == 8 and stats["cache_misses"] == 8
        assert stats["cache_hit_ratio"] == 0.5
        assert np.array_equal(first, second)

    def test_partial_overlap_mixes_hits_and_misses(self, artifact, tiny_compas):
        engine = InferenceEngine(artifact, cache_size=64)
        engine.transform(tiny_compas.X[:4])
        engine.transform(tiny_compas.X[2:6])
        stats = engine.stats()
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 6

    def test_cached_results_identical_to_uncached(self, artifact, tiny_compas):
        cached = InferenceEngine(artifact, cache_size=64)
        uncached = InferenceEngine(artifact, cache_size=0)
        X = tiny_compas.X[:6]
        cached.transform(X)  # warm
        assert np.array_equal(cached.transform(X), uncached.transform(X))

    def test_chunking_equals_unchunked(self, artifact, tiny_compas):
        small = InferenceEngine(artifact, batch_size=3, cache_size=0)
        big = InferenceEngine(artifact, batch_size=10_000, cache_size=0)
        X = tiny_compas.X[:25]
        assert np.array_equal(small.transform(X), big.transform(X))

    def test_stats_counts_requests_and_records(self, engine, tiny_compas):
        engine.transform(tiny_compas.X[:5])
        engine.score(tiny_compas.X[:3])
        stats = engine.stats()
        assert stats["requests"] == 2
        assert stats["records"] == 8
