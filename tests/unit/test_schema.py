"""Tests for repro.data.schema."""

import numpy as np
import pytest

from repro.data.schema import Attribute, DatasetSchema, TabularDataset
from repro.exceptions import SchemaError, ValidationError


def _schema():
    return DatasetSchema(
        name="demo",
        attributes=(
            Attribute("a", "numeric"),
            Attribute("b", "categorical", 3),
            Attribute("s", "categorical", 2, protected=True),
        ),
    )


class TestAttribute:
    def test_numeric_width(self):
        assert Attribute("x", "numeric").encoded_width == 1

    def test_categorical_width(self):
        assert Attribute("x", "categorical", 5).encoded_width == 5

    def test_bad_kind(self):
        with pytest.raises(SchemaError):
            Attribute("x", "ordinal")

    def test_categorical_needs_levels(self):
        with pytest.raises(SchemaError):
            Attribute("x", "categorical", 1)

    def test_numeric_cannot_have_levels(self):
        with pytest.raises(SchemaError):
            Attribute("x", "numeric", 3)


class TestDatasetSchema:
    def test_encoded_width(self):
        assert _schema().encoded_width == 1 + 3 + 2

    def test_encoded_indices_of(self):
        schema = _schema()
        assert schema.encoded_indices_of("a") == [0]
        assert schema.encoded_indices_of("b") == [1, 2, 3]
        assert schema.encoded_indices_of("s") == [4, 5]

    def test_protected_encoded_indices(self):
        assert _schema().protected_encoded_indices == [4, 5]

    def test_feature_names(self):
        names = _schema().encoded_feature_names
        assert names == ["a", "b=0", "b=1", "b=2", "s=0", "s=1"]

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            _schema().encoded_indices_of("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DatasetSchema(
                name="bad",
                attributes=(Attribute("a", "numeric"), Attribute("a", "numeric")),
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            DatasetSchema(name="bad", attributes=())


class TestTabularDataset:
    def _dataset(self, rng, task="classification"):
        X = rng.normal(size=(10, 4))
        y = (rng.random(10) > 0.5).astype(float) if task == "classification" else rng.normal(size=10)
        protected = (rng.random(10) > 0.5).astype(float)
        return TabularDataset(
            name="demo",
            X=X,
            y=y,
            protected=protected,
            protected_indices=np.array([3]),
            feature_names=["f0", "f1", "f2", "s"],
            task=task,
        )

    def test_shapes_exposed(self, rng):
        ds = self._dataset(rng)
        assert ds.n_records == 10
        assert ds.n_features == 4

    def test_nonprotected_complement(self, rng):
        ds = self._dataset(rng)
        assert ds.nonprotected_indices.tolist() == [0, 1, 2]
        assert ds.X_nonprotected.shape == (10, 3)

    def test_base_rate_computation(self, rng):
        ds = self._dataset(rng)
        for group in (0, 1):
            mask = ds.protected == group
            assert ds.base_rate(group) == pytest.approx(ds.y[mask].mean())

    def test_base_rate_ranking_rejected(self, rng):
        ds = self._dataset(rng, task="ranking")
        with pytest.raises(ValidationError):
            ds.base_rate(1)

    def test_subset_preserves_alignment(self, rng):
        ds = self._dataset(rng)
        sub = ds.subset([0, 2, 4])
        np.testing.assert_array_equal(sub.X, ds.X[[0, 2, 4]])
        np.testing.assert_array_equal(sub.y, ds.y[[0, 2, 4]])
        np.testing.assert_array_equal(sub.protected, ds.protected[[0, 2, 4]])

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            TabularDataset(
                name="bad",
                X=rng.normal(size=(5, 2)),
                y=np.zeros(4),
                protected=np.zeros(5),
                protected_indices=np.array([1]),
            )

    def test_bad_task_rejected(self, rng):
        with pytest.raises(ValidationError):
            TabularDataset(
                name="bad",
                X=rng.normal(size=(5, 2)),
                y=np.zeros(5),
                protected=np.zeros(5),
                protected_indices=np.array([1]),
                task="clustering",
            )

    def test_query_ids_length_checked(self, rng):
        with pytest.raises(ValidationError):
            TabularDataset(
                name="bad",
                X=rng.normal(size=(5, 2)),
                y=np.zeros(5),
                protected=np.zeros(5),
                protected_indices=np.array([1]),
                task="ranking",
                query_ids=np.zeros(3, dtype=int),
            )
