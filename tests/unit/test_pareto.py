"""Tests for repro.core.pareto."""

import numpy as np
import pytest

from repro.core.pareto import is_dominated, pareto_front
from repro.exceptions import ValidationError


class TestIsDominated:
    def test_strictly_worse_point(self):
        assert is_dominated([0.1, 0.1], [[0.5, 0.5]])

    def test_equal_point_not_dominated(self):
        assert not is_dominated([0.5, 0.5], [[0.5, 0.5]])

    def test_tradeoff_not_dominated(self):
        assert not is_dominated([0.9, 0.1], [[0.1, 0.9]])

    def test_dominated_in_one_axis_only(self):
        # Better on axis 0, equal on axis 1 -> dominates.
        assert is_dominated([0.5, 0.5], [[0.6, 0.5]])

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            is_dominated([1.0], [[1.0, 2.0]])


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([[1.0, 1.0]]) == [0]

    def test_chain_keeps_only_maximum(self):
        pts = [[1, 1], [2, 2], [3, 3]]
        assert pareto_front(pts) == [2]

    def test_anti_chain_keeps_everything(self):
        pts = [[3, 1], [2, 2], [1, 3]]
        assert sorted(pareto_front(pts)) == [0, 1, 2]

    def test_mixed(self):
        pts = [[0.9, 0.1], [0.5, 0.5], [0.1, 0.9], [0.4, 0.4]]
        assert sorted(pareto_front(pts)) == [0, 1, 2]

    def test_duplicates_all_kept(self):
        pts = [[1.0, 1.0], [1.0, 1.0], [0.0, 0.0]]
        assert sorted(pareto_front(pts)) == [0, 1]

    def test_front_points_not_dominated(self, rng):
        pts = rng.random((30, 2))
        front = pareto_front(pts)
        for i in front:
            others = np.delete(pts, i, axis=0)
            assert not is_dominated(pts[i], others)

    def test_non_front_points_dominated(self, rng):
        pts = rng.random((30, 2))
        front = set(pareto_front(pts))
        for i in range(30):
            if i not in front:
                assert is_dominated(pts[i], pts[list(front)])

    def test_sorted_by_first_objective_descending(self, rng):
        pts = rng.random((20, 2))
        front = pareto_front(pts)
        firsts = [pts[i][0] for i in front]
        assert firsts == sorted(firsts, reverse=True)
