"""Tests for repro.core.distance."""

import numpy as np
import pytest

from repro.core.distance import WeightedMinkowski
from repro.exceptions import ValidationError


class TestWeightedMinkowski:
    def test_p2_unrooted_matches_sq_euclidean(self, rng):
        d = WeightedMinkowski(p=2.0)
        x, y = rng.normal(size=4), rng.normal(size=4)
        assert d.between(x, y) == pytest.approx(np.sum((x - y) ** 2))

    def test_weights_scale_contributions(self):
        d = WeightedMinkowski(p=2.0)
        x, y = np.array([1.0, 1.0]), np.array([0.0, 0.0])
        assert d.between(x, y, alpha=[2.0, 0.0]) == pytest.approx(2.0)

    def test_zero_weight_ignores_attribute(self, rng):
        d = WeightedMinkowski(p=2.0)
        x, y = rng.normal(size=3), rng.normal(size=3)
        y_mod = y.copy()
        y_mod[2] += 100.0
        alpha = [1.0, 1.0, 0.0]
        assert d.between(x, y, alpha) == pytest.approx(d.between(x, y_mod, alpha))

    def test_rooted_p2_is_a_metric_triangle(self, rng):
        d = WeightedMinkowski(p=2.0, root=True)
        for _ in range(20):
            x, y, z = rng.normal(size=(3, 5))
            assert d.between(x, z) <= d.between(x, y) + d.between(y, z) + 1e-9

    def test_symmetry(self, rng):
        d = WeightedMinkowski(p=3.0)
        x, y = rng.normal(size=4), rng.normal(size=4)
        assert d.between(x, y) == pytest.approx(d.between(y, x))

    def test_identity(self, rng):
        d = WeightedMinkowski(p=2.0)
        x = rng.normal(size=4)
        assert d.between(x, x) == 0.0

    def test_pairwise_matches_between(self, rng):
        d = WeightedMinkowski(p=2.0)
        X = rng.normal(size=(4, 3))
        Y = rng.normal(size=(3, 3))
        alpha = rng.uniform(0.1, 1.0, size=3)
        D = d.pairwise(X, Y, alpha)
        for i in range(4):
            for j in range(3):
                assert D[i, j] == pytest.approx(d.between(X[i], Y[j], alpha))

    def test_pairwise_default_y_is_x(self, rng):
        d = WeightedMinkowski()
        X = rng.normal(size=(5, 2))
        D = d.pairwise(X)
        assert D.shape == (5, 5)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-12)

    def test_p_below_one_rejected(self):
        with pytest.raises(ValidationError):
            WeightedMinkowski(p=0.5)

    def test_negative_alpha_rejected(self, rng):
        d = WeightedMinkowski()
        with pytest.raises(ValidationError):
            d.between([1.0, 2.0], [0.0, 0.0], alpha=[-1.0, 1.0])

    def test_dimension_mismatch_rejected(self, rng):
        d = WeightedMinkowski()
        with pytest.raises(ValidationError):
            d.pairwise(rng.normal(size=(3, 2)), rng.normal(size=(3, 4)))
