"""Tests for repro.core.objective (forward pass and packing)."""

import numpy as np
import pytest

from repro.core.objective import IFairObjective, _triu_unravel
from repro.exceptions import ValidationError
from repro.utils.mathkit import pairwise_sq_euclidean


@pytest.fixture
def objective(rng):
    X = rng.normal(size=(12, 5))
    return IFairObjective(X, [4], lambda_util=1.0, mu_fair=1.0, n_prototypes=3)


class TestConstruction:
    def test_param_count(self, objective):
        assert objective.n_params == 3 * 5 + 5

    def test_too_many_prototypes_rejected(self, rng):
        with pytest.raises(ValidationError, match="n_prototypes"):
            IFairObjective(rng.normal(size=(5, 3)), n_prototypes=5)

    def test_negative_weights_rejected(self, rng):
        with pytest.raises(ValidationError):
            IFairObjective(rng.normal(size=(10, 3)), lambda_util=-1.0)

    def test_all_protected_rejected(self, rng):
        with pytest.raises(ValidationError, match="non-protected"):
            IFairObjective(rng.normal(size=(10, 2)), [0, 1], n_prototypes=2)

    def test_bad_p_rejected(self, rng):
        with pytest.raises(ValidationError):
            IFairObjective(rng.normal(size=(10, 3)), p=0.5, n_prototypes=2)

    def test_empty_protected_allowed(self, rng):
        obj = IFairObjective(rng.normal(size=(8, 3)), None, n_prototypes=2)
        assert obj.protected.size == 0
        assert obj.nonprotected.size == 3


class TestPacking:
    def test_roundtrip(self, objective, rng):
        V = rng.normal(size=(3, 5))
        alpha = rng.uniform(size=5)
        V2, alpha2 = objective.unpack(objective.pack(V, alpha))
        np.testing.assert_allclose(V, V2)
        np.testing.assert_allclose(alpha, alpha2)

    def test_wrong_shapes_rejected(self, objective, rng):
        with pytest.raises(ValidationError):
            objective.pack(rng.normal(size=(2, 5)), np.ones(5))
        with pytest.raises(ValidationError):
            objective.pack(rng.normal(size=(3, 5)), np.ones(4))
        with pytest.raises(ValidationError):
            objective.unpack(np.zeros(3))


class TestForward:
    def test_memberships_are_distributions(self, objective, rng):
        V = rng.normal(size=(3, 5))
        alpha = rng.uniform(0.1, 1.0, size=5)
        U = objective.memberships(V, alpha)
        assert U.shape == (12, 3)
        np.testing.assert_allclose(U.sum(axis=1), 1.0)
        assert np.all(U >= 0)

    def test_transform_in_prototype_hull(self, objective, rng):
        # x_tilde = U V is a convex combination of prototype rows.
        V = rng.normal(size=(3, 5))
        alpha = rng.uniform(0.1, 1.0, size=5)
        X_tilde = objective.transform(V, alpha)
        lo, hi = V.min(axis=0), V.max(axis=0)
        assert np.all(X_tilde >= lo - 1e-9)
        assert np.all(X_tilde <= hi + 1e-9)

    def test_loss_components_nonnegative(self, objective, rng):
        theta = rng.uniform(0.1, 1.0, size=objective.n_params)
        l_util, l_fair = objective.loss_components(theta)
        assert l_util >= 0.0
        assert l_fair >= 0.0

    def test_loss_is_weighted_sum(self, rng):
        X = rng.normal(size=(10, 4))
        obj = IFairObjective(X, [3], lambda_util=2.0, mu_fair=3.0, n_prototypes=2)
        theta = rng.uniform(0.1, 1.0, size=obj.n_params)
        l_util, l_fair = obj.loss_components(theta)
        assert obj.loss(theta) == pytest.approx(2.0 * l_util + 3.0 * l_fair)

    def test_fair_loss_zero_when_distances_preserved(self, rng):
        # If the transform is the identity on non-protected columns and
        # protected columns match too, the fairness loss depends only on
        # the gap between d(x_i, x_j) and d(x*_i, x*_j).  Build a case
        # with no protected attributes: target distances = full
        # distances, so a perfect reconstruction gives zero fair loss.
        X = rng.normal(size=(6, 3))
        # The dense D* target matrix exists on the reference path only;
        # the fast path keeps just its moments.
        obj = IFairObjective(X, None, n_prototypes=2, fast_kernels=False)
        # Simulate a perfect reconstruction by checking the loss formula
        # directly with X_tilde = X.
        d_tilde = pairwise_sq_euclidean(X)
        err = d_tilde - obj._d_star
        assert float(np.sum(err * err)) == pytest.approx(0.0)

    def test_sampled_pairs_subset_of_full(self, rng):
        X = rng.normal(size=(10, 4))
        full = IFairObjective(X, None, n_prototypes=2)
        sampled = IFairObjective(X, None, n_prototypes=2, max_pairs=10, random_state=0)
        theta = rng.uniform(0.1, 1.0, size=full.n_params)
        # Sampled fair loss (unordered pairs) is at most half the full
        # (ordered) fair loss.
        _, fair_full = full.loss_components(theta)
        _, fair_sampled = sampled.loss_components(theta)
        assert fair_sampled <= fair_full / 2.0 + 1e-9

    def test_max_pairs_larger_than_total_is_capped(self, rng):
        X = rng.normal(size=(6, 3))
        obj = IFairObjective(X, None, n_prototypes=2, max_pairs=10_000)
        assert obj._pairs[0].size == 6 * 5 // 2


class TestTriuUnravel:
    def test_enumerates_all_pairs(self):
        m = 7
        total = m * (m - 1) // 2
        ii, jj = _triu_unravel(np.arange(total), m)
        pairs = set(zip(ii.tolist(), jj.tolist()))
        expected = {(i, j) for i in range(m) for j in range(i + 1, m)}
        assert pairs == expected

    def test_i_strictly_less_than_j(self):
        ii, jj = _triu_unravel(np.arange(45), 10)
        assert np.all(ii < jj)
