"""Tests for repro.core.objective (forward pass and packing)."""

import numpy as np
import pytest

from repro.core.objective import IFairObjective, _triu_unravel
from repro.exceptions import ValidationError
from repro.utils.mathkit import pairwise_sq_euclidean


@pytest.fixture
def objective(make_objective):
    return make_objective(m=12, n=5, k=3, lambda_util=1.0, mu_fair=1.0)


class TestConstruction:
    def test_param_count(self, objective):
        assert objective.n_params == 3 * 5 + 5

    def test_too_many_prototypes_rejected(self, rng):
        with pytest.raises(ValidationError, match="n_prototypes"):
            IFairObjective(rng.normal(size=(5, 3)), n_prototypes=5)

    def test_negative_weights_rejected(self, rng):
        with pytest.raises(ValidationError):
            IFairObjective(rng.normal(size=(10, 3)), lambda_util=-1.0)

    def test_all_protected_rejected(self, rng):
        with pytest.raises(ValidationError, match="non-protected"):
            IFairObjective(rng.normal(size=(10, 2)), [0, 1], n_prototypes=2)

    def test_bad_p_rejected(self, rng):
        with pytest.raises(ValidationError):
            IFairObjective(rng.normal(size=(10, 3)), p=0.5, n_prototypes=2)

    def test_empty_protected_allowed(self, rng):
        obj = IFairObjective(rng.normal(size=(8, 3)), None, n_prototypes=2)
        assert obj.protected.size == 0
        assert obj.nonprotected.size == 3


class TestPacking:
    def test_roundtrip(self, objective, rng):
        V = rng.normal(size=(3, 5))
        alpha = rng.uniform(size=5)
        V2, alpha2 = objective.unpack(objective.pack(V, alpha))
        np.testing.assert_allclose(V, V2)
        np.testing.assert_allclose(alpha, alpha2)

    def test_wrong_shapes_rejected(self, objective, rng):
        with pytest.raises(ValidationError):
            objective.pack(rng.normal(size=(2, 5)), np.ones(5))
        with pytest.raises(ValidationError):
            objective.pack(rng.normal(size=(3, 5)), np.ones(4))
        with pytest.raises(ValidationError):
            objective.unpack(np.zeros(3))


class TestForward:
    def test_memberships_are_distributions(self, objective, rng):
        V = rng.normal(size=(3, 5))
        alpha = rng.uniform(0.1, 1.0, size=5)
        U = objective.memberships(V, alpha)
        assert U.shape == (12, 3)
        np.testing.assert_allclose(U.sum(axis=1), 1.0)
        assert np.all(U >= 0)

    def test_transform_in_prototype_hull(self, objective, rng):
        # x_tilde = U V is a convex combination of prototype rows.
        V = rng.normal(size=(3, 5))
        alpha = rng.uniform(0.1, 1.0, size=5)
        X_tilde = objective.transform(V, alpha)
        lo, hi = V.min(axis=0), V.max(axis=0)
        assert np.all(X_tilde >= lo - 1e-9)
        assert np.all(X_tilde <= hi + 1e-9)

    def test_loss_components_nonnegative(self, objective, rng):
        theta = rng.uniform(0.1, 1.0, size=objective.n_params)
        l_util, l_fair = objective.loss_components(theta)
        assert l_util >= 0.0
        assert l_fair >= 0.0

    def test_loss_is_weighted_sum(self, rng):
        X = rng.normal(size=(10, 4))
        obj = IFairObjective(X, [3], lambda_util=2.0, mu_fair=3.0, n_prototypes=2)
        theta = rng.uniform(0.1, 1.0, size=obj.n_params)
        l_util, l_fair = obj.loss_components(theta)
        assert obj.loss(theta) == pytest.approx(2.0 * l_util + 3.0 * l_fair)

    def test_fair_loss_zero_when_distances_preserved(self, rng):
        # If the transform is the identity on non-protected columns and
        # protected columns match too, the fairness loss depends only on
        # the gap between d(x_i, x_j) and d(x*_i, x*_j).  Build a case
        # with no protected attributes: target distances = full
        # distances, so a perfect reconstruction gives zero fair loss.
        X = rng.normal(size=(6, 3))
        # The dense D* target matrix exists on the reference path only;
        # the fast path keeps just its moments.
        obj = IFairObjective(X, None, n_prototypes=2, fast_kernels=False)
        # Simulate a perfect reconstruction by checking the loss formula
        # directly with X_tilde = X.
        d_tilde = pairwise_sq_euclidean(X)
        err = d_tilde - obj._d_star
        assert float(np.sum(err * err)) == pytest.approx(0.0)

    def test_sampled_pairs_subset_of_full(self, make_data, make_theta):
        X = make_data(10, 4)
        full = IFairObjective(X, None, n_prototypes=2)
        sampled = IFairObjective(X, None, n_prototypes=2, max_pairs=10, random_state=0)
        theta = make_theta(full, low=0.1, high=1.0)
        # Sampled fair loss (unordered pairs) is at most half the full
        # (ordered) fair loss.
        _, fair_full = full.loss_components(theta)
        _, fair_sampled = sampled.loss_components(theta)
        assert fair_sampled <= fair_full / 2.0 + 1e-9

    def test_max_pairs_larger_than_total_is_capped(self, make_data):
        X = make_data(6, 3)
        obj = IFairObjective(X, None, n_prototypes=2, max_pairs=10_000)
        assert obj._pairs[0].size == 6 * 5 // 2


class TestPairModes:
    def test_auto_resolves_from_max_pairs(self, make_objective):
        assert make_objective().pair_mode == "full"
        assert make_objective(max_pairs=10).pair_mode == "sampled"

    def test_invalid_mode_rejected(self, make_objective):
        with pytest.raises(ValidationError, match="pair_mode"):
            make_objective(pair_mode="bogus")

    def test_sampled_requires_max_pairs(self, make_objective):
        with pytest.raises(ValidationError, match="max_pairs"):
            make_objective(pair_mode="sampled")

    def test_max_pairs_rejected_outside_sampled(self, make_objective):
        with pytest.raises(ValidationError, match="max_pairs"):
            make_objective(pair_mode="full", max_pairs=10)
        with pytest.raises(ValidationError, match="max_pairs"):
            make_objective(pair_mode="landmark", max_pairs=10, n_landmarks=4)

    def test_landmark_params_rejected_outside_landmark(self, make_objective):
        with pytest.raises(ValidationError, match="landmark"):
            make_objective(n_landmarks=4)
        with pytest.raises(ValidationError, match="landmark"):
            make_objective(landmarks=[0, 1])

    def test_invalid_landmark_method_rejected(self, make_objective):
        with pytest.raises(ValidationError, match="landmark_method"):
            make_objective(pair_mode="landmark", landmark_method="bogus")

    def test_explicit_landmarks_validated(self, make_objective):
        with pytest.raises(ValidationError, match="distinct"):
            make_objective(pair_mode="landmark", landmarks=[1, 1, 2])
        with pytest.raises(ValidationError, match="range"):
            make_objective(m=12, pair_mode="landmark", landmarks=[0, 12])

    def test_n_landmarks_capped_at_m(self, make_objective):
        obj = make_objective(m=12, pair_mode="landmark", n_landmarks=999)
        assert obj.n_landmarks == 12
        np.testing.assert_array_equal(obj.landmark_indices, np.arange(12))

    def test_default_landmark_count(self, make_objective):
        assert make_objective(m=12, pair_mode="landmark").n_landmarks == 12
        big = make_objective(m=200, n=3, protected=None, pair_mode="landmark")
        assert big.n_landmarks == IFairObjective.DEFAULT_LANDMARKS

    def test_effective_pairs_per_mode(self, make_objective):
        assert make_objective(m=12).effective_pairs == 144
        assert make_objective(m=12, max_pairs=10).effective_pairs == 10
        # Landmark mode is rescaled to estimate the full ordered sum.
        lm = make_objective(m=12, pair_mode="landmark", n_landmarks=4)
        assert lm.effective_pairs == 144

    def test_non_landmark_modes_expose_no_landmarks(self, make_objective):
        obj = make_objective()
        assert obj.n_landmarks is None
        assert obj.landmark_indices is None

    def test_landmark_fair_loss_scaled_to_full(self, make_objective, make_theta):
        """With anchors = every record the scaled landmark fairness
        loss equals the full ordered-pair loss."""
        full = make_objective(m=12)
        lm = make_objective(m=12, pair_mode="landmark", n_landmarks=12)
        theta = make_theta(full)
        _, fair_full = full.loss_components(theta)
        _, fair_lm = lm.loss_components(theta)
        assert fair_lm == pytest.approx(fair_full, rel=1e-12)

    def test_landmark_never_builds_m_squared_state(self, make_objective):
        obj = make_objective(m=30, pair_mode="landmark", n_landmarks=6)
        assert obj._d_star is None
        assert obj._fair_full is None
        assert obj._fair_landmark._d_star.shape == (30, 6)


class TestTriuUnravel:
    def test_enumerates_all_pairs(self):
        m = 7
        total = m * (m - 1) // 2
        ii, jj = _triu_unravel(np.arange(total), m)
        pairs = set(zip(ii.tolist(), jj.tolist()))
        expected = {(i, j) for i in range(m) for j in range(i + 1, m)}
        assert pairs == expected

    def test_i_strictly_less_than_j(self):
        ii, jj = _triu_unravel(np.arange(45), 10)
        assert np.all(ii < jj)


class TestDeferredPrecompute:
    """precompute=False: eager validation, lazy support structures."""

    def _make(self, rng, **kwargs):
        X = rng.normal(size=(30, 5))
        return X, IFairObjective(X, [4], n_prototypes=3, random_state=0, **kwargs)

    def test_losses_identical_to_precomputed(self, rng):
        X = rng.normal(size=(30, 5))
        theta = rng.uniform(0.1, 0.9, size=3 * 5 + 5)
        for kwargs in (
            {},
            {"max_pairs": 50},
            {"pair_mode": "landmark", "n_landmarks": 8},
        ):
            eager = IFairObjective(X, [4], n_prototypes=3, random_state=0, **kwargs)
            lazy = IFairObjective(
                X, [4], n_prototypes=3, random_state=0, precompute=False, **kwargs
            )
            l_eager, g_eager = eager.loss_and_grad(theta)
            l_lazy, g_lazy = lazy.loss_and_grad(theta)
            assert l_eager == l_lazy
            np.testing.assert_array_equal(g_eager, g_lazy)

    def test_validation_stays_eager(self, rng):
        X = rng.normal(size=(30, 5))
        with pytest.raises(ValidationError):
            IFairObjective(X, [4], max_pairs=0, precompute=False)
        with pytest.raises(ValidationError):
            IFairObjective(
                X,
                [4],
                pair_mode="landmark",
                n_landmarks=0,
                precompute=False,
            )
        with pytest.raises(ValidationError):
            IFairObjective(
                X,
                [4],
                pair_mode="landmark",
                landmarks=[1, 1],
                precompute=False,
            )

    def test_shape_bookkeeping_needs_no_precompute(self, rng):
        _, obj = self._make(rng, precompute=False)
        assert obj.n_params == 3 * 5 + 5
        assert obj.n_features == 5
        assert not obj._ready
        V, alpha = obj.unpack(np.arange(float(obj.n_params)))
        assert V.shape == (3, 5) and alpha.shape == (5,)
        assert not obj._ready  # still deferred

    def test_landmark_indices_triggers_build(self, rng):
        X = rng.normal(size=(30, 5))
        lazy = IFairObjective(
            X,
            [4],
            pair_mode="landmark",
            n_landmarks=6,
            random_state=0,
            precompute=False,
        )
        eager = IFairObjective(
            X, [4], pair_mode="landmark", n_landmarks=6, random_state=0
        )
        np.testing.assert_array_equal(lazy.landmark_indices, eager.landmark_indices)


class TestEnsureReadyFailure:
    def test_failed_build_stays_retryable(self, rng, monkeypatch):
        import repro.core.objective as objective_module

        X = rng.normal(size=(30, 5))
        lazy = IFairObjective(
            X,
            [4],
            n_prototypes=3,
            pair_mode="landmark",
            n_landmarks=6,
            random_state=0,
            precompute=False,
        )
        calls = {"n": 0}
        real = objective_module.select_landmarks

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise MemoryError("simulated build failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(objective_module, "select_landmarks", flaky)
        with pytest.raises(MemoryError):
            lazy.ensure_ready()
        assert not lazy._ready  # failure must not latch readiness
        theta = rng.uniform(0.1, 0.9, size=lazy.n_params)
        loss, _ = lazy.loss_and_grad(theta)  # retry succeeds
        assert np.isfinite(loss)
