"""Tests for repro.data.synthetic (the Figure 2 generator)."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticVariant, all_variants, generate_synthetic
from repro.exceptions import ValidationError


class TestGenerateSynthetic:
    def test_default_shape(self):
        ds = generate_synthetic(random_state=0)
        assert ds.X.shape == (100, 3)
        assert ds.protected_indices.tolist() == [2]

    def test_protected_column_matches_flags(self):
        ds = generate_synthetic(SyntheticVariant.X1, random_state=0)
        np.testing.assert_array_equal(ds.X[:, 2], ds.protected)

    def test_x1_rule(self):
        ds = generate_synthetic(SyntheticVariant.X1, random_state=0)
        np.testing.assert_array_equal(ds.protected, (ds.X[:, 0] <= 3.0).astype(float))

    def test_x2_rule(self):
        ds = generate_synthetic(SyntheticVariant.X2, random_state=0)
        np.testing.assert_array_equal(ds.protected, (ds.X[:, 1] <= 3.0).astype(float))

    def test_random_rule_rate(self):
        ds = generate_synthetic(SyntheticVariant.RANDOM, n_records=4000, random_state=0)
        assert ds.protected.mean() == pytest.approx(0.3, abs=0.03)

    def test_variants_share_features_and_labels(self):
        a, b, c = all_variants(random_state=7)
        np.testing.assert_array_equal(a.X[:, :2], b.X[:, :2])
        np.testing.assert_array_equal(b.X[:, :2], c.X[:, :2])
        np.testing.assert_array_equal(a.y, b.y)
        np.testing.assert_array_equal(b.y, c.y)

    def test_mixture_components_label_split(self):
        ds = generate_synthetic(n_records=200, mix=0.5, random_state=0)
        assert ds.y.sum() == 100

    def test_correlated_component_is_correlated(self):
        ds = generate_synthetic(n_records=2000, random_state=0)
        corr_pts = ds.X[ds.y == 1][:, :2]
        iso_pts = ds.X[ds.y == 0][:, :2]
        assert np.corrcoef(corr_pts.T)[0, 1] > 0.8
        assert abs(np.corrcoef(iso_pts.T)[0, 1]) < 0.2

    def test_string_variant_accepted(self):
        ds = generate_synthetic("x1", random_state=0)
        assert ds.name == "synthetic-x1"

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            generate_synthetic(n_records=2)
        with pytest.raises(ValidationError):
            generate_synthetic(mix=0.0)

    def test_deterministic(self):
        a = generate_synthetic(random_state=9)
        b = generate_synthetic(random_state=9)
        np.testing.assert_array_equal(a.X, b.X)
