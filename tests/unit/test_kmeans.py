"""Tests for repro.baselines.kmeans."""

import numpy as np
import pytest

from repro.baselines.kmeans import KMeansRepresentation, kmeans
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture
def three_blobs(rng):
    """Three well-separated clusters."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    X = np.vstack([center + 0.3 * rng.normal(size=(20, 2)) for center in centers])
    labels = np.repeat([0, 1, 2], 20)
    return X, labels


class TestKmeans:
    def test_recovers_separated_clusters(self, three_blobs):
        X, true_labels = three_blobs
        _, labels, _ = kmeans(X, 3, random_state=0)
        # Same partition up to label permutation: every true cluster maps
        # to exactly one predicted cluster.
        for value in range(3):
            assert np.unique(labels[true_labels == value]).size == 1

    def test_centroids_near_truth(self, three_blobs):
        X, _ = three_blobs
        centroids, _, _ = kmeans(X, 3, random_state=0)
        expected = np.array([[0.0, 0.0], [0.0, 10.0], [10.0, 0.0]])
        for center in expected:
            distances = np.linalg.norm(centroids - center, axis=1)
            assert distances.min() < 0.5

    def test_inertia_decreases_with_k(self, three_blobs):
        X, _ = three_blobs
        inertias = [kmeans(X, k, random_state=0)[2] for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n_zero_inertia(self, rng):
        X = rng.normal(size=(6, 2))
        _, _, inertia = kmeans(X, 6, random_state=0)
        assert inertia == pytest.approx(0.0, abs=1e-9)

    def test_labels_valid(self, three_blobs):
        X, _ = three_blobs
        _, labels, _ = kmeans(X, 4, random_state=0)
        assert labels.min() >= 0 and labels.max() < 4

    def test_deterministic_given_seed(self, three_blobs):
        X, _ = three_blobs
        a = kmeans(X, 3, random_state=5)
        b = kmeans(X, 3, random_state=5)
        np.testing.assert_allclose(a[0], b[0])

    def test_invalid_k(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValidationError):
            kmeans(X, 0)
        with pytest.raises(ValidationError):
            kmeans(X, 6)


class TestKMeansRepresentation:
    def test_transform_returns_centroids(self, three_blobs):
        X, _ = three_blobs
        rep = KMeansRepresentation(n_clusters=3, random_state=0).fit(X)
        Z = rep.transform(X)
        # Every row of Z is one of the centroids.
        for row in Z:
            assert any(np.allclose(row, c) for c in rep.centroids_)

    def test_masks_protected_column(self, rng):
        # Group column is the only difference between two blobs; masked
        # clustering must ignore it entirely.
        n = 40
        s = np.repeat([0.0, 1.0], n // 2)
        X = np.column_stack([rng.normal(size=n), s * 100.0])
        rep = KMeansRepresentation(n_clusters=2, random_state=0).fit(X, [1])
        assign = rep.predict(X)
        X_flipped = X.copy()
        X_flipped[:, 1] = 100.0 - X_flipped[:, 1]
        np.testing.assert_array_equal(assign, rep.predict(X_flipped))

    def test_clusters_capped_at_n(self, rng):
        X = rng.normal(size=(4, 2))
        rep = KMeansRepresentation(n_clusters=10, random_state=0).fit(X)
        assert rep.centroids_.shape[0] == 4

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            KMeansRepresentation().transform(rng.normal(size=(3, 2)))

    def test_feature_mismatch(self, three_blobs, rng):
        X, _ = three_blobs
        rep = KMeansRepresentation(n_clusters=2, random_state=0).fit(X)
        with pytest.raises(ValidationError):
            rep.transform(rng.normal(size=(3, 5)))

    def test_loses_more_utility_than_ifair(self, rng):
        """The paper's intro claim: hard clustering of masked data loses
        more information than iFair's soft prototype mixture."""
        from repro.core.model import IFair

        X = rng.normal(size=(60, 6))
        X[:, 5] = (rng.random(60) > 0.5).astype(float)
        hard = KMeansRepresentation(n_clusters=4, random_state=0).fit(X, [5])
        soft = IFair(
            n_prototypes=4, lambda_util=10.0, mu_fair=0.1,
            n_restarts=1, max_iter=60, random_state=0, max_pairs=500,
        ).fit(X, [5])
        err_hard = float(np.mean((X - hard.transform(X)) ** 2))
        err_soft = soft.reconstruction_error(X)
        assert err_soft < err_hard
