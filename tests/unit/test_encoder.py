"""Tests for repro.learners.encoder."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learners.encoder import OneHotEncoder


def _mixed():
    return np.array(
        [
            [1.0, "red", 10],
            [2.0, "blue", 20],
            [3.0, "red", 30],
        ],
        dtype=object,
    )


class TestOneHotEncoder:
    def test_basic_shape(self):
        enc = OneHotEncoder(categorical_columns=[1])
        out = enc.fit_transform(_mixed())
        # 2 numeric pass-through + 2 categories
        assert out.shape == (3, 4)

    def test_indicator_values(self):
        enc = OneHotEncoder(categorical_columns=[1])
        out = enc.fit_transform(_mixed())
        cat_block = out[:, 2:]
        np.testing.assert_allclose(cat_block.sum(axis=1), 1.0)

    def test_numeric_passthrough_order(self):
        enc = OneHotEncoder(categorical_columns=[1])
        out = enc.fit_transform(_mixed())
        np.testing.assert_allclose(out[:, 0], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(out[:, 1], [10.0, 20.0, 30.0])

    def test_unseen_category_encodes_to_zeros(self):
        enc = OneHotEncoder(categorical_columns=[1]).fit(_mixed())
        new = np.array([[5.0, "green", 1]], dtype=object)
        out = enc.transform(new)
        np.testing.assert_allclose(out[0, 2:], 0.0)

    def test_feature_names(self):
        enc = OneHotEncoder(categorical_columns=[1]).fit(_mixed())
        assert "col0" in enc.feature_names_
        assert any(name.startswith("col1=") for name in enc.feature_names_)

    def test_output_indices_for_categorical(self):
        enc = OneHotEncoder(categorical_columns=[1]).fit(_mixed())
        idx = enc.output_indices_for(1)
        assert len(idx) == 2

    def test_output_indices_for_numeric(self):
        enc = OneHotEncoder(categorical_columns=[1]).fit(_mixed())
        assert enc.output_indices_for(0) == [0]

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder(categorical_columns=[0]).transform(_mixed())

    def test_column_count_mismatch_raises(self):
        enc = OneHotEncoder(categorical_columns=[1]).fit(_mixed())
        with pytest.raises(ValidationError):
            enc.transform(np.array([[1.0, "red"]], dtype=object))

    def test_categorical_index_out_of_range(self):
        enc = OneHotEncoder(categorical_columns=[9])
        with pytest.raises(ValidationError):
            enc.fit(_mixed())

    def test_non_numeric_in_numeric_column_raises(self):
        enc = OneHotEncoder(categorical_columns=[1]).fit(_mixed())
        bad = np.array([["oops", "red", 3]], dtype=object)
        with pytest.raises(ValidationError):
            enc.transform(bad)

    def test_all_columns_categorical(self):
        X = np.array([["a", "x"], ["b", "y"]], dtype=object)
        out = OneHotEncoder(categorical_columns=[0, 1]).fit_transform(X)
        assert out.shape == (2, 4)
        np.testing.assert_allclose(out.sum(axis=1), 2.0)
