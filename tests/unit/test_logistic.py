"""Tests for repro.learners.logistic."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learners.logistic import LogisticRegression


def _separable(rng, n=100):
    """Linearly separable 2-D data with a known direction."""
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.float64)
    return X, y


class TestLogisticRegression:
    def test_learns_separable_data(self, rng):
        X, y = _separable(rng)
        clf = LogisticRegression(l2=0.01).fit(X, y)
        assert np.mean(clf.predict(X) == y) > 0.95

    def test_probabilities_in_range(self, rng):
        X, y = _separable(rng)
        p = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_coefficient_direction(self, rng):
        X, y = _separable(rng)
        clf = LogisticRegression(l2=0.01).fit(X, y)
        assert clf.coef_[0] > 0
        assert clf.coef_[1] > 0

    def test_regularisation_shrinks_weights(self, rng):
        X, y = _separable(rng)
        loose = LogisticRegression(l2=0.001).fit(X, y)
        tight = LogisticRegression(l2=100.0).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_intercept_captures_base_rate(self, rng):
        # Pure-noise features: prediction should fall back to base rate.
        X = rng.normal(size=(400, 3))
        y = (rng.random(400) < 0.8).astype(np.float64)
        clf = LogisticRegression(l2=10.0).fit(X, y)
        assert np.mean(clf.predict_proba(X)) == pytest.approx(0.8, abs=0.07)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict_proba([[1.0, 2.0]])

    def test_wrong_feature_count_raises(self, rng):
        X, y = _separable(rng)
        clf = LogisticRegression().fit(X, y)
        with pytest.raises(ValidationError, match="features"):
            clf.predict_proba(np.zeros((2, 5)))

    def test_nonbinary_labels_rejected(self, rng):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(rng.normal(size=(5, 2)), [0, 1, 2, 0, 1])

    def test_negative_l2_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression(l2=-1.0)

    def test_threshold_parameter(self, rng):
        X, y = _separable(rng)
        clf = LogisticRegression().fit(X, y)
        strict = clf.predict(X, threshold=0.9)
        loose = clf.predict(X, threshold=0.1)
        assert strict.sum() <= loose.sum()

    def test_deterministic_refit(self, rng):
        X, y = _separable(rng)
        a = LogisticRegression().fit(X, y).coef_
        b = LogisticRegression().fit(X, y).coef_
        np.testing.assert_allclose(a, b)
