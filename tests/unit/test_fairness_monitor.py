"""Unit tests for the serving-side fairness drift monitor."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.telemetry.fairness import FairnessMonitor
from repro.telemetry.metrics import MetricsRegistry


def _feed(monitor, rng, n, *, rate_a=0.5, rate_b=0.5, shift=0.0):
    """Observe n records: 2 informative cols + 1 protected col."""
    X = rng.normal(size=(n, 3)) + shift
    groups = rng.integers(0, 2, size=n)
    decisions = np.where(
        groups == 0,
        (rng.random(n) < rate_a).astype(float),
        (rng.random(n) < rate_b).astype(float),
    )
    monitor.observe(X, groups, decisions)


def test_validation():
    with pytest.raises(ValidationError):
        FairnessMonitor([2], window=1)
    with pytest.raises(ValidationError):
        FairnessMonitor([2], k=0)
    with pytest.raises(ValidationError):
        FairnessMonitor([2], min_records=1)
    with pytest.raises(ValidationError):
        FairnessMonitor([2], check_every=0)
    monitor = FairnessMonitor([2])
    with pytest.raises(ValidationError):
        monitor.observe(np.zeros((3, 3)), [0, 1], [1.0, 0.0, 1.0])


def test_small_window_reports_no_consistency():
    monitor = FairnessMonitor([2], k=10)
    monitor.observe(np.zeros((3, 3)), [0, 1, 0], [1.0, 0.0, 1.0])
    metrics = monitor.metrics()
    assert metrics["window_records"] == 3
    assert metrics["consistency"] is None
    assert set(metrics["decision_rates"]) == {"0", "1"}


def test_baseline_freezes_and_stable_stream_does_not_drift():
    rng = np.random.default_rng(0)
    monitor = FairnessMonitor([2], window=256, min_records=50, check_every=10_000)
    _feed(monitor, rng, 100)
    first = monitor.metrics()
    assert first["baseline"] is not None
    assert first["baseline"]["consistency"] is not None
    _feed(monitor, rng, 100)
    second = monitor.metrics()
    assert second["baseline"] == first["baseline"]  # frozen
    assert not second["drift"]["any"]


def test_rate_drift_on_shifted_stream():
    rng = np.random.default_rng(1)
    monitor = FairnessMonitor(
        [2], window=200, min_records=50, rate_gap_shift=0.15, check_every=10_000
    )
    _feed(monitor, rng, 200, rate_a=0.5, rate_b=0.5)
    assert not monitor.metrics()["drift"]["rate_drift"]
    # group 1's approval rate collapses: the gap widens far past baseline
    _feed(monitor, rng, 200, rate_a=0.9, rate_b=0.1)
    metrics = monitor.metrics()
    assert metrics["drift"]["rate_drift"]
    assert metrics["drift"]["any"]
    assert monitor.drifting()


def test_consistency_drift_on_decision_noise():
    rng = np.random.default_rng(2)
    monitor = FairnessMonitor(
        [1], window=150, k=5, min_records=50, consistency_drop=0.10,
        check_every=10_000,
    )
    # decisions perfectly determined by the first feature -> consistency high
    X = rng.normal(size=(150, 2))
    decisions = (X[:, 0] > 0).astype(float)
    monitor.observe(X, np.zeros(150, dtype=int), decisions)
    base = monitor.metrics()
    assert base["baseline"]["consistency"] > 0.8
    # decisions become coin flips over the same features
    X2 = rng.normal(size=(150, 2))
    monitor.observe(X2, np.zeros(150, dtype=int), rng.integers(0, 2, 150))
    metrics = monitor.metrics()
    assert metrics["consistency"] < base["baseline"]["consistency"]
    assert metrics["drift"]["consistency_drift"]


def test_drift_flags_is_cache_only():
    monitor = FairnessMonitor([2])
    # never computed -> default-false flags, no O(n^2) work
    assert monitor.drift_flags() == {
        "consistency_drift": False,
        "rate_drift": False,
        "any": False,
    }


def test_observe_auto_refreshes_every_check_every():
    rng = np.random.default_rng(3)
    monitor = FairnessMonitor([2], min_records=10, check_every=64)
    _feed(monitor, rng, 64)
    # observe() crossed the check interval, so the cache is warm
    assert monitor._cached is not None
    assert monitor.drift_flags()["any"] is False


def test_gauges_published_to_registry():
    rng = np.random.default_rng(4)
    registry = MetricsRegistry()
    monitor = FairnessMonitor(
        [2], min_records=20, check_every=10_000, registry=registry
    )
    _feed(monitor, rng, 100)
    monitor.metrics()
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["fairness_window_records"] == 100.0
    assert "fairness_consistency" in snapshot["gauges"]
    assert snapshot["gauges"]["fairness_drift"] == 0.0
    assert any(
        key.startswith("fairness_decision_rate|group=")
        for key in snapshot["gauges"]
    )


def test_reset_baseline():
    rng = np.random.default_rng(5)
    monitor = FairnessMonitor([2], min_records=20, check_every=10_000)
    _feed(monitor, rng, 50)
    assert monitor.metrics()["baseline"] is not None
    monitor.reset_baseline()
    _feed(monitor, rng, 1)
    assert monitor.metrics()["baseline"] is not None  # refreezes on full window
    assert monitor.n_seen == 51


def test_empty_window_metrics():
    """metrics() before any observe() answers instead of crashing."""
    monitor = FairnessMonitor([2])
    metrics = monitor.metrics()
    assert metrics["window_records"] == 0
    assert metrics["consistency"] is None
    assert metrics["baseline"] is None
    assert metrics["decision_rates"] == {}
    assert metrics["drift"] == {
        "consistency_drift": False,
        "rate_drift": False,
        "any": False,
    }
    assert not monitor.drifting()


def test_reset_baseline_mid_stream_clears_drift():
    """Operator acknowledgement: re-freezing on the shifted stream
    clears a raised drift flag (the new baseline *is* the new normal)."""
    rng = np.random.default_rng(6)
    monitor = FairnessMonitor(
        [2], window=200, min_records=50, rate_gap_shift=0.15, check_every=10_000
    )
    _feed(monitor, rng, 200, rate_a=0.5, rate_b=0.5)
    assert not monitor.metrics()["drift"]["any"]  # freezes the baseline
    _feed(monitor, rng, 200, rate_a=0.9, rate_b=0.1)
    assert monitor.metrics()["drift"]["any"]
    monitor.reset_baseline()
    _feed(monitor, rng, 200, rate_a=0.9, rate_b=0.1)
    metrics = monitor.metrics()
    assert metrics["baseline"] is not None
    assert not metrics["drift"]["any"]


def test_drift_warning_fires_once_per_rising_edge(caplog, monkeypatch):
    """The drift warning is edge-triggered: one record when the flag
    rises, silence while it stays up, and re-armed after it clears."""
    import logging

    # configure_logging() (exercised elsewhere in the suite) stops the
    # "repro" logger propagating to root, where caplog listens; force
    # propagation so this test is order-independent.
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
    rng = np.random.default_rng(7)
    monitor = FairnessMonitor(
        [2], window=200, min_records=50, rate_gap_shift=0.15, check_every=10_000
    )
    _feed(monitor, rng, 200, rate_a=0.5, rate_b=0.5)
    monitor.metrics()  # freezes the baseline on the stable stream
    with caplog.at_level(logging.WARNING, logger="repro.telemetry.fairness"):
        _feed(monitor, rng, 200, rate_a=0.9, rate_b=0.1)
        monitor.metrics()  # rising edge -> exactly one warning
        monitor.metrics()  # still drifting -> no repeat
        monitor.metrics()
    warnings = [
        r for r in caplog.records if "fairness drift detected" in r.getMessage()
    ]
    assert len(warnings) == 1
    # clearing the flag re-arms the edge
    caplog.clear()
    monitor.reset_baseline()
    with caplog.at_level(logging.WARNING, logger="repro.telemetry.fairness"):
        _feed(monitor, rng, 200, rate_a=0.5, rate_b=0.5)
        monitor.metrics()  # flag drops; baseline refreezes on equal rates
        _feed(monitor, rng, 200, rate_a=0.9, rate_b=0.1)
        monitor.metrics()  # second rising edge -> one more warning
        monitor.metrics()
    warnings = [
        r for r in caplog.records if "fairness drift detected" in r.getMessage()
    ]
    assert len(warnings) == 1
