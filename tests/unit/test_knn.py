"""Tests for repro.learners.knn."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learners.knn import KNearestNeighbors
from repro.utils.mathkit import pairwise_sq_euclidean


class TestKNearestNeighbors:
    def test_matches_bruteforce_argsort(self, rng):
        X = rng.normal(size=(30, 4))
        Q = rng.normal(size=(10, 4))
        got = KNearestNeighbors(k=5).fit(X).kneighbors(Q)
        D = pairwise_sq_euclidean(Q, X)
        want = np.argsort(D, axis=1, kind="stable")[:, :5]
        # Compare as sets per row (ties may reorder equals).
        for g, w in zip(got, want):
            assert set(g) == set(w)

    def test_first_neighbour_is_nearest(self, rng):
        X = rng.normal(size=(25, 3))
        Q = rng.normal(size=(6, 3))
        idx = KNearestNeighbors(k=3).fit(X).kneighbors(Q)
        D = pairwise_sq_euclidean(Q, X)
        np.testing.assert_array_equal(idx[:, 0], np.argmin(D, axis=1))

    def test_exclude_self(self, rng):
        X = rng.normal(size=(15, 3))
        idx = KNearestNeighbors(k=4).fit(X).kneighbors(exclude_self=True)
        for i, row in enumerate(idx):
            assert i not in row

    def test_self_is_nearest_without_exclusion(self, rng):
        X = rng.normal(size=(12, 3))
        idx = KNearestNeighbors(k=2).fit(X).kneighbors()
        np.testing.assert_array_equal(idx[:, 0], np.arange(12))

    def test_sorted_by_distance(self, rng):
        X = rng.normal(size=(20, 2))
        Q = rng.normal(size=(5, 2))
        idx = KNearestNeighbors(k=6).fit(X).kneighbors(Q)
        D = pairwise_sq_euclidean(Q, X)
        for qi, row in enumerate(idx):
            dists = D[qi, row]
            assert np.all(np.diff(dists) >= -1e-12)

    def test_k_too_large_raises(self, rng):
        knn = KNearestNeighbors(k=10).fit(rng.normal(size=(5, 2)))
        with pytest.raises(ValidationError, match="neighbours"):
            knn.kneighbors()

    def test_exclude_self_needs_self_query(self, rng):
        knn = KNearestNeighbors(k=2).fit(rng.normal(size=(10, 2)))
        with pytest.raises(ValidationError):
            knn.kneighbors(rng.normal(size=(4, 2)), exclude_self=True)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            KNearestNeighbors().kneighbors()

    def test_bad_k_rejected(self):
        with pytest.raises(ValidationError):
            KNearestNeighbors(k=0)

    def test_feature_mismatch_rejected(self, rng):
        knn = KNearestNeighbors(k=1).fit(rng.normal(size=(5, 3)))
        with pytest.raises(ValidationError):
            knn.kneighbors(rng.normal(size=(2, 4)))


class TestBlockedSearch:
    """block_size bounds memory without changing any result."""

    @pytest.mark.parametrize("block_size", [1, 3, 7, 16, 50, 1000])
    def test_blocked_equals_unblocked(self, rng, block_size):
        X = rng.normal(size=(40, 5))
        Q = rng.normal(size=(23, 5))
        knn = KNearestNeighbors(k=4).fit(X)
        np.testing.assert_array_equal(
            knn.kneighbors(Q), knn.kneighbors(Q, block_size=block_size)
        )

    @pytest.mark.parametrize("block_size", [1, 5, 13, 64])
    def test_blocked_exclude_self_equals_unblocked(self, rng, block_size):
        X = rng.normal(size=(30, 4))
        knn = KNearestNeighbors(k=3).fit(X)
        np.testing.assert_array_equal(
            knn.kneighbors(exclude_self=True),
            knn.kneighbors(exclude_self=True, block_size=block_size),
        )

    def test_blocked_self_exclusion_uses_global_row_ids(self, rng):
        # The excluded diagonal entry of block b sits at column
        # offset + row, not on the block's own diagonal.
        X = rng.normal(size=(12, 3))
        idx = KNearestNeighbors(k=5).fit(X).kneighbors(
            exclude_self=True, block_size=4
        )
        for i, row in enumerate(idx):
            assert i not in row

    def test_invalid_block_size_rejected(self, rng):
        knn = KNearestNeighbors(k=2).fit(rng.normal(size=(8, 2)))
        with pytest.raises(ValidationError, match="block_size"):
            knn.kneighbors(block_size=0)
