"""Golden-reference harness: the oracle vs the committed corpus.

``tests/golden/cases.json`` pins loss, components, gradient, transform
and landmark selection for every pair mode and kernel flavour on
frozen inputs (see ``tests/golden/regenerate.py``).  These tests
rebuild each objective from the stored inputs and hold it to the
stored numbers — so cross-path equivalence is anchored to committed
history, not just to whatever both paths currently compute.

Tolerances: 1e-9 relative absorbs BLAS kernel differences across
machines (observed drift is ~1e-13); the L = M landmark-vs-full
criterion is held at the acceptance threshold of 1e-8.
"""

import json
import os

import numpy as np
import pytest

from repro.core.objective import IFairObjective

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "golden", "cases.json"
)

RTOL = 1e-9


def _load_cases():
    with open(GOLDEN_PATH) as fh:
        doc = json.load(fh)
    assert doc["format"] == "repro-golden-cases"
    return {case["name"]: case for case in doc["cases"]}


CASES = _load_cases()


def _build(case):
    params = dict(case["params"])
    X = np.asarray(case["X"], dtype=np.float64)
    objective = IFairObjective(
        X,
        params.pop("protected"),
        lambda_util=params.pop("lambda_util"),
        mu_fair=params.pop("mu_fair"),
        n_prototypes=params.pop("k"),
        random_state=params.pop("random_state"),
        **{
            key: value
            for key, value in params.items()
            if key not in ("m", "n")
        },
    )
    theta = np.asarray(case["theta"], dtype=np.float64)
    return objective, theta


class TestGoldenCorpus:
    def test_covers_every_pair_mode_and_flavour(self):
        modes = {CASES[name]["params"].get("pair_mode", "auto") for name in CASES}
        assert {"full", "landmark"} <= modes
        assert any("max_pairs" in CASES[name]["params"] for name in CASES)
        flavours = {CASES[name]["params"]["fast_kernels"] for name in CASES}
        assert flavours == {True, False}

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_matches_expected(self, name):
        case = CASES[name]
        objective, theta = _build(case)
        expected = case["expected"]

        loss, grad = objective.loss_and_grad(theta)
        assert loss == pytest.approx(expected["loss"], rel=RTOL)
        np.testing.assert_allclose(
            grad, np.asarray(expected["grad"]), rtol=RTOL, atol=1e-12
        )

        l_util, l_fair = objective.loss_components(theta)
        assert l_util == pytest.approx(expected["l_util"], rel=RTOL)
        assert l_fair == pytest.approx(expected["l_fair"], rel=RTOL)

        V, alpha = objective.unpack(theta)
        np.testing.assert_allclose(
            objective.transform(V, alpha),
            np.asarray(expected["transform"]),
            rtol=RTOL,
            atol=1e-12,
        )
        assert objective.effective_pairs == expected["effective_pairs"]

    @pytest.mark.parametrize(
        "name",
        [n for n in sorted(CASES) if "landmarks" in CASES[n]["expected"]],
    )
    def test_landmark_selection_is_frozen(self, name):
        """Anchor choice is part of the pinned behaviour (seeded)."""
        case = CASES[name]
        objective, _ = _build(case)
        np.testing.assert_array_equal(
            objective.landmark_indices, np.asarray(case["expected"]["landmarks"])
        )

    @pytest.mark.parametrize(
        "landmark_name, full_name",
        [
            ("landmark_LM_p2_fast", "full_p2_reference"),
            ("landmark_LM_p3_blocked", "full_p3_reference"),
        ],
    )
    def test_landmark_at_L_equals_M_matches_full_pair(
        self, landmark_name, full_name
    ):
        """Acceptance criterion: at L = M the landmark loss equals the
        full-pair reference within rtol 1e-8 — both on the committed
        numbers and recomputed live."""
        stored_lm = CASES[landmark_name]["expected"]
        stored_full = CASES[full_name]["expected"]
        assert stored_lm["l_fair"] == pytest.approx(
            stored_full["l_fair"], rel=1e-8
        )
        assert stored_lm["loss"] == pytest.approx(stored_full["loss"], rel=1e-8)

        objective, theta = _build(CASES[landmark_name])
        reference, _ = _build(CASES[full_name])
        assert objective.loss(theta) == pytest.approx(
            reference.loss(theta), rel=1e-8
        )

    def test_fast_and_reference_goldens_agree(self):
        """The committed numbers themselves certify cross-path
        equivalence — no in-process comparison involved."""
        for fast_name, ref_name in (
            ("full_p2_fast", "full_p2_reference"),
            ("sampled_p2_fast", "sampled_p2_reference"),
            ("landmark_p2_fast", "landmark_p2_blocked"),
        ):
            fast, ref = CASES[fast_name]["expected"], CASES[ref_name]["expected"]
            assert fast["loss"] == pytest.approx(ref["loss"], rel=1e-10)
            np.testing.assert_allclose(
                np.asarray(fast["grad"]),
                np.asarray(ref["grad"]),
                rtol=1e-10,
                atol=1e-10,
            )
