"""Tests for repro.pipeline.config and repro.exceptions."""

import pytest

from repro.core.tuning import MIXTURE_GRID, PROTOTYPE_GRID
from repro.exceptions import (
    NotFittedError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.pipeline.config import ExperimentConfig


class TestExperimentConfig:
    def test_fast_preset_is_reduced(self):
        config = ExperimentConfig.fast()
        assert config.classification_records < 6901
        assert len(config.mixture_grid) < len(MIXTURE_GRID)

    def test_paper_preset_matches_section_vb(self):
        config = ExperimentConfig.paper()
        assert config.mixture_grid == MIXTURE_GRID
        assert config.prototype_grid == PROTOTYPE_GRID
        assert config.n_restarts == 3
        assert config.max_pairs is None
        assert config.classification_records == 6901
        assert config.ranking_queries == 57

    def test_frozen(self):
        config = ExperimentConfig.fast()
        with pytest.raises(AttributeError):
            config.max_iter = 999

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(mixture_grid=())

    def test_bad_restarts_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(n_restarts=0)

    def test_bad_consistency_k_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(consistency_k=0)

    def test_seed_threaded_through_presets(self):
        assert ExperimentConfig.fast(random_state=42).random_state == 42
        assert ExperimentConfig.paper(random_state=42).random_state == 42


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (ValidationError, NotFittedError, SchemaError):
            assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(SchemaError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_catchable_as_library_failure(self):
        try:
            raise SchemaError("bad schema")
        except ReproError as exc:
            assert "bad schema" in str(exc)


class TestPairModeConfig:
    def test_defaults_preserve_auto(self):
        config = ExperimentConfig.fast()
        assert config.pair_mode == "auto"
        assert config.n_landmarks is None
        assert config.landmark_method == "kmeans++"

    def test_landmark_config_accepted(self):
        config = ExperimentConfig(
            pair_mode="landmark", n_landmarks=64, landmark_method="farthest"
        )
        assert config.pair_mode == "landmark"
        assert config.n_landmarks == 64

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(pair_mode="bogus")
        with pytest.raises(ValidationError):
            ExperimentConfig(landmark_method="bogus")
        with pytest.raises(ValidationError):
            ExperimentConfig(n_landmarks=0)


class TestPoolAndPromoteConfig:
    def test_defaults(self):
        config = ExperimentConfig.fast()
        assert config.tune_pool == "per-call"
        assert config.tune_promote == "rank"

    def test_session_pool_and_extrapolate_accepted(self):
        config = ExperimentConfig(tune_pool="session", tune_promote="extrapolate")
        assert config.tune_pool == "session"
        assert config.tune_promote == "extrapolate"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentConfig(tune_pool="hourly")
        with pytest.raises(ValidationError):
            ExperimentConfig(tune_promote="psychic")
