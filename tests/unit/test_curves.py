"""Tests for repro.metrics.curves."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.classification import roc_auc
from repro.metrics.curves import (
    auc_trapezoid,
    calibration_curve,
    expected_calibration_error,
    precision_recall_curve,
    roc_curve,
)


@pytest.fixture
def scored(rng):
    y = (rng.random(300) > 0.4).astype(float)
    scores = y + rng.normal(scale=0.8, size=300)
    return y, scores


class TestRocCurve:
    def test_endpoints(self, scored):
        y, scores = scored
        fpr, tpr, _ = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self, scored):
        y, scores = scored
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_area_matches_rank_auc(self, scored):
        y, scores = scored
        fpr, tpr, _ = roc_curve(y, scores)
        assert auc_trapezoid(fpr, tpr) == pytest.approx(roc_auc(y, scores), abs=1e-10)

    def test_area_matches_rank_auc_with_ties(self, rng):
        y = (rng.random(200) > 0.5).astype(float)
        scores = rng.integers(0, 5, size=200).astype(float)  # heavy ties
        fpr, tpr, _ = roc_curve(y, scores)
        assert auc_trapezoid(fpr, tpr) == pytest.approx(roc_auc(y, scores), abs=1e-10)

    def test_perfect_classifier(self):
        fpr, tpr, _ = roc_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert auc_trapezoid(fpr, tpr) == 1.0

    def test_single_class_raises(self):
        with pytest.raises(ValidationError):
            roc_curve([1, 1], [0.2, 0.3])

    def test_decreasing_fpr_rejected_by_trapezoid(self):
        with pytest.raises(ValidationError):
            auc_trapezoid([0.5, 0.2], [0.1, 0.9])


class TestPrecisionRecall:
    def test_recall_monotone(self, scored):
        y, scores = scored
        _, recall, _ = precision_recall_curve(y, scores)
        assert np.all(np.diff(recall) >= 0)

    def test_final_recall_is_one(self, scored):
        y, scores = scored
        _, recall, _ = precision_recall_curve(y, scores)
        assert recall[-1] == pytest.approx(1.0)

    def test_perfect_classifier_precision(self):
        precision, recall, _ = precision_recall_curve(
            [0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]
        )
        # Until recall hits 1, precision stays 1 for a perfect ranking.
        assert np.all(precision[recall <= 1.0][: 2] == 1.0)

    def test_no_positives_raises(self):
        with pytest.raises(ValidationError):
            precision_recall_curve([0, 0], [0.1, 0.9])


class TestCalibration:
    def test_perfectly_calibrated_probabilities(self, rng):
        probs = rng.random(20000)
        y = (rng.random(20000) < probs).astype(float)
        mean_pred, frac_pos, _ = calibration_curve(y, probs, n_bins=5)
        np.testing.assert_allclose(mean_pred, frac_pos, atol=0.05)

    def test_ece_near_zero_when_calibrated(self, rng):
        probs = rng.random(20000)
        y = (rng.random(20000) < probs).astype(float)
        assert expected_calibration_error(y, probs, n_bins=10) < 0.03

    def test_ece_large_for_overconfident(self, rng):
        y = (rng.random(1000) > 0.5).astype(float)
        probs = np.where(y == 1, 0.99, 0.99)  # always confident positive
        assert expected_calibration_error(y, probs) > 0.3

    def test_counts_sum_to_n(self, scored):
        y, scores = scored
        probs = 1.0 / (1.0 + np.exp(-scores))
        _, _, counts = calibration_curve(y, probs, n_bins=7)
        assert counts.sum() == y.size

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            calibration_curve([0, 1], [0.5, 1.5])

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValidationError):
            calibration_curve([0, 1], [0.5, 0.5], n_bins=0)
