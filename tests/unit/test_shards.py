"""Unit tests for the sharded-oracle building blocks.

Covers the pieces the property/stress suites rely on: shard planning,
plan validation, the fixed-order compensated tree reduction, the
oracle's constructor contracts, the new :class:`IFair` knobs, and the
row-range dimension of the worker oracle memo key (the staleness
regression of ISSUE 8).
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import model as model_module
from repro.core.model import IFair, _oracle_cache_key
from repro.core.objective import IFairObjective
from repro.core.shards import (
    ShardedLandmarkOracle,
    _check_plan,
    plan_shards,
)
from repro.exceptions import ValidationError
from repro.utils.kernels import neumaier_tree_reduce


class TestPlanShards:
    @pytest.mark.parametrize(
        "n_rows,n_shards", [(10, 1), (10, 3), (7, 7), (3, 8), (0, 2), (100, 9)]
    )
    def test_matches_array_split(self, n_rows, n_shards):
        plan = plan_shards(n_rows, n_shards)
        expected, start = [], 0
        for piece in np.array_split(np.arange(n_rows), n_shards):
            expected.append((start, start + piece.size))
            start += piece.size
        assert plan == tuple(expected)

    def test_contiguous_cover(self):
        plan = plan_shards(23, 5)
        assert plan[0][0] == 0 and plan[-1][1] == 23
        for (_, stop), (start, _) in zip(plan, plan[1:]):
            assert stop == start

    def test_more_shards_than_rows_yields_empty_tail(self):
        plan = plan_shards(2, 5)
        assert len(plan) == 5
        assert plan[2:] == ((2, 2), (2, 2), (2, 2))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            plan_shards(-1, 2)
        with pytest.raises(ValidationError):
            plan_shards(10, 0)


class TestCheckPlan:
    def test_accepts_valid_plan_with_empty_ranges(self):
        plan = ((0, 0), (0, 4), (4, 4), (4, 9))
        assert _check_plan(plan, 9) == plan

    def test_rejects_gap(self):
        with pytest.raises(ValidationError):
            _check_plan(((0, 3), (4, 9)), 9)

    def test_rejects_short_cover(self):
        with pytest.raises(ValidationError):
            _check_plan(((0, 5),), 9)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValidationError):
            _check_plan(((0, 5), (5, 3)), 9)

    def test_rejects_empty_plan(self):
        with pytest.raises(ValidationError):
            _check_plan((), 0)


class TestNeumaierTreeReduce:
    def test_near_fsum_on_ill_conditioned_scalars(self):
        # Massive cancellation: the naive sum loses the 1e-8 entirely;
        # the compensated tree keeps it to within a few ulp of the
        # partials (fsum-exactness is not the contract, compensation is).
        terms = [1e16, 1.0, -1e16, 1.0, 1e-8, -2.0]
        exact = math.fsum(terms)
        assert abs(float(neumaier_tree_reduce(terms)) - exact) < 1e-12

    def test_exact_on_pairwise_cancellation(self):
        terms = [1e16, 1.0, -1e16, -1.0]
        assert float(neumaier_tree_reduce(terms)) == 0.0

    def test_elementwise_on_arrays(self):
        rng = np.random.default_rng(0)
        terms = [rng.normal(size=(3, 4)) * 10.0**e for e in (16, 0, -8, 8)]
        terms += [-t for t in terms]
        result = neumaier_tree_reduce(terms)
        expected = np.array(
            [
                [math.fsum(t[i, j] for t in terms) for j in range(4)]
                for i in range(3)
            ]
        )
        np.testing.assert_allclose(result, expected, rtol=0, atol=1e-12)

    def test_single_term_is_identity(self):
        term = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(neumaier_tree_reduce([term]), term)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            neumaier_tree_reduce([])

    def test_order_of_magnitude_sweep_stays_exact(self):
        # 17 terms (odd count exercises the carried tail node).
        terms = [(-4.0) ** i for i in range(17)]
        assert float(neumaier_tree_reduce(terms)) == math.fsum(terms)


def _landmark_objective(m=30, n=5, k=3, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    return IFairObjective(
        X,
        [n - 1],
        n_prototypes=k,
        pair_mode="landmark",
        n_landmarks=8,
        random_state=seed,
        **kwargs,
    )


class TestOracleValidation:
    def test_requires_landmark_objective(self):
        rng = np.random.default_rng(0)
        obj = IFairObjective(rng.normal(size=(20, 4)), [3], n_prototypes=2)
        with pytest.raises(ValidationError):
            ShardedLandmarkOracle(obj)

    def test_stochastic_requires_batch_size(self):
        with pytest.raises(ValidationError):
            ShardedLandmarkOracle(_landmark_objective(), batch_mode="stochastic")

    def test_batch_size_requires_stochastic(self):
        with pytest.raises(ValidationError):
            ShardedLandmarkOracle(_landmark_objective(), batch_size=5)

    def test_batch_size_range(self):
        obj = _landmark_objective(m=30)
        for bad in (0, 31):
            with pytest.raises(ValidationError):
                ShardedLandmarkOracle(
                    obj, batch_mode="stochastic", batch_size=bad
                )

    def test_rejects_bad_knobs(self):
        obj = _landmark_objective()
        with pytest.raises(ValidationError):
            ShardedLandmarkOracle(obj, batch_mode="minibatch")
        with pytest.raises(ValidationError):
            ShardedLandmarkOracle(obj, pool="forever")
        with pytest.raises(ValidationError):
            ShardedLandmarkOracle(obj, n_shards=0)

    def test_plan_hook_is_validated(self):
        with pytest.raises(ValidationError):
            ShardedLandmarkOracle(_landmark_objective(m=30), plan=((0, 10),))

    def test_seed_entropy_accepts_generator(self):
        a = ShardedLandmarkOracle._seed_entropy(np.random.default_rng(3))
        b = ShardedLandmarkOracle._seed_entropy(np.random.default_rng(3))
        assert a == b
        assert ShardedLandmarkOracle._seed_entropy(42) == 42
        assert ShardedLandmarkOracle._seed_entropy(None) >= 0

    def test_loss_is_the_first_oracle_component(self):
        oracle = ShardedLandmarkOracle(_landmark_objective(), n_shards=3)
        theta = np.random.default_rng(0).uniform(
            0.1, 0.9, size=oracle.n_params
        )
        assert oracle.loss(theta) == oracle.loss_and_grad(theta)[0]

    def test_close_is_idempotent_and_start_serial_is_a_noop(self):
        oracle = ShardedLandmarkOracle(_landmark_objective(), n_jobs=1)
        oracle.start()
        assert oracle._executor is None
        oracle.close()
        oracle.close()


class TestModelKnobs:
    def test_sharded_knobs_require_landmark_mode(self):
        for kwargs in (
            {"oracle_jobs": 2},
            {"oracle_shards": 4},
            {"batch_mode": "stochastic", "batch_size": 8},
        ):
            with pytest.raises(ValidationError):
                IFair(**kwargs)

    def test_stochastic_requires_batch_size(self):
        with pytest.raises(ValidationError):
            IFair(pair_mode="landmark", batch_mode="stochastic")

    def test_batch_size_requires_stochastic(self):
        with pytest.raises(ValidationError):
            IFair(pair_mode="landmark", batch_size=16)

    def test_sharded_excludes_restart_parallelism(self):
        with pytest.raises(ValidationError):
            IFair(pair_mode="landmark", oracle_jobs=2, n_jobs=2)

    def test_get_params_carries_the_new_knobs(self):
        params = IFair(
            pair_mode="landmark",
            oracle_jobs=2,
            oracle_shards=4,
            batch_mode="stochastic",
            batch_size=16,
        ).get_params()
        assert params["oracle_jobs"] == 2
        assert params["oracle_shards"] == 4
        assert params["batch_mode"] == "stochastic"
        assert params["batch_size"] == 16


class TestOracleCacheKeyRowRange:
    """Regression: the worker oracle memo must key on the row range.

    Before ISSUE 8 the key was (segment, protected, params) only —
    a row-sharded oracle over ``[0, 500)`` could be served a memoised
    full-matrix oracle (or vice versa) on a warm session pool.
    """

    def _patch_handle(self, monkeypatch, name="seg-a", shape=(1000, 6)):
        handle = SimpleNamespace(name=name, shape=shape)
        monkeypatch.setattr(
            model_module, "get_shared_handles", lambda: {"X": handle}
        )

    def _state(self):
        return {
            "params": IFair(pair_mode="landmark").get_params(),
            "protected": [5],
        }

    def test_distinct_ranges_get_distinct_keys(self, monkeypatch):
        self._patch_handle(monkeypatch)
        state = self._state()
        full = _oracle_cache_key(state)
        half = _oracle_cache_key(state, row_range=(0, 500))
        tail = _oracle_cache_key(state, row_range=(500, 1000))
        assert len({full, half, tail}) == 3

    def test_default_range_is_the_full_segment(self, monkeypatch):
        self._patch_handle(monkeypatch)
        state = self._state()
        assert _oracle_cache_key(state) == _oracle_cache_key(
            state, row_range=(0, 1000)
        )

    def test_no_broadcast_disables_caching(self, monkeypatch):
        monkeypatch.setattr(model_module, "get_shared_handles", lambda: {})
        assert _oracle_cache_key(self._state()) is None
