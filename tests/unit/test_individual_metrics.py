"""Tests for repro.metrics.individual (consistency yNN)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.individual import consistency, consistency_of_scores


class TestConsistency:
    def test_constant_outcomes_perfectly_consistent(self, rng):
        X = rng.normal(size=(30, 3))
        assert consistency(X, np.ones(30), k=5) == 1.0

    def test_cluster_separated_outcomes(self, rng):
        # Two tight clusters far apart, each with a uniform label:
        # neighbours always agree.
        X = np.vstack([rng.normal(size=(15, 2)), rng.normal(size=(15, 2)) + 100.0])
        y = np.concatenate([np.zeros(15), np.ones(15)])
        assert consistency(X, y, k=5) == 1.0

    def test_checkerboard_outcomes_inconsistent(self, rng):
        # Labels independent of position: consistency ~ 1 - 2 p (1-p).
        X = rng.normal(size=(200, 2))
        y = (rng.random(200) > 0.5).astype(float)
        c = consistency(X, y, k=10)
        assert c == pytest.approx(0.5, abs=0.1)

    def test_probability_outcomes_supported(self, rng):
        X = rng.normal(size=(30, 2))
        probs = rng.random(30)
        c = consistency(X, probs, k=5)
        assert 0.0 <= c <= 1.0

    def test_k_must_be_smaller_than_n(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValidationError):
            consistency(X, np.zeros(5), k=5)

    def test_higher_for_smooth_outcomes(self, rng):
        X = rng.uniform(size=(100, 1))
        smooth = X[:, 0]  # outcome = position
        rough = rng.random(100)
        assert consistency(X, smooth, k=5) > consistency(X, rough, k=5)


class TestConsistencyOfScores:
    def test_scale_invariance(self, rng):
        X = rng.normal(size=(40, 3))
        scores = rng.normal(size=40)
        a = consistency_of_scores(X, scores, k=5)
        b = consistency_of_scores(X, scores * 1000.0 + 5.0, k=5)
        assert a == pytest.approx(b)

    def test_constant_scores(self, rng):
        X = rng.normal(size=(20, 2))
        assert consistency_of_scores(X, np.full(20, 7.0), k=3) == 1.0

    def test_bounded(self, rng):
        X = rng.normal(size=(25, 2))
        c = consistency_of_scores(X, rng.normal(size=25), k=4)
        assert 0.0 <= c <= 1.0
