"""Tests for repro.learners.scaler."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learners.scaler import StandardScaler


class TestStandardScaler:
    def test_unit_variance_default(self, rng):
        X = rng.normal(size=(200, 3)) * np.array([1.0, 10.0, 0.1])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_mean_not_removed_by_default(self, rng):
        X = rng.normal(size=(100, 2)) + 50.0
        Z = StandardScaler().fit_transform(X)
        assert np.all(Z.mean(axis=0) > 10.0)

    def test_with_mean_centres(self, rng):
        X = rng.normal(size=(100, 2)) + 50.0
        Z = StandardScaler(with_mean=True).fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)

    def test_constant_column_passes_through(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 1.0)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(size=(50, 4)) * 7 + 3
        scaler = StandardScaler(with_mean=True).fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_feature_mismatch_raises(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 2)))
        with pytest.raises(ValidationError):
            scaler.transform(np.zeros((3, 4)))

    def test_new_data_uses_train_statistics(self, rng):
        X_train = rng.normal(size=(100, 1)) * 4.0
        scaler = StandardScaler().fit(X_train)
        X_new = np.array([[4.0]])
        np.testing.assert_allclose(
            scaler.transform(X_new), X_new / X_train.std(axis=0)
        )
