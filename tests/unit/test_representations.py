"""Tests for repro.pipeline.representations."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.representations import (
    CLASSIFICATION_METHODS,
    RANKING_METHODS,
    FitContext,
    IFairMethod,
    LFRMethod,
    make_method,
    method_candidates,
)


@pytest.fixture
def context(rng):
    X = rng.normal(size=(40, 6))
    X[:, 5] = (rng.random(40) > 0.5).astype(float)
    y = (rng.random(40) > 0.5).astype(float)
    return FitContext(
        X_train=X,
        protected_indices=np.array([5]),
        y_train=y,
        protected_group_train=X[:, 5].copy(),
        random_state=0,
    )


@pytest.fixture
def config():
    return ExperimentConfig(
        mixture_grid=(0.1, 1.0),
        prototype_grid=(3,),
        n_restarts=1,
        max_iter=15,
        max_pairs=300,
    )


class TestFactory:
    def test_all_classification_methods_constructible(self):
        for name in CLASSIFICATION_METHODS:
            method = make_method(name, {})
            assert method.name == name

    def test_ranking_methods_subset(self):
        assert set(RANKING_METHODS) < set(CLASSIFICATION_METHODS)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown method"):
            make_method("AutoML", {})

    def test_ifair_variant_names(self):
        assert IFairMethod({}, init="random").name == "iFair-a"
        assert IFairMethod({}, init="protected_zero").name == "iFair-b"


class TestCandidates:
    def test_parameter_free_methods(self, config):
        assert method_candidates("Full Data", config) == [{}]
        assert method_candidates("Masked Data", config) == [{}]

    def test_svd_grid_is_rank_grid(self, config):
        assert method_candidates("SVD", config) == [{"rank": 3}]

    def test_ifair_grid_size(self, config):
        # 2 lambda x 2 mu x 1 K, no degenerate corner in this grid.
        assert len(method_candidates("iFair-b", config)) == 4

    def test_lfr_grid_fixes_a_y(self, config):
        for params in method_candidates("LFR", config):
            assert params["a_y"] == 1.0

    def test_unknown_method_rejected(self, config):
        with pytest.raises(ValidationError):
            method_candidates("AutoML", config)


class TestFitTransform:
    def test_full_data_identity(self, context):
        method = make_method("Full Data", {}).fit(context)
        np.testing.assert_array_equal(
            method.transform(context.X_train), context.X_train
        )

    def test_masked_data_zeroes_protected(self, context):
        method = make_method("Masked Data", {}).fit(context)
        Z = method.transform(context.X_train)
        np.testing.assert_array_equal(Z[:, 5], 0.0)

    def test_svd_masked_ignores_protected_info(self, context, rng):
        method = make_method("SVD-masked", {"rank": 3}).fit(context)
        X = context.X_train.copy()
        X_flipped = X.copy()
        X_flipped[:, 5] = 1.0 - X_flipped[:, 5]
        np.testing.assert_allclose(
            method.transform(X), method.transform(X_flipped)
        )

    def test_lfr_requires_labels(self, context):
        incomplete = FitContext(
            X_train=context.X_train,
            protected_indices=context.protected_indices,
        )
        with pytest.raises(ValidationError, match="LFR requires"):
            make_method("LFR", {"max_iter": 5, "n_restarts": 1}).fit(incomplete)

    def test_ifair_fit_transform_shapes(self, context):
        params = {"n_prototypes": 3, "max_iter": 10, "n_restarts": 1, "max_pairs": 200}
        method = make_method("iFair-b", params).fit(context)
        Z = method.transform(context.X_train)
        assert Z.shape == context.X_train.shape

    def test_repr_shows_params(self):
        text = repr(make_method("SVD", {"rank": 7}))
        assert "rank" in text
