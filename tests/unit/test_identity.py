"""Tests for repro.baselines.identity."""

import numpy as np
import pytest

from repro.baselines.identity import FullData, MaskedData, mask_columns


class TestFullData:
    def test_identity(self, small_matrix):
        out = FullData().fit_transform(small_matrix)
        np.testing.assert_array_equal(out, small_matrix)

    def test_returns_copy(self, small_matrix):
        out = FullData().fit_transform(small_matrix)
        out[0, 0] = 999.0
        assert small_matrix[0, 0] != 999.0


class TestMaskedData:
    def test_zeroes_protected_columns(self, small_matrix):
        out = MaskedData().fit_transform(small_matrix, [1, 3])
        np.testing.assert_array_equal(out[:, 1], 0.0)
        np.testing.assert_array_equal(out[:, 3], 0.0)

    def test_preserves_other_columns(self, small_matrix):
        out = MaskedData().fit_transform(small_matrix, [1])
        np.testing.assert_array_equal(out[:, 0], small_matrix[:, 0])
        np.testing.assert_array_equal(out[:, 2], small_matrix[:, 2])

    def test_empty_protected_is_identity(self, small_matrix):
        out = MaskedData().fit_transform(small_matrix, [])
        np.testing.assert_array_equal(out, small_matrix)

    def test_transform_before_fit_raises(self, small_matrix):
        with pytest.raises(RuntimeError):
            MaskedData().transform(small_matrix)

    def test_masks_new_data_with_fit_indices(self, small_matrix, rng):
        masker = MaskedData().fit(small_matrix, [0])
        new = rng.normal(size=(3, small_matrix.shape[1]))
        out = masker.transform(new)
        np.testing.assert_array_equal(out[:, 0], 0.0)


class TestMaskColumns:
    def test_functional_form(self, small_matrix):
        out = mask_columns(small_matrix, [2])
        np.testing.assert_array_equal(out[:, 2], 0.0)

    def test_original_untouched(self, small_matrix):
        before = small_matrix.copy()
        mask_columns(small_matrix, [2])
        np.testing.assert_array_equal(small_matrix, before)
