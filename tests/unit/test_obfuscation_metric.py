"""Tests for repro.metrics.obfuscation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.obfuscation import adversarial_accuracy


class TestAdversarialAccuracy:
    def test_leaky_representation_recovered(self, rng):
        # Group is literally a column: adversary should be near-perfect.
        s = (rng.random(200) > 0.5).astype(float)
        Z = np.column_stack([s, rng.normal(size=200)])
        assert adversarial_accuracy(Z, s, random_state=0) > 0.95

    def test_independent_representation_near_chance(self, rng):
        s = (rng.random(400) > 0.5).astype(float)
        Z = rng.normal(size=(400, 3))
        acc = adversarial_accuracy(Z, s, random_state=0)
        assert acc == pytest.approx(0.5, abs=0.15)

    def test_deterministic_given_seed(self, rng):
        s = (rng.random(100) > 0.5).astype(float)
        Z = rng.normal(size=(100, 4))
        a = adversarial_accuracy(Z, s, random_state=3)
        b = adversarial_accuracy(Z, s, random_state=3)
        assert a == b

    def test_bad_test_fraction_raises(self, rng):
        s = (rng.random(50) > 0.5).astype(float)
        Z = rng.normal(size=(50, 2))
        with pytest.raises(ValidationError):
            adversarial_accuracy(Z, s, test_fraction=1.5)

    def test_too_few_rows_raises(self, rng):
        with pytest.raises(ValidationError):
            adversarial_accuracy(np.zeros((3, 2)), [1, 0, 1], test_fraction=0.9)

    def test_single_class_train_falls_back_to_majority(self):
        # With an extreme split the train part may be single-class; the
        # audit must not crash and reports majority-class accuracy.
        Z = np.arange(20, dtype=float).reshape(-1, 1)
        s = np.zeros(20)
        s[:1] = 1.0  # nearly everything is class 0
        acc = adversarial_accuracy(Z, s, test_fraction=0.3, random_state=1)
        assert 0.0 <= acc <= 1.0
