"""Tests for repro.core.tuning."""

import pytest

from repro.core.tuning import (
    GridSearch,
    TuningCriterion,
    default_hyper_grid,
)
from repro.exceptions import ValidationError
from repro.utils.mathkit import harmonic_mean


class TestTuningCriterion:
    def test_max_utility_ignores_fairness(self):
        assert TuningCriterion.MAX_UTILITY.score(0.8, 0.1) == 0.8

    def test_max_fairness_ignores_utility(self):
        assert TuningCriterion.MAX_FAIRNESS.score(0.8, 0.1) == 0.1

    def test_optimal_is_harmonic_mean(self):
        assert TuningCriterion.OPTIMAL.score(0.8, 0.4) == pytest.approx(
            harmonic_mean(0.8, 0.4)
        )


class TestDefaultHyperGrid:
    def test_paper_grid_size(self):
        grid = default_hyper_grid()
        # 6 x 6 mixtures minus the lambda=mu=0 corner, times 3 K values.
        assert len(grid) == (36 - 1) * 3

    def test_no_degenerate_corner(self):
        for point in default_hyper_grid():
            assert not (point["lambda_util"] == 0.0 and point["mu_fair"] == 0.0)

    def test_keys(self):
        point = default_hyper_grid()[0]
        assert set(point) == {"lambda_util", "mu_fair", "n_prototypes"}


class TestGridSearch:
    def test_evaluates_every_point(self):
        grid = [{"x": 1}, {"x": 2}, {"x": 3}]
        seen = []

        def build(params):
            seen.append(params["x"])
            return params["x"]

        search = GridSearch(build, lambda x: (x / 3.0, 1.0 - x / 3.0), grid)
        result = search.run()
        assert seen == [1, 2, 3]
        assert len(result.candidates) == 3

    def test_best_by_each_criterion(self):
        grid = [{"x": 1}, {"x": 2}]
        # Candidate 1: (0.9, 0.1); candidate 2: (0.2, 0.8).
        scores = {1: (0.9, 0.1), 2: (0.2, 0.8)}
        search = GridSearch(lambda p: p["x"], lambda x: scores[x], grid)
        result = search.run()
        assert result.best(TuningCriterion.MAX_UTILITY).params == {"x": 1}
        assert result.best(TuningCriterion.MAX_FAIRNESS).params == {"x": 2}

    def test_pareto_optimal_subset(self):
        grid = [{"x": i} for i in range(3)]
        scores = {0: (0.9, 0.1), 1: (0.5, 0.5), 2: (0.4, 0.4)}
        search = GridSearch(lambda p: p["x"], lambda x: scores[x], grid)
        result = search.run()
        front = {c.params["x"] for c in result.pareto_optimal()}
        assert front == {0, 1}

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            GridSearch(lambda p: p, lambda a: (0, 0), [])

    def test_best_of_empty_result_rejected(self):
        search = GridSearch(lambda p: p, lambda a: (0, 0), [{"x": 1}])
        result = search.run()
        result.candidates.clear()
        with pytest.raises(ValidationError):
            result.best(TuningCriterion.OPTIMAL)


class TestLandmarkGrid:
    def test_landmarks_cross_the_grid(self):
        from repro.core.tuning import LANDMARK_GRID, default_hyper_grid

        base = default_hyper_grid((0.1, 1.0), (4,))
        crossed = default_hyper_grid((0.1, 1.0), (4,), landmarks=LANDMARK_GRID)
        assert len(crossed) == len(base) * len(LANDMARK_GRID)
        assert all(point["pair_mode"] == "landmark" for point in crossed)
        assert {point["n_landmarks"] for point in crossed} == set(LANDMARK_GRID)

    def test_without_landmarks_grid_is_unchanged(self):
        from repro.core.tuning import default_hyper_grid

        for point in default_hyper_grid((0.1,), (4,)):
            assert "n_landmarks" not in point
            assert "pair_mode" not in point
