"""Tests for repro.core.tuning."""

import numpy as np
import pytest

from repro.core.tuning import (
    CandidateResult,
    GridSearch,
    GridSearchResult,
    HalvingConfig,
    TuningCriterion,
    default_hyper_grid,
    predict_full_budget,
)
from repro.exceptions import ValidationError
from repro.utils.mathkit import harmonic_mean


class TestTuningCriterion:
    def test_max_utility_ignores_fairness(self):
        assert TuningCriterion.MAX_UTILITY.score(0.8, 0.1) == 0.8

    def test_max_fairness_ignores_utility(self):
        assert TuningCriterion.MAX_FAIRNESS.score(0.8, 0.1) == 0.1

    def test_optimal_is_harmonic_mean(self):
        assert TuningCriterion.OPTIMAL.score(0.8, 0.4) == pytest.approx(
            harmonic_mean(0.8, 0.4)
        )


class TestDefaultHyperGrid:
    def test_paper_grid_size(self):
        grid = default_hyper_grid()
        # 6 x 6 mixtures minus the lambda=mu=0 corner, times 3 K values.
        assert len(grid) == (36 - 1) * 3

    def test_no_degenerate_corner(self):
        for point in default_hyper_grid():
            assert not (point["lambda_util"] == 0.0 and point["mu_fair"] == 0.0)

    def test_keys(self):
        point = default_hyper_grid()[0]
        assert set(point) == {"lambda_util", "mu_fair", "n_prototypes"}


class TestGridSearch:
    def test_evaluates_every_point(self):
        grid = [{"x": 1}, {"x": 2}, {"x": 3}]
        seen = []

        def build(params):
            seen.append(params["x"])
            return params["x"]

        search = GridSearch(build, lambda x: (x / 3.0, 1.0 - x / 3.0), grid)
        result = search.run()
        assert seen == [1, 2, 3]
        assert len(result.candidates) == 3

    def test_best_by_each_criterion(self):
        grid = [{"x": 1}, {"x": 2}]
        # Candidate 1: (0.9, 0.1); candidate 2: (0.2, 0.8).
        scores = {1: (0.9, 0.1), 2: (0.2, 0.8)}
        search = GridSearch(lambda p: p["x"], lambda x: scores[x], grid)
        result = search.run()
        assert result.best(TuningCriterion.MAX_UTILITY).params == {"x": 1}
        assert result.best(TuningCriterion.MAX_FAIRNESS).params == {"x": 2}

    def test_pareto_optimal_subset(self):
        grid = [{"x": i} for i in range(3)]
        scores = {0: (0.9, 0.1), 1: (0.5, 0.5), 2: (0.4, 0.4)}
        search = GridSearch(lambda p: p["x"], lambda x: scores[x], grid)
        result = search.run()
        front = {c.params["x"] for c in result.pareto_optimal()}
        assert front == {0, 1}

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            GridSearch(lambda p: p, lambda a: (0, 0), [])

    def test_best_of_empty_result_rejected(self):
        search = GridSearch(lambda p: p, lambda a: (0, 0), [{"x": 1}])
        result = search.run()
        result.candidates.clear()
        with pytest.raises(ValidationError):
            result.best(TuningCriterion.OPTIMAL)


class TestDeterministicTieBreak:
    def _result(self, scores):
        return GridSearchResult(
            candidates=[
                CandidateResult(params={"i": i}, utility=u, fairness=f, order=i)
                for i, (u, f) in enumerate(scores)
            ]
        )

    def test_equal_scores_break_by_utility(self):
        # Under MAX_FAIRNESS both candidates score 0.5; the higher
        # utility must win, not whichever max() saw first.
        result = self._result([(0.2, 0.5), (0.6, 0.5)])
        assert result.best(TuningCriterion.MAX_FAIRNESS).order == 1

    def test_equal_scores_and_utility_break_by_grid_order(self):
        result = self._result([(0.6, 0.5), (0.6, 0.5), (0.6, 0.5)])
        assert result.best(TuningCriterion.MAX_FAIRNESS).order == 0

    def test_tie_break_independent_of_candidate_list_order(self):
        # Halving results hold a subset in rung order; selection must
        # not depend on list position.
        result = self._result([(0.6, 0.5), (0.2, 0.5), (0.6, 0.5)])
        shuffled = GridSearchResult(candidates=result.candidates[::-1])
        assert (
            result.best(TuningCriterion.MAX_FAIRNESS).order
            == shuffled.best(TuningCriterion.MAX_FAIRNESS).order
            == 0
        )

    def test_nan_scores_sort_last(self):
        result = self._result([(float("nan"), 0.9), (0.3, 0.1)])
        assert result.best(TuningCriterion.MAX_UTILITY).order == 1


class TestKeepArtifacts:
    def test_artifacts_dropped_when_disabled(self):
        grid = [{"x": 1}, {"x": 2}]
        result = GridSearch(
            lambda p: p["x"], lambda x: (x, 1.0), grid, keep_artifacts=False
        ).run()
        assert all(c.artifact is None for c in result.candidates)

    def test_artifacts_kept_by_default(self):
        grid = [{"x": 1}, {"x": 2}]
        result = GridSearch(lambda p: p["x"], lambda x: (x, 1.0), grid).run()
        assert [c.artifact for c in result.candidates] == [1, 2]

    def test_refit_best_rebuilds_winner(self):
        built = []

        def build(params):
            built.append(params["x"])
            return params["x"] * 10

        grid = [{"x": 1}, {"x": 2}]
        result = GridSearch(
            build, lambda x: (x, 1.0), grid, keep_artifacts=False
        ).run()
        assert result.refit_best(TuningCriterion.MAX_UTILITY) == 20
        assert built == [1, 2, 2]

    def test_refit_best_returns_kept_artifact_without_rebuild(self):
        built = []

        def build(params):
            built.append(params["x"])
            return params["x"] * 10

        result = GridSearch(build, lambda x: (x, 1.0), [{"x": 3}]).run()
        assert result.refit_best(TuningCriterion.OPTIMAL) == 30
        assert built == [3]

    def test_summarize_survives_dropped_artifact(self):
        result = GridSearch(
            lambda p: p["x"],
            lambda x: (x, 1.0),
            [{"x": 5}],
            keep_artifacts=False,
            summarize=lambda x: {"doubled": 2 * x},
        ).run()
        assert result.candidates[0].info == {"doubled": 10}


def _budget_build(calls, params):
    calls.append(dict(params))
    quality = params["x"]
    artifact = type("A", (), {})()
    artifact.q = quality
    artifact.theta_ = np.array([quality, params.get("max_iter", 0)], dtype=float)
    return artifact


class TestHalving:
    GRID = [
        {"x": i / 10.0, "max_iter": 8, "n_restarts": 2} for i in range(1, 9)
    ]

    # Fairness decorrelated from utility (a perfectly anticorrelated
    # pair would put the whole grid on the Pareto front, and halving
    # would rightly skip straight to the final rung).
    EVALUATE = staticmethod(lambda a: (a.q, (a.q * 7.3) % 1.0))

    def _run(self, **kwargs):
        calls = []
        search = GridSearch(
            lambda p: _budget_build(calls, p),
            self.EVALUATE,
            self.GRID,
            strategy="halving",
            keep_artifacts=False,
            **kwargs,
        )
        return search.run(), calls

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValidationError):
            GridSearch(lambda p: p, lambda a: (0, 0), [{}], strategy="random")

    def test_invalid_halving_config_rejected(self):
        with pytest.raises(ValidationError):
            HalvingConfig(n_rungs=0)
        with pytest.raises(ValidationError):
            HalvingConfig(promote_fraction=0.0)
        with pytest.raises(ValidationError):
            HalvingConfig(min_promote=0)

    def test_early_rungs_shrink_budget_keys(self):
        _, calls = self._run(halving=HalvingConfig(n_rungs=3, promote_fraction=0.25))
        rung0 = calls[: len(self.GRID)]
        assert all(c["max_iter"] == 2 and c["n_restarts"] == 1 for c in rung0)
        final = calls[-1]
        assert final["max_iter"] == 8 and final["n_restarts"] == 2

    def test_final_rung_is_cold_and_verbatim(self):
        result, calls = self._run(
            halving=HalvingConfig(n_rungs=3, promote_fraction=0.25)
        )
        final_count = len(result.candidates)
        for params in calls[-final_count:]:
            assert "warm_start_theta" not in params
            assert params in self.GRID

    def test_intermediate_rungs_warm_start_from_theta(self):
        _, calls = self._run(halving=HalvingConfig(n_rungs=3, promote_fraction=0.25))
        rung1 = [c for c in calls[len(self.GRID) : -1] if "warm_start_theta" in c]
        assert rung1, "second rung should warm-start survivors"
        for params in rung1:
            # theta recorded by the rung-0 build of the same candidate
            assert params["warm_start_theta"][0] == params["x"]

    def test_warm_start_disabled(self):
        _, calls = self._run(
            halving=HalvingConfig(n_rungs=3, promote_fraction=0.25, warm_start=False)
        )
        assert all("warm_start_theta" not in c for c in calls)

    def test_history_and_fit_accounting(self):
        result, calls = self._run(
            halving=HalvingConfig(n_rungs=3, promote_fraction=0.25)
        )
        assert result.strategy == "halving"
        assert result.n_fits == len(calls)
        assert [h["rung"] for h in result.history] == list(range(len(result.history)))
        assert result.history[-1]["budget_divisor"] == 1
        for h in result.history[:-1]:
            assert set(h["promoted"]) <= set(h["candidates"])

    def test_agreement_with_exhaustive_on_budget_independent_scores(self):
        # Scores ignore the budget, so every rung ranks candidates
        # exactly as the full fit would: halving must select the same
        # winner under all three criteria.
        result, _ = self._run(halving=HalvingConfig(n_rungs=3, promote_fraction=0.25))
        exhaustive = GridSearch(
            lambda p: _budget_build([], p),
            self.EVALUATE,
            self.GRID,
            keep_artifacts=False,
        ).run()
        for criterion in TuningCriterion:
            assert (
                result.best(criterion).order == exhaustive.best(criterion).order
            )

    def test_tiny_grid_falls_back_to_exhaustive(self):
        calls = []
        result = GridSearch(
            lambda p: _budget_build(calls, p),
            lambda a: (a.q, 1.0 - a.q),
            self.GRID[:2],
            strategy="halving",
            keep_artifacts=False,
        ).run()
        assert result.strategy == "exhaustive"
        assert len(calls) == 2


class TestParallelGridSearch:
    def test_n_jobs_matches_serial_run(self):
        grid = [{"x": i, "max_iter": 4} for i in range(6)]

        def build(params):
            return params["x"] * 1.5

        def evaluate(x):
            return x, 10.0 - x

        serial = GridSearch(build, evaluate, grid).run()
        parallel = GridSearch(build, evaluate, grid, n_jobs=2).run()
        assert [(c.utility, c.fairness, c.order) for c in serial.candidates] == [
            (c.utility, c.fairness, c.order) for c in parallel.candidates
        ]
        for criterion in TuningCriterion:
            assert (
                serial.best(criterion).params == parallel.best(criterion).params
            )

    def test_thread_backend(self):
        grid = [{"x": i} for i in range(4)]
        result = GridSearch(
            lambda p: p["x"], lambda x: (x, 1.0), grid, n_jobs=2, backend="thread"
        ).run()
        assert [c.utility for c in result.candidates] == [0.0, 1.0, 2.0, 3.0]


class TestLandmarkGrid:
    def test_landmarks_cross_the_grid(self):
        from repro.core.tuning import LANDMARK_GRID, default_hyper_grid

        base = default_hyper_grid((0.1, 1.0), (4,))
        crossed = default_hyper_grid((0.1, 1.0), (4,), landmarks=LANDMARK_GRID)
        assert len(crossed) == len(base) * len(LANDMARK_GRID)
        assert all(point["pair_mode"] == "landmark" for point in crossed)
        assert {point["n_landmarks"] for point in crossed} == set(LANDMARK_GRID)

    def test_without_landmarks_grid_is_unchanged(self):
        from repro.core.tuning import default_hyper_grid

        for point in default_hyper_grid((0.1,), (4,)):
            assert "n_landmarks" not in point
            assert "pair_mode" not in point


class TestPredictFullBudget:
    def test_two_points_determine_the_curve_exactly(self):
        # s(b) = 0.75 - 0.12 / b -> s(1) = 0.63
        observations = [(0.25, 0.75 - 0.12 / 0.25), (0.5, 0.75 - 0.12 / 0.5)]
        assert predict_full_budget(observations) == pytest.approx(0.63)

    def test_more_points_regress_the_curve(self):
        curve = lambda b: 0.9 - 0.2 / b  # noqa: E731
        observations = [(b, curve(b)) for b in (0.125, 0.25, 0.5)]
        assert predict_full_budget(observations) == pytest.approx(0.7)

    def test_single_observation_falls_back_to_observed_score(self):
        assert predict_full_budget([(0.25, 0.4)]) == 0.4

    def test_duplicate_budgets_fall_back_to_latest_score(self):
        assert predict_full_budget([(0.5, 0.3), (0.5, 0.45)]) == 0.45

    def test_nan_observations_are_ignored(self):
        observations = [(0.25, float("nan")), (0.5, 0.4)]
        assert predict_full_budget(observations) == 0.4

    def test_all_nan_returns_nan(self):
        assert np.isnan(predict_full_budget([(0.5, float("nan"))]))
        assert np.isnan(predict_full_budget([]))


def _curve_build(curves, params):
    """Deterministic learning-curve artifact: score depends on budget."""
    a, c = curves[params["x"]]
    budget_fraction = params["max_iter"] / 8.0
    artifact = type("A", (), {})()
    artifact.q = a + c / budget_fraction
    return artifact


class TestExtrapolatePromotion:
    """A slow starter with the highest asymptote must survive rungs.

    Candidate curves over the budget fraction b (full budget b = 1,
    rungs at 1/4 and 1/2 under the default 3-rung schedule):

    * ``slow``   s(b) = 0.75 - 0.12 / b  -> 0.27, 0.51, **0.63**
    * ``fast``   s(b) = 0.60 - 0.02 / b  -> 0.52, 0.56, 0.58
    * ``fading`` s(b) = 0.52 + 0.01 / b  -> 0.56, 0.54, 0.53

    Observed rank at rung 1 orders fast > fading > slow and eliminates
    the eventual full-budget winner; curve extrapolation predicts
    slow's asymptote and keeps it, so the halving result matches the
    exhaustive search.  Fairness mirrors utility so all three criteria
    agree and the Pareto front cannot rescue the dropped candidate.
    """

    CURVES = {
        0: (0.75, -0.12),  # slow starter, highest asymptote
        1: (0.60, -0.02),  # fast starter
        2: (0.52, +0.01),  # fades with budget
        **{i: (0.25 + 0.002 * i, -0.005) for i in range(3, 9)},
    }
    GRID = [{"x": i, "max_iter": 8, "n_restarts": 1} for i in range(9)]

    def _run(self, promote):
        return GridSearch(
            lambda p: _curve_build(self.CURVES, p),
            lambda a: (a.q, a.q),
            self.GRID,
            strategy="halving",
            halving=HalvingConfig(
                n_rungs=3, promote_fraction=1.0 / 3.0, promote=promote
            ),
            keep_artifacts=False,
        ).run()

    def test_invalid_promote_mode_rejected(self):
        with pytest.raises(ValidationError):
            HalvingConfig(promote="psychic")

    def test_rank_promotion_drops_the_slow_starter(self):
        result = self._run("rank")
        assert result.best(TuningCriterion.MAX_UTILITY).order == 1
        assert all(c.order != 0 for c in result.candidates)

    def test_extrapolate_promotion_keeps_the_slow_starter(self):
        result = self._run("extrapolate")
        assert result.best(TuningCriterion.MAX_UTILITY).order == 0

    def test_extrapolate_matches_exhaustive_winner(self):
        exhaustive = GridSearch(
            lambda p: _curve_build(self.CURVES, p),
            lambda a: (a.q, a.q),
            self.GRID,
            keep_artifacts=False,
        ).run()
        extrapolated = self._run("extrapolate")
        for criterion in TuningCriterion:
            assert (
                extrapolated.best(criterion).order
                == exhaustive.best(criterion).order
            )

    def test_rung_zero_promotion_identical_to_rank(self):
        # With a single observation there is no curve: the first rung's
        # survivor set must be exactly the rank promoter's.
        rank_history = self._run("rank").history
        extra_history = self._run("extrapolate").history
        assert rank_history[0]["promoted"] == extra_history[0]["promoted"]


class TestExtrapolationBudgetAccounting:
    """Warm-started rungs must record *cumulative* budget fractions."""

    GRID = [
        {"x": i / 10.0, "max_iter": 8, "n_restarts": 2} for i in range(1, 9)
    ]

    def _history(self, warm_start):
        calls = []
        result = GridSearch(
            lambda p: _budget_build(calls, p),  # artifacts carry theta_
            lambda a: (a.q, (a.q * 7.3) % 1.0),
            self.GRID,
            strategy="halving",
            halving=HalvingConfig(
                n_rungs=3,
                promote_fraction=0.25,
                warm_start=warm_start,
                promote="extrapolate",
            ),
            keep_artifacts=False,
        ).run()
        return result.history

    def test_warm_started_rungs_accumulate_budget(self):
        history = self._history(warm_start=True)
        # Rung 0 is always cold: everyone spent 1/4 of the budget.
        assert set(history[0]["budget_fraction_spent"].values()) == {0.25}
        # Rung 1 resumed survivors from rung-0 theta: the score they
        # produced reflects 1/4 + 1/2 of the budget, not 1/2.
        assert set(history[1]["budget_fraction_spent"].values()) == {0.75}

    def test_cold_rungs_record_their_own_slice(self):
        history = self._history(warm_start=False)
        assert set(history[0]["budget_fraction_spent"].values()) == {0.25}
        assert set(history[1]["budget_fraction_spent"].values()) == {0.5}
