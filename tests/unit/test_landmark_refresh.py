"""Sliding-window landmark refresh and the anchor-coverage shift test."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.landmarks import (
    anchor_assignment_cost,
    refresh_landmarks,
    select_landmarks,
)


def _window(rng, n=60, d=4, shift=0.0):
    return rng.normal(size=(n, d)) + shift


def test_assignment_cost_validation():
    with pytest.raises(ValidationError):
        anchor_assignment_cost(np.zeros((0, 3)), np.zeros((2, 3)))
    with pytest.raises(ValidationError):
        anchor_assignment_cost(np.zeros((4, 3)), np.zeros((2, 5)))


def test_assignment_cost_zero_when_anchors_cover_every_row():
    X = np.arange(12, dtype=np.float64).reshape(4, 3)
    assert anchor_assignment_cost(X, X) == 0.0
    # one distant anchor: cost is the mean distance to it
    single = anchor_assignment_cost(X, X[:1])
    assert single > 0.0


def test_assignment_cost_grows_with_shift():
    rng = np.random.default_rng(0)
    W = _window(rng)
    anchors = W[select_landmarks(W, 8, random_state=0)]
    near = anchor_assignment_cost(W, anchors)
    far = anchor_assignment_cost(W + 10.0, anchors)
    assert far > 3 * near


def test_refresh_validation():
    with pytest.raises(ValidationError):
        refresh_landmarks(np.zeros((0, 3)), n_landmarks=2)
    with pytest.raises(ValidationError):
        refresh_landmarks(np.zeros((4, 3)), n_landmarks=2, shift_threshold=0.0)


def test_bootstrap_without_anchors():
    rng = np.random.default_rng(1)
    W = _window(rng)
    result = refresh_landmarks(W, None, n_landmarks=8, random_state=3)
    assert result.refreshed
    assert result.indices.size == 8
    assert np.array_equal(result.anchors, W[result.indices])
    assert result.shift == 1.0
    assert result.baseline_cost == result.cost > 0.0


def test_no_shift_keeps_anchors():
    rng = np.random.default_rng(2)
    W = _window(rng)
    base = refresh_landmarks(W, None, n_landmarks=8, random_state=3)
    W2 = _window(np.random.default_rng(5))  # same distribution
    result = refresh_landmarks(
        W2,
        base.anchors,
        n_landmarks=8,
        baseline_cost=base.baseline_cost,
        shift_threshold=1.5,
        random_state=3,
    )
    assert not result.refreshed
    assert result.indices is None
    assert np.array_equal(result.anchors, base.anchors)
    assert result.shift == pytest.approx(result.cost / base.baseline_cost)


def test_shift_triggers_reanchoring():
    rng = np.random.default_rng(4)
    W = _window(rng)
    base = refresh_landmarks(W, None, n_landmarks=8, random_state=3)
    shifted = _window(np.random.default_rng(6), shift=10.0)
    result = refresh_landmarks(
        shifted,
        base.anchors,
        n_landmarks=8,
        baseline_cost=base.baseline_cost,
        shift_threshold=1.5,
        random_state=3,
    )
    assert result.shift > 1.5
    assert result.refreshed
    # fresh anchors come from the shifted window and cover it again
    assert np.array_equal(result.anchors, shifted[result.indices])
    recovered = anchor_assignment_cost(shifted, result.anchors)
    assert recovered < base.baseline_cost * 1.5


def test_force_refresh_bypasses_threshold():
    rng = np.random.default_rng(7)
    W = _window(rng)
    base = refresh_landmarks(W, None, n_landmarks=8, random_state=3)
    result = refresh_landmarks(
        W,
        base.anchors,
        n_landmarks=8,
        baseline_cost=base.baseline_cost,
        shift_threshold=100.0,
        force=True,
        random_state=3,
    )
    assert result.refreshed


def test_degenerate_baseline_never_flaps():
    """Zero/None baselines (identical records, lost state) fall back to
    the current cost, so the shift ratio stays a calm 1.0."""
    W = np.ones((10, 3))
    anchors = np.zeros((2, 3))
    result = refresh_landmarks(
        W, anchors, n_landmarks=2, baseline_cost=0.0, shift_threshold=1.25
    )
    assert result.shift == 1.0
    assert not result.refreshed
    result = refresh_landmarks(
        W, anchors, n_landmarks=2, baseline_cost=None, shift_threshold=1.25
    )
    assert result.shift == 1.0
    assert not result.refreshed


def test_n_landmarks_capped_at_window_rows():
    rng = np.random.default_rng(8)
    W = _window(rng, n=5)
    result = refresh_landmarks(W, None, n_landmarks=50, random_state=0)
    assert result.indices.size == 5


def test_refresh_is_deterministic_under_seed():
    rng = np.random.default_rng(9)
    W = _window(rng)
    a = refresh_landmarks(W, None, n_landmarks=8, random_state=13)
    b = refresh_landmarks(W, None, n_landmarks=8, random_state=13)
    assert np.array_equal(a.indices, b.indices)
    assert a.cost == b.cost
