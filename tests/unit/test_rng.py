"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import check_random_state, spawn_seeds


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).random(5)
        b = check_random_state(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(7)
        gen = check_random_state(seed)
        assert isinstance(gen, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            check_random_state(-1)

    def test_wrong_type_rejected(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")


class TestSpawnSeeds:
    def test_count_and_type(self):
        seeds = spawn_seeds(0, 5)
        assert len(seeds) == 5
        assert all(isinstance(s, int) for s in seeds)

    def test_deterministic(self):
        assert spawn_seeds(3, 4) == spawn_seeds(3, 4)

    def test_distinct_within_batch(self):
        seeds = spawn_seeds(0, 10)
        assert len(set(seeds)) == 10

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_seeds(0, -1)

    def test_seeds_in_valid_range(self):
        assert all(0 <= s < 2**31 for s in spawn_seeds(1, 50))
