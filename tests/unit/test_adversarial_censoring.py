"""Tests for repro.baselines.adversarial."""

import numpy as np
import pytest

from repro.baselines.adversarial import AdversarialCensoring
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.obfuscation import adversarial_accuracy


@pytest.fixture
def leaky_data(rng):
    """Group membership is linearly recoverable from two directions."""
    n = 300
    s = (rng.random(n) < 0.5).astype(float)
    X = np.column_stack(
        [
            2.0 * s + 0.3 * rng.normal(size=n),
            -1.5 * s + 0.4 * rng.normal(size=n),
            rng.normal(size=n),
            rng.normal(size=n),
        ]
    )
    return X, s


class TestAdversarialCensoring:
    def test_reduces_adversarial_accuracy(self, leaky_data):
        X, s = leaky_data
        before = adversarial_accuracy(X, s, random_state=0)
        Z = AdversarialCensoring(n_rounds=4).fit_transform(X, s)
        after = adversarial_accuracy(Z, s, random_state=0)
        assert before > 0.9
        assert after < 0.65

    def test_shape_preserved(self, leaky_data):
        X, s = leaky_data
        Z = AdversarialCensoring(n_rounds=2).fit_transform(X, s)
        assert Z.shape == X.shape

    def test_transform_is_projection(self, leaky_data):
        X, s = leaky_data
        censor = AdversarialCensoring(n_rounds=3).fit(X, s)
        Z = censor.transform(X)
        np.testing.assert_allclose(censor.transform(Z), Z, atol=1e-8)

    def test_censored_directions_counted(self, leaky_data):
        X, s = leaky_data
        censor = AdversarialCensoring(n_rounds=3).fit(X, s)
        assert 1 <= censor.n_censored_directions <= 3

    def test_new_records_transformable(self, leaky_data, rng):
        X, s = leaky_data
        censor = AdversarialCensoring(n_rounds=2).fit(X, s)
        X_new = rng.normal(size=(5, X.shape[1]))
        assert censor.transform(X_new).shape == (5, X.shape[1])

    def test_directions_orthonormal_ish(self, leaky_data):
        X, s = leaky_data
        censor = AdversarialCensoring(n_rounds=4).fit(X, s)
        for d in censor.directions_:
            assert np.linalg.norm(d) == pytest.approx(1.0)

    def test_single_group_rejected(self, rng):
        X = rng.normal(size=(20, 3))
        with pytest.raises(ValidationError):
            AdversarialCensoring().fit(X, np.ones(20))

    def test_transform_before_fit(self, rng):
        with pytest.raises(NotFittedError):
            AdversarialCensoring().transform(rng.normal(size=(3, 3)))

    def test_feature_mismatch(self, leaky_data, rng):
        X, s = leaky_data
        censor = AdversarialCensoring(n_rounds=1).fit(X, s)
        with pytest.raises(ValidationError):
            censor.transform(rng.normal(size=(3, 9)))

    def test_bad_rounds(self):
        with pytest.raises(ValidationError):
            AdversarialCensoring(n_rounds=0)
