"""Tests for repro.core.model (the IFair estimator)."""

import numpy as np
import pytest

from repro.core.model import IFair
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture
def data(make_data):
    return make_data(40, 5, protected_col=4)


def _fit(X, **kwargs):
    defaults = dict(
        n_prototypes=3, n_restarts=1, max_iter=40, random_state=0, max_pairs=300
    )
    defaults.update(kwargs)
    return IFair(**defaults).fit(X, [4])


class TestFit:
    def test_fit_reduces_loss_vs_init(self, data):
        model = _fit(data)
        assert np.isfinite(model.loss_)
        assert model.prototypes_.shape == (3, 5)
        assert model.alpha_.shape == (5,)

    def test_alpha_nonnegative(self, data):
        model = _fit(data)
        assert np.all(model.alpha_ >= 0.0)

    def test_restart_records(self, data):
        model = _fit(data, n_restarts=2)
        assert len(model.restarts_) == 2
        assert model.loss_ == pytest.approx(min(r.loss for r in model.restarts_))

    def test_deterministic_given_seed(self, data):
        a = _fit(data, random_state=5)
        b = _fit(data, random_state=5)
        np.testing.assert_allclose(a.prototypes_, b.prototypes_)
        np.testing.assert_allclose(a.alpha_, b.alpha_)

    def test_different_seeds_differ(self, data):
        a = _fit(data, random_state=1)
        b = _fit(data, random_state=2)
        assert not np.allclose(a.prototypes_, b.prototypes_)

    def test_protected_zero_init_keeps_protected_weight_small(self, data):
        model = _fit(data, init="protected_zero", max_iter=30)
        nonprot_mean = model.alpha_[:4].mean()
        # The protected weight starts near zero and has little gradient
        # pressure; it should stay well below the others on average.
        assert model.alpha_[4] < nonprot_mean

    def test_fit_without_protected(self, make_data):
        X = make_data(30, 4)
        model = IFair(
            n_prototypes=2, n_restarts=1, max_iter=20, random_state=0
        ).fit(X)
        assert model.transform(X).shape == X.shape

    def test_invalid_init_rejected(self):
        with pytest.raises(ValidationError):
            IFair(init="bogus")

    def test_invalid_restarts_rejected(self):
        with pytest.raises(ValidationError):
            IFair(n_restarts=0)

    def test_invalid_protected_alpha_init(self):
        with pytest.raises(ValidationError):
            IFair(protected_alpha_init=0.0)

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ValidationError):
            IFair(n_jobs=0)
        with pytest.raises(ValidationError):
            IFair(n_jobs=-2)

    def test_invalid_pair_mode_rejected(self):
        with pytest.raises(ValidationError):
            IFair(pair_mode="bogus")
        with pytest.raises(ValidationError):
            IFair(landmark_method="bogus")
        with pytest.raises(ValidationError):
            IFair(n_landmarks=0)


class TestLandmarkFit:
    def _fit_landmark(self, X, **kwargs):
        defaults = dict(
            n_prototypes=3,
            n_restarts=1,
            max_iter=40,
            random_state=0,
            pair_mode="landmark",
            n_landmarks=10,
        )
        defaults.update(kwargs)
        return IFair(**defaults).fit(X, [4])

    def test_landmark_fit_trains_and_records_anchors(self, data):
        model = self._fit_landmark(data)
        assert np.isfinite(model.loss_)
        assert model.landmarks_ is not None
        assert model.landmarks_.size == 10
        assert np.array_equal(model.landmarks_, np.sort(model.landmarks_))
        assert model.transform(data).shape == data.shape

    def test_landmark_fit_deterministic(self, data):
        a = self._fit_landmark(data, random_state=5)
        b = self._fit_landmark(data, random_state=5)
        np.testing.assert_array_equal(a.landmarks_, b.landmarks_)
        np.testing.assert_array_equal(a.prototypes_, b.prototypes_)
        np.testing.assert_array_equal(a.alpha_, b.alpha_)

    def test_landmark_parallel_restarts_equal_sequential(self, data):
        sequential = self._fit_landmark(data, n_restarts=3)
        parallel = self._fit_landmark(data, n_restarts=3, n_jobs=3)
        np.testing.assert_array_equal(sequential.prototypes_, parallel.prototypes_)
        assert sequential.loss_ == parallel.loss_

    @pytest.mark.parametrize("p", [1.0, 3.0])
    def test_landmark_fit_generic_p(self, data, p):
        model = self._fit_landmark(data, p=p, max_iter=25)
        assert np.isfinite(model.loss_)
        assert model.memberships(data).shape == (40, 3)

    def test_landmark_farthest_method(self, data):
        model = self._fit_landmark(data, landmark_method="farthest")
        assert model.landmarks_.size == 10

    def test_non_landmark_fit_has_no_anchors(self, data):
        model = _fit(data)
        assert model.landmarks_ is None

    def test_landmark_count_capped_at_m(self, data):
        model = self._fit_landmark(data, n_landmarks=500, max_iter=10)
        assert model.landmarks_.size == 40


class TestParallelRestarts:
    """n_jobs must change wall-clock behaviour only, never the model."""

    @pytest.mark.parametrize("n_jobs", [2, 4, -1])
    def test_parallel_fit_equals_sequential(self, data, n_jobs):
        sequential = _fit(data, n_restarts=3)
        parallel = _fit(data, n_restarts=3, n_jobs=n_jobs)
        np.testing.assert_array_equal(sequential.prototypes_, parallel.prototypes_)
        np.testing.assert_array_equal(sequential.alpha_, parallel.alpha_)
        assert sequential.loss_ == parallel.loss_

    def test_restart_records_keep_seed_order(self, data):
        sequential = _fit(data, n_restarts=3)
        parallel = _fit(data, n_restarts=3, n_jobs=3)
        assert [r.seed for r in parallel.restarts_] == [
            r.seed for r in sequential.restarts_
        ]
        assert [r.loss for r in parallel.restarts_] == [
            r.loss for r in sequential.restarts_
        ]

    @pytest.mark.parametrize("n_jobs", [None, 3])
    def test_tie_breaks_by_seed_order(self, data, monkeypatch, n_jobs):
        # Force every restart to the same loss: the earliest seed's
        # parameters must win regardless of completion order.
        from repro.core.model import IFair, RestartRecord

        def tied_run(self, objective, bounds, seed, **kwargs):
            record = RestartRecord(
                seed=seed, loss=1.0, n_iterations=1, converged=True
            )
            return record, np.full(objective.n_params, float(seed))

        monkeypatch.setattr(IFair, "_run_restart", tied_run)
        model = IFair(
            n_prototypes=3, n_restarts=3, n_jobs=n_jobs, random_state=0
        ).fit(data, [4])
        first_seed = model.restarts_[0].seed
        assert np.all(model.prototypes_ == float(first_seed))
        assert np.all(model.alpha_ == float(first_seed))

    def test_n_jobs_exceeding_restarts_is_capped(self, data):
        model = _fit(data, n_restarts=2, n_jobs=16)
        assert len(model.restarts_) == 2


class TestWarmStart:
    def test_theta_roundtrip(self, data):
        model = _fit(data)
        np.testing.assert_array_equal(
            model.theta_,
            np.concatenate([model.prototypes_.ravel(), model.alpha_]),
        )

    def test_theta_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            IFair().theta_

    def test_warm_start_wrong_size_rejected(self, data):
        with pytest.raises(ValidationError):
            _fit(data, warm_start_theta=np.ones(3))

    def test_warm_start_resumes_first_restart(self, data):
        cold = _fit(data, max_iter=60)
        warm = _fit(data, max_iter=60, warm_start_theta=cold.theta_)
        # Continuing from a converged point cannot do worse than the
        # point itself; the remaining restarts still run from seeds.
        assert warm.loss_ <= cold.loss_ + 1e-9

    def test_warm_start_applies_under_every_backend(self, data):
        cold = _fit(data, max_iter=40)
        serial = _fit(data, max_iter=40, warm_start_theta=cold.theta_)
        process = _fit(
            data, max_iter=40, warm_start_theta=cold.theta_, n_jobs=2,
            n_restarts=2,
        )
        reference = _fit(
            data, max_iter=40, warm_start_theta=cold.theta_, n_restarts=2
        )
        np.testing.assert_array_equal(process.theta_, reference.theta_)
        assert serial.loss_ <= cold.loss_ + 1e-9

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValidationError):
            IFair(backend="greenlet")

    def test_get_params_rebuilds_equivalent_estimator(self, data):
        model = _fit(data, n_restarts=2)
        clone = IFair(**model.get_params()).fit(data, [4])
        np.testing.assert_array_equal(model.theta_, clone.theta_)


class TestTransform:
    def test_transform_before_fit_raises(self, data):
        with pytest.raises(NotFittedError):
            IFair().transform(data)

    def test_output_shape(self, data):
        model = _fit(data)
        assert model.transform(data).shape == data.shape

    def test_memberships_simplex(self, data):
        model = _fit(data)
        U = model.memberships(data)
        np.testing.assert_allclose(U.sum(axis=1), 1.0)
        assert np.all(U >= 0)

    def test_new_records_transformable(self, data, rng):
        model = _fit(data)
        X_new = rng.normal(size=(7, 5))
        assert model.transform(X_new).shape == (7, 5)

    def test_feature_mismatch_raises(self, data):
        model = _fit(data)
        with pytest.raises(ValidationError):
            model.transform(np.zeros((3, 7)))

    def test_transform_in_prototype_hull(self, data):
        model = _fit(data)
        Z = model.transform(data)
        lo = model.prototypes_.min(axis=0) - 1e-9
        hi = model.prototypes_.max(axis=0) + 1e-9
        assert np.all(Z >= lo) and np.all(Z <= hi)

    def test_reconstruction_error_finite(self, data):
        model = _fit(data)
        err = model.reconstruction_error(data)
        assert np.isfinite(err) and err >= 0.0


class TestBehaviour:
    def test_protected_flip_barely_moves_representation(self, make_data):
        """The paper's core property: flipping the protected attribute of
        a record (iFair-b) leaves its representation nearly unchanged."""
        X = make_data(50, 4, protected_col=3)
        model = IFair(
            n_prototypes=3,
            mu_fair=1.0,
            init="protected_zero",
            n_restarts=1,
            max_iter=60,
            random_state=0,
            max_pairs=400,
        ).fit(X, [3])
        X_flip = X.copy()
        X_flip[:, 3] = 1.0 - X_flip[:, 3]
        Z = model.transform(X)
        Z_flip = model.transform(X_flip)
        base_scale = float(np.mean(Z**2)) + 1e-12
        drift = float(np.mean((Z - Z_flip) ** 2))
        assert drift / base_scale < 0.05

    def test_higher_lambda_improves_reconstruction(self, make_data):
        X = make_data(40, 4)
        lo = IFair(
            n_prototypes=3, lambda_util=0.01, mu_fair=1.0,
            n_restarts=1, max_iter=60, random_state=0, max_pairs=300,
        ).fit(X)
        hi = IFair(
            n_prototypes=3, lambda_util=100.0, mu_fair=1.0,
            n_restarts=1, max_iter=60, random_state=0, max_pairs=300,
        ).fit(X)
        assert hi.reconstruction_error(X) <= lo.reconstruction_error(X) + 1e-6

    def test_repr_mentions_key_params(self):
        text = repr(IFair(n_prototypes=7, mu_fair=2.0))
        assert "n_prototypes=7" in text
        assert "mu_fair=2.0" in text


class TestChunkedTransform:
    """batch_size chunking must be exactly equal to the one-shot path."""

    @pytest.fixture(scope="class")
    def fitted(self):
        X = np.random.default_rng(5).normal(size=(60, 6))
        model = IFair(
            n_prototypes=4, n_restarts=1, max_iter=40, random_state=0,
            max_pairs=400,
        ).fit(X, [5])
        return model, X

    @pytest.mark.parametrize("batch_size", [1, 7, 32, 60, 1000])
    def test_memberships_chunking_exact(self, fitted, batch_size):
        model, X = fitted
        full = model.memberships(X)
        chunked = model.memberships(X, batch_size=batch_size)
        assert np.array_equal(full, chunked)

    @pytest.mark.parametrize("batch_size", [1, 13, 64])
    def test_transform_chunking_exact(self, fitted, batch_size):
        model, X = fitted
        assert np.array_equal(
            model.transform(X), model.transform(X, batch_size=batch_size)
        )

    @pytest.mark.parametrize("p", [1.0, 3.0])
    def test_chunking_exact_for_general_p(self, p):
        X = np.random.default_rng(6).normal(size=(30, 4))
        model = IFair(
            n_prototypes=3, p=p, n_restarts=1, max_iter=25, random_state=1,
            max_pairs=200,
        ).fit(X, [3])
        assert np.array_equal(
            model.memberships(X), model.memberships(X, batch_size=11)
        )

    def test_invalid_batch_size_rejected(self, fitted):
        model, X = fitted
        with pytest.raises(ValidationError):
            model.memberships(X, batch_size=0)
