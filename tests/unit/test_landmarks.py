"""Tests for repro.utils.landmarks (anchor selection)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.landmarks import LANDMARK_METHODS, select_landmarks


class TestSelectLandmarks:
    @pytest.mark.parametrize("method", LANDMARK_METHODS)
    def test_sorted_distinct_in_range(self, make_data, method):
        X = make_data(30, 4)
        idx = select_landmarks(X, 8, method=method, random_state=0)
        assert idx.dtype == np.int64
        assert idx.shape == (8,)
        assert np.array_equal(idx, np.sort(idx))
        assert np.unique(idx).size == 8
        assert idx.min() >= 0 and idx.max() < 30

    @pytest.mark.parametrize("method", LANDMARK_METHODS)
    def test_deterministic_under_seed(self, make_data, method):
        X = make_data(25, 3)
        a = select_landmarks(X, 6, method=method, random_state=42)
        b = select_landmarks(X, 6, method=method, random_state=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_usually_differ(self, make_data):
        X = make_data(40, 3)
        a = select_landmarks(X, 5, random_state=1)
        b = select_landmarks(X, 5, random_state=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("method", LANDMARK_METHODS)
    def test_full_rank_selects_every_record(self, make_data, method):
        X = make_data(12, 3)
        idx = select_landmarks(X, 12, method=method, random_state=7)
        np.testing.assert_array_equal(idx, np.arange(12))

    @pytest.mark.parametrize("method", LANDMARK_METHODS)
    def test_duplicate_records_stay_distinct(self, method):
        # 4 distinct points, each duplicated 3 times: selection beyond
        # 4 must fall back without repeating an index.
        base = np.arange(4, dtype=np.float64)[:, None] * np.ones((1, 3))
        X = np.repeat(base, 3, axis=0)
        idx = select_landmarks(X, 9, method=method, random_state=0)
        assert np.unique(idx).size == 9

    def test_farthest_spreads_over_clusters(self):
        # Three tight, well-separated clusters: 3 anchors must land in
        # 3 different clusters.
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]])
        X = np.vstack([c + 0.01 * rng.normal(size=(10, 2)) for c in centers])
        idx = select_landmarks(X, 3, method="farthest", random_state=5)
        clusters = {int(i) // 10 for i in idx}
        assert len(clusters) == 3

    def test_kmeanspp_prefers_spread(self):
        rng = np.random.default_rng(1)
        centers = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]])
        X = np.vstack([c + 0.01 * rng.normal(size=(10, 2)) for c in centers])
        idx = select_landmarks(X, 3, method="kmeans++", random_state=5)
        clusters = {int(i) // 10 for i in idx}
        assert len(clusters) == 3

    def test_validation(self, make_data):
        X = make_data(10, 3)
        with pytest.raises(ValidationError):
            select_landmarks(X, 0)
        with pytest.raises(ValidationError):
            select_landmarks(X, 11)
        with pytest.raises(ValidationError):
            select_landmarks(X, 3, method="bogus")
        with pytest.raises(ValidationError):
            select_landmarks(np.zeros((0, 3)), 1)
        with pytest.raises(ValidationError):
            select_landmarks(np.zeros(5), 1)
