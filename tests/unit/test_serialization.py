"""Tests for repro.pipeline.serialization."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.pipeline.classification import (
    CandidateOutcome,
    ClassificationReport,
    ClassifierMetrics,
)
from repro.pipeline.datasets import DatasetsReport, DatasetStats
from repro.pipeline.obfuscation import ObfuscationReport, ObfuscationRow
from repro.pipeline.posthoc import PosthocPoint, PosthocReport
from repro.pipeline.ranking import RankingReport, RankingRow
from repro.pipeline.serialization import (
    report_to_dict,
    report_to_json,
    rows_to_csv,
)
from repro.pipeline.synthetic_study import SyntheticCell, SyntheticReport


@pytest.fixture
def classification_report():
    metrics = ClassifierMetrics(
        accuracy=0.8, auc=0.7, eq_opp=0.9, parity=float("nan"), consistency=0.95
    )
    return ClassificationReport(
        dataset="credit",
        candidates=[
            CandidateOutcome(
                method="iFair-b",
                params={"mu_fair": 1.0},
                val_auc=0.72,
                val_consistency=0.9,
                test=metrics,
            )
        ],
    )


class TestReportToDict:
    def test_classification(self, classification_report):
        out = report_to_dict(classification_report)
        assert out["dataset"] == "credit"
        cand = out["candidates"][0]
        assert cand["method"] == "iFair-b"
        assert cand["test"]["accuracy"] == 0.8
        assert cand["test"]["parity"] is None  # NaN cleaned

    def test_ranking(self):
        report = RankingReport(
            dataset="xing",
            n_queries=4,
            rows=[
                RankingRow(
                    method="iFair-b",
                    map_score=0.7,
                    kendall=0.5,
                    consistency=0.9,
                    protected_share=0.3,
                )
            ],
        )
        out = report_to_dict(report)
        assert out["n_queries"] == 4
        assert out["rows"][0]["map"] == 0.7

    def test_obfuscation_handles_missing_lfr(self):
        report = ObfuscationReport(
            rows=[ObfuscationRow(dataset="xing", masked=0.7, lfr=None, ifair=0.55)]
        )
        out = report_to_dict(report)
        assert out["rows"][0]["lfr"] is None

    def test_posthoc(self):
        report = PosthocReport(
            dataset="airbnb",
            points=[PosthocPoint(p=0.5, map_score=0.8, protected_share=0.4, consistency=0.7)],
        )
        out = report_to_dict(report)
        assert out["points"][0]["p"] == 0.5

    def test_synthetic(self):
        report = SyntheticReport(
            cells=[
                SyntheticCell(
                    variant="x1",
                    method="LFR",
                    accuracy=0.9,
                    consistency=0.95,
                    parity=0.2,
                    eq_opp=0.1,
                )
            ]
        )
        out = report_to_dict(report)
        assert out["cells"][0]["variant"] == "x1"

    def test_datasets(self):
        report = DatasetsReport(
            rows=[
                DatasetStats(
                    name="compas",
                    base_rate_protected=0.52,
                    base_rate_unprotected=0.40,
                    n_records=100,
                    n_encoded=431,
                    outcome="recidivism",
                    protected="race",
                )
            ]
        )
        out = report_to_dict(report)
        assert out["rows"][0]["n_encoded"] == 431

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError, match="no serializer"):
            report_to_dict(object())


class TestJson:
    def test_round_trip(self, classification_report):
        text = report_to_json(classification_report)
        parsed = json.loads(text)
        assert parsed["experiment"] == "classification"

    def test_nan_is_valid_json(self, classification_report):
        text = report_to_json(classification_report)
        json.loads(text)  # would raise on bare NaN


class TestCsv:
    def test_header_union(self):
        csv = rows_to_csv([{"a": 1}, {"a": 2, "b": 3}])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
        assert lines[2] == "2,3"

    def test_quoting(self):
        csv = rows_to_csv([{"name": 'has,comma "quoted"'}])
        assert '"has,comma ""quoted"""' in csv

    def test_newlines_quoted(self):
        # Regression: unquoted embedded newlines split one record
        # across two CSV rows.
        csv = rows_to_csv([{"note": "line one\nline two", "x": 1}])
        lines = csv.splitlines()
        assert lines[0] == "note,x"
        assert csv == 'note,x\n"line one\nline two",1\n'

    def test_carriage_return_quoted(self):
        csv = rows_to_csv([{"note": "a\rb"}])
        assert '"a\rb"' in csv

    def test_none_rendered_empty(self):
        csv = rows_to_csv([{"x": None}])
        assert csv.splitlines() == ["x", ""]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            rows_to_csv([])

    def test_pipeline_rows_serialise(self, classification_report):
        flat = [
            {
                "method": c["method"],
                **c["test"],
            }
            for c in report_to_dict(classification_report)["candidates"]
        ]
        csv = rows_to_csv(flat)
        assert "method" in csv.splitlines()[0]
