"""Tests for repro.data.splits."""

import numpy as np
import pytest

from repro.data.splits import stratified_split, train_val_test_split
from repro.exceptions import ValidationError


class TestTrainValTest:
    def test_partition_property(self):
        split = train_val_test_split(100, random_state=0)
        joined = np.concatenate([split.train, split.val, split.test])
        assert sorted(joined.tolist()) == list(range(100))

    def test_disjoint(self):
        split = train_val_test_split(50, random_state=0)
        assert not set(split.train) & set(split.val)
        assert not set(split.train) & set(split.test)
        assert not set(split.val) & set(split.test)

    def test_default_thirds(self):
        split = train_val_test_split(300, random_state=0)
        assert split.sizes == (100, 100, 100)

    def test_custom_fractions(self):
        split = train_val_test_split(100, (0.6, 0.2, 0.2), random_state=0)
        assert split.sizes == (60, 20, 20)

    def test_deterministic(self):
        a = train_val_test_split(40, random_state=3)
        b = train_val_test_split(40, random_state=3)
        np.testing.assert_array_equal(a.train, b.train)

    def test_tiny_input(self):
        split = train_val_test_split(3, random_state=0)
        assert split.sizes == (1, 1, 1)

    def test_too_few_rejected(self):
        with pytest.raises(ValidationError):
            train_val_test_split(2)

    def test_bad_fractions(self):
        with pytest.raises(ValidationError):
            train_val_test_split(10, (0.5, 0.5, 0.5))
        with pytest.raises(ValidationError):
            train_val_test_split(10, (1.0, -0.5, 0.5))


class TestStratified:
    def test_partition_property(self, rng):
        labels = (rng.random(90) > 0.3).astype(float)
        split = stratified_split(labels, random_state=0)
        joined = np.concatenate([split.train, split.val, split.test])
        assert sorted(joined.tolist()) == list(range(90))

    def test_label_proportions_preserved(self, rng):
        labels = (rng.random(300) > 0.25).astype(float)
        split = stratified_split(labels, random_state=0)
        overall = labels.mean()
        for part in (split.train, split.val, split.test):
            assert labels[part].mean() == pytest.approx(overall, abs=0.05)

    def test_rare_label_rejected(self):
        labels = np.array([0.0] * 10 + [1.0] * 2)
        with pytest.raises(ValidationError, match="fewer than 3"):
            stratified_split(labels)
