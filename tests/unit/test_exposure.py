"""Tests for repro.ranking.exposure."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ranking.exposure import (
    exposure_ratio,
    group_exposure,
    individual_exposure_gap,
    position_exposure,
)


class TestPositionExposure:
    def test_first_rank_highest(self):
        exp = position_exposure(10)
        assert exp[0] == 1.0
        assert np.all(np.diff(exp) < 0)

    def test_known_values(self):
        exp = position_exposure(3)
        np.testing.assert_allclose(
            exp, [1.0, 1.0 / np.log2(3), 0.5]
        )

    def test_invalid(self):
        with pytest.raises(ValidationError):
            position_exposure(0)


class TestGroupExposure:
    def test_top_heavy_group_gets_more(self):
        protected = np.array([1.0, 1.0, 0.0, 0.0])
        top_ranking = [0, 1, 2, 3]  # protected first
        bottom_ranking = [2, 3, 0, 1]
        assert group_exposure(top_ranking, protected) > group_exposure(
            bottom_ranking, protected
        )

    def test_ratio_one_for_interleaved(self):
        protected = np.array([1.0, 0.0, 1.0, 0.0])
        # symmetric placement: items 0,2 protected at ranks 1,3; 1,3 at 2,4
        ratio_a = exposure_ratio([0, 1, 2, 3], protected)
        ratio_b = exposure_ratio([1, 0, 3, 2], protected)
        assert ratio_a > 1.0 > ratio_b
        assert ratio_a * ratio_b == pytest.approx(1.0, abs=0.2)

    def test_missing_group_raises(self):
        with pytest.raises(ValidationError):
            group_exposure([0, 1], np.zeros(2))

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValidationError):
            group_exposure([0, 0], np.array([1.0, 0.0]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            group_exposure([5], np.array([1.0, 0.0]))


class TestIndividualExposureGap:
    def test_zero_when_similar_items_adjacent(self, rng):
        # Two identical pairs placed at adjacent ranks: small gap.
        Q = np.array([[0.0], [0.0], [5.0], [5.0]])
        adjacent = individual_exposure_gap([0, 1, 2, 3], Q, top_fraction=0.4)
        separated = individual_exposure_gap([0, 2, 3, 1], Q, top_fraction=0.4)
        assert adjacent < separated

    def test_bounded_by_max_exposure_spread(self, rng):
        Q = rng.normal(size=(12, 3))
        ranking = list(rng.permutation(12))
        gap = individual_exposure_gap(ranking, Q)
        assert 0.0 <= gap <= 1.0  # exposures live in (0, 1]

    def test_invalid_fraction(self, rng):
        Q = rng.normal(size=(5, 2))
        with pytest.raises(ValidationError):
            individual_exposure_gap([0, 1, 2, 3, 4], Q, top_fraction=0.0)
