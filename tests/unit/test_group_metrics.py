"""Tests for repro.metrics.group."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.group import (
    equal_opportunity,
    protected_share_at_k,
    statistical_parity,
)


class TestStatisticalParity:
    def test_equal_rates_perfect(self):
        y_hat = [1, 0, 1, 0]
        protected = [1, 1, 0, 0]
        assert statistical_parity(y_hat, protected) == 1.0

    def test_maximal_gap(self):
        y_hat = [1, 1, 0, 0]
        protected = [1, 1, 0, 0]
        assert statistical_parity(y_hat, protected) == 0.0

    def test_known_partial_gap(self):
        y_hat = [1, 0, 1, 1]  # protected rate 0.5, unprotected rate 1.0
        protected = [1, 1, 0, 0]
        assert statistical_parity(y_hat, protected) == pytest.approx(0.5)

    def test_accepts_probabilities(self):
        out = statistical_parity([0.8, 0.6, 0.7, 0.7], [1, 1, 0, 0])
        assert out == pytest.approx(1.0)

    def test_single_group_raises(self):
        with pytest.raises(ValidationError, match="non-empty"):
            statistical_parity([1, 0], [1, 1])


class TestEqualOpportunity:
    def test_equal_tpr_perfect(self):
        y_true = [1, 1, 1, 1]
        y_hat = [1, 0, 1, 0]
        protected = [1, 1, 0, 0]
        assert equal_opportunity(y_true, y_hat, protected) == 1.0

    def test_tpr_gap(self):
        y_true = [1, 1, 1, 1]
        y_hat = [1, 1, 0, 0]  # protected TPR 1, unprotected TPR 0
        protected = [1, 1, 0, 0]
        assert equal_opportunity(y_true, y_hat, protected) == 0.0

    def test_only_positives_count(self):
        y_true = [1, 0, 1, 0]
        y_hat = [1, 1, 1, 1]  # false positives do not affect EqOpp
        protected = [1, 1, 0, 0]
        assert equal_opportunity(y_true, y_hat, protected) == 1.0

    def test_group_without_positives_raises(self):
        y_true = [1, 1, 0, 0]
        y_hat = [1, 1, 0, 0]
        protected = [1, 1, 0, 0]  # unprotected group has no positives
        with pytest.raises(ValidationError, match="no positive"):
            equal_opportunity(y_true, y_hat, protected)


class TestProtectedShareAtK:
    def test_counts_topk_only(self):
        protected = [1, 1, 0, 0, 0]
        ranking = [0, 2, 3, 1, 4]
        assert protected_share_at_k(ranking, protected, k=2) == pytest.approx(0.5)

    def test_all_protected(self):
        assert protected_share_at_k([0, 1], [1, 1], k=2) == 1.0

    def test_k_longer_than_ranking_uses_everything(self):
        assert protected_share_at_k([0, 1], [1, 0], k=10) == pytest.approx(0.5)

    def test_out_of_range_item_raises(self):
        with pytest.raises(ValidationError):
            protected_share_at_k([5], [1, 0], k=1)

    def test_empty_ranking_raises(self):
        with pytest.raises(ValidationError):
            protected_share_at_k([], [1, 0], k=1)
