"""Tests for repro.ranking.query."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ranking.query import build_queries


class TestBuildQueries:
    def test_groups_by_query_id(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2)
        assert len(queries) == 4
        for q in queries:
            np.testing.assert_array_equal(
                tiny_xing.query_ids[q.indices], q.qid
            )

    def test_covers_all_records_when_no_filter(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2)
        total = sum(q.size for q in queries)
        assert total == tiny_xing.n_records

    def test_min_size_filter(self, tiny_xing):
        # All queries have 15 candidates; a 16 threshold removes all.
        with pytest.raises(ValidationError, match="no queries"):
            build_queries(tiny_xing, min_size=16)

    def test_max_queries_cap(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2, max_queries=2)
        assert len(queries) == 2

    def test_dataset_without_queries_rejected(self, tiny_compas):
        with pytest.raises(ValidationError, match="query ids"):
            build_queries(tiny_compas)

    def test_min_size_validated(self, tiny_xing):
        with pytest.raises(ValidationError):
            build_queries(tiny_xing, min_size=1)

    def test_max_queries_validated(self, tiny_xing):
        with pytest.raises(ValidationError):
            build_queries(tiny_xing, min_size=2, max_queries=0)
