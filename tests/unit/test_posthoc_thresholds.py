"""Tests for repro.posthoc.thresholds."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.posthoc.thresholds import GroupThresholdAdjuster


@pytest.fixture
def biased_scores(rng):
    """Scores where the protected group systematically scores lower."""
    n = 400
    groups = (rng.random(n) < 0.5).astype(float)
    quality = rng.normal(size=n)
    scores = 1.0 / (1.0 + np.exp(-(quality - 0.8 * groups)))
    y_true = (quality + 0.2 * rng.normal(size=n) > 0).astype(float)
    return scores, groups, y_true


class TestParityAdjustment:
    def test_equalises_acceptance_rates(self, biased_scores):
        scores, groups, _ = biased_scores
        adjuster = GroupThresholdAdjuster("parity", target_rate=0.3).fit(scores, groups)
        rates = adjuster.acceptance_rates(scores, groups)
        assert rates[0.0] == pytest.approx(0.3, abs=0.03)
        assert rates[1.0] == pytest.approx(0.3, abs=0.03)

    def test_unadjusted_rates_differ(self, biased_scores):
        scores, groups, _ = biased_scores
        naive = (scores >= 0.5).astype(float)
        gap = abs(naive[groups == 1].mean() - naive[groups == 0].mean())
        assert gap > 0.15  # bias is real before adjustment

    def test_default_rate_preserves_total_volume(self, biased_scores):
        scores, groups, _ = biased_scores
        adjuster = GroupThresholdAdjuster("parity").fit(scores, groups)
        adjusted = adjuster.predict(scores, groups)
        naive_rate = float(np.mean(scores >= 0.5))
        assert adjusted.mean() == pytest.approx(naive_rate, abs=0.05)

    def test_per_group_thresholds_differ_under_bias(self, biased_scores):
        scores, groups, _ = biased_scores
        adjuster = GroupThresholdAdjuster("parity", target_rate=0.3).fit(scores, groups)
        assert adjuster.thresholds_[1.0] < adjuster.thresholds_[0.0]


class TestEqualOpportunityAdjustment:
    def test_equalises_tpr(self, biased_scores):
        scores, groups, y_true = biased_scores
        adjuster = GroupThresholdAdjuster(
            "equal_opportunity", target_rate=0.6
        ).fit(scores, groups, y_true)
        pred = adjuster.predict(scores, groups)
        tprs = [
            pred[(groups == g) & (y_true == 1)].mean() for g in (0.0, 1.0)
        ]
        assert abs(tprs[0] - tprs[1]) < 0.08

    def test_requires_labels(self, biased_scores):
        scores, groups, _ = biased_scores
        with pytest.raises(ValidationError, match="labels"):
            GroupThresholdAdjuster("equal_opportunity").fit(scores, groups)


class TestValidation:
    def test_bad_criterion(self):
        with pytest.raises(ValidationError):
            GroupThresholdAdjuster("calibration")

    def test_bad_target_rate(self):
        with pytest.raises(ValidationError):
            GroupThresholdAdjuster("parity", target_rate=1.5)

    def test_predict_before_fit(self, biased_scores):
        scores, groups, _ = biased_scores
        with pytest.raises(NotFittedError):
            GroupThresholdAdjuster().predict(scores, groups)

    def test_missing_group_rejected(self, rng):
        scores = rng.random(10)
        with pytest.raises(ValidationError, match="absent"):
            GroupThresholdAdjuster().fit(scores, np.zeros(10))
