"""HTTPClient retry budget + typed 429/503 error surface.

A scripted stdlib HTTP server stands in for the decision service so
these tests pin the *client* contract precisely: which statuses are
retried, which fail fast, how ``Retry-After`` is parsed, and which
typed exception each status maps to — without forking engine workers.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serving.client import (
    HTTPClient,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    service_error,
)


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers each request with the next scripted (status, body, headers)."""

    def _serve(self):
        script = self.server.script
        with self.server.script_lock:
            self.server.hits += 1
            step = script[min(self.server.hits - 1, len(script) - 1)]
        status, body, headers = step
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    do_GET = do_POST = _serve

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture
def scripted_server():
    servers = []

    def _start(script):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        server.script = script
        server.script_lock = threading.Lock()
        server.hits = 0
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return server

    yield _start
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _client(server, **kwargs):
    kwargs.setdefault("backoff_s", 0.01)
    return HTTPClient("127.0.0.1", server.server_address[1], **kwargs)


class TestTypedErrors:
    def test_429_maps_to_overloaded_with_retry_fields(self, scripted_server):
        server = scripted_server([
            (429, {"error": "shed", "retry_after_s": 0.25, "worker": None}, {}),
        ])
        with pytest.raises(ServiceOverloadedError) as excinfo:
            _client(server, retries=0).health()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s == 0.25

    def test_503_maps_to_unavailable_with_worker(self, scripted_server):
        server = scripted_server([
            (503, {"error": "down", "retry_after_s": 0.5, "worker": 1}, {}),
        ])
        with pytest.raises(ServiceUnavailableError) as excinfo:
            _client(server, retries=0).health()
        assert excinfo.value.retry_after_s == 0.5
        assert excinfo.value.worker == 1

    def test_retry_after_header_is_the_fallback(self, scripted_server):
        server = scripted_server([
            (503, {"error": "down"}, {"Retry-After": "2"}),
        ])
        with pytest.raises(ServiceUnavailableError) as excinfo:
            _client(server, retries=0).health()
        assert excinfo.value.retry_after_s == 2.0

    def test_400_stays_plain_service_error(self, scripted_server):
        server = scripted_server([(400, {"error": "bad"}, {})])
        with pytest.raises(ServiceError) as excinfo:
            _client(server, retries=3).health()
        assert excinfo.value.status == 400
        assert not isinstance(
            excinfo.value, (ServiceOverloadedError, ServiceUnavailableError)
        )

    def test_unreachable_socket_is_unavailable(self):
        client = HTTPClient("127.0.0.1", 1, timeout=0.5, retries=0)
        with pytest.raises(ServiceUnavailableError):
            client.health()

    def test_service_error_factory(self):
        assert isinstance(service_error("x", 429), ServiceOverloadedError)
        assert isinstance(service_error("x", 503), ServiceUnavailableError)
        assert type(service_error("x", 404)) is ServiceError


class TestRetryBudget:
    def test_retries_transient_503_then_succeeds(self, scripted_server):
        server = scripted_server([
            (503, {"error": "down", "retry_after_s": 0.01, "worker": None}, {}),
            (503, {"error": "down", "retry_after_s": 0.01, "worker": None}, {}),
            (200, {"status": "ok"}, {}),
        ])
        answer = _client(server, retries=2).health()
        assert answer == {"status": "ok"}
        assert server.hits == 3

    def test_retries_429_honouring_budget(self, scripted_server):
        server = scripted_server([
            (429, {"error": "shed", "retry_after_s": 0.01, "worker": None}, {}),
        ])
        with pytest.raises(ServiceOverloadedError):
            _client(server, retries=2).health()
        assert server.hits == 3  # initial attempt + 2 retries, then give up

    def test_4xx_is_never_retried(self, scripted_server):
        server = scripted_server([(404, {"error": "nope"}, {})])
        with pytest.raises(ServiceError):
            _client(server, retries=5).health()
        assert server.hits == 1

    def test_zero_retries_fails_fast(self, scripted_server):
        server = scripted_server([
            (503, {"error": "down", "retry_after_s": 0.01, "worker": None}, {}),
        ])
        with pytest.raises(ServiceUnavailableError):
            _client(server, retries=0).health()
        assert server.hits == 1

    def test_backoff_honours_retry_after_hint_under_cap(self, scripted_server):
        server = scripted_server([(200, {"status": "ok"}, {})])
        client = _client(server, retries=2, backoff_s=0.01, backoff_max_s=0.5)
        hinted = client._backoff(0, service_error("x", 503, retry_after_s=0.3))
        assert 0.3 <= hinted <= 0.5
        capped = client._backoff(0, service_error("x", 503, retry_after_s=60.0))
        assert capped <= 0.5
