"""Tests for repro.utils.mathkit."""

import numpy as np
import pytest

from repro.utils.mathkit import (
    harmonic_mean,
    log_sum_exp,
    pairwise_sq_euclidean,
    sigmoid,
    softmax,
    weighted_minkowski_to_prototypes,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        S = softmax(rng.normal(size=(5, 4)), axis=1)
        np.testing.assert_allclose(S.sum(axis=1), 1.0)

    def test_nonnegative(self, rng):
        assert np.all(softmax(rng.normal(size=(5, 4))) >= 0)

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_values_stable(self):
        out = softmax(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[0], [1.0, 0.0], atol=1e-12)

    def test_uniform_input_gives_uniform_output(self):
        np.testing.assert_allclose(softmax(np.zeros((1, 4))), 0.25)


class TestLogSumExp:
    def test_matches_naive_on_small_values(self, rng):
        x = rng.normal(size=(6, 3))
        np.testing.assert_allclose(
            log_sum_exp(x, axis=1), np.log(np.exp(x).sum(axis=1))
        )

    def test_stable_for_large_values(self):
        out = log_sum_exp(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(out, 1000.0 + np.log(2.0))


class TestSigmoid:
    def test_range(self, rng):
        out = sigmoid(rng.normal(size=100) * 50)
        assert np.all((out >= 0) & (out <= 1))

    def test_symmetry(self, rng):
        z = rng.normal(size=20)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_at_zero(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_no_overflow(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(out))


class TestPairwiseSqEuclidean:
    def test_matches_naive(self, rng):
        A = rng.normal(size=(7, 4))
        B = rng.normal(size=(5, 4))
        D = pairwise_sq_euclidean(A, B)
        for i in range(7):
            for j in range(5):
                assert D[i, j] == pytest.approx(np.sum((A[i] - B[j]) ** 2))

    def test_self_distance_zero_diagonal(self, rng):
        A = rng.normal(size=(6, 3))
        D = pairwise_sq_euclidean(A)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-10)

    def test_nonnegative_despite_cancellation(self, rng):
        A = rng.normal(size=(10, 3)) * 1e6
        assert np.all(pairwise_sq_euclidean(A) >= 0.0)


class TestWeightedMinkowski:
    def test_p2_matches_weighted_sq_euclidean(self, rng):
        X = rng.normal(size=(6, 4))
        V = rng.normal(size=(3, 4))
        alpha = rng.uniform(0.1, 1.0, size=4)
        d = weighted_minkowski_to_prototypes(X, V, alpha, p=2.0)
        naive = np.array(
            [[np.sum(alpha * (x - v) ** 2) for v in V] for x in X]
        )
        np.testing.assert_allclose(d, naive)

    def test_p1_matches_weighted_manhattan(self, rng):
        X = rng.normal(size=(4, 3))
        V = rng.normal(size=(2, 3))
        alpha = rng.uniform(0.1, 1.0, size=3)
        d = weighted_minkowski_to_prototypes(X, V, alpha, p=1.0)
        naive = np.array(
            [[np.sum(alpha * np.abs(x - v)) for v in V] for x in X]
        )
        np.testing.assert_allclose(d, naive)

    def test_root_applies_power(self, rng):
        X = rng.normal(size=(3, 2))
        V = rng.normal(size=(2, 2))
        alpha = np.ones(2)
        d_raw = weighted_minkowski_to_prototypes(X, V, alpha, p=2.0, root=False)
        d_root = weighted_minkowski_to_prototypes(X, V, alpha, p=2.0, root=True)
        np.testing.assert_allclose(d_root, np.sqrt(d_raw))


class TestHarmonicMean:
    def test_equal_inputs(self):
        assert harmonic_mean(0.5, 0.5) == pytest.approx(0.5)

    def test_zero_dominates(self):
        assert harmonic_mean(0.0, 1.0) == 0.0
        assert harmonic_mean(1.0, 0.0) == 0.0

    def test_known_value(self):
        assert harmonic_mean(1.0, 0.5) == pytest.approx(2.0 / 3.0)

    def test_below_arithmetic_mean(self):
        assert harmonic_mean(0.9, 0.3) < 0.6
