"""Library code must log, not print.

The CLI is the process's human interface and owns stdout; everything
under ``src/repro`` besides ``cli.py`` is library code and must route
diagnostics through :mod:`repro.telemetry.logs` so that embedding
applications (and the serving daemon) stay quiet by default.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

ALLOWED = {SRC / "cli.py"}


def _print_calls(path: pathlib.Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield node.lineno


def test_no_print_outside_cli():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        offenders.extend(f"{path.relative_to(SRC)}:{line}" for line in _print_calls(path))
    assert not offenders, (
        "bare print() in library code (use repro.telemetry.logs): "
        + ", ".join(offenders)
    )


def test_lint_scope_is_nonempty():
    # Guard against the lint silently passing because the path moved.
    files = list(SRC.rglob("*.py"))
    assert len(files) > 10
    assert (SRC / "cli.py").is_file()
