"""Tests for repro.baselines.svd."""

import numpy as np
import pytest

from repro.baselines.svd import SVDTransform, randomized_svd, truncated_svd
from repro.exceptions import NotFittedError, ValidationError


def _low_rank(rng, m=40, n=10, r=3):
    """An exactly rank-r matrix plus its factors."""
    A = rng.normal(size=(m, r))
    B = rng.normal(size=(r, n))
    return A @ B


class TestTruncatedSvd:
    def test_exact_recovery_of_low_rank(self, rng):
        X = _low_rank(rng, r=3)
        U, s, Vt = truncated_svd(X, 3)
        np.testing.assert_allclose(U * s @ Vt, X, atol=1e-8)

    def test_singular_values_descending(self, rng):
        _, s, _ = truncated_svd(rng.normal(size=(20, 8)), 5)
        assert np.all(np.diff(s) <= 1e-12)

    def test_orthonormal_factors(self, rng):
        U, _, Vt = truncated_svd(rng.normal(size=(15, 6)), 4)
        np.testing.assert_allclose(U.T @ U, np.eye(4), atol=1e-10)
        np.testing.assert_allclose(Vt @ Vt.T, np.eye(4), atol=1e-10)

    def test_rank_bounds(self, rng):
        X = rng.normal(size=(5, 3))
        with pytest.raises(ValidationError):
            truncated_svd(X, 0)
        with pytest.raises(ValidationError):
            truncated_svd(X, 4)


class TestRandomizedSvd:
    def test_matches_exact_on_low_rank(self, rng):
        X = _low_rank(rng, r=3)
        _, s_exact, _ = truncated_svd(X, 3)
        _, s_rand, _ = randomized_svd(X, 3, random_state=0)
        np.testing.assert_allclose(s_rand, s_exact, rtol=1e-6)

    def test_reconstruction_close_on_decaying_spectrum(self, rng):
        # Spectrum decaying fast: randomized SVD nearly exact.
        U, _, Vt = np.linalg.svd(rng.normal(size=(30, 12)), full_matrices=False)
        s = 2.0 ** -np.arange(12)
        X = (U * s) @ Vt
        Ur, sr, Vtr = randomized_svd(X, 4, n_power_iter=6, random_state=0)
        np.testing.assert_allclose((Ur * sr) @ Vtr, (U[:, :4] * s[:4]) @ Vt[:4], atol=1e-6)

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(20, 8))
        _, s1, _ = randomized_svd(X, 3, random_state=1)
        _, s2, _ = randomized_svd(X, 3, random_state=1)
        np.testing.assert_allclose(s1, s2)

    def test_negative_oversamples_rejected(self, rng):
        with pytest.raises(ValidationError):
            randomized_svd(rng.normal(size=(10, 5)), 2, n_oversamples=-1)


class TestSVDTransform:
    def test_reconstruction_shape_preserved(self, rng):
        X = rng.normal(size=(25, 7))
        Z = SVDTransform(rank=3).fit_transform(X)
        assert Z.shape == X.shape

    def test_exact_on_low_rank_input(self, rng):
        X = _low_rank(rng, r=2)
        Z = SVDTransform(rank=2).fit_transform(X)
        np.testing.assert_allclose(Z, X, atol=1e-8)

    def test_projection_idempotent(self, rng):
        X = rng.normal(size=(20, 6))
        svd = SVDTransform(rank=3).fit(X)
        Z = svd.transform(X)
        np.testing.assert_allclose(svd.transform(Z), Z, atol=1e-8)

    def test_full_rank_is_identity(self, rng):
        X = rng.normal(size=(20, 4))
        Z = SVDTransform(rank=4).fit_transform(X)
        np.testing.assert_allclose(Z, X, atol=1e-8)

    def test_rank_capped_at_matrix_rank_dim(self, rng):
        X = rng.normal(size=(5, 3))
        svd = SVDTransform(rank=10).fit(X)  # silently capped
        assert svd.components_.shape[0] == 3

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            SVDTransform().transform(rng.normal(size=(3, 3)))

    def test_feature_mismatch_raises(self, rng):
        svd = SVDTransform(rank=2).fit(rng.normal(size=(10, 4)))
        with pytest.raises(ValidationError):
            svd.transform(rng.normal(size=(3, 5)))

    def test_randomized_method(self, rng):
        X = _low_rank(rng, r=2)
        Z = SVDTransform(rank=2, method="randomized").fit_transform(X)
        np.testing.assert_allclose(Z, X, atol=1e-6)

    def test_bad_method_rejected(self):
        with pytest.raises(ValidationError):
            SVDTransform(method="magic")

    def test_explained_variance_increases_with_rank(self, rng):
        X = rng.normal(size=(30, 8))
        low = SVDTransform(rank=2).fit(X)
        high = SVDTransform(rank=6).fit(X)
        assert high.explained_variance_ratio(X) >= low.explained_variance_ratio(X)
