"""Tests for the CI perf-regression gate in benchmarks/run_bench.py.

The gate is pure bookkeeping over JSON trajectories, so it is tested
directly: an injected regression beyond tolerance must produce a
violation (and a non-zero exit through main), equal-or-faster entries
must pass, and correctness flags must never silently flip to false.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.exceptions import ValidationError

_BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"
)


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _doc(*entries):
    return {"benchmark": "core-ops", "entries": list(entries)}


class TestBaselineValue:
    def test_latest_entry_carrying_the_key_wins(self, run_bench):
        doc = _doc({"a": 1.0}, {"a": 2.0, "b": 5.0}, {"b": 6.0})
        assert run_bench.baseline_value(doc, "a") == 2.0
        assert run_bench.baseline_value(doc, "b") == 6.0

    def test_missing_key_returns_none(self, run_bench):
        assert run_bench.baseline_value(_doc({"a": 1.0}), "zzz") is None
        assert run_bench.baseline_value({}, "a") is None


class TestCompareToBaseline:
    BASE = {
        "fit_M400_N20_K8_r2_s": 0.050,
        "serving_transform_1rec_p99_s": 1e-4,
        "halving_agree_optimal": True,
        "fit_warm_pool_parity": True,
    }

    def test_equal_entry_passes(self, run_bench):
        assert run_bench.compare_to_baseline(dict(self.BASE), _doc(self.BASE), 0.5) == []

    def test_faster_entry_passes(self, run_bench):
        entry = dict(self.BASE, fit_M400_N20_K8_r2_s=0.010)
        assert run_bench.compare_to_baseline(entry, _doc(self.BASE), 0.0) == []

    def test_injected_regression_beyond_tolerance_fails(self, run_bench):
        entry = dict(self.BASE, serving_transform_1rec_p99_s=1e-3)  # 10x
        violations = run_bench.compare_to_baseline(entry, _doc(self.BASE), 0.5)
        assert len(violations) == 1
        assert "serving_transform_1rec_p99_s" in violations[0]

    def test_regression_within_tolerance_passes(self, run_bench):
        entry = dict(self.BASE, fit_M400_N20_K8_r2_s=0.070)  # 1.4x
        assert run_bench.compare_to_baseline(entry, _doc(self.BASE), 0.5) == []

    def test_agreement_flag_flip_fails_regardless_of_tolerance(self, run_bench):
        entry = dict(self.BASE, halving_agree_optimal=False)
        violations = run_bench.compare_to_baseline(entry, _doc(self.BASE), 100.0)
        assert violations and "halving_agree_optimal" in violations[0]

    def test_warm_pool_parity_flip_fails(self, run_bench):
        entry = dict(self.BASE, fit_warm_pool_parity=False)
        violations = run_bench.compare_to_baseline(entry, _doc(self.BASE), 10.0)
        assert violations and "fit_warm_pool_parity" in violations[0]

    def test_metrics_missing_on_either_side_are_skipped(self, run_bench):
        entry = {"fit_M400_N20_K8_r2_s": 9.9}
        assert run_bench.compare_to_baseline(entry, _doc({}), 0.5) == []
        assert run_bench.compare_to_baseline({}, _doc(self.BASE), 0.5) == []

    def test_negative_tolerance_rejected(self, run_bench):
        with pytest.raises(ValidationError):
            run_bench.compare_to_baseline({}, _doc(), -0.1)

    def test_gated_metrics_are_quick_stable(self, run_bench):
        # The gate may only hold quick entries against full-run
        # baselines for metrics whose problem shape does not depend on
        # --quick: landmark rows (M differs) and absolute tuning rows
        # (records/grid differ) must stay out.
        for key in run_bench.GATE_LOWER_IS_BETTER:
            assert "landmark" not in key and not key.startswith("tuning_")


class TestMainGate:
    def test_main_exits_nonzero_on_injected_regression(
        self, run_bench, tmp_path, monkeypatch
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_doc({"fit_M400_N20_K8_r2_s": 1e-9}))
        )
        out = tmp_path / "out.json"
        # Stub the expensive run: main()'s gate logic is the target.
        monkeypatch.setattr(
            run_bench,
            "run",
            lambda label, quick, tune_jobs, trace_out=None: {
                "label": label,
                "fit_M400_N20_K8_r2_s": 1.0,
            },
        )
        argv = [
            "run_bench.py", "--quick", "--out", str(out),
            "--compare", str(baseline), "--tolerance", "0.5",
        ]
        monkeypatch.setattr(run_bench.sys, "argv", argv)
        with pytest.raises(SystemExit) as excinfo:
            run_bench.main()
        assert excinfo.value.code == 1
        assert json.loads(out.read_text())["entries"]  # entry still recorded

    def test_main_passes_against_equal_baseline(
        self, run_bench, tmp_path, monkeypatch
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc({"fit_M400_N20_K8_r2_s": 1.0})))
        out = tmp_path / "out.json"
        monkeypatch.setattr(
            run_bench,
            "run",
            lambda label, quick, tune_jobs, trace_out=None: {
                "label": label,
                "fit_M400_N20_K8_r2_s": 1.0,
            },
        )
        argv = [
            "run_bench.py", "--out", str(out),
            "--compare", str(baseline), "--tolerance", "0.0",
        ]
        monkeypatch.setattr(run_bench.sys, "argv", argv)
        run_bench.main()  # no SystemExit

    def test_main_fails_loudly_on_missing_baseline(
        self, run_bench, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            run_bench, "run", lambda label, quick, tune_jobs, trace_out=None: {"label": label}
        )
        argv = [
            "run_bench.py", "--out", str(tmp_path / "out.json"),
            "--compare", str(tmp_path / "nope.json"),
        ]
        monkeypatch.setattr(run_bench.sys, "argv", argv)
        with pytest.raises(SystemExit) as excinfo:
            run_bench.main()
        assert excinfo.value.code == 2


class TestScalingEntry:
    def test_scaling_mode_appends_measured_speedup_row(
        self, run_bench, tmp_path, monkeypatch
    ):
        out = tmp_path / "bench.json"
        timings = iter([4.0, 2.0])
        monkeypatch.setattr(
            run_bench,
            "_run_tune_mode",
            lambda grid, spec, shared, n_jobs, strategy, pool="per-call": (
                next(timings),
                None,
            ),
        )
        monkeypatch.setattr(
            run_bench, "_tuning_setup", lambda quick: ([{}] * 18, {}, {})
        )
        argv = [
            "run_bench.py", "--quick", "--scaling",
            "--label", "scale-test", "--out", str(out),
        ]
        monkeypatch.setattr(run_bench.sys, "argv", argv)
        run_bench.main()
        entry = json.loads(out.read_text())["entries"][-1]
        assert entry["label"] == "scale-test"
        assert entry["scaling_jobs"] == [1, 2]
        assert entry["scaling_jobs1_s"] == 4.0
        assert entry["scaling_jobs2_s"] == 2.0
        assert entry["scaling_speedup_jobs2"] == 2.0
        assert entry["scaling_grid_points"] == 18


class TestSelfCompareGate:
    def test_out_equal_to_compare_still_catches_regression(
        self, run_bench, tmp_path, monkeypatch
    ):
        # The documented local usage writes to the same file it gates
        # against; the baseline must be the PRE-run trajectory, never
        # the entry this run just appended.
        trajectory = tmp_path / "BENCH.json"
        trajectory.write_text(
            json.dumps(
                {"entries": [{"fit_M400_N20_K8_r2_s": 0.01}]}
            )
        )
        monkeypatch.setattr(
            run_bench,
            "run",
            lambda label, quick, tune_jobs, trace_out=None: {
                "label": label,
                "fit_M400_N20_K8_r2_s": 1.0,  # 100x regression
            },
        )
        argv = [
            "run_bench.py", "--out", str(trajectory),
            "--compare", str(trajectory), "--tolerance", "0.5",
        ]
        monkeypatch.setattr(run_bench.sys, "argv", argv)
        with pytest.raises(SystemExit) as excinfo:
            run_bench.main()
        assert excinfo.value.code == 1
        # ...and the regressed entry was still appended for forensics.
        assert len(json.loads(trajectory.read_text())["entries"]) == 2
