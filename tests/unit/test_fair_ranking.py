"""Tests for repro.baselines.fair_ranking (FA*IR)."""

import numpy as np
import pytest

from repro.baselines.fair_ranking import (
    FairRanker,
    adjust_significance,
    minimum_protected_targets,
    ranked_group_fairness_ok,
)
from repro.exceptions import ValidationError


class TestMinimumTargets:
    def test_monotone_nondecreasing(self):
        targets = minimum_protected_targets(50, p=0.5, alpha=0.1)
        assert np.all(np.diff(targets) >= 0)

    def test_zero_for_tiny_prefixes(self):
        targets = minimum_protected_targets(10, p=0.3, alpha=0.1)
        assert targets[0] == 0  # one candidate cannot be required protected

    def test_grows_with_p(self):
        low = minimum_protected_targets(40, p=0.2, alpha=0.1)
        high = minimum_protected_targets(40, p=0.8, alpha=0.1)
        assert np.all(high >= low)
        assert high.sum() > low.sum()

    def test_never_exceeds_prefix_length(self):
        targets = minimum_protected_targets(30, p=0.9, alpha=0.5)
        assert np.all(targets <= np.arange(1, 31))

    def test_matches_binomial_quantile(self):
        from scipy import stats

        targets = minimum_protected_targets(20, p=0.5, alpha=0.1)
        for i in range(1, 21):
            assert targets[i - 1] == stats.binom.ppf(0.1, i, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            minimum_protected_targets(0, 0.5)
        with pytest.raises(ValidationError):
            minimum_protected_targets(5, 0.0)
        with pytest.raises(ValidationError):
            minimum_protected_targets(5, 0.5, alpha=0.0)


class TestRankedGroupFairnessCheck:
    def test_all_protected_passes(self):
        assert ranked_group_fairness_ok([1] * 10, p=0.5)

    def test_no_protected_fails_eventually(self):
        assert not ranked_group_fairness_ok([0] * 50, p=0.5, alpha=0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ranked_group_fairness_ok([], p=0.5)


class TestAdjustSignificance:
    def test_corrected_alpha_below_nominal(self):
        alpha_c = adjust_significance(30, p=0.5, alpha=0.1, random_state=0)
        assert 0.0 < alpha_c <= 0.1

    def test_family_failure_rate_near_alpha(self, rng):
        k, p, alpha = 25, 0.5, 0.1
        alpha_c = adjust_significance(k, p, alpha, n_simulations=4000, random_state=0)
        targets = minimum_protected_targets(k, p, alpha_c)
        draws = (rng.random((4000, k)) < p).astype(int)
        counts = np.cumsum(draws, axis=1)
        fail = np.mean(np.any(counts < targets[None, :], axis=1))
        assert fail == pytest.approx(alpha, abs=0.05)


class TestFairRanker:
    def _scores_with_bias(self, rng, n=40, gap=1.0):
        protected = (rng.random(n) < 0.4).astype(float)
        scores = rng.normal(size=n) - gap * protected
        return scores, protected

    def test_output_is_permutation(self, rng):
        scores, protected = self._scores_with_bias(rng)
        result = FairRanker(p=0.5).rank(scores, protected)
        assert sorted(result.ranking.tolist()) == list(range(40))

    def test_satisfies_own_targets(self, rng):
        scores, protected = self._scores_with_bias(rng, gap=2.0)
        ranker = FairRanker(p=0.5, alpha=0.1)
        result = ranker.rank(scores, protected)
        flags = protected[result.ranking].astype(int)
        assert ranked_group_fairness_ok(flags, p=0.5, alpha=0.1)

    def test_no_constraint_returns_score_order(self, rng):
        scores, protected = self._scores_with_bias(rng, gap=0.0)
        # p tiny: constraint never binds, output must be pure score order.
        result = FairRanker(p=0.01, alpha=0.1).rank(scores, protected)
        np.testing.assert_array_equal(
            result.ranking, np.argsort(-scores, kind="mergesort")
        )
        assert not result.forced.any()

    def test_higher_p_promotes_more_protected(self, rng):
        scores, protected = self._scores_with_bias(rng, gap=2.0)
        low = FairRanker(p=0.2).rank(scores, protected)
        high = FairRanker(p=0.8).rank(scores, protected)
        top = 10
        assert (
            protected[high.ranking[:top]].sum()
            >= protected[low.ranking[:top]].sum()
        )

    def test_fair_scores_non_increasing(self, rng):
        scores, protected = self._scores_with_bias(rng, gap=2.0)
        result = FairRanker(p=0.7).rank(scores, protected)
        assert np.all(np.diff(result.scores) <= 1e-9)

    def test_organic_positions_keep_own_score(self, rng):
        scores, protected = self._scores_with_bias(rng, gap=2.0)
        result = FairRanker(p=0.7).rank(scores, protected)
        organic = ~result.forced
        np.testing.assert_allclose(
            result.scores[organic], scores[result.ranking][organic]
        )

    def test_topk_cut(self, rng):
        scores, protected = self._scores_with_bias(rng)
        result = FairRanker(p=0.5).rank(scores, protected, k=10)
        assert result.ranking.size == 10

    def test_k_out_of_range(self, rng):
        scores, protected = self._scores_with_bias(rng)
        with pytest.raises(ValidationError):
            FairRanker(p=0.5).rank(scores, protected, k=0)
        with pytest.raises(ValidationError):
            FairRanker(p=0.5).rank(scores, protected, k=41)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValidationError):
            FairRanker(p=0.0)
        with pytest.raises(ValidationError):
            FairRanker(p=0.5, alpha=1.0)

    def test_all_protected_input(self, rng):
        scores = rng.normal(size=10)
        result = FairRanker(p=0.5).rank(scores, np.ones(10))
        np.testing.assert_array_equal(
            result.ranking, np.argsort(-scores, kind="mergesort")
        )

    def test_adjusted_mode_runs(self, rng):
        scores, protected = self._scores_with_bias(rng)
        result = FairRanker(p=0.5, adjust=True, random_state=0).rank(scores, protected)
        assert result.ranking.size == 40
