"""Tests for repro.serving.artifacts (save/load round trips)."""

import json
import os

import numpy as np
import pytest

from repro.core.model import IFair
from repro.learners.encoder import OneHotEncoder
from repro.serving.artifacts import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    ArtifactError,
    ServingArtifact,
    load_artifact,
    save_artifact,
)
from repro.serving.fit import fit_serving_pipeline


@pytest.fixture(scope="module")
def artifact(tiny_compas):
    return fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=25, max_pairs=500, random_state=3
    )


@pytest.fixture
def saved(artifact, tmp_path):
    return save_artifact(str(tmp_path / "art"), artifact)


class TestRoundTrip:
    def test_transform_bitwise_equal(self, artifact, saved, tiny_compas):
        loaded = load_artifact(saved)
        X = artifact.scaler.transform(tiny_compas.X[:20])
        assert np.array_equal(
            artifact.model.transform(X), loaded.model.transform(X)
        )

    def test_scaler_round_trip(self, artifact, saved):
        loaded = load_artifact(saved)
        assert np.array_equal(loaded.scaler.mean_, artifact.scaler.mean_)
        assert np.array_equal(loaded.scaler.scale_, artifact.scaler.scale_)
        assert loaded.scaler.with_mean == artifact.scaler.with_mean

    def test_scorer_round_trip(self, artifact, saved):
        loaded = load_artifact(saved)
        assert np.array_equal(loaded.scorer.coef_, artifact.scorer.coef_)
        assert loaded.scorer.intercept_ == artifact.scorer.intercept_

    def test_thresholds_round_trip(self, artifact, saved):
        loaded = load_artifact(saved)
        assert loaded.thresholds.criterion == artifact.thresholds.criterion
        assert loaded.thresholds.thresholds_ == artifact.thresholds.thresholds_

    def test_metadata_and_names_round_trip(self, artifact, saved):
        loaded = load_artifact(saved)
        assert loaded.metadata["dataset"] == "compas"
        assert loaded.feature_names == artifact.feature_names
        assert np.array_equal(loaded.protected_indices, artifact.protected_indices)

    def test_save_is_idempotent(self, artifact, saved):
        save_artifact(saved, artifact)  # overwrite in place
        loaded = load_artifact(saved)
        assert np.array_equal(loaded.model.alpha_, artifact.model.alpha_)

    def test_encoder_round_trip(self, tmp_path):
        raw = np.array([[1.0, "a"], [2.0, "b"], [3.0, "a"]], dtype=object)
        encoder = OneHotEncoder([1]).fit(raw)
        X = encoder.transform(raw)
        model = IFair(
            n_prototypes=2, n_restarts=1, max_iter=15, random_state=0
        ).fit(X)
        art = ServingArtifact(model=model, protected_indices=[], encoder=encoder)
        loaded = load_artifact(save_artifact(str(tmp_path / "enc"), art))
        assert np.array_equal(loaded.encoder.transform(raw), X)
        assert loaded.encoder.feature_names_ == encoder.feature_names_


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ArtifactError):
            ServingArtifact(model=IFair(), protected_indices=[])

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            load_artifact(str(tmp_path / "nope"))

    def test_corrupt_manifest_rejected(self, saved):
        with open(os.path.join(saved, MANIFEST_NAME), "w") as fh:
            fh.write("{not json")
        with pytest.raises(ArtifactError, match="cannot read manifest"):
            load_artifact(saved)

    def test_missing_keys_rejected(self, saved):
        with open(os.path.join(saved, MANIFEST_NAME), "w") as fh:
            json.dump({"format": "repro-serving-artifact"}, fh)
        with pytest.raises(ArtifactError, match="missing required keys"):
            load_artifact(saved)

    def test_unknown_version_rejected(self, saved):
        path = os.path.join(saved, MANIFEST_NAME)
        with open(path) as fh:
            manifest = json.load(fh)
        manifest["version"] = 99
        with open(path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ArtifactError, match="version"):
            load_artifact(saved)

    def test_tampered_arrays_rejected(self, saved):
        with open(os.path.join(saved, ARRAYS_NAME), "ab") as fh:
            fh.write(b"\x00")
        with pytest.raises(ArtifactError, match="checksum"):
            load_artifact(saved)

    def test_shape_mismatch_rejected(self, saved):
        path = os.path.join(saved, MANIFEST_NAME)
        with open(path) as fh:
            manifest = json.load(fh)
        manifest["model"]["shape"] = [1, 1]
        with open(path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ArtifactError, match="shape"):
            load_artifact(saved)


class TestLandmarkMetadata:
    """pair_mode provenance round-trips bitwise through the artifact."""

    @pytest.fixture(scope="class")
    def landmark_saved(self, tiny_compas, tmp_path_factory):
        artifact = fit_serving_pipeline(
            tiny_compas,
            n_prototypes=4,
            max_iter=20,
            pair_mode="landmark",
            n_landmarks=16,
            landmark_method="farthest",
            random_state=0,
        )
        path = str(tmp_path_factory.mktemp("landmark-artifact"))
        save_artifact(path, artifact)
        return artifact, load_artifact(path), path

    def test_landmarks_round_trip_bitwise(self, landmark_saved):
        artifact, loaded, _ = landmark_saved
        assert artifact.model.landmarks_.size == 16
        np.testing.assert_array_equal(
            loaded.model.landmarks_, artifact.model.landmarks_
        )
        assert loaded.model.landmarks_.dtype == np.int64

    def test_manifest_records_oracle_config(self, landmark_saved):
        import json
        import os

        _, loaded, path = landmark_saved
        assert loaded.model.pair_mode == "landmark"
        assert loaded.model.n_landmarks == 16
        assert loaded.model.landmark_method == "farthest"
        assert loaded.metadata["pair_mode"] == "landmark"
        with open(os.path.join(path, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert manifest["model"]["pair_mode"] == "landmark"
        assert manifest["model"]["n_landmarks"] == 16
        assert manifest["model"]["landmark_method"] == "farthest"

    def test_transform_bitwise_equal_after_reload(self, landmark_saved, tiny_compas):
        artifact, loaded, _ = landmark_saved
        X = artifact.scaler.transform(tiny_compas.X[:32])
        assert np.array_equal(
            loaded.model.transform(X), artifact.model.transform(X)
        )

    def test_landmark_count_mismatch_rejected(self, landmark_saved, tmp_path):
        import json
        import os
        import shutil

        _, _, path = landmark_saved
        broken = str(tmp_path / "broken")
        shutil.copytree(path, broken)
        manifest_path = os.path.join(broken, "manifest.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["model"]["n_landmarks"] = 3
        # Keep the checksum valid: only the manifest text changes.
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ArtifactError, match="landmark count"):
            load_artifact(broken)

    def test_non_landmark_artifacts_stay_clean(self, saved):
        loaded = load_artifact(saved)
        assert loaded.model.landmarks_ is None
        assert loaded.model.pair_mode in ("auto", "sampled")
