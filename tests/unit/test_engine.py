"""Tests for repro.ranking.engine."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ranking.engine import evaluate_scores
from repro.ranking.query import build_queries


class TestEvaluateScores:
    def test_perfect_scores_perfect_utility(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2)
        evaluation = evaluate_scores(tiny_xing, queries, tiny_xing.y)
        assert evaluation.map_score == pytest.approx(1.0)
        assert evaluation.kendall == pytest.approx(1.0)

    def test_reversed_scores_worst_kendall(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2)
        evaluation = evaluate_scores(tiny_xing, queries, -tiny_xing.y)
        assert evaluation.kendall == pytest.approx(-1.0)

    def test_constant_scores_full_consistency(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2)
        evaluation = evaluate_scores(
            tiny_xing, queries, np.zeros(tiny_xing.n_records)
        )
        assert evaluation.consistency == pytest.approx(1.0)

    def test_per_query_entries(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2)
        evaluation = evaluate_scores(tiny_xing, queries, tiny_xing.y)
        assert len(evaluation.per_query) == len(queries)
        assert {q.qid for q in evaluation.per_query} == {q.qid for q in queries}

    def test_protected_share_bounds(self, tiny_xing, rng):
        queries = build_queries(tiny_xing, min_size=2)
        evaluation = evaluate_scores(
            tiny_xing, queries, rng.normal(size=tiny_xing.n_records)
        )
        assert 0.0 <= evaluation.protected_share <= 1.0

    def test_true_scores_override(self, tiny_xing, rng):
        queries = build_queries(tiny_xing, min_size=2)
        alt_truth = rng.normal(size=tiny_xing.n_records)
        evaluation = evaluate_scores(
            tiny_xing, queries, alt_truth, true_scores=alt_truth
        )
        assert evaluation.map_score == pytest.approx(1.0)

    def test_x_star_override_shape_checked(self, tiny_xing, rng):
        queries = build_queries(tiny_xing, min_size=2)
        with pytest.raises(ValidationError, match="X_star"):
            evaluate_scores(
                tiny_xing, queries, tiny_xing.y, X_star=rng.normal(size=(3, 2))
            )

    def test_empty_queries_rejected(self, tiny_xing):
        with pytest.raises(ValidationError):
            evaluate_scores(tiny_xing, [], tiny_xing.y)

    def test_score_length_checked(self, tiny_xing):
        queries = build_queries(tiny_xing, min_size=2)
        with pytest.raises(ValidationError):
            evaluate_scores(tiny_xing, queries, np.zeros(3))

    def test_means_match_per_query(self, tiny_xing, rng):
        queries = build_queries(tiny_xing, min_size=2)
        evaluation = evaluate_scores(
            tiny_xing, queries, rng.normal(size=tiny_xing.n_records)
        )
        assert evaluation.map_score == pytest.approx(
            np.mean([q.ap_at_k for q in evaluation.per_query])
        )
        assert evaluation.kendall == pytest.approx(
            np.mean([q.kendall for q in evaluation.per_query])
        )
