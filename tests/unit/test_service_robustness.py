"""Failure-path tests for the HTTP service layer.

Client disconnects mid-reply must be counted, not crash the handler
thread; a server thread that survives ``stop()``'s join must raise
loudly instead of leaking silently.
"""

import logging
import threading
from types import SimpleNamespace

import pytest

from repro.exceptions import ReproError, ValidationError
from repro.serving.service import DecisionService, _Handler
from repro.telemetry.metrics import MetricsRegistry


def _bare_handler(engine, command="GET", path="/v1/health"):
    """A handler with the socket plumbing stubbed out."""
    handler = _Handler.__new__(_Handler)
    handler.command = command
    handler.path = path
    handler.close_connection = False
    handler.server = SimpleNamespace(engine=engine, verbose=False)
    handler.send_response = lambda *a, **k: None
    handler.send_header = lambda *a, **k: None
    handler.end_headers = lambda: None
    return handler


class _EngineStub:
    def __init__(self):
        self.registry = MetricsRegistry()
        self.stopped = 0

    def stop(self):
        self.stopped += 1


class TestClientDisconnect:
    @pytest.mark.parametrize("error", [BrokenPipeError, ConnectionResetError])
    def test_disconnect_is_counted_not_raised(self, error, caplog):
        engine = _EngineStub()
        handler = _bare_handler(engine)
        handler.wfile = SimpleNamespace(
            write=lambda data: (_ for _ in ()).throw(error())
        )
        # configure_logging (run by other tests) stops propagation at
        # the "repro" root, so hang caplog's handler on the serving
        # logger directly instead of relying on records reaching root.
        server_log = logging.getLogger("repro.serving.http")
        server_log.addHandler(caplog.handler)
        try:
            with caplog.at_level("WARNING", logger="repro.serving.http"):
                handler._reply(200, {"ok": True})  # must not raise
        finally:
            server_log.removeHandler(caplog.handler)
        assert handler.close_connection is True
        assert (
            engine.registry.value("serving_client_disconnects_total") == 1
        )
        assert any(
            "disconnected" in record.getMessage() for record in caplog.records
        )

    def test_engines_without_registry_still_survive(self):
        handler = _bare_handler(SimpleNamespace())  # no .registry
        handler.wfile = SimpleNamespace(
            write=lambda data: (_ for _ in ()).throw(BrokenPipeError())
        )
        handler._reply(200, {"ok": True})
        assert handler.close_connection is True

    def test_successful_reply_keeps_connection(self):
        engine = _EngineStub()
        handler = _bare_handler(engine)
        written = []
        handler.wfile = SimpleNamespace(write=written.append)
        handler._reply(200, {"ok": True})
        assert written and handler.close_connection is False
        assert engine.registry.value("serving_client_disconnects_total") == 0


class TestLoudStop:
    def test_wedged_server_thread_raises(self):
        engine = _EngineStub()
        service = DecisionService(engine, port=0)
        service.start()
        # Swap in a thread that outlives any join: stop() must still
        # shut the real server down, stop the engine, then complain.
        wedge = threading.Event()
        stuck = threading.Thread(target=wedge.wait, daemon=True)
        stuck.start()
        service._thread, real = stuck, service._thread
        try:
            with pytest.raises(ReproError, match="failed to stop"):
                service.stop(timeout=0.1)
            assert engine.stopped == 1  # engine still torn down
            real.join(timeout=5.0)
            assert not real.is_alive()
        finally:
            wedge.set()

    def test_clean_stop_is_quiet_and_stops_engine(self):
        engine = _EngineStub()
        service = DecisionService(engine, port=0)
        service.start()
        service.stop()
        assert engine.stopped == 1
        assert service._thread is None

    def test_double_start_rejected(self):
        service = DecisionService(_EngineStub(), port=0)
        service.start()
        try:
            with pytest.raises(ValidationError):
                service.start()
        finally:
            service.stop()
