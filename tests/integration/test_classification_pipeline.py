"""Integration tests: the classification experiment pipeline."""

import math

import numpy as np
import pytest

from repro.core.tuning import TuningCriterion
from repro.exceptions import ValidationError
from repro.pipeline.classification import run_classification


@pytest.fixture(scope="module")
def report(request):
    from repro.data.credit import generate_credit
    from repro.pipeline.config import ExperimentConfig

    config = ExperimentConfig(
        mixture_grid=(0.1, 1.0),
        prototype_grid=(4,),
        n_restarts=1,
        max_iter=25,
        max_pairs=600,
        random_state=3,
    )
    dataset = generate_credit(180, random_state=3)
    return run_classification(dataset, config)


class TestClassificationPipeline:
    def test_all_methods_present(self, report):
        methods = {c.method for c in report.candidates}
        assert methods == {
            "Full Data",
            "Masked Data",
            "SVD",
            "SVD-masked",
            "LFR",
            "iFair-a",
            "iFair-b",
        }

    def test_grid_sizes(self, report):
        # iFair grid: 2 lambda x 2 mu x 1 K = 4 candidates per variant.
        assert len(report.method_candidates("iFair-b")) == 4
        assert len(report.method_candidates("LFR")) == 4
        assert len(report.method_candidates("Full Data")) == 1

    def test_metrics_in_range(self, report):
        for c in report.candidates:
            assert 0.0 <= c.test.accuracy <= 1.0
            assert 0.0 <= c.test.consistency <= 1.0
            if not math.isnan(c.test.auc):
                assert 0.0 <= c.test.auc <= 1.0
            if not math.isnan(c.test.parity):
                assert 0.0 <= c.test.parity <= 1.0

    def test_best_selection_uses_validation(self, report):
        best = report.best("iFair-b", TuningCriterion.MAX_FAIRNESS)
        for other in report.method_candidates("iFair-b"):
            assert best.val_consistency >= other.val_consistency - 1e-12

    def test_pareto_points_subset(self, report):
        front = report.pareto_points()
        assert front
        all_ids = {id(c) for c in report.candidates}
        assert all(id(c) in all_ids for c in front)

    def test_table3_renders(self, report):
        text = report.table3()
        assert "Table III" in text
        for token in ("Baseline", "Max Utility", "Max Fairness", "Optimal"):
            assert token in text

    def test_figure3_renders(self, report):
        text = report.figure3()
        assert "Figure 3" in text
        assert "*" in text  # at least one Pareto marker

    def test_unknown_method_raises(self, report):
        with pytest.raises(ValidationError):
            report.best("Nonexistent", TuningCriterion.OPTIMAL)

    def test_ranking_dataset_rejected(self, tiny_xing, fast_config):
        with pytest.raises(ValidationError, match="classification"):
            run_classification(tiny_xing, fast_config)
