"""Integration tests: the experiment registry and remaining runners."""

import pytest

from repro.exceptions import ValidationError
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.datasets import run_dataset_statistics
from repro.pipeline.motivation import run_motivation
from repro.pipeline.posthoc import run_posthoc
from repro.pipeline.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "fig2",
            "fig3",
            "table3",
            "table4",
            "table5",
            "fig4",
            "fig5",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValidationError):
            run_experiment("table99")

    def test_cheap_experiments_run(self, fast_config):
        for exp in ("table1", "table2"):
            out = run_experiment(exp, fast_config)
            assert isinstance(out, str) and out


class TestMotivation:
    def test_table1_structure(self, fast_config):
        report = run_motivation(fast_config)
        assert len(report.rows) == 10
        assert report.rows[0].rank == 1
        assert {r.gender for r in report.rows} <= {"male", "female"}
        assert report.mean_rank_gap_similar_pairs > 0.0

    def test_renders(self, fast_config):
        text = run_motivation(fast_config).table1()
        assert "Table I" in text
        assert "Brand Strategist" in text


class TestDatasetStatistics:
    def test_all_five_datasets(self):
        report = run_dataset_statistics(random_state=1)
        assert {r.name for r in report.rows} == {
            "compas",
            "census",
            "credit",
            "airbnb",
            "xing",
        }

    def test_classification_rows_have_base_rates(self):
        report = run_dataset_statistics(random_state=1)
        by_name = {r.name: r for r in report.rows}
        assert by_name["compas"].base_rate_protected is not None
        assert by_name["airbnb"].base_rate_protected is None

    def test_renders(self):
        text = run_dataset_statistics(random_state=1).table2()
        assert "Table II" in text


class TestPosthoc:
    def test_p_sweep_shapes(self, tiny_xing, fast_config):
        report = run_posthoc(
            tiny_xing, fast_config, p_grid=(0.2, 0.8), min_query_size=5
        )
        assert [pt.p for pt in report.points] == [0.2, 0.8]
        for pt in report.points:
            assert 0.0 <= pt.map_score <= 1.0
            assert 0.0 <= pt.protected_share <= 1.0

    def test_protected_share_monotone_in_p(self, tiny_xing, fast_config):
        report = run_posthoc(
            tiny_xing, fast_config, p_grid=(0.1, 0.9), min_query_size=5
        )
        assert report.points[1].protected_share >= report.points[0].protected_share - 1e-9

    def test_renders(self, tiny_xing, fast_config):
        text = run_posthoc(
            tiny_xing, fast_config, p_grid=(0.5,), min_query_size=5
        ).figure5()
        assert "Figure 5" in text

    def test_classification_dataset_rejected(self, tiny_credit, fast_config):
        with pytest.raises(ValidationError):
            run_posthoc(tiny_credit, fast_config)
