"""Concurrent-client parity for the multi-process serving tier.

Eight client threads hammer mixed verbs against a ``workers=2``
service while a mid-stream blue/green reload (to the *same* artifact)
flips every worker.  Every single response must be bitwise-identical
to what a serial in-process engine answers — scheduling across
workers, micro-batching inside each worker, and the reload must all be
invisible to callers.
"""

import json
import threading

import pytest

from repro.serving import (
    HTTPClient,
    InferenceEngine,
    InProcessClient,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
    serve_artifact,
)

N_THREADS = 8
N_ITERATIONS = 6
VERBS = ("transform", "score", "rank", "decide")


@pytest.fixture(scope="module")
def artifact_dir(tiny_compas, tmp_path_factory):
    artifact = fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=25, max_pairs=500, random_state=3
    )
    return save_artifact(
        str(tmp_path_factory.mktemp("workers") / "compas"), artifact
    )


def _request(client, verb, records, groups):
    """One verb call; drops per-worker drift state from decide."""
    if verb == "transform":
        return {"transformed": client.transform(records)}
    if verb == "score":
        return {"scores": client.score(records)}
    if verb == "rank":
        return client.rank(records, top_k=5)
    answer = dict(client.decide(records, groups))
    # The drift flag reads a sliding window private to whichever worker
    # served the request — the one legitimately scheduling-dependent
    # field in the API.
    answer.pop("fairness_drift")
    return answer


def _workload(tiny_compas, thread_id, iteration):
    lo = (thread_id * 5 + iteration * 11) % (tiny_compas.n_records - 8)
    records = tiny_compas.X[lo : lo + 8].tolist()
    groups = tiny_compas.protected[lo : lo + 8].tolist()
    verb = VERBS[(thread_id + iteration) % len(VERBS)]
    return verb, records, groups


def test_eight_threads_match_serial_engine_across_reload(
    tiny_compas, artifact_dir
):
    serial = InProcessClient(
        InferenceEngine(load_artifact(artifact_dir), batch_size=32)
    )
    expected = {
        (t, i): json.loads(
            json.dumps(_request(serial, *_workload(tiny_compas, t, i)))
        )
        for t in range(N_THREADS)
        for i in range(N_ITERATIONS)
    }

    service = serve_artifact(artifact_dir, port=0, workers=2, batch_size=32)
    service.start()
    try:
        host, port = service.address
        checksum = serial.engine.artifact.checksum
        barrier = threading.Barrier(N_THREADS + 1)
        results, errors = {}, []

        def hammer(thread_id):
            client = HTTPClient(host, port)
            try:
                barrier.wait(timeout=10)
                for iteration in range(N_ITERATIONS):
                    verb, records, groups = _workload(
                        tiny_compas, thread_id, iteration
                    )
                    results[(thread_id, iteration)] = _request(
                        client, verb, records, groups
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((thread_id, repr(exc)))

        def reload_midstream():
            client = HTTPClient(host, port)
            barrier.wait(timeout=10)
            for _ in range(2):  # flip all workers twice, mid-traffic
                answer = client.request(
                    "POST", "/v1/admin/reload", {"artifact": artifact_dir}
                )
                if answer.get("checksum") != checksum:
                    errors.append(("reload", answer))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(N_THREADS)
        ] + [threading.Thread(target=reload_midstream)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert results == expected

        health = HTTPClient(host, port).health()
        assert health["workers"] == 2
        assert health["artifact_checksum"] == checksum
    finally:
        service.stop()
