"""End-to-end serving tests: artifact -> engine -> service -> clients.

The same assertions run through the in-process client and the HTTP
client (both built on the shared ``dispatch``), so a divergence between
the two request paths fails loudly.
"""

import numpy as np
import pytest

from repro.serving import (
    DecisionService,
    HTTPClient,
    InferenceEngine,
    InProcessClient,
    ServiceError,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
)


@pytest.fixture(scope="module")
def engine(tiny_compas, tmp_path_factory):
    artifact = fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=25, max_pairs=500, random_state=3
    )
    # Serve from a reloaded artifact so the whole persistence path is
    # part of the loop under test.
    path = save_artifact(str(tmp_path_factory.mktemp("artifacts") / "compas"), artifact)
    return InferenceEngine(load_artifact(path), batch_size=32, cache_size=256)


@pytest.fixture(scope="module")
def service(engine):
    with DecisionService(engine, port=0) as running:
        yield running


@pytest.fixture(scope="module", params=["in_process", "http"])
def client(request, engine, service):
    if request.param == "in_process":
        return InProcessClient(engine)
    host, port = service.address
    return HTTPClient(host, port)


@pytest.fixture(scope="module")
def records(tiny_compas):
    return tiny_compas.X[:10].tolist()


@pytest.fixture(scope="module")
def groups(tiny_compas):
    return tiny_compas.protected[:10].tolist()


class TestEndpoints:
    def test_health(self, client):
        body = client.health()
        assert body["status"] == "ok"
        assert set(body["endpoints"]) == {"transform", "score", "rank", "decide"}
        assert body["metadata"]["dataset"] == "compas"

    def test_transform(self, client, engine, records):
        got = np.asarray(client.transform(records))
        expected = engine.transform(records)
        assert got.shape == expected.shape
        assert np.allclose(got, expected, rtol=0, atol=0)

    def test_score(self, client, engine, records):
        got = np.asarray(client.score(records))
        assert got.shape == (10,)
        assert np.all((got >= 0) & (got <= 1))
        assert np.array_equal(got, engine.score(records))

    def test_rank(self, client, records, groups):
        body = client.rank(records, top_k=5, groups=groups)
        assert len(body["order"]) == 5
        assert body["top_k"] == 5
        scores = np.asarray(body["scores"])
        assert np.all(np.diff(scores[np.asarray(body["order"])]) <= 1e-15)
        assert 0.0 <= body["protected_share"] <= 1.0

    def test_decide(self, client, records, groups):
        body = client.decide(records, groups)
        assert set(np.unique(body["decisions"])) <= {0.0, 1.0}
        assert body["criterion"] == "parity"
        assert set(body["thresholds"]) == {"0", "1"}

    def test_health_with_query_string(self, client):
        # load balancers append cache-busting query strings
        body = client.request("GET", "/v1/health?ts=123")
        assert body["status"] == "ok"

    def test_stats(self, client):
        body = client.stats()
        assert body["records"] >= 0
        assert 0.0 <= body["cache_hit_ratio"] <= 1.0

    def test_both_transports_agree(self, engine, service, records, groups):
        host, port = service.address
        local, remote = InProcessClient(engine), HTTPClient(host, port)
        assert local.score(records) == remote.score(records)
        assert local.rank(records, top_k=3) == remote.rank(records, top_k=3)
        assert local.decide(records, groups) == remote.decide(records, groups)


class TestErrors:
    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/nope", {"records": [[1.0]]})
        assert excinfo.value.status == 404

    def test_missing_records_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/score", {})
        assert excinfo.value.status == 400

    def test_wrong_width_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.score([[1.0, 2.0]])
        assert excinfo.value.status == 400

    def test_decide_without_groups_400(self, client, records):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/decide", {"records": records})
        assert excinfo.value.status == 400

    def test_non_numeric_records_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/score", {"records": [["a", "b"]]})
        assert excinfo.value.status == 400

    def test_invalid_json_body_400(self, service):
        import urllib.error
        import urllib.request

        host, port = service.address
        req = urllib.request.Request(
            f"http://{host}:{port}/v1/score",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=5.0)
        assert excinfo.value.code == 400


class TestFreshProcessRoundTrip:
    def test_reload_in_subprocess_is_bitwise_equal(
        self, tiny_compas, tmp_path
    ):
        """A saved artifact reloaded in a *fresh interpreter* reproduces
        transform output exactly (the acceptance criterion)."""
        import json
        import os
        import subprocess
        import sys

        import repro

        artifact = fit_serving_pipeline(
            tiny_compas, n_prototypes=3, max_iter=15, max_pairs=300, random_state=3
        )
        path = save_artifact(str(tmp_path / "art"), artifact)
        X = tiny_compas.X[:5]
        expected = InferenceEngine(artifact).transform(X)
        script = (
            "import json, sys\n"
            "import numpy as np\n"
            "from repro.serving import load_artifact, InferenceEngine\n"
            "engine = InferenceEngine(load_artifact(sys.argv[1]))\n"
            "X = np.asarray(json.loads(sys.argv[2]))\n"
            "print(json.dumps(engine.transform(X).tolist()))\n"
        )
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        out = subprocess.run(
            [sys.executable, "-c", script, path, json.dumps(X.tolist())],
            capture_output=True,
            text=True,
            check=True,
            env=dict(os.environ, PYTHONPATH=src_dir),
        )
        got = np.asarray(json.loads(out.stdout))
        assert np.array_equal(got, expected)
