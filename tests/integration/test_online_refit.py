"""Closed-loop online learning over the real HTTP serving tier.

The full drift-response loop, end to end: live traffic through a
``workers=2`` service feeds the controller's sliding window; an
injected covariate shift raises the shift statistic; the controller
warm-refits over the buffered window, writes a versioned artifact, and
drives the blue/green reload — all while clients keep hammering the
service with **zero** failed requests.  The control experiment holds
the distribution steady and must see zero refits and zero reloads
(no flapping).
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.serving import (
    HTTPClient,
    fit_serving_pipeline,
    save_artifact,
    serve_artifact,
)

REFRESH_WINDOW = 64
SHIFT = 25.0


@pytest.fixture(scope="module")
def artifact_dir(tiny_compas, tmp_path_factory):
    artifact = fit_serving_pipeline(
        tiny_compas, n_prototypes=4, max_iter=25, max_pairs=500, random_state=3
    )
    return save_artifact(
        str(tmp_path_factory.mktemp("online") / "compas"), artifact
    )


def _get(host, port, path):
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as r:
        return json.loads(r.read())


def _serve(artifact_dir):
    return serve_artifact(
        artifact_dir,
        port=0,
        workers=2,
        batch_size=32,
        online_refit=True,
        refresh_window=REFRESH_WINDOW,
        drift_policy="shift",
        refit_cooldown_s=0.5,
    ).start()


def test_shift_triggers_refit_and_zero_downtime_reload(
    tiny_compas, artifact_dir
):
    service = _serve(artifact_dir)
    try:
        host, port = service.address
        checksum0 = _get(host, port, "/v1/health")["artifact_checksum"]
        X, groups = tiny_compas.X, tiny_compas.protected
        errors, responses = [], [0]
        stop = threading.Event()
        shifted = threading.Event()

        def hammer():
            client = HTTPClient(host, port)
            i = 0
            while not stop.is_set():
                lo = (i * 8) % (X.shape[0] - 8)
                rows = X[lo : lo + 8] + (SHIFT if shifted.is_set() else 0.0)
                try:
                    answer = client.decide(
                        rows.tolist(), groups[lo : lo + 8].tolist()
                    )
                    assert len(answer["decisions"]) == 8
                    responses[0] += 1
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(repr(exc))
                    return
                i += 1
                time.sleep(0.005)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            # phase 1: steady traffic fills the window; the baseline
            # calibrates over a few ticks before it freezes
            deadline = time.time() + 30
            while time.time() < deadline:
                status = _get(host, port, "/v1/admin/online")
                if (
                    status["window_rows"] >= REFRESH_WINDOW
                    and not status["calibrating"]
                    and status["baseline_cost"] is not None
                ):
                    break
                time.sleep(0.1)
            assert status["window_rows"] >= REFRESH_WINDOW
            assert status["baseline_cost"] is not None
            assert status["refits"] == 0

            # phase 2: inject covariate shift, wait for the closed loop
            shifted.set()
            deadline = time.time() + 60
            while time.time() < deadline:
                status = _get(host, port, "/v1/admin/online")
                if status["reloads"] >= 1:
                    break
                time.sleep(0.1)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

        assert not errors, errors  # zero failed requests during the swap
        assert responses[0] > 0
        assert status["refits"] >= 1
        assert status["reloads"] >= 1
        assert status["failures"] == 0
        assert status["last_result"]["status"] == "refitted"
        assert status["last_result"]["reload"] == "ok"

        # the active model changed and serving still answers
        health = _get(host, port, "/v1/health")
        assert health["artifact_checksum"] != checksum0
        assert health["metadata"]["online_version"] >= 1
        after = HTTPClient(host, port).decide(
            (X[:4] + SHIFT).tolist(), groups[:4].tolist()
        )
        assert len(after["decisions"]) == 4

        # consistency recovery: the statistic re-calibrates over the
        # shifted distribution and re-arms near 1.0 instead of
        # re-reporting the handled shift (calibration ticks keep
        # running on the controller thread after traffic stops)
        deadline = time.time() + 15
        while time.time() < deadline:
            status = _get(host, port, "/v1/admin/online")
            if status["shift"] is not None:
                break
            time.sleep(0.1)
        assert status["shift"] == pytest.approx(1.0, abs=0.5)
        assert not status["shift_flagged"]
    finally:
        service.stop()


def test_steady_traffic_never_refits(tiny_compas, artifact_dir):
    """Control experiment: no shift => zero refits, zero reloads."""
    service = _serve(artifact_dir)
    try:
        host, port = service.address
        checksum0 = _get(host, port, "/v1/health")["artifact_checksum"]
        client = HTTPClient(host, port)
        X, groups = tiny_compas.X, tiny_compas.protected
        for i in range(30):
            lo = (i * 8) % (X.shape[0] - 8)
            client.decide(X[lo : lo + 8].tolist(), groups[lo : lo + 8].tolist())
        deadline = time.time() + 10
        status = _get(host, port, "/v1/admin/online")
        while time.time() < deadline and status["window_rows"] < REFRESH_WINDOW:
            status = _get(host, port, "/v1/admin/online")
            time.sleep(0.1)
        time.sleep(1.0)  # several control ticks over the full window
        status = _get(host, port, "/v1/admin/online")
        assert status["refits"] == 0
        assert status["reloads"] == 0
        assert _get(host, port, "/v1/health")["artifact_checksum"] == checksum0
    finally:
        service.stop()


def test_manual_trigger_and_status_endpoint(tiny_compas, artifact_dir):
    service = _serve(artifact_dir)
    try:
        host, port = service.address
        client = HTTPClient(host, port)
        status = _get(host, port, "/v1/admin/online")
        assert status["enabled"] and status["running"]
        assert status["policy"]["policy"] == "shift"

        # nothing buffered yet -> manual refit reports skipped
        answer = client.request("POST", "/v1/admin/online", {})
        assert answer["status"] == "skipped"

        X, groups = tiny_compas.X, tiny_compas.protected
        for i in range(10):
            lo = (i * 8) % (X.shape[0] - 8)
            client.decide(X[lo : lo + 8].tolist(), groups[lo : lo + 8].tolist())
        deadline = time.time() + 10
        while time.time() < deadline:
            if _get(host, port, "/v1/admin/online")["pending_rows"] > 0:
                break
            time.sleep(0.1)
        answer = client.request("POST", "/v1/admin/online", {})
        assert answer["status"] == "refitted"
        assert answer["reload"] == "ok"
        assert _get(host, port, "/v1/admin/online")["refits"] == 1
    finally:
        service.stop()


def test_online_disabled_surfaces_clearly(artifact_dir):
    service = serve_artifact(artifact_dir, port=0, workers=2).start()
    try:
        host, port = service.address
        assert _get(host, port, "/v1/admin/online") == {"enabled": False}
        client = HTTPClient(host, port)
        with pytest.raises(Exception, match="online refit is not enabled"):
            client.request("POST", "/v1/admin/online", {})
    finally:
        service.stop()
