"""Integration tests: the Figure 2 synthetic-property study."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pipeline.synthetic_study import (
    representation_shift,
    run_synthetic_study,
)


@pytest.fixture(scope="module")
def report():
    from repro.pipeline.config import ExperimentConfig

    config = ExperimentConfig(
        mixture_grid=(0.1, 1.0),
        prototype_grid=(2,),
        n_restarts=1,
        max_iter=30,
        max_pairs=600,
        random_state=3,
    )
    return run_synthetic_study(config, n_records=80)


class TestSyntheticStudy:
    def test_six_cells(self, report):
        assert len(report.cells) == 6
        variants = {c.variant for c in report.cells}
        assert variants == {"random", "x1", "x2"}

    def test_metrics_bounded(self, report):
        for cell in report.cells:
            assert 0.0 <= cell.accuracy <= 1.0
            assert 0.0 <= cell.consistency <= 1.0

    def test_representations_stored(self, report):
        for cell in report.cells:
            assert cell.representation.shape == (80, 3)

    def test_cell_lookup(self, report):
        cell = report.cell("x1", "iFair-b")
        assert cell.variant == "x1"
        assert cell.method == "iFair-b"
        with pytest.raises(ValidationError):
            report.cell("x1", "Bogus")

    def test_figure2_renders(self, report):
        text = report.figure2()
        assert "Figure 2" in text
        assert "iFair-b" in text and "LFR" in text

    def test_representation_shift_computable(self, report):
        for method in ("iFair-b", "LFR"):
            assert np.isfinite(representation_shift(report, method))

    def test_ifair_representation_stable_across_variants(self):
        """The paper's headline qualitative finding: with a
        reconstruction-anchored setting, iFair representations barely
        move when only group membership changes (the fairness loss
        alone is translation-invariant, so the anchor matters)."""
        from repro.core.model import IFair
        from repro.data.synthetic import SyntheticVariant, generate_synthetic

        reps = []
        for variant in SyntheticVariant:
            ds = generate_synthetic(variant, 80, random_state=3)
            model = IFair(
                n_prototypes=2,
                lambda_util=1.0,
                mu_fair=0.1,
                init="protected_zero",
                n_restarts=1,
                max_iter=100,
                random_state=3,
                max_pairs=600,
            ).fit(ds.X, [2])
            reps.append(model.transform(ds.X)[:, :2])
        scale = float(np.mean([np.mean(r**2) for r in reps]))
        shifts = [
            float(np.mean((reps[i] - reps[j]) ** 2))
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert max(shifts) < 0.05 * scale

    def test_shift_requires_multiple_variants(self, report):
        with pytest.raises(ValidationError):
            representation_shift(report, "Bogus")
