"""Integration tests: the Figure 4 obfuscation study."""

import pytest

from repro.exceptions import ValidationError
from repro.pipeline.obfuscation import run_obfuscation, run_obfuscation_study


class TestObfuscation:
    def test_classification_dataset_has_lfr(self, tiny_credit, fast_config):
        row = run_obfuscation(tiny_credit, fast_config)
        assert row.lfr is not None
        assert 0.0 <= row.masked <= 1.0
        assert 0.0 <= row.lfr <= 1.0
        assert 0.0 <= row.ifair <= 1.0

    def test_ranking_dataset_skips_lfr(self, tiny_xing, fast_config):
        row = run_obfuscation(tiny_xing, fast_config)
        assert row.lfr is None

    def test_study_over_multiple_datasets(
        self, tiny_credit, tiny_xing, fast_config
    ):
        report = run_obfuscation_study([tiny_credit, tiny_xing], fast_config)
        assert [r.dataset for r in report.rows] == ["credit", "xing"]
        text = report.figure4()
        assert "Figure 4" in text
        assert "n/a" in text  # the ranking dataset's LFR cell

    def test_empty_study_rejected(self, fast_config):
        with pytest.raises(ValidationError):
            run_obfuscation_study([], fast_config)

    def test_ifair_obfuscates_compas(self, tiny_compas, fast_config):
        """Shape check: iFair's representation leaks less than masking."""
        row = run_obfuscation(tiny_compas, fast_config)
        assert row.ifair <= row.masked + 0.05
