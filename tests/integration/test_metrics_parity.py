"""Metrics-merge parity: worker deltas reduce to scheduling-independent totals.

Executor workers accumulate telemetry in their own process-local
registries and ship per-task deltas back over their result pipes; the
parent folds them into :func:`repro.telemetry.metrics.get_registry`.
If that reduction is correct, the parent's deterministic counters after
a fit cannot depend on how the restarts were scheduled — a serial fit
and an ``n_jobs=2`` session-pool fit must agree exactly.
"""

import numpy as np
import pytest

from repro.core.executor import shutdown_session_pools
from repro.core.model import IFair
from repro.telemetry.metrics import get_registry, snapshot_diff
from repro.utils.shm import leaked_segments

#: Counters whose totals are pure functions of the fit configuration,
#: independent of backend and task scheduling.
INVARIANT_COUNTERS = (
    "fit_total",
    "fit_restarts_total",
    "fit_lbfgs_iterations_total",
)


@pytest.fixture(autouse=True)
def _clean_session_state():
    shutdown_session_pools()
    yield
    shutdown_session_pools()
    assert leaked_segments() == []


def _make_data(seed=0, rows=40, cols=4):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, cols))


def _fit_counters(X, **kwargs):
    """Fit once and return the counter delta it caused in the registry."""
    registry = get_registry()
    before = registry.snapshot()
    model = IFair(
        n_prototypes=3, n_restarts=4, max_iter=15, random_state=7, **kwargs
    )
    model.fit(X, protected_indices=[3])
    delta = snapshot_diff(registry.snapshot(), before)
    return model, delta.get("counters", {})


def test_serial_and_process_fits_agree_on_deterministic_counters():
    X = _make_data()
    serial_model, serial = _fit_counters(X)
    pool_model, pooled = _fit_counters(X, n_jobs=2, pool="session")

    # the models themselves are bitwise identical (existing guarantee) —
    # so any counter disagreement is a telemetry bug, not a fit bug
    np.testing.assert_array_equal(
        serial_model.prototypes_, pool_model.prototypes_
    )

    for name in INVARIANT_COUNTERS:
        assert serial.get(name) == pooled.get(name), name

    # every restart ran exactly once, whoever ran it
    assert serial["fit_restarts_total"] == 4.0
    assert pooled["fit_restarts_total"] == 4.0

    # per-restart work reaches the parent only through shipped deltas
    # under the process backend; the tasks themselves are counted
    # parent-side, once per payload
    assert "executor_tasks_total" not in serial
    assert pooled["executor_tasks_total"] == 4.0
    assert pooled["executor_maps_total"] == 1.0

    # oracle builds + memo hits account for every restart's oracle:
    # serial builds once and shares it; each cold worker builds its own
    assert serial["fit_oracle_builds_total"] == 1.0
    assert pooled["fit_oracle_builds_total"] == 2.0
    assert "fit_oracle_memo_hits_total" not in pooled  # cold workers


def test_warm_session_refit_counters_are_deterministic():
    X = _make_data()
    _fit_counters(X, n_jobs=2, pool="session")  # warm the pool + arena

    _, second = _fit_counters(X, n_jobs=2, pool="session")
    _, third = _fit_counters(X, n_jobs=2, pool="session")

    # identical warm refits produce identical counter deltas
    assert second == third

    # both workers reuse the memoised oracle instead of rebuilding
    assert second["fit_oracle_memo_hits_total"] == 2.0
    assert "fit_oracle_builds_total" not in second
    # the broadcast matrix is served from the arena cache
    assert second["shm_arena_hits_total"] == 1.0
    assert "shm_arena_misses_total" not in second


def test_worker_counters_actually_cross_the_pipe():
    # fit_restarts_total increments inside _run_restart, which under the
    # process backend only ever executes in worker processes: seeing it
    # in the parent registry proves the delta-shipping path end to end.
    X = _make_data(seed=1)
    _, pooled = _fit_counters(X, n_jobs=2, pool="session")
    assert pooled["fit_restarts_total"] == 4.0
    assert pooled["fit_lbfgs_iterations_total"] > 0
