"""Integration tests for process-parallel and halving tuning.

The hard guarantees of ISSUE 4, on real model fits:

* **n_jobs parity** — for a fixed seed, serial and parallel execution
  produce bitwise-identical fitted parameters and the same selected
  candidate, at every layer (``IFair.fit``, ``GridSearch``,
  ``run_classification``);
* **shared-memory hygiene** — no ``/dev/shm`` segment survives a fit,
  including when a candidate build raises;
* **halving agreement** — on the seeded test configuration the
  halving strategy selects the same candidate as exhaustive search
  under all three tuning criteria.
"""

from functools import partial

import numpy as np
import pytest

from repro.core.executor import TaskError, get_shared
from repro.core.model import IFair
from repro.core.tuning import GridSearch, HalvingConfig, TuningCriterion
from repro.learners.logistic import LogisticRegression
from repro.metrics.classification import roc_auc
from repro.metrics.individual import consistency
from repro.pipeline.classification import run_classification
from repro.pipeline.config import ExperimentConfig
from repro.utils.shm import leaked_segments


def _ifair_build(spec, params):
    shared = get_shared()
    return IFair(init="protected_zero", random_state=spec["seed"], **params).fit(
        shared["X"][shared["train"]], spec["protected"]
    )


def _ifair_evaluate(spec, model):
    shared = get_shared()
    X, y = shared["X"], shared["y"]
    train, val = shared["train"], shared["val"]
    clf = LogisticRegression(l2=1.0).fit(model.transform(X[train]), y[train])
    proba = clf.predict_proba(model.transform(X[val]))
    pred = (proba >= 0.5).astype(np.float64)
    auc = float(roc_auc(y[val], proba))
    ynn = float(consistency(X[val][:, spec["nonprotected"]], pred, k=5))
    return auc, ynn


def _raising_build(spec, params):
    raise RuntimeError("candidate build exploded")


@pytest.fixture(scope="module")
def tuning_problem(request):
    rng = np.random.default_rng(11)
    m, n = 120, 8
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    y = ((X[:, 0] + 0.5 * X[:, 1] + 0.2 * rng.normal(size=m)) > 0).astype(
        np.float64
    )
    idx = np.arange(m)
    spec = {
        "seed": 11,
        "protected": [n - 1],
        "nonprotected": list(range(n - 1)),
    }
    shared = {"X": X, "y": y, "train": idx[: m // 2], "val": idx[m // 2 :]}
    grid = [
        {
            "lambda_util": lam,
            "mu_fair": mu,
            "n_prototypes": 4,
            "n_restarts": 2,
            "max_iter": 24,
            "max_pairs": 400,
        }
        for lam in (0.01, 1.0, 100.0)
        for mu in (0.01, 1.0, 100.0)
    ]
    return spec, shared, grid


def _search(tuning_problem, **kwargs):
    spec, shared, grid = tuning_problem
    return GridSearch(
        partial(_ifair_build, spec),
        partial(_ifair_evaluate, spec),
        grid,
        shared=shared,
        keep_artifacts=False,
        **kwargs,
    ).run()


class TestNJobsParity:
    """Serial vs parallel must agree bitwise — the ISSUE-4 hard gate."""

    def test_grid_search_results_bitwise_identical(self, tuning_problem):
        serial = _search(tuning_problem)
        parallel = _search(tuning_problem, n_jobs=2)
        for a, b in zip(serial.candidates, parallel.candidates):
            assert a.order == b.order
            assert a.utility == b.utility  # exact float equality
            assert a.fairness == b.fairness
            assert np.array_equal(a.theta, b.theta)  # bitwise theta

    def test_grid_search_winners_identical(self, tuning_problem):
        serial = _search(tuning_problem)
        parallel = _search(tuning_problem, n_jobs=2)
        for criterion in TuningCriterion:
            assert (
                serial.best(criterion).params == parallel.best(criterion).params
            )

    def test_ifair_fit_bitwise_identical_across_backends(self, tuning_problem):
        spec, shared, _ = tuning_problem
        X = shared["X"]

        def fit(n_jobs=None, backend="process"):
            return IFair(
                n_prototypes=4,
                n_restarts=3,
                max_iter=20,
                max_pairs=400,
                n_jobs=n_jobs,
                backend=backend,
                random_state=7,
            ).fit(X, spec["protected"])

        serial, process, thread = fit(), fit(2), fit(3, "thread")
        assert np.array_equal(serial.theta_, process.theta_)
        assert np.array_equal(serial.theta_, thread.theta_)
        assert serial.loss_ == process.loss_ == thread.loss_
        assert [r.loss for r in serial.restarts_] == [
            r.loss for r in process.restarts_
        ]

    def test_classification_pipeline_parity(self, tiny_compas, fast_config):
        from dataclasses import replace

        serial = run_classification(tiny_compas, fast_config)
        parallel = run_classification(
            tiny_compas, replace(fast_config, tune_jobs=2)
        )
        assert len(serial.candidates) == len(parallel.candidates)
        for a, b in zip(serial.candidates, parallel.candidates):
            assert a.method == b.method and a.params == b.params
            assert a.val_auc == b.val_auc
            assert a.val_consistency == b.val_consistency
            assert a.test.as_row() == b.test.as_row()


class TestSharedMemoryHygiene:
    def test_no_segments_after_parallel_grid_search(self, tuning_problem):
        _search(tuning_problem, n_jobs=2)
        assert leaked_segments() == []

    def test_no_segments_after_parallel_fit(self, tuning_problem):
        spec, shared, _ = tuning_problem
        IFair(
            n_prototypes=4, n_restarts=2, max_iter=10, max_pairs=300,
            n_jobs=2, random_state=0,
        ).fit(shared["X"], spec["protected"])
        assert leaked_segments() == []

    def test_no_segments_after_failing_candidate(self, tuning_problem):
        spec, shared, grid = tuning_problem
        search = GridSearch(
            partial(_raising_build, spec),
            lambda a: (0.0, 0.0),
            grid[:3],
            n_jobs=2,
            shared=shared,
        )
        with pytest.raises(TaskError, match="candidate build exploded"):
            search.run()
        assert leaked_segments() == []


class TestHalvingAgreement:
    @pytest.fixture(scope="class")
    def census_problem(self):
        """The seeded agreement configuration (census has real signal
        structure, so the criteria have clear winners — random
        gaussian data would make winner identity a coin flip between
        near-tied candidates at any budget)."""
        from repro.data.census import generate_census
        from repro.data.splits import stratified_split
        from repro.learners.scaler import StandardScaler

        dataset = generate_census(250, random_state=11)
        split = stratified_split(dataset.y, random_state=11)
        X = StandardScaler().fit(dataset.X[split.train]).transform(dataset.X)
        spec = {
            "seed": 11,
            "protected": [int(i) for i in np.atleast_1d(dataset.protected_indices)],
            "nonprotected": [int(i) for i in dataset.nonprotected_indices],
        }
        shared = {
            "X": X,
            "y": dataset.y,
            "train": split.train,
            "val": split.val,
        }
        grid = [
            {
                "lambda_util": lam,
                "mu_fair": mu,
                "n_prototypes": k,
                "n_restarts": 2,
                "max_iter": 48,
                "max_pairs": 800,
            }
            for lam in (0.01, 1.0, 100.0)
            for mu in (0.01, 1.0, 100.0)
            for k in (4, 8)
        ]
        return spec, shared, grid

    def test_halving_selects_exhaustive_winner_under_all_criteria(
        self, census_problem
    ):
        exhaustive = _search(census_problem)
        halving = _search(
            census_problem,
            strategy="halving",
            halving=HalvingConfig(n_rungs=3, promote_fraction=1 / 3),
        )
        assert halving.strategy == "halving"
        for criterion in TuningCriterion:
            assert (
                halving.best(criterion).order == exhaustive.best(criterion).order
            ), criterion
        # the survivors' final-rung fits are the exhaustive fits
        exhaustive_by_order = {c.order: c for c in exhaustive.candidates}
        for candidate in halving.candidates:
            reference = exhaustive_by_order[candidate.order]
            assert candidate.utility == reference.utility
            assert np.array_equal(candidate.theta, reference.theta)

    def test_refit_best_works_with_shared_reading_builds(self, tuning_problem):
        # Regression: refit_best runs after the search pool (and its
        # shared-memory segments) are gone, so the rebuild must
        # re-establish the executor context for builds that read
        # get_shared().
        spec, shared, grid = tuning_problem
        result = _search(tuning_problem, n_jobs=2, strategy="halving")
        model = result.refit_best(TuningCriterion.OPTIMAL)
        best = result.best(TuningCriterion.OPTIMAL)
        assert isinstance(model, IFair)
        np.testing.assert_array_equal(model.theta_, best.theta)
        assert leaked_segments() == []

    def test_halving_parallel_matches_halving_serial(self, tuning_problem):
        serial = _search(tuning_problem, strategy="halving")
        parallel = _search(tuning_problem, strategy="halving", n_jobs=2)
        assert [c.order for c in serial.candidates] == [
            c.order for c in parallel.candidates
        ]
        for a, b in zip(serial.candidates, parallel.candidates):
            assert a.utility == b.utility and a.fairness == b.fairness


class TestSessionPoolParity:
    """Session pools must be a pure perf knob — results bitwise equal."""

    @pytest.fixture(autouse=True)
    def _clean_session_state(self):
        from repro.core.executor import shutdown_session_pools

        shutdown_session_pools()
        yield
        shutdown_session_pools()
        assert leaked_segments() == []

    def test_grid_search_session_vs_per_call_bitwise(self, tuning_problem):
        per_call = _search(tuning_problem, n_jobs=2)
        session = _search(tuning_problem, n_jobs=2, pool="session")
        for a, b in zip(per_call.candidates, session.candidates):
            assert a.order == b.order
            assert a.utility == b.utility
            assert a.fairness == b.fairness
            assert np.array_equal(a.theta, b.theta)
        for criterion in TuningCriterion:
            assert (
                per_call.best(criterion).params == session.best(criterion).params
            )

    def test_consecutive_session_searches_share_workers(self, tuning_problem):
        from repro.core.executor import PoolBroker

        _search(tuning_problem, n_jobs=2, pool="session")
        pids_first = PoolBroker.instance().lease(2).pool.worker_pids()
        PoolBroker.instance()._release(2)
        _search(tuning_problem, n_jobs=2, pool="session")
        pids_second = PoolBroker.instance().lease(2).pool.worker_pids()
        PoolBroker.instance()._release(2)
        assert pids_first == pids_second

    def test_ifair_fit_session_vs_per_call_bitwise(self, tuning_problem):
        spec, shared, _ = tuning_problem

        def fit(pool):
            return IFair(
                n_prototypes=4,
                n_restarts=3,
                max_iter=20,
                max_pairs=400,
                n_jobs=2,
                pool=pool,
                random_state=7,
            ).fit(shared["X"], spec["protected"])

        per_call, warm_a, warm_b = fit("per-call"), fit("session"), fit("session")
        assert np.array_equal(per_call.theta_, warm_a.theta_)
        assert np.array_equal(per_call.theta_, warm_b.theta_)
        assert per_call.loss_ == warm_a.loss_ == warm_b.loss_

    def test_refit_reuses_tuning_broadcast(self, tuning_problem):
        # The arena must serve the fit of the selected candidate from
        # the segment the search already published (cache hit, no
        # second copy of X).
        from repro.utils.shm import arena

        spec, shared, _ = tuning_problem
        _search(tuning_problem, n_jobs=2, pool="session")
        before = arena().stats()
        IFair(
            n_prototypes=4,
            n_restarts=2,
            max_iter=10,
            max_pairs=300,
            n_jobs=2,
            pool="session",
            random_state=0,
        ).fit(shared["X"], spec["protected"])
        after = arena().stats()
        assert after["hits"] > before["hits"]
        assert after["entries"] == before["entries"]

    def test_halving_session_matches_halving_per_call(self, tuning_problem):
        per_call = _search(
            tuning_problem,
            n_jobs=2,
            strategy="halving",
            halving=HalvingConfig(n_rungs=3, promote_fraction=0.25),
        )
        session = _search(
            tuning_problem,
            n_jobs=2,
            strategy="halving",
            pool="session",
            halving=HalvingConfig(n_rungs=3, promote_fraction=0.25),
        )
        assert [c.order for c in per_call.candidates] == [
            c.order for c in session.candidates
        ]
        for a, b in zip(per_call.candidates, session.candidates):
            assert a.utility == b.utility and a.fairness == b.fairness
            assert np.array_equal(a.theta, b.theta)


class TestServingSessionParity:
    """fit_serving_pipeline(pool="session"): tune + refit on one pool."""

    @pytest.fixture(autouse=True)
    def _clean_session_state(self):
        from repro.core.executor import shutdown_session_pools

        shutdown_session_pools()
        yield
        shutdown_session_pools()
        assert leaked_segments() == []

    def test_tuned_artifact_bitwise_equal_and_refit_warm(self):
        from repro.data.census import generate_census
        from repro.serving.fit import fit_serving_pipeline
        from repro.utils.shm import arena

        dataset = generate_census(80, random_state=3)
        kwargs = dict(
            n_prototypes=4,
            n_restarts=2,
            max_iter=20,
            tune=True,
            tune_jobs=2,
            n_jobs=2,
            tune_strategy="halving",
            random_state=3,
        )
        per_call = fit_serving_pipeline(dataset, **kwargs)
        session = fit_serving_pipeline(dataset, pool="session", **kwargs)
        assert np.array_equal(per_call.model.theta_, session.model.theta_)
        assert per_call.metadata["tuned"] == session.metadata["tuned"]
        # The final full-data fit reused the matrix the tuning search
        # had already broadcast (arena hit), instead of re-publishing.
        assert arena().stats()["hits"] >= 1
