"""Acceptance: landmark mode trains at M = 20,000 with no O(M^2) state.

The reference full-pair path allocates an (M, M) float64 target —
3.2 GB at this M — so simply *running* these fits is already evidence;
the structural checks additionally walk every array the oracle holds
and bound the largest one, and the generic-p fit proves the blocked
kernels keep the (M, K, N) tensor out of play (it would be another
O(M * K * N) = 360 MB per L-BFGS evaluation at these shapes if
materialised in one piece — trivial next to the 6.4 GB of the pair
structures, but the landmark contract promises blocks).
"""

import numpy as np
import pytest

from repro.core.model import IFair
from repro.core.objective import IFairObjective

M, N, K, L = 20_000, 6, 3, 32


@pytest.fixture(scope="module")
def big_X():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(M, N))
    X[:, N - 1] = (rng.random(M) > 0.5).astype(float)
    return X


def _largest_held_array(obj) -> int:
    """Largest ndarray (elements) reachable from the oracle's state."""
    sizes = [0]
    seen = set()
    stack = [obj]
    while stack:
        item = stack.pop()
        if id(item) in seen:
            continue
        seen.add(id(item))
        if isinstance(item, np.ndarray):
            sizes.append(item.size)
        elif hasattr(item, "__dict__"):
            stack.extend(item.__dict__.values())
        elif isinstance(item, (list, tuple)):
            stack.extend(item)
        elif isinstance(item, dict):
            stack.extend(item.values())
    return max(sizes)


@pytest.mark.parametrize("p", [2.0, 3.0])
def test_trains_at_twenty_thousand_records(big_X, p):
    model = IFair(
        n_prototypes=K,
        p=p,
        pair_mode="landmark",
        n_landmarks=L,
        n_restarts=1,
        max_iter=3,
        random_state=0,
    ).fit(big_X, [N - 1])
    assert np.isfinite(model.loss_)
    assert model.landmarks_.size == L
    # Chunked inference on the full matrix stays exact.
    Z = model.transform(big_X[:4096], batch_size=512)
    assert Z.shape == (4096, N)


@pytest.mark.parametrize("p", [2.0, 3.0])
def test_oracle_state_is_far_below_m_squared(big_X, p):
    objective = IFairObjective(
        big_X,
        [N - 1],
        n_prototypes=K,
        p=p,
        pair_mode="landmark",
        n_landmarks=L,
        random_state=0,
    )
    theta = np.random.default_rng(1).uniform(0.1, 0.9, size=objective.n_params)
    loss, grad = objective.loss_and_grad(theta)
    assert np.isfinite(loss)
    assert grad.shape == (objective.n_params,)
    # Largest persistent array anywhere in the oracle (inputs, targets,
    # workspaces) is O(M * L) / O(M * N) — nowhere near M * M, and the
    # dense-reference structures are absent entirely.
    assert objective._d_star is None
    assert objective._fair_full is None
    largest = _largest_held_array(objective)
    assert largest <= M * max(L, N, K) < M * M // 100
