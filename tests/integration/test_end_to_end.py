"""End-to-end behavioural tests of the public API.

These follow the paper's decision-making pipeline (Figure 1): raw
records -> learned fair representation -> downstream model -> audited
outcomes, asserting the qualitative relationships the paper reports.
"""

import numpy as np
import pytest

from repro import IFair, LFR
from repro.data.compas import generate_compas
from repro.data.splits import stratified_split
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import accuracy
from repro.metrics.individual import consistency
from repro.metrics.obfuscation import adversarial_accuracy


@pytest.fixture(scope="module")
def pipeline_artifacts():
    dataset = generate_compas(220, charge_levels=8, random_state=11)
    split = stratified_split(dataset.y, random_state=11)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    model = IFair(
        n_prototypes=5,
        lambda_util=1.0,
        mu_fair=1.0,
        n_restarts=1,
        max_iter=60,
        max_pairs=1200,
        random_state=11,
    ).fit(X[split.train], dataset.protected_indices)
    return dataset, split, X, model


class TestEndToEnd:
    def test_downstream_classifier_trains_on_representation(
        self, pipeline_artifacts
    ):
        dataset, split, X, model = pipeline_artifacts
        Z_train = model.transform(X[split.train])
        Z_test = model.transform(X[split.test])
        clf = LogisticRegression(l2=1.0).fit(Z_train, dataset.y[split.train])
        acc = accuracy(dataset.y[split.test], clf.predict(Z_test))
        # Better than the trivial majority-class baseline.
        majority = max(dataset.y[split.test].mean(), 1 - dataset.y[split.test].mean())
        assert acc >= majority - 0.1

    def test_representation_improves_consistency_over_full_data(
        self, pipeline_artifacts
    ):
        dataset, split, X, model = pipeline_artifacts
        X_star = X[:, dataset.nonprotected_indices]
        y_train = dataset.y[split.train]

        clf_full = LogisticRegression(l2=1.0).fit(X[split.train], y_train)
        pred_full = clf_full.predict(X[split.test])

        Z_train = model.transform(X[split.train])
        Z_test = model.transform(X[split.test])
        clf_fair = LogisticRegression(l2=1.0).fit(Z_train, y_train)
        pred_fair = clf_fair.predict(Z_test)

        ynn_full = consistency(X_star[split.test], pred_full, k=10)
        ynn_fair = consistency(X_star[split.test], pred_fair, k=10)
        assert ynn_fair >= ynn_full - 0.02

    def test_representation_obfuscates_protected_attribute(
        self, pipeline_artifacts
    ):
        dataset, split, X, model = pipeline_artifacts
        X_masked = X.copy()
        X_masked[:, dataset.protected_indices] = 0.0
        adv_masked = adversarial_accuracy(X_masked, dataset.protected, random_state=0)
        adv_fair = adversarial_accuracy(
            model.transform(X), dataset.protected, random_state=0
        )
        assert adv_fair <= adv_masked + 0.05

    def test_transform_generalises_to_unseen_records(self, pipeline_artifacts):
        dataset, split, X, model = pipeline_artifacts
        Z_test = model.transform(X[split.test])
        assert Z_test.shape == (split.test.size, X.shape[1])
        assert np.all(np.isfinite(Z_test))

    def test_lfr_requires_labels_but_ifair_does_not(self):
        dataset = generate_compas(100, charge_levels=6, random_state=2)
        X = StandardScaler().fit_transform(dataset.X)
        # iFair: unsupervised fit succeeds.
        IFair(n_prototypes=3, n_restarts=1, max_iter=10, random_state=0).fit(
            X, dataset.protected_indices
        )
        # LFR: positional signature demands labels and group vector.
        with pytest.raises(TypeError):
            LFR().fit(X)  # noqa: intentional misuse
