"""Integration tests: the learning-to-rank experiment pipeline."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pipeline.ranking import run_ranking, run_weight_sensitivity, table4


@pytest.fixture(scope="module")
def xing_report():
    from repro.data.xing import generate_xing
    from repro.pipeline.config import ExperimentConfig

    config = ExperimentConfig(
        mixture_grid=(0.1, 1.0),
        prototype_grid=(4,),
        n_restarts=1,
        max_iter=25,
        max_pairs=600,
        random_state=3,
    )
    dataset = generate_xing(n_queries=4, candidates_per_query=15, random_state=3)
    return run_ranking(
        dataset, config, fair_ps=(0.5,), min_query_size=5
    )


class TestRankingPipeline:
    def test_all_rows_present(self, xing_report):
        methods = {r.method for r in xing_report.rows}
        assert methods == {
            "Full Data",
            "Masked Data",
            "SVD",
            "SVD-masked",
            "iFair-b",
            "FA*IR (p=0.5)",
        }

    def test_full_data_recovers_xing_scores(self, xing_report):
        """Xing's deserved score is linear in features, so Full Data must
        achieve (near-)perfect ranking utility — the paper's Table V."""
        row = xing_report.row("Full Data")
        assert row.map_score > 0.95
        assert row.kendall > 0.95

    def test_metrics_in_range(self, xing_report):
        for row in xing_report.rows:
            assert 0.0 <= row.map_score <= 1.0
            assert -1.0 <= row.kendall <= 1.0
            assert 0.0 <= row.consistency <= 1.0
            assert 0.0 <= row.protected_share <= 1.0

    def test_table5_renders(self, xing_report):
        text = xing_report.table5()
        assert "Table V" in text
        assert "iFair-b" in text

    def test_missing_method_raises(self, xing_report):
        with pytest.raises(ValidationError):
            xing_report.row("Bogus")

    def test_classification_dataset_rejected(self, tiny_credit, fast_config):
        with pytest.raises(ValidationError, match="ranking"):
            run_ranking(tiny_credit, fast_config)


class TestWeightSensitivity:
    def test_rows_and_rendering(self, tiny_xing, fast_config):
        grid = [(1.0, 1.0, 1.0), (0.5, 1.0, 0.0)]
        rows = run_weight_sensitivity(tiny_xing, grid, fast_config)
        assert len(rows) == 2
        text = table4(rows)
        assert "Table IV" in text

    def test_zero_weights_skipped(self, tiny_xing, fast_config):
        rows = run_weight_sensitivity(
            tiny_xing, [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)], fast_config
        )
        assert len(rows) == 1

    def test_non_xing_rejected(self, tiny_credit, fast_config):
        with pytest.raises(ValidationError):
            run_weight_sensitivity(tiny_credit, [(1, 1, 1)], fast_config)
