"""Regenerate the golden-reference fixture corpus (``cases.json``).

The golden corpus pins the iFair oracle's observable behaviour —
loss, loss components, analytic gradient, transform output, and (for
landmark mode) the selected anchors — for every fairness pair mode
(``full``, ``sampled``, ``landmark``) and both kernel flavours, on
small frozen inputs.  Cross-path equivalence then no longer depends
only on in-process comparison: a regression in *either* path breaks
against the committed numbers.

The inputs are derived from seeds but **stored verbatim** in the JSON
(NumPy ``Generator`` streams are not guaranteed stable across feature
releases), so the tests never regenerate them.  Floats round-trip
exactly through ``json`` (shortest-repr float64).

Run from the repository root to refresh after an intentional
behaviour change::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the resulting ``tests/golden/cases.json`` diff together
with the change that motivated it.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.core.objective import IFairObjective  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(__file__), "cases.json")

# One shared tiny geometry: 14 records, 5 features (last protected),
# 3 prototypes.  Non-unit mixture weights exercise the weighting.
M, N, K = 14, 5, 3
PROTECTED = [4]
LAMBDA, MU = 1.25, 0.75

# name -> objective kwargs beyond the shared ones.
CASES = {
    "full_p2_fast": dict(p=2.0, pair_mode="full", fast_kernels=True),
    "full_p2_reference": dict(p=2.0, pair_mode="full", fast_kernels=False),
    "full_p3_reference": dict(p=3.0, pair_mode="full", fast_kernels=True),
    "sampled_p2_fast": dict(p=2.0, max_pairs=20, fast_kernels=True),
    "sampled_p2_reference": dict(p=2.0, max_pairs=20, fast_kernels=False),
    "sampled_p3_reference": dict(p=3.0, max_pairs=20, fast_kernels=True),
    "landmark_p2_fast": dict(
        p=2.0, pair_mode="landmark", n_landmarks=5, fast_kernels=True
    ),
    "landmark_p2_blocked": dict(
        p=2.0, pair_mode="landmark", n_landmarks=5, fast_kernels=False
    ),
    "landmark_p3_blocked": dict(
        p=3.0, pair_mode="landmark", n_landmarks=5, fast_kernels=True
    ),
    "landmark_farthest_p2_fast": dict(
        p=2.0,
        pair_mode="landmark",
        n_landmarks=5,
        landmark_method="farthest",
        fast_kernels=True,
    ),
    # L = M: the landmark loss must equal the full-pair loss (the
    # acceptance criterion pins these against the full_* cases).
    "landmark_LM_p2_fast": dict(
        p=2.0, pair_mode="landmark", n_landmarks=M, fast_kernels=True
    ),
    "landmark_LM_p3_blocked": dict(
        p=3.0, pair_mode="landmark", n_landmarks=M, fast_kernels=True
    ),
}


def build_case(name: str, kwargs: dict) -> dict:
    X = np.random.default_rng(20260727).normal(size=(M, N))
    objective = IFairObjective(
        X,
        PROTECTED,
        lambda_util=LAMBDA,
        mu_fair=MU,
        n_prototypes=K,
        random_state=11,
        **kwargs,
    )
    theta = np.random.default_rng(424242).uniform(0.1, 0.9, size=objective.n_params)
    loss, grad = objective.loss_and_grad(theta)
    l_util, l_fair = objective.loss_components(theta)
    V, alpha = objective.unpack(theta)
    record = {
        "name": name,
        "params": {
            "m": M,
            "n": N,
            "k": K,
            "protected": PROTECTED,
            "lambda_util": LAMBDA,
            "mu_fair": MU,
            "random_state": 11,
            **{key: value for key, value in kwargs.items()},
        },
        "X": X.tolist(),
        "theta": theta.tolist(),
        "expected": {
            "loss": loss,
            "l_util": l_util,
            "l_fair": l_fair,
            "grad": grad.tolist(),
            "transform": objective.transform(V, alpha).tolist(),
            "effective_pairs": objective.effective_pairs,
        },
    }
    if objective.landmark_indices is not None:
        record["expected"]["landmarks"] = objective.landmark_indices.tolist()
    return record


def main() -> None:
    doc = {
        "format": "repro-golden-cases",
        "version": 1,
        "note": (
            "Frozen oracle fixtures; regenerate with "
            "`PYTHONPATH=src python tests/golden/regenerate.py` "
            "only after an intentional behaviour change."
        ),
        "cases": [build_case(name, kwargs) for name, kwargs in CASES.items()],
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT_PATH} ({len(doc['cases'])} cases)")


if __name__ == "__main__":
    main()
