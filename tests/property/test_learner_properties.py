"""Property tests for the from-scratch learners."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.learners.knn import KNearestNeighbors
from repro.learners.linear import LinearRegression, RidgeRegression
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler


class TestLinearProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 5))
    def test_ols_residuals_orthogonal_to_features(self, seed, d):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, d))
        y = rng.normal(size=30)
        model = LinearRegression().fit(X, y)
        resid = y - model.predict(X)
        # Normal equations: X' r = 0 and 1' r = 0.
        np.testing.assert_allclose(X.T @ resid, 0.0, atol=1e-7)
        assert abs(resid.sum()) < 1e-7

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.floats(0.001, 100.0))
    def test_ridge_coef_norm_decreases_in_l2(self, seed, l2):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        small = RidgeRegression(l2=l2).fit(X, y)
        large = RidgeRegression(l2=l2 * 10).fit(X, y)
        assert (
            np.linalg.norm(large.coef_) <= np.linalg.norm(small.coef_) + 1e-9
        )


class TestLogisticProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_probabilities_valid(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        y = (rng.random(30) > 0.5).astype(float)
        assume(0 < y.sum() < 30)
        p = LogisticRegression(l2=1.0).fit(X, y).predict_proba(X)
        assert np.all((p >= 0.0) & (p <= 1.0))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_gradient_zero_at_optimum(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 2))
        y = (rng.random(40) > 0.5).astype(float)
        assume(0 < y.sum() < 40)
        clf = LogisticRegression(l2=1.0).fit(X, y)
        theta = np.concatenate([[clf.intercept_], clf.coef_])
        _, grad = LogisticRegression._loss_grad(theta, X, y, 1.0)
        assert np.max(np.abs(grad)) < 1e-4


class TestScalerProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 5))
    def test_transform_inverse_roundtrip(self, seed, d):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(20, d)) * rng.uniform(0.5, 5.0, size=d)
        scaler = StandardScaler(with_mean=True).fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_output_unit_variance(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(50, 3)) * np.array([0.1, 1.0, 10.0])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)


class TestKnnProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 6))
    def test_knn_indices_valid_and_unique(self, seed, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(k + 5, 3))
        idx = KNearestNeighbors(k=k).fit(X).kneighbors(exclude_self=True)
        for i, row in enumerate(idx):
            assert len(set(row.tolist())) == k
            assert i not in row
            assert row.min() >= 0 and row.max() < X.shape[0]
