"""Property tests for the probabilistic clustering kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.objective import IFairObjective
from repro.utils.mathkit import softmax

finite = st.floats(-500.0, 500.0, allow_nan=False, allow_infinity=False)


class TestSoftmaxInvariants:
    @settings(max_examples=80, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 6)),
            elements=finite,
        )
    )
    def test_rows_are_distributions(self, scores):
        U = softmax(scores, axis=1)
        assert np.all(U >= 0.0)
        np.testing.assert_allclose(U.sum(axis=1), 1.0, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(2, 8), elements=finite),
        st.floats(-100, 100, allow_nan=False),
    )
    def test_shift_invariance(self, row, shift):
        a = softmax(row[None, :], axis=1)
        b = softmax(row[None, :] + shift, axis=1)
        np.testing.assert_allclose(a, b, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.integers(2, 8),
            elements=st.floats(-25.0, 25.0, allow_nan=False).map(
                lambda v: round(v, 3)
            ),
        )
    )
    def test_order_preservation(self, row):
        # Scores on a 1e-3 grid in a range where exp() differences stay
        # representable; softmax is then strictly monotone and sorting
        # by score or by probability must agree up to ties.
        U = softmax(row[None, :], axis=1)[0]
        order_scores = np.argsort(row, kind="stable")
        order_probs = np.argsort(U, kind="stable")
        np.testing.assert_allclose(row[order_scores], row[order_probs])


class TestTransformInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 5))
    def test_memberships_simplex_for_any_parameters(self, seed, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(10, 4)) * 10
        obj = IFairObjective(X, None, n_prototypes=k)
        V = rng.normal(size=(k, 4)) * 10
        alpha = rng.uniform(0.0, 5.0, size=4)
        U = obj.memberships(V, alpha)
        assert np.all(U >= 0)
        np.testing.assert_allclose(U.sum(axis=1), 1.0, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 5))
    def test_transform_stays_in_prototype_box(self, seed, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(10, 4))
        obj = IFairObjective(X, None, n_prototypes=k)
        V = rng.normal(size=(k, 4))
        alpha = rng.uniform(0.0, 2.0, size=4)
        Z = obj.transform(V, alpha)
        assert np.all(Z >= V.min(axis=0) - 1e-9)
        assert np.all(Z <= V.max(axis=0) + 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_loss_nonnegative_everywhere(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(8, 3))
        obj = IFairObjective(X, [2], lambda_util=1.0, mu_fair=1.0, n_prototypes=2)
        theta = rng.normal(size=obj.n_params)
        theta[-3:] = np.abs(theta[-3:])  # alpha must be non-negative
        assert obj.loss(theta) >= 0.0
