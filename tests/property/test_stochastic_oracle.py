"""Property tests for the stochastic landmark oracle (ISSUE 8).

The contracts of ``batch_mode="stochastic"``:

* **Gradient correctness per batch** — each mini-batch objective is a
  differentiable function in its own right; its analytic gradient
  matches central finite differences.
* **Unbiasedness** — batches partition an epoch permutation, so with
  ``batch_size`` dividing M the per-batch (loss, grad) average to the
  full-path values at rtol 1e-8 (exact in real arithmetic).
* **Determinism** — batches are a pure function of (seed, call index):
  spawn-key streams, no worker- or wall-clock dependence.
* **Degeneracy** — ``batch_size = M`` routes through the literal full
  sharded path, bitwise.

Example budgets come from the Hypothesis profile in ``tests/conftest.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.objective import IFairObjective
from repro.core.shards import ShardedLandmarkOracle


def _landmark_objective(X, *, k=3, seed=0, n_landmarks=8):
    return IFairObjective(
        X,
        [X.shape[1] - 1],
        n_prototypes=k,
        pair_mode="landmark",
        n_landmarks=n_landmarks,
        random_state=seed,
    )


def _case(seed, m=24, n=5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    return X


def _stochastic_oracle(seed, *, m=24, batch_size=6, n_shards=3):
    objective = _landmark_objective(_case(seed, m=m), seed=seed)
    return ShardedLandmarkOracle(
        objective,
        n_shards=n_shards,
        batch_mode="stochastic",
        batch_size=batch_size,
        random_state=seed,
    )


class TestBatchStreams:
    @given(st.integers(0, 2**31 - 1))
    def test_batches_partition_each_epoch(self, seed):
        oracle = _stochastic_oracle(seed, m=24, batch_size=6)
        assert oracle.batches_per_epoch == 4
        for epoch in range(2):
            rows = np.concatenate(
                [
                    oracle.batch_rows(epoch * 4 + slot)
                    for slot in range(4)
                ]
            )
            np.testing.assert_array_equal(np.sort(rows), np.arange(24))

    @given(st.integers(0, 2**31 - 1))
    def test_streams_are_deterministic_in_seed_and_index(self, seed):
        a = _stochastic_oracle(seed)
        b = _stochastic_oracle(seed)
        for t in (0, 1, 5, 11):
            np.testing.assert_array_equal(a.batch_rows(t), b.batch_rows(t))
        # batch_rows is read-only in t: revisiting an index replays it.
        np.testing.assert_array_equal(a.batch_rows(0), b.batch_rows(0))

    def test_reset_batches_rewinds_the_schedule(self):
        oracle = _stochastic_oracle(5)
        theta = np.random.default_rng(0).uniform(
            0.1, 0.9, size=oracle.n_params
        )
        first = oracle.loss_and_grad(theta)
        oracle.loss_and_grad(theta)
        oracle.reset_batches()
        replay = oracle.loss_and_grad(theta)
        assert first[0] == replay[0]
        np.testing.assert_array_equal(first[1], replay[1])


class TestPerBatchGradients:
    @given(st.integers(0, 2**31 - 1), st.integers(0, 7))
    @settings(max_examples=15)
    def test_finite_differences_per_batch(self, seed, t):
        """Every mini-batch objective has the gradient it claims."""
        oracle = _stochastic_oracle(seed, m=20, batch_size=7)
        theta = np.random.default_rng(seed).uniform(
            0.2, 0.8, size=oracle.n_params
        )
        _, grad = oracle.evaluate_batch(theta, t)
        eps = 1e-6
        for i in range(theta.size):
            step = np.zeros_like(theta)
            step[i] = eps
            hi = oracle.evaluate_batch(theta + step, t)[0]
            lo = oracle.evaluate_batch(theta - step, t)[0]
            fd = (hi - lo) / (2 * eps)
            scale = max(abs(fd), abs(grad[i]), 1.0)
            assert abs(grad[i] - fd) / scale < 1e-4, (
                f"param {i}: analytic {grad[i]:.8e} vs FD {fd:.8e}"
            )


class TestUnbiasedness:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20)
    def test_epoch_mean_equals_full_gradient(self, seed):
        """batch_size | M: per-epoch means hit the full path at 1e-8."""
        m, batch = 24, 6
        objective = _landmark_objective(_case(seed, m=m), seed=seed)
        full = ShardedLandmarkOracle(objective, n_shards=3)
        stochastic = ShardedLandmarkOracle(
            objective,
            n_shards=3,
            batch_mode="stochastic",
            batch_size=batch,
            random_state=seed,
        )
        theta = np.random.default_rng(seed).uniform(
            0.1, 0.9, size=objective.n_params
        )
        loss_full, grad_full = full.loss_and_grad(theta)

        losses, grads = [], []
        for t in range(stochastic.batches_per_epoch):
            loss_t, grad_t = stochastic.evaluate_batch(theta, t)
            losses.append(loss_t)
            grads.append(grad_t)
        assert np.mean(losses) == pytest.approx(loss_full, rel=1e-8)
        np.testing.assert_allclose(
            np.mean(grads, axis=0),
            grad_full,
            rtol=1e-8,
            atol=1e-8 * np.abs(grad_full).max(),
        )


class TestFullPathDegeneracy:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15)
    def test_batch_size_m_is_bitwise_the_full_path(self, seed):
        m = 20
        objective = _landmark_objective(_case(seed, m=m), seed=seed)
        full = ShardedLandmarkOracle(objective, n_shards=4)
        stochastic = ShardedLandmarkOracle(
            objective,
            n_shards=4,
            batch_mode="stochastic",
            batch_size=m,
            random_state=seed,
        )
        theta = np.random.default_rng(seed).uniform(
            0.1, 0.9, size=objective.n_params
        )
        loss_full, grad_full = full.loss_and_grad(theta)
        # Several calls deep into the "stream": every one is the full path.
        for _ in range(3):
            loss_s, grad_s = stochastic.loss_and_grad(theta)
            assert loss_s == loss_full
            np.testing.assert_array_equal(grad_s, grad_full)

    def test_full_mode_ignores_the_call_counter(self):
        oracle = _stochastic_oracle(2, m=24, batch_size=24)
        assert oracle.batch_rows(0) is None
        assert oracle.batches_per_epoch == 1
