"""Property tests for the FA*IR re-ranker."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.baselines.fair_ranking import (
    FairRanker,
    minimum_protected_targets,
    ranked_group_fairness_ok,
)


@st.composite
def ranking_cases(draw):
    n = draw(st.integers(5, 40))
    seed = draw(st.integers(0, 2**31 - 1))
    p = draw(st.sampled_from([0.2, 0.4, 0.5, 0.7]))
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=n)
    protected = (rng.random(n) < 0.5).astype(float)
    assume(0 < protected.sum() < n)
    return scores, protected, p


class TestFairRankerProperties:
    @settings(max_examples=60, deadline=None)
    @given(ranking_cases())
    def test_output_is_permutation(self, case):
        scores, protected, p = case
        result = FairRanker(p=p).rank(scores, protected)
        assert sorted(result.ranking.tolist()) == list(range(scores.size))

    @settings(max_examples=60, deadline=None)
    @given(ranking_cases())
    def test_satisfies_binomial_targets(self, case):
        """Every prefix holds max(target, all-available) protected.

        When the pool simply runs out of protected candidates the
        binomial targets become infeasible; the ranker must then have
        placed every protected candidate it had.
        """
        scores, protected, p = case
        result = FairRanker(p=p, alpha=0.1).rank(scores, protected)
        flags = protected[result.ranking].astype(int)
        targets = minimum_protected_targets(flags.size, p, alpha=0.1)
        counts = np.cumsum(flags)
        total_protected = int(protected.sum())
        feasible_targets = np.minimum(targets, total_protected)
        assert np.all(counts >= feasible_targets)

    @settings(max_examples=60, deadline=None)
    @given(ranking_cases())
    def test_fair_scores_non_increasing(self, case):
        scores, protected, p = case
        result = FairRanker(p=p).rank(scores, protected)
        assert np.all(np.diff(result.scores) <= 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(ranking_cases())
    def test_within_group_order_preserved(self, case):
        """FA*IR never reorders candidates of the same group."""
        scores, protected, p = case
        result = FairRanker(p=p).rank(scores, protected)
        for group in (0.0, 1.0):
            group_scores = [
                scores[i] for i in result.ranking if protected[i] == group
            ]
            assert all(
                a >= b - 1e-12 for a, b in zip(group_scores, group_scores[1:])
            )

    @settings(max_examples=60, deadline=None)
    @given(ranking_cases())
    def test_unforced_positions_keep_scores(self, case):
        scores, protected, p = case
        result = FairRanker(p=p).rank(scores, protected)
        organic = ~result.forced
        np.testing.assert_allclose(
            result.scores[organic], scores[result.ranking][organic]
        )


class TestTargetProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 60),
        st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9]),
        st.sampled_from([0.05, 0.1, 0.2]),
    )
    def test_targets_monotone_and_feasible(self, k, p, alpha):
        targets = minimum_protected_targets(k, p, alpha)
        assert np.all(np.diff(targets) >= 0)
        assert np.all(targets >= 0)
        assert np.all(targets <= np.arange(1, k + 1))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 40), st.sampled_from([0.3, 0.5, 0.7]))
    def test_targets_increase_with_alpha(self, k, p):
        strict = minimum_protected_targets(k, p, alpha=0.3)
        loose = minimum_protected_targets(k, p, alpha=0.05)
        assert np.all(strict >= loose)
