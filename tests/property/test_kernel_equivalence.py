"""Property tests: the GEMM fast path is exact-equivalent to the reference.

The iFair oracle has two kernel flavours — the GEMM fast kernels used
by default for ``p == 2`` and the original einsum/tensor reference
(``fast_kernels=False``, also the generic-``p`` path; row-blocked in
landmark mode).  These tests pin them together at ``rtol = 1e-10``
for the loss and the full gradient, across Minkowski exponents, all
three pair modes (full / sampled / landmark), and protected sets, so
any algebra drift in the kernels is caught immediately.

Example budgets come from the Hypothesis profile registered in
``tests/conftest.py`` (``default``; ``HYPOTHESIS_PROFILE=nightly``
runs the scheduled high-budget sweep).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.objective import IFairObjective

RTOL = 1e-10
ATOL = 1e-10


def _pair_kwargs(pair_config, m):
    """Translate a drawn pair configuration into objective kwargs."""
    kind, value = pair_config
    if kind == "full":
        return {}
    if kind == "sampled":
        return {"max_pairs": value}
    return {"pair_mode": "landmark", "n_landmarks": min(value, m)}


def _pair(X, protected, *, p, pair_config, lam=1.0, mu=1.0, k=3, seed=0):
    """The same objective built with fast kernels and with the reference."""
    kwargs = dict(
        lambda_util=lam,
        mu_fair=mu,
        n_prototypes=k,
        p=p,
        random_state=seed,
        **_pair_kwargs(pair_config, X.shape[0]),
    )
    fast = IFairObjective(X, protected, **kwargs)
    ref = IFairObjective(X, protected, fast_kernels=False, **kwargs)
    return fast, ref


@st.composite
def equivalence_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    m = draw(st.integers(6, 20))
    n = draw(st.integers(2, 7))
    k = draw(st.integers(1, min(4, m - 1)))
    p = draw(st.sampled_from([2.0, 1.0, 3.0]))
    pair_config = draw(
        st.sampled_from(
            [
                ("full", None),
                ("sampled", 5),
                ("sampled", 25),
                ("landmark", 3),
                ("landmark", 6),
                ("landmark", 10_000),  # capped at m: the L = M case
            ]
        )
    )
    lam = draw(st.sampled_from([0.0, 0.5, 1.0, 10.0]))
    mu = draw(st.sampled_from([0.0, 0.5, 1.0, 10.0]))
    n_protected = draw(st.integers(0, max(0, n - 1)))
    return seed, m, n, k, p, pair_config, lam, mu, n_protected


class TestFastMatchesReference:
    @given(equivalence_cases())
    def test_loss_and_grad_equivalent(self, case):
        seed, m, n, k, p, pair_config, lam, mu, n_protected = case
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(m, n))
        protected = list(range(n - n_protected, n))
        fast, ref = _pair(
            X, protected, p=p, pair_config=pair_config, lam=lam, mu=mu, k=k, seed=seed
        )
        theta = rng.uniform(0.1, 0.9, size=fast.n_params)

        loss_fast, grad_fast = fast.loss_and_grad(theta)
        loss_ref, grad_ref = ref.loss_and_grad(theta)
        assert loss_fast == pytest.approx(loss_ref, rel=RTOL, abs=ATOL)
        np.testing.assert_allclose(grad_fast, grad_ref, rtol=RTOL, atol=ATOL)

    @given(equivalence_cases())
    def test_forward_only_equivalent(self, case):
        seed, m, n, k, p, pair_config, lam, mu, n_protected = case
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(m, n))
        protected = list(range(n - n_protected, n))
        fast, ref = _pair(
            X, protected, p=p, pair_config=pair_config, lam=lam, mu=mu, k=k, seed=seed
        )
        theta = rng.uniform(0.1, 0.9, size=fast.n_params)

        assert fast.loss(theta) == pytest.approx(ref.loss(theta), rel=RTOL, abs=ATOL)
        util_f, fair_f = fast.loss_components(theta)
        util_r, fair_r = ref.loss_components(theta)
        assert util_f == pytest.approx(util_r, rel=RTOL, abs=ATOL)
        assert fair_f == pytest.approx(fair_r, rel=RTOL, abs=ATOL)
        V, alpha = fast.unpack(theta)
        np.testing.assert_allclose(
            fast.memberships(V, alpha), ref.memberships(V, alpha), rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            fast.transform(V, alpha), ref.transform(V, alpha), rtol=RTOL, atol=ATOL
        )

    def test_empty_and_full_protected_sets(self, make_data, make_theta):
        """Edge protected sets, all pair modes, loss + grad at 1e-10."""
        X = make_data(14, 5, seed=7)
        for protected in (None, [], [4], [2, 3, 4]):
            for pair_config in (("full", None), ("sampled", 8), ("landmark", 5)):
                fast, ref = _pair(
                    X, protected, p=2.0, pair_config=pair_config, seed=11
                )
                theta = make_theta(fast, seed=13)
                loss_fast, grad_fast = fast.loss_and_grad(theta)
                loss_ref, grad_ref = ref.loss_and_grad(theta)
                assert loss_fast == pytest.approx(loss_ref, rel=RTOL, abs=ATOL)
                np.testing.assert_allclose(grad_fast, grad_ref, rtol=RTOL, atol=ATOL)

    def test_fast_path_is_actually_selected(self, make_data):
        X = make_data(10, 4, seed=0)
        assert IFairObjective(X, [3], n_prototypes=2)._use_fast
        assert not IFairObjective(X, [3], n_prototypes=2, p=3.0)._use_fast
        assert not IFairObjective(X, [3], n_prototypes=2, fast_kernels=False)._use_fast

    def test_workspace_reuse_is_stateless(self, make_data):
        """Calling the fast oracle repeatedly (as L-BFGS does) must not
        let reused buffers leak state between evaluations."""
        rng = np.random.default_rng(3)
        X = make_data(12, 4, seed=3)
        fast, ref = _pair(X, [3], p=2.0, pair_config=("full", None))
        thetas = [rng.uniform(0.1, 0.9, size=fast.n_params) for _ in range(4)]
        for theta in thetas + thetas[::-1]:
            loss_fast, grad_fast = fast.loss_and_grad(theta)
            loss_ref, grad_ref = ref.loss_and_grad(theta)
            assert loss_fast == pytest.approx(loss_ref, rel=RTOL, abs=ATOL)
            np.testing.assert_allclose(grad_fast, grad_ref, rtol=RTOL, atol=ATOL)

    def test_landmark_workspace_reuse_is_stateless(self, make_data):
        """Same guard for the landmark kernels (blocked buffers +
        anchor gather are all workspace-backed)."""
        rng = np.random.default_rng(5)
        X = make_data(12, 4, seed=5)
        fast, ref = _pair(X, [3], p=2.0, pair_config=("landmark", 5))
        thetas = [rng.uniform(0.1, 0.9, size=fast.n_params) for _ in range(4)]
        for theta in thetas + thetas[::-1]:
            loss_fast, grad_fast = fast.loss_and_grad(theta)
            loss_ref, grad_ref = ref.loss_and_grad(theta)
            assert loss_fast == pytest.approx(loss_ref, rel=RTOL, abs=ATOL)
            np.testing.assert_allclose(grad_fast, grad_ref, rtol=RTOL, atol=ATOL)
