"""Property tests: analytic gradients agree with finite differences.

These are the strongest correctness guarantees in the library — the
iFair and LFR objectives have hand-derived gradients, and any algebra
slip shows up here immediately.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import approx_fprime

from repro.baselines.lfr import LFRObjective
from repro.core.objective import IFairObjective


def _relative_error(analytic, numeric):
    scale = np.maximum(np.abs(numeric), 1.0)
    return np.max(np.abs(analytic - numeric) / scale)


@st.composite
def ifair_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    m = draw(st.integers(6, 15))
    n = draw(st.integers(2, 6))
    k = draw(st.integers(1, min(4, m - 1)))
    lam = draw(st.sampled_from([0.0, 0.1, 1.0, 10.0]))
    mu = draw(st.sampled_from([0.0, 0.1, 1.0, 10.0]))
    n_protected = draw(st.integers(0, max(0, n - 1)))
    return seed, m, n, k, lam, mu, n_protected


class TestIFairGradient:
    @settings(max_examples=25, deadline=None)
    @given(ifair_cases())
    def test_full_pair_gradient_matches_fd(self, case):
        seed, m, n, k, lam, mu, n_protected = case
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(m, n))
        protected = list(range(n - n_protected, n))
        obj = IFairObjective(
            X, protected, lambda_util=lam, mu_fair=mu, n_prototypes=k
        )
        theta = rng.uniform(0.1, 0.9, size=obj.n_params)
        loss, grad = obj.loss_and_grad(theta)
        assert loss == pytest.approx(obj.loss(theta), rel=1e-10)
        numeric = approx_fprime(theta, obj.loss, 1e-6)
        assert _relative_error(grad, numeric) < 5e-3

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(5, 60))
    def test_sampled_pair_gradient_matches_fd(self, seed, max_pairs):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(10, 4))
        obj = IFairObjective(
            X, [3], lambda_util=1.0, mu_fair=1.0, n_prototypes=3,
            max_pairs=max_pairs, random_state=seed,
        )
        theta = rng.uniform(0.1, 0.9, size=obj.n_params)
        _, grad = obj.loss_and_grad(theta)
        numeric = approx_fprime(theta, obj.loss, 1e-6)
        assert _relative_error(grad, numeric) < 5e-3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([1.0, 1.5, 3.0]))
    def test_gradient_for_general_p(self, seed, p):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(8, 3))
        obj = IFairObjective(X, None, n_prototypes=2, p=p)
        # Keep parameters away from |diff| = 0 kinks for p < 2.
        theta = rng.uniform(2.0, 3.0, size=obj.n_params)
        _, grad = obj.loss_and_grad(theta)
        numeric = approx_fprime(theta, obj.loss, 1e-7)
        assert _relative_error(grad, numeric) < 1e-2


class TestLFRGradient:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([0.0, 0.01, 1.0]),
        st.sampled_from([0.0, 1.0]),
        st.sampled_from([0.0, 0.5, 5.0]),
    )
    def test_gradient_matches_fd(self, seed, a_x, a_y, a_z):
        rng = np.random.default_rng(seed)
        m, n, k = 12, 4, 3
        X = rng.normal(size=(m, n))
        y = (rng.random(m) > 0.5).astype(float)
        s = np.zeros(m)
        s[: m // 2] = 1.0
        if np.unique(y).size < 2:
            y[0] = 1.0 - y[0]
        obj = LFRObjective(X, y, s, a_x=a_x, a_y=a_y, a_z=a_z, n_prototypes=k)
        theta = rng.uniform(0.15, 0.85, size=obj.n_params)
        loss, grad = obj.loss_and_grad(theta)
        assert loss == pytest.approx(obj.loss(theta), rel=1e-10)
        numeric = approx_fprime(theta, obj.loss, 1e-6)
        # L_z has |.| kinks; skip cases landing on one.
        V, alpha, w = obj.unpack(theta)
        from repro.utils.mathkit import softmax

        diff = X[:, None, :] - V[None, :, :]
        U = softmax(-((diff * diff) @ alpha), axis=1)
        gap = U[s == 1].mean(axis=0) - U[s == 0].mean(axis=0)
        if a_z > 0 and np.any(np.abs(gap) < 1e-4):
            return
        assert _relative_error(grad, numeric) < 5e-3
