"""Property tests for the evaluation metrics."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.classification import accuracy, roc_auc
from repro.metrics.group import protected_share_at_k, statistical_parity
from repro.metrics.individual import consistency
from repro.metrics.ranking import average_precision_at_k, kendall_tau

finite = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


@st.composite
def labelled_scores(draw):
    n = draw(st.integers(4, 40))
    y = draw(hnp.arrays(np.float64, n, elements=st.sampled_from([0.0, 1.0])))
    assume(0 < y.sum() < n)
    # Scores rounded to a coarse grid so affine transforms cannot merge
    # distinct values through float rounding.
    scores = np.round(
        draw(hnp.arrays(np.float64, n, elements=finite)), 3
    )
    return y, scores


@st.composite
def binary_pairs(draw):
    n = draw(st.integers(1, 30))
    make = lambda: draw(
        hnp.arrays(np.float64, n, elements=st.sampled_from([0.0, 1.0]))
    )
    return make(), make()


@st.composite
def score_pairs(draw):
    n = draw(st.integers(2, 25))
    make = lambda: draw(hnp.arrays(np.float64, n, elements=finite))
    return make(), make()


class TestAucProperties:
    @settings(max_examples=60, deadline=None)
    @given(labelled_scores())
    def test_bounded(self, case):
        y, scores = case
        assert 0.0 <= roc_auc(y, scores) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(labelled_scores())
    def test_negation_flips_auc(self, case):
        y, scores = case
        assert roc_auc(y, scores) + roc_auc(y, -scores) == 1.0 or np.isclose(
            roc_auc(y, scores) + roc_auc(y, -scores), 1.0
        )

    @settings(max_examples=40, deadline=None)
    @given(
        labelled_scores(),
        st.sampled_from([0.5, 1.0, 2.0, 4.0]),
        st.sampled_from([-5.0, 0.0, 3.0]),
    )
    def test_positive_affine_invariance(self, case, scale, shift):
        y, scores = case
        a = roc_auc(y, scores)
        b = roc_auc(y, scores * scale + shift)
        assert np.isclose(a, b)


class TestAccuracyProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(1, 30), elements=st.sampled_from([0.0, 1.0]))
    )
    def test_self_accuracy_is_one(self, y):
        assert accuracy(y, y) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(1, 30), elements=st.sampled_from([0.0, 1.0]))
    )
    def test_flipped_predictions_score_zero(self, y):
        assert accuracy(y, 1.0 - y) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(binary_pairs())
    def test_complement_pair_sums_to_one(self, pair):
        y, y_hat = pair
        assert accuracy(y, y_hat) + accuracy(y, 1.0 - y_hat) == 1.0


class TestKendallProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite, unique=True, min_size=2, max_size=30))
    def test_self_tau_is_one_without_ties(self, values):
        a = np.asarray(values)
        assert np.isclose(kendall_tau(a, a), 1.0)

    @settings(max_examples=50, deadline=None)
    @given(score_pairs())
    def test_bounded_and_symmetric(self, pair):
        a, b = pair
        t = kendall_tau(a, b)
        assert -1.0 - 1e-9 <= t <= 1.0 + 1e-9
        assert np.isclose(t, kendall_tau(b, a))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite, unique=True, min_size=2, max_size=25))
    def test_antisymmetry_under_negation(self, values):
        a = np.asarray(values)
        b = np.arange(a.size, dtype=float)
        assert np.isclose(kendall_tau(a, b), -kendall_tau(-a, b))


class TestConsistencyProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(12, 30), st.integers(1, 5))
    def test_bounded(self, seed, n, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = rng.random(n)
        c = consistency(X, y, k=k)
        assert 0.0 <= c <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(12, 30))
    def test_constant_outcomes_score_one(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        assert consistency(X, np.full(n, 0.3), k=3) == 1.0


class TestGroupMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(4, 40))
    def test_parity_bounded(self, seed, n):
        rng = np.random.default_rng(seed)
        y_hat = rng.random(n)
        protected = np.zeros(n)
        protected[: n // 2] = 1.0
        assert 0.0 <= statistical_parity(y_hat, protected) <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 20), st.integers(1, 10))
    def test_protected_share_bounded(self, seed, n, k):
        rng = np.random.default_rng(seed)
        protected = (rng.random(n) > 0.5).astype(float)
        ranking = rng.permutation(n)
        assert 0.0 <= protected_share_at_k(ranking, protected, k=k) <= 1.0


class TestApProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 30), st.integers(1, 10))
    def test_bounded_and_permutation_perfect(self, seed, n, k):
        rng = np.random.default_rng(seed)
        true = list(rng.permutation(n))
        pred = list(rng.permutation(n))
        ap = average_precision_at_k(true, pred, k=k)
        assert 0.0 <= ap <= 1.0
        assert average_precision_at_k(true, true, k=k) == 1.0
