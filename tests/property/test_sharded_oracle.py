"""Property tests for the sharded landmark oracle (ISSUE 8).

Two contracts, per the module docstring of :mod:`repro.core.shards`:

* **Parity** — the sharded decomposition is exact algebra, so for ANY
  contiguous shard plan (one-row shards, empty shards, empty tails
  included) the loss and gradient match the single-process landmark
  objective at rtol 1e-10.
* **Determinism** — at a fixed shard plan the result is a pure
  function of (plan, theta): bitwise identical whether the shards run
  in-process or on 2 or 4 worker processes, including through a whole
  L-BFGS fit.

Example budgets come from the Hypothesis profile in ``tests/conftest.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.core.shards import ShardedLandmarkOracle, plan_shards


def _landmark_objective(X, *, k=3, p=2.0, fast=True, seed=0, n_landmarks=8):
    return IFairObjective(
        X,
        [X.shape[1] - 1],
        n_prototypes=k,
        p=p,
        pair_mode="landmark",
        n_landmarks=n_landmarks,
        fast_kernels=fast,
        random_state=seed,
    )


def _case(seed, m=24, n=5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, n))
    X[:, n - 1] = (rng.random(m) > 0.5).astype(float)
    return X


@st.composite
def shard_plans(draw):
    """(n_rows, plan): arbitrary contiguous tilings of [0, n_rows).

    Duplicate cut points produce empty shards; cuts at 0 or n_rows
    produce empty head/tail shards; adjacent cuts produce 1-row shards.
    """
    m = draw(st.integers(6, 32))
    cuts = sorted(draw(st.lists(st.integers(0, m), max_size=6)))
    bounds = [0] + cuts + [m]
    plan = tuple(
        (bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)
    )
    return m, plan


class TestShardParity:
    @given(shard_plans(), st.integers(0, 2**31 - 1))
    def test_any_plan_matches_single_process(self, case, seed):
        m, plan = case
        X = _case(seed, m=m)
        reference = _landmark_objective(X, seed=seed)
        theta = np.random.default_rng(seed).uniform(
            0.1, 0.9, size=reference.n_params
        )
        loss_ref, grad_ref = reference.loss_and_grad(theta)

        oracle = ShardedLandmarkOracle(reference, plan=plan)
        loss, grad = oracle.loss_and_grad(theta)

        assert loss == pytest.approx(loss_ref, rel=1e-10)
        np.testing.assert_allclose(
            grad, grad_ref, rtol=1e-10, atol=1e-10 * np.abs(grad_ref).max()
        )

    @given(st.integers(0, 2**31 - 1), st.integers(1, 12))
    def test_shard_count_sweep_matches_single_process(self, seed, n_shards):
        """plan_shards at any count — including counts above M."""
        X = _case(seed, m=10)
        reference = _landmark_objective(X, seed=seed)
        theta = np.random.default_rng(seed + 1).uniform(
            0.1, 0.9, size=reference.n_params
        )
        loss_ref, grad_ref = reference.loss_and_grad(theta)
        loss, grad = ShardedLandmarkOracle(
            reference, n_shards=n_shards
        ).loss_and_grad(theta)
        assert loss == pytest.approx(loss_ref, rel=1e-10)
        np.testing.assert_allclose(
            grad, grad_ref, rtol=1e-10, atol=1e-10 * np.abs(grad_ref).max()
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10)
    def test_generic_p_blocked_kernels(self, seed):
        """The p != 2 path shards through the blocked Minkowski kernels."""
        X = _case(seed, m=18)
        reference = _landmark_objective(X, p=3.0, fast=False, seed=seed)
        theta = np.random.default_rng(seed).uniform(
            0.1, 0.9, size=reference.n_params
        )
        loss_ref, grad_ref = reference.loss_and_grad(theta)
        loss, grad = ShardedLandmarkOracle(
            reference, n_shards=4
        ).loss_and_grad(theta)
        assert loss == pytest.approx(loss_ref, rel=1e-10)
        np.testing.assert_allclose(
            grad, grad_ref, rtol=1e-10, atol=1e-10 * np.abs(grad_ref).max()
        )


class TestFixedPlanDeterminism:
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_bitwise_across_worker_counts(self, n_jobs):
        """Same fixed plan, different worker counts: every float equal."""
        X = _case(7, m=60, n=6)
        reference = _landmark_objective(X, seed=7, n_landmarks=12)
        theta = np.random.default_rng(8).uniform(
            0.1, 0.9, size=reference.n_params
        )
        serial = ShardedLandmarkOracle(reference, n_shards=4, n_jobs=1)
        loss_1, grad_1 = serial.loss_and_grad(theta)
        with ShardedLandmarkOracle(
            reference, n_shards=4, n_jobs=n_jobs
        ) as oracle:
            loss_j, grad_j = oracle.loss_and_grad(theta)
        assert loss_1 == loss_j
        np.testing.assert_array_equal(grad_1, grad_j)

    def test_full_fit_theta_bitwise_across_oracle_jobs(self):
        """End-to-end: a sharded fit lands on the identical theta."""
        X = _case(11, m=80, n=6)

        def fit(oracle_jobs):
            return IFair(
                n_prototypes=3,
                pair_mode="landmark",
                n_landmarks=12,
                oracle_shards=4,
                oracle_jobs=oracle_jobs,
                n_restarts=1,
                max_iter=8,
                random_state=0,
            ).fit(X, [5])

        serial = fit(None)
        parallel = fit(2)
        np.testing.assert_array_equal(serial.theta_, parallel.theta_)
        assert serial.loss_ == parallel.loss_

    def test_plan_is_independent_of_n_jobs(self):
        X = _case(3, m=50)
        reference = _landmark_objective(X, seed=3)
        a = ShardedLandmarkOracle(reference, n_shards=6, n_jobs=1)
        b = ShardedLandmarkOracle(reference, n_shards=6, n_jobs=4)
        assert a.plan == b.plan == plan_shards(50, 6)
