"""Property tests for the successive-halving search strategy.

The structural guarantee halving rests on: when candidate scores do
not depend on the fitting budget (every rung sees the true scores),
the search must select exactly the candidate exhaustive search selects
— under every criterion, for any score landscape, any grid size, and
any halving schedule.  Budget-*dependent* scores can break agreement
in general (that trade-off is validated empirically on seeded configs
by the integration suite); budget-independent scores may not.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuning import (
    GridSearch,
    HalvingConfig,
    TuningCriterion,
)

scores_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 1.0, allow_nan=False, width=32),
        st.floats(0.0, 1.0, allow_nan=False, width=32),
    ),
    min_size=4,
    max_size=24,
)

halving_strategy = st.builds(
    HalvingConfig,
    n_rungs=st.integers(2, 4),
    promote_fraction=st.floats(0.1, 1.0, exclude_min=True),
    min_promote=st.integers(1, 3),
    warm_start=st.booleans(),
)


def _searches(scores, halving):
    grid = [
        {"x": i, "max_iter": 16, "n_restarts": 2} for i in range(len(scores))
    ]

    def build(params):
        return params["x"]  # scores ignore the budget keys entirely

    def evaluate(index):
        return scores[index]

    exhaustive = GridSearch(build, evaluate, grid, keep_artifacts=False).run()
    halved = GridSearch(
        build,
        evaluate,
        grid,
        strategy="halving",
        halving=halving,
        keep_artifacts=False,
    ).run()
    return exhaustive, halved


class TestBudgetIndependentAgreement:
    @given(scores=scores_strategy, halving=halving_strategy)
    def test_halving_selects_the_exhaustive_winner(self, scores, halving):
        exhaustive, halved = _searches(scores, halving)
        for criterion in TuningCriterion:
            assert (
                halved.best(criterion).order == exhaustive.best(criterion).order
            ), criterion

    @given(scores=scores_strategy, halving=halving_strategy)
    def test_final_candidates_carry_true_scores(self, scores, halving):
        _, halved = _searches(scores, halving)
        for candidate in halved.candidates:
            assert (candidate.utility, candidate.fairness) == pytest.approx(
                scores[candidate.order]
            )

    @given(scores=scores_strategy, halving=halving_strategy)
    def test_survivor_sets_shrink_monotonically(self, scores, halving):
        _, halved = _searches(scores, halving)
        if halved.strategy == "exhaustive":  # tiny-grid fallback
            return
        sizes = [len(h["candidates"]) for h in halved.history]
        assert sizes == sorted(sizes, reverse=True)
        for entry in halved.history[:-1]:
            assert set(entry["promoted"]) <= set(entry["candidates"])
        assert halved.n_fits == sum(sizes)


class TestTieBreakTotalOrder:
    @given(scores=scores_strategy)
    def test_best_is_the_lexicographic_maximum(self, scores):
        exhaustive, _ = _searches(scores, HalvingConfig())
        for criterion in TuningCriterion:
            best = exhaustive.best(criterion)
            key = lambda c: (c.score(criterion), c.utility, -c.order)
            expected = max(exhaustive.candidates, key=key)
            assert best.order == expected.order

    @given(scores=scores_strategy, seed=st.integers(0, 2**16))
    def test_selection_invariant_to_result_list_permutation(self, scores, seed):
        from repro.core.tuning import GridSearchResult

        exhaustive, _ = _searches(scores, HalvingConfig())
        permuted = list(exhaustive.candidates)
        np.random.default_rng(seed).shuffle(permuted)
        shuffled = GridSearchResult(candidates=permuted)
        for criterion in TuningCriterion:
            assert (
                shuffled.best(criterion).order
                == exhaustive.best(criterion).order
            )
