"""Property tests for Pareto-front computation."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.pareto import is_dominated, pareto_front

finite = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
point_sets = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 25), st.integers(2, 3)),
    elements=finite,
)


class TestParetoProperties:
    @settings(max_examples=60, deadline=None)
    @given(point_sets)
    def test_front_nonempty(self, pts):
        assert len(pareto_front(pts)) >= 1

    @settings(max_examples=60, deadline=None)
    @given(point_sets)
    def test_front_members_not_dominated(self, pts):
        front = pareto_front(pts)
        for i in front:
            others = np.delete(pts, i, axis=0)
            if others.shape[0]:
                assert not is_dominated(pts[i], others)

    @settings(max_examples=60, deadline=None)
    @given(point_sets)
    def test_non_members_dominated_by_front(self, pts):
        front = pareto_front(pts)
        front_pts = pts[front]
        for i in range(pts.shape[0]):
            if i not in front:
                assert is_dominated(pts[i], front_pts)

    @settings(max_examples=60, deadline=None)
    @given(point_sets)
    def test_max_per_axis_on_front(self, pts):
        """Any point achieving the maximum of some axis is either on the
        front or tied with a front point achieving the same maxima."""
        front = set(pareto_front(pts))
        best_first = pts[:, 0].max()
        candidates = np.flatnonzero(pts[:, 0] == best_first)
        # At least one maximiser of axis 0 must be on the front.
        assert any(i in front for i in candidates)

    @settings(max_examples=40, deadline=None)
    @given(point_sets, st.integers(0, 2**31 - 1))
    def test_permutation_invariance(self, pts, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(pts.shape[0])
        front_a = {tuple(pts[i]) for i in pareto_front(pts)}
        front_b = {tuple(pts[perm][i]) for i in pareto_front(pts[perm])}
        assert front_a == front_b
