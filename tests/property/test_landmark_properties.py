"""Property tests for the landmark fairness oracle.

Three families, per the oracle's contract:

* **Convergence** — the scaled landmark loss approaches the full-pair
  loss as L grows, hitting an exact match (machine precision) at
  L = M.  Intermediate L are an approximation, so they are held to a
  *monotone tolerance schedule* rather than pointwise monotonicity.
* **Gradients** — the analytic gradient matches central finite
  differences on every parameter block, for p = 2 (GEMM flavour) and
  generic p (blocked flavour).
* **Ordering invariance** — anchors are stored sorted, so any
  permutation of the same anchor set yields bitwise-identical results.

Example budgets come from the Hypothesis profile in ``tests/conftest.py``.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.objective import IFairObjective


def _objectives(X, *, p=2.0, fast=True, seed=0, landmarks=None, n_landmarks=None):
    return IFairObjective(
        X,
        [X.shape[1] - 1],
        n_prototypes=3,
        p=p,
        pair_mode="landmark",
        n_landmarks=n_landmarks,
        landmarks=landmarks,
        fast_kernels=fast,
        random_state=seed,
    )


class TestConvergenceToFullPair:
    @given(st.integers(0, 2**31 - 1))
    def test_monotone_tolerance_schedule(self, seed):
        """Relative error vs the full-pair fairness loss must fit under
        a schedule that tightens as L -> M: generous while anchors are
        scarce, machine-exact once every record is an anchor."""
        rng = np.random.default_rng(seed)
        m = 24
        X = rng.normal(size=(m, 5))
        full = IFairObjective(X, [4], n_prototypes=3)
        theta = rng.uniform(0.1, 0.9, size=full.n_params)
        _, fair_full = full.loss_components(theta)

        schedule = [(4, 2.0), (12, 1.0), (m, 1e-10)]
        for n_land, tol in schedule:
            lm = _objectives(X, seed=seed, n_landmarks=n_land)
            _, fair_lm = lm.loss_components(theta)
            rel_err = abs(fair_lm - fair_full) / max(fair_full, 1e-300)
            assert rel_err <= tol, (
                f"L={n_land}: rel err {rel_err:.3e} exceeds schedule {tol:.0e}"
            )

    @given(st.integers(0, 2**31 - 1), st.sampled_from([1.0, 2.0, 3.0]))
    def test_exact_at_full_rank_any_p(self, seed, p):
        """Acceptance criterion, property form: at L = M the landmark
        loss (and gradient) equal the full-pair reference for any p."""
        rng = np.random.default_rng(seed)
        m = 14
        X = rng.normal(size=(m, 4))
        full = IFairObjective(X, [3], n_prototypes=3, p=p)
        lm = _objectives(X, p=p, seed=seed, n_landmarks=m)
        theta = rng.uniform(0.1, 0.9, size=full.n_params)
        loss_full, grad_full = full.loss_and_grad(theta)
        loss_lm, grad_lm = lm.loss_and_grad(theta)
        assert loss_lm == pytest.approx(loss_full, rel=1e-8)
        np.testing.assert_allclose(grad_lm, grad_full, rtol=1e-8, atol=1e-8)


class TestGradientFiniteDifferences:
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([(2.0, True), (2.0, False), (1.0, True), (3.0, True)]),
    )
    def test_grad_matches_central_differences(self, seed, p_fast):
        p, fast = p_fast
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(15, 4))
        objective = _objectives(X, p=p, fast=fast, seed=seed, n_landmarks=6)
        theta = rng.uniform(0.2, 0.8, size=objective.n_params)
        _, grad = objective.loss_and_grad(theta)

        eps = 1e-6
        # Probe a spread of coordinates across the V and alpha blocks.
        coords = list(range(0, objective.n_params, max(1, objective.n_params // 8)))
        coords.append(objective.n_params - 1)  # always one alpha entry
        scale = max(1.0, float(np.max(np.abs(grad))))
        for i in coords:
            up = theta.copy()
            up[i] += eps
            down = theta.copy()
            down[i] -= eps
            numeric = (objective.loss(up) - objective.loss(down)) / (2.0 * eps)
            assert abs(numeric - grad[i]) / scale < 1e-5


class TestOrderingInvariance:
    @given(st.integers(0, 2**31 - 1))
    def test_anchor_permutation_is_bitwise_identical(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(16, 4))
        anchors = rng.choice(16, size=6, replace=False)
        a = _objectives(X, landmarks=anchors)
        b = _objectives(X, landmarks=rng.permutation(anchors))
        theta = rng.uniform(0.1, 0.9, size=a.n_params)

        loss_a, grad_a = a.loss_and_grad(theta)
        loss_b, grad_b = b.loss_and_grad(theta)
        assert loss_a == loss_b
        assert np.array_equal(grad_a, grad_b)
        np.testing.assert_array_equal(a.landmark_indices, b.landmark_indices)

    def test_selection_result_feeds_back_identically(self, make_data):
        """Selecting landmarks and passing them back explicitly (in any
        order) reproduces the seeded objective bitwise."""
        X = make_data(20, 5, seed=3)
        seeded = _objectives(X, seed=9, n_landmarks=7)
        explicit = _objectives(X, landmarks=seeded.landmark_indices[::-1].copy())
        theta = np.random.default_rng(1).uniform(0.1, 0.9, size=seeded.n_params)
        loss_a, grad_a = seeded.loss_and_grad(theta)
        loss_b, grad_b = explicit.loss_and_grad(theta)
        assert loss_a == loss_b
        assert np.array_equal(grad_a, grad_b)
