"""Property tests for the weighted Minkowski distance family."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import WeightedMinkowski

finite = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)
vectors = hnp.arrays(np.float64, st.integers(2, 6), elements=finite)


@st.composite
def vector_pairs(draw):
    n = draw(st.integers(2, 6))
    make = lambda: draw(
        hnp.arrays(np.float64, n, elements=finite)
    )
    return make(), make(), make()


class TestMetricAxioms:
    @settings(max_examples=60, deadline=None)
    @given(vector_pairs(), st.sampled_from([1.0, 2.0, 3.0]))
    def test_nonnegativity(self, vecs, p):
        x, y, _ = vecs
        assert WeightedMinkowski(p=p).between(x, y) >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(vector_pairs(), st.sampled_from([1.0, 2.0, 3.0]), st.booleans())
    def test_symmetry(self, vecs, p, root):
        x, y, _ = vecs
        d = WeightedMinkowski(p=p, root=root)
        assert d.between(x, y) == d.between(y, x)

    @settings(max_examples=60, deadline=None)
    @given(vectors, st.sampled_from([1.0, 2.0, 3.0]))
    def test_identity_of_indiscernibles(self, x, p):
        assert WeightedMinkowski(p=p).between(x, x) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(vector_pairs(), st.sampled_from([1.0, 2.0, 3.0]))
    def test_triangle_inequality_rooted(self, vecs, p):
        x, y, z = vecs
        d = WeightedMinkowski(p=p, root=True)
        assert d.between(x, z) <= d.between(x, y) + d.between(y, z) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(vector_pairs())
    def test_weights_are_monotone(self, vecs):
        """Increasing any weight cannot decrease the distance."""
        x, y, _ = vecs
        n = x.size
        d = WeightedMinkowski(p=2.0)
        base_alpha = np.ones(n)
        bumped = base_alpha.copy()
        bumped[0] += 1.0
        assert d.between(x, y, bumped) >= d.between(x, y, base_alpha) - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(vector_pairs())
    def test_pairwise_consistent_with_between(self, vecs):
        x, y, _ = vecs
        d = WeightedMinkowski(p=2.0)
        D = d.pairwise(np.vstack([x]), np.vstack([y]))
        assert abs(D[0, 0] - d.between(x, y)) <= 1e-9 * max(1.0, abs(D[0, 0]))
