"""Shared fixtures for the test suite.

Everything is deliberately tiny: the goal is correctness of code paths
and invariants, not statistical power.  Benchmark-scale runs live in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.compas import generate_compas
from repro.data.credit import generate_credit
from repro.data.xing import generate_xing
from repro.pipeline.config import ExperimentConfig


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix(rng):
    """A well-conditioned 20 x 6 data matrix."""
    return rng.normal(size=(20, 6))


@pytest.fixture
def tiny_labels(rng):
    return (rng.random(20) > 0.5).astype(np.float64)


@pytest.fixture(scope="session")
def tiny_compas():
    """A COMPAS dataset small enough for per-test model fits."""
    return generate_compas(150, charge_levels=8, random_state=3)


@pytest.fixture(scope="session")
def tiny_credit():
    return generate_credit(150, random_state=3)


@pytest.fixture(scope="session")
def tiny_xing():
    return generate_xing(n_queries=4, candidates_per_query=15, random_state=3)


@pytest.fixture
def fast_config():
    """A config that keeps any pipeline test under a few seconds."""
    return ExperimentConfig(
        mixture_grid=(0.1, 1.0),
        prototype_grid=(4,),
        n_restarts=1,
        max_iter=25,
        max_pairs=800,
        classification_records=150,
        ranking_queries=4,
        query_size=15,
        compas_charge_levels=8,
        random_state=3,
    )
