"""Shared fixtures for the test suite.

Everything is deliberately tiny: the goal is correctness of code paths
and invariants, not statistical power.  Benchmark-scale runs live in
``benchmarks/``.

Besides the dataset fixtures, this module provides the seeded
*factory* fixtures (``make_data``, ``make_objective``, ``make_theta``,
``make_kernel_case``) that replace per-file copy-pasted array setup,
and registers the Hypothesis profiles: ``default`` for interactive and
CI runs, ``nightly`` (selected via ``HYPOTHESIS_PROFILE=nightly``) for
the scheduled high-budget property sweep.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.data.compas import generate_compas
from repro.data.credit import generate_credit
from repro.data.xing import generate_xing
from repro.pipeline.config import ExperimentConfig

settings.register_profile("default", max_examples=40, deadline=None)
settings.register_profile("nightly", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

_NIGHTLY = os.environ.get("HYPOTHESIS_PROFILE", "default") == "nightly"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "nightly: slow tests (executor stress, high-volume sweeps) run "
        "only under the nightly profile (HYPOTHESIS_PROFILE=nightly)",
    )


def pytest_collection_modifyitems(config, items):
    if _NIGHTLY:
        return
    skip = pytest.mark.skip(reason="nightly-profile test (HYPOTHESIS_PROFILE=nightly)")
    for item in items:
        if "nightly" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def make_data():
    """Factory for seeded record matrices.

    ``protected_col`` (when given) is overwritten with a seeded binary
    column, the layout most model tests want.
    """

    def _make(m=20, n=6, *, protected_col=None, seed=12345):
        data_rng = np.random.default_rng(seed)
        X = data_rng.normal(size=(m, n))
        if protected_col is not None:
            X[:, protected_col] = (data_rng.random(m) > 0.5).astype(float)
        return X

    return _make


@pytest.fixture
def make_objective(make_data):
    """Factory for seeded :class:`IFairObjective` instances.

    Pass ``X`` to reuse a matrix, or let the factory draw one from
    ``seed``.  ``protected=None`` builds an unprotected objective.
    """

    def _make(m=12, n=5, k=3, *, protected=(4,), seed=12345, X=None, **kwargs):
        from repro.core.objective import IFairObjective

        if X is None:
            X = make_data(m, n, seed=seed)
        return IFairObjective(
            X,
            None if protected is None else list(protected),
            n_prototypes=k,
            **kwargs,
        )

    return _make


@pytest.fixture
def make_theta():
    """Factory for seeded packed parameter vectors of an objective."""

    def _make(objective, *, seed=777, low=0.1, high=0.9):
        theta_rng = np.random.default_rng(seed)
        return theta_rng.uniform(low, high, size=objective.n_params)

    return _make


@pytest.fixture
def make_kernel_case():
    """Factory for seeded (X, V, alpha) kernel-layer triples."""

    def _make(m=25, k=4, n=6, *, seed=12345):
        case_rng = np.random.default_rng(seed)
        X = case_rng.normal(size=(m, n))
        V = case_rng.normal(size=(k, n))
        alpha = case_rng.uniform(0.1, 1.0, size=n)
        return X, V, alpha

    return _make


@pytest.fixture
def small_matrix(rng):
    """A well-conditioned 20 x 6 data matrix."""
    return rng.normal(size=(20, 6))


@pytest.fixture
def tiny_labels(rng):
    return (rng.random(20) > 0.5).astype(np.float64)


@pytest.fixture(scope="session")
def tiny_compas():
    """A COMPAS dataset small enough for per-test model fits."""
    return generate_compas(150, charge_levels=8, random_state=3)


@pytest.fixture(scope="session")
def tiny_credit():
    return generate_credit(150, random_state=3)


@pytest.fixture(scope="session")
def tiny_xing():
    return generate_xing(n_queries=4, candidates_per_query=15, random_state=3)


@pytest.fixture
def fast_config():
    """A config that keeps any pipeline test under a few seconds."""
    return ExperimentConfig(
        mixture_grid=(0.1, 1.0),
        prototype_grid=(4,),
        n_restarts=1,
        max_iter=25,
        max_pairs=800,
        classification_records=150,
        ranking_queries=4,
        query_size=15,
        compas_charge_levels=8,
        random_state=3,
    )
