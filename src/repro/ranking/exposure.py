"""Position-bias and exposure measures for rankings.

The paper's Table I argument rests on position bias [Joachims &
Radlinski 2007]: searchers attend mostly to early ranks, so rank gaps
between similar candidates translate into real outcome gaps.  Related
work (Biega et al. 2018) formalises this as *exposure*.  This module
provides the standard measures:

* :func:`position_exposure` — the logarithmic discount 1/log2(rank+1);
* :func:`group_exposure` — average exposure received by a group;
* :func:`exposure_ratio` — protected-to-unprotected exposure ratio
  (1 = groups receive attention proportional to their size);
* :func:`individual_exposure_gap` — mean absolute exposure difference
  between the most similar candidate pairs, the exposure-weighted
  version of Table I's rank-gap statistic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.mathkit import pairwise_sq_euclidean
from repro.utils.validation import check_binary_labels, check_matrix


def position_exposure(n_positions: int) -> np.ndarray:
    """Exposure of each rank 1..n: ``1 / log2(rank + 1)``."""
    if n_positions < 1:
        raise ValidationError("n_positions must be positive")
    ranks = np.arange(1, n_positions + 1)
    return 1.0 / np.log2(ranks + 1.0)


def _exposure_per_item(ranking: Sequence[int], n_items: int) -> np.ndarray:
    order = np.asarray(list(ranking), dtype=np.intp)
    if order.size == 0:
        raise ValidationError("ranking must not be empty")
    if order.min() < 0 or order.max() >= n_items:
        raise ValidationError("ranking contains out-of-range item ids")
    if np.unique(order).size != order.size:
        raise ValidationError("ranking contains duplicate items")
    exposure = np.zeros(n_items)
    exposure[order] = position_exposure(order.size)
    return exposure


def group_exposure(ranking: Sequence[int], protected, group: int = 1) -> float:
    """Mean exposure received by members of ``group``."""
    protected = check_binary_labels(protected, "protected")
    exposure = _exposure_per_item(ranking, protected.size)
    mask = protected == group
    if not np.any(mask):
        raise ValidationError(f"no items in group {group}")
    return float(exposure[mask].mean())


def exposure_ratio(ranking: Sequence[int], protected) -> float:
    """Protected / unprotected mean-exposure ratio (1 = demographic parity
    of attention)."""
    num = group_exposure(ranking, protected, group=1)
    den = group_exposure(ranking, protected, group=0)
    if den == 0.0:
        raise ValidationError("unprotected group received zero exposure")
    return float(num / den)


def individual_exposure_gap(
    ranking: Sequence[int],
    qualifications,
    *,
    top_fraction: float = 0.1,
) -> float:
    """Mean |exposure_i - exposure_j| over the most similar item pairs.

    ``qualifications`` is the matrix in which similarity is judged
    (e.g. non-protected attributes); the ``top_fraction`` closest pairs
    are averaged.  Zero means similar candidates receive identical
    attention — the individual-fairness ideal Table I violates.
    """
    Q = check_matrix(qualifications, "qualifications", min_rows=2)
    if not 0.0 < top_fraction <= 1.0:
        raise ValidationError("top_fraction must lie in (0, 1]")
    exposure = _exposure_per_item(ranking, Q.shape[0])
    D = pairwise_sq_euclidean(Q)
    iu = np.triu_indices(Q.shape[0], k=1)
    distances = D[iu]
    n_keep = max(1, int(round(distances.size * top_fraction)))
    closest = np.argsort(distances, kind="mergesort")[:n_keep]
    gaps = np.abs(exposure[iu[0][closest]] - exposure[iu[1][closest]])
    return float(gaps.mean())
