"""Per-query ranking evaluation (the measurement half of Section V-E).

Given ground-truth scores and predicted scores for every record, the
engine ranks each query's candidates by both, then reports the paper's
four ranking measures per query and their means:

* MAP — mean AP@10 against the true top-10;
* KT — Kendall's tau between true and predicted scores;
* yNN — consistency of the (min-max scaled) predicted scores w.r.t.
  nearest neighbours in the non-protected attribute space;
* %protected — share of protected candidates in the predicted top-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.metrics.group import protected_share_at_k
from repro.metrics.individual import consistency_of_scores
from repro.metrics.ranking import average_precision_at_k, kendall_tau
from repro.ranking.query import Query
from repro.utils.validation import check_vector


@dataclass
class QueryEvaluation:
    """Scores of one query."""

    qid: int
    ap_at_k: float
    kendall: float
    consistency: float
    protected_share: float


@dataclass
class RankingEvaluation:
    """Aggregate over all queries (the paper's reported means)."""

    per_query: List[QueryEvaluation] = field(default_factory=list)

    def _mean(self, getter: Callable[[QueryEvaluation], float]) -> float:
        if not self.per_query:
            raise ValidationError("no queries were evaluated")
        return float(np.mean([getter(q) for q in self.per_query]))

    @property
    def map_score(self) -> float:
        return self._mean(lambda q: q.ap_at_k)

    @property
    def kendall(self) -> float:
        return self._mean(lambda q: q.kendall)

    @property
    def consistency(self) -> float:
        return self._mean(lambda q: q.consistency)

    @property
    def protected_share(self) -> float:
        return self._mean(lambda q: q.protected_share)


def evaluate_scores(
    dataset: TabularDataset,
    queries: Sequence[Query],
    predicted_scores,
    *,
    k: int = 10,
    consistency_k: int = 10,
    true_scores=None,
    X_star=None,
) -> RankingEvaluation:
    """Evaluate predicted scores against the dataset's ground truth.

    Parameters
    ----------
    dataset:
        Ranking dataset (supplies true scores, protected flags, X*).
    queries:
        Queries to evaluate (see :func:`repro.ranking.build_queries`).
    predicted_scores:
        One score per dataset record (higher ranks first).
    k:
        Cut-off for AP@k and protected share.
    consistency_k:
        Neighbourhood size of the yNN metric (capped per query at
        query size - 1).
    true_scores:
        Override the ground-truth scores (used by the Table IV weight
        sweep); defaults to ``dataset.y``.
    X_star:
        Override the non-protected record space used for yNN
        neighbours (e.g. the unit-variance scaled features); defaults
        to the dataset's raw non-protected columns.
    """
    predicted = check_vector(predicted_scores, "predicted_scores", length=dataset.n_records)
    truth = dataset.y if true_scores is None else check_vector(
        true_scores, "true_scores", length=dataset.n_records
    )
    if not queries:
        raise ValidationError("queries must not be empty")
    if X_star is None:
        X_star = dataset.X_nonprotected
    else:
        X_star = np.asarray(X_star, dtype=np.float64)
        if X_star.shape[0] != dataset.n_records:
            raise ValidationError("X_star must have one row per dataset record")
    evaluation = RankingEvaluation()
    for query in queries:
        idx = query.indices
        true_order = idx[np.argsort(-truth[idx], kind="mergesort")]
        pred_order = idx[np.argsort(-predicted[idx], kind="mergesort")]
        local_k = min(k, idx.size)
        ap = average_precision_at_k(true_order.tolist(), pred_order.tolist(), k=local_k)
        kt = kendall_tau(truth[idx], predicted[idx])
        c_k = min(consistency_k, idx.size - 1)
        ynn = consistency_of_scores(X_star[idx], predicted[idx], k=c_k)
        share = protected_share_at_k(
            np.searchsorted(idx, pred_order), dataset.protected[idx], k=local_k
        )
        evaluation.per_query.append(
            QueryEvaluation(
                qid=query.qid,
                ap_at_k=ap,
                kendall=kt,
                consistency=ynn,
                protected_share=share,
            )
        )
    return evaluation
