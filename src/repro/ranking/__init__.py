"""Learning-to-rank substrate: query construction and per-query evaluation."""

from repro.ranking.query import Query, build_queries
from repro.ranking.engine import QueryEvaluation, RankingEvaluation, evaluate_scores
from repro.ranking.exposure import (
    exposure_ratio,
    group_exposure,
    individual_exposure_gap,
    position_exposure,
)

__all__ = [
    "Query",
    "build_queries",
    "QueryEvaluation",
    "RankingEvaluation",
    "evaluate_scores",
    "exposure_ratio",
    "group_exposure",
    "individual_exposure_gap",
    "position_exposure",
]
