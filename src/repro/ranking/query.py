"""Query construction for the learning-to-rank experiments.

A query is a subset of dataset records competing for the same ranked
list (a job search on Xing, a city/neighbourhood/home-type filter on
Airbnb).  The paper filters Airbnb queries to those with at least 10
listings, leaving 43; :func:`build_queries` implements the same
size filter and an optional cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class Query:
    """One query: an id and the dataset row indices of its candidates."""

    qid: int
    indices: np.ndarray

    @property
    def size(self) -> int:
        return self.indices.size


def build_queries(
    dataset: TabularDataset,
    *,
    min_size: int = 10,
    max_queries: Optional[int] = None,
) -> List[Query]:
    """Group dataset rows into queries via ``dataset.query_ids``.

    Parameters
    ----------
    dataset:
        A ranking dataset carrying per-record query ids.
    min_size:
        Drop queries with fewer candidates (paper: 10 for Airbnb).
    max_queries:
        Keep only the first N queries (by ascending id) — used to match
        the paper's query counts deterministically.
    """
    if dataset.query_ids is None:
        raise ValidationError(f"dataset {dataset.name!r} has no query ids")
    if min_size < 2:
        raise ValidationError("min_size must be at least 2")
    queries: List[Query] = []
    for qid in np.unique(dataset.query_ids):
        idx = np.flatnonzero(dataset.query_ids == qid)
        if idx.size >= min_size:
            queries.append(Query(qid=int(qid), indices=idx))
    if max_queries is not None:
        if max_queries < 1:
            raise ValidationError("max_queries must be positive")
        queries = queries[:max_queries]
    if not queries:
        raise ValidationError(
            f"no queries with at least {min_size} candidates in {dataset.name!r}"
        )
    return queries
