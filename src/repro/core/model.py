"""The iFair estimator: learn prototypes + weights, transform records.

Implements Section III of the paper: the probabilistic-clustering
representation (Definitions 2, 3, 8), trained by L-BFGS on the combined
objective (Section III-C), with the two initialisation schemes compared
in the experiments:

* ``init='random'`` — iFair-a: every parameter uniform in (0, 1);
* ``init='protected_zero'`` — iFair-b: protected attribute weights
  start near zero, reflecting that protected attributes should not
  drive similarity.

Following Section V-B ("we report the results from the best of 3
runs"), ``n_restarts`` controls multi-start optimisation and the fit
keeps the restart with the lowest training loss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.core.executor import (
    POOL_MODES,
    ParallelExecutor,
    effective_n_jobs,
    get_config_token,
    get_shared,
    get_shared_handles,
    get_state,
)
from repro.core.objective import PAIR_MODES, IFairObjective
from repro.core.shards import SHARD_BATCH_MODES, ShardedLandmarkOracle
from repro.exceptions import NotFittedError, ValidationError
from repro.learners.base import ParamsMixin
from repro.telemetry.metrics import get_registry
from repro.telemetry.tracing import get_tracer
from repro.utils.landmarks import LANDMARK_METHODS
from repro.utils.mathkit import softmax, weighted_minkowski_to_prototypes
from repro.utils.rng import RandomStateLike, check_random_state, spawn_seeds
from repro.utils.validation import check_matrix, check_protected_indices

RESTART_BACKENDS = ("process", "thread")


@dataclass
class RestartRecord:
    """Outcome of a single optimisation restart (for diagnostics)."""

    seed: int
    loss: float
    n_iterations: int
    converged: bool


# One (model, objective, bounds) triple per worker process: workers
# serve every restart of one fit, so the deterministic objective —
# including its landmark selection and pair precomputations — is
# rebuilt once from the broadcast matrix, not once per task.
_WORKER_FIT_CACHE: dict = {}

# Oracle memo across *consecutive fits* on a session pool: the
# objective (and bounds) are a pure function of (training matrix,
# oracle parameters), so a warm worker refitting the same data — a
# serving refit after tuning, repeated fits in a benchmark — reuses
# the precomputed oracle instead of re-sampling pairs and re-selecting
# landmarks.  Keyed by the broadcast segment *name*, which the arena
# mints content-addressed and never reuses, plus every parameter the
# objective depends on; capped to the two most recent oracles.
_WORKER_ORACLE_CACHE: dict = {}
_ORACLE_CACHE_SIZE = 2

#: Constructor parameters the loss/gradient oracle depends on.  The
#: optimisation knobs (n_restarts, max_iter, tol, warm_start_theta,
#: n_jobs, backend, pool, init, protected_alpha_init) deliberately do
#: not enter the key: they shape the search over the oracle, not the
#: oracle itself.
_ORACLE_PARAM_KEYS = (
    "n_prototypes",
    "lambda_util",
    "mu_fair",
    "p",
    "max_pairs",
    "pair_mode",
    "n_landmarks",
    "landmark_method",
    "random_state",
)


def _oracle_cache_key(state: dict, row_range: Optional[tuple] = None) -> Optional[tuple]:
    """Content-stable cache key for the fit oracle, or None.

    Only available when the training matrix arrived as a shared-memory
    broadcast: the segment name then identifies its bytes (names are
    never reused within a process).  The key also carries the **row
    range** the oracle covers — the full matrix for restart tasks
    (derived from the segment's shape), an explicit ``(start, stop)``
    for row-sharded evaluations — so two oracles over overlapping but
    unequal row ranges of the same segment can never serve each other
    stale precomputations.  Unhashable parameter values (arrays)
    disable caching rather than mis-keying it.
    """
    handle = get_shared_handles().get("X")
    if handle is None:
        return None
    params = state["params"]
    values = tuple(params.get(key) for key in _ORACLE_PARAM_KEYS)
    protected = state["protected"]
    if row_range is None:
        row_range = (0, int(handle.shape[0]))
    key = (
        handle.name,
        (int(row_range[0]), int(row_range[1])),
        None if protected is None else tuple(protected),
        values,
    )
    try:
        hash(key)
    except TypeError:  # pragma: no cover - defensive
        return None
    return key


def _restart_task(payload: Tuple[int, int]) -> Tuple["RestartRecord", np.ndarray]:
    """Executor task: run one restart inside a worker process.

    Reads the training matrix via the executor's shared-memory
    broadcast and the estimator parameters via its state channel, then
    reuses the exact serial code path (:meth:`IFair._run_restart`), so
    parallel fits are bitwise-identical to sequential ones.
    """
    index, seed = payload
    state = get_state()
    # Keyed by the executor's process-unique config token, not
    # ``id(state)``: a session pool serves many consecutive fits, and
    # the allocator may hand a dead state dict's id to the next one.
    key = get_config_token()
    cached = _WORKER_FIT_CACHE.get(key)
    if cached is None:
        _WORKER_FIT_CACHE.clear()  # one fit per config; drop stale entries
        model = IFair(**state["params"])
        X = get_shared()["X"]
        model._protected = check_protected_indices(state["protected"], X.shape[1])
        oracle_key = _oracle_cache_key(state)
        oracle = _WORKER_ORACLE_CACHE.get(oracle_key) if oracle_key else None
        if oracle is not None:
            # A warm worker reusing the memoised oracle across fits —
            # the cache-efficiency signal the session-pool design buys.
            get_registry().counter("fit_oracle_memo_hits_total").inc()
        if oracle is None:
            objective = model._build_objective(X)
            oracle = (objective, model._bounds(objective))
            if oracle_key is not None:
                _WORKER_ORACLE_CACHE[oracle_key] = oracle
                while len(_WORKER_ORACLE_CACHE) > _ORACLE_CACHE_SIZE:
                    _WORKER_ORACLE_CACHE.pop(next(iter(_WORKER_ORACLE_CACHE)))
        cached = (model, *oracle)
        _WORKER_FIT_CACHE[key] = cached
    model, objective, bounds = cached
    return model._run_restart(objective, bounds, seed, index=index)


class IFair(ParamsMixin):
    """Individually fair representation learner.

    Parameters
    ----------
    n_prototypes:
        K, the dimensionality of the probabilistic clustering.
    lambda_util:
        Weight of the reconstruction (utility) loss.
    mu_fair:
        Weight of the pairwise distance-preservation (fairness) loss.
    p:
        Minkowski exponent of the record-prototype distance.
    init:
        ``'random'`` (iFair-a) or ``'protected_zero'`` (iFair-b).
    protected_alpha_init:
        Starting value of protected attribute weights under
        ``'protected_zero'`` (near zero, not exactly zero, to leave
        numerical slack — Section V-B).
    n_restarts:
        Number of random restarts; the best training loss wins.
    max_iter:
        L-BFGS iteration budget per restart.
    tol:
        L-BFGS gradient tolerance.
    max_pairs:
        Optional cap on fairness-loss pairs (subsampled once per fit).
    pair_mode:
        Fairness-oracle mode: ``"auto"`` (default; ``"sampled"`` iff
        ``max_pairs`` is set, else ``"full"``), ``"full"``,
        ``"sampled"``, or ``"landmark"`` — the large-M oracle that
        approximates the full-pair loss through ``n_landmarks``
        anchors in O(M * L * N) per L-BFGS evaluation, for any ``p``,
        with no O(M^2) structure anywhere.
    n_landmarks:
        Anchor count for ``pair_mode="landmark"`` (default
        ``min(M, 128)``; capped at M).
    landmark_method:
        ``"kmeans++"`` (default) or ``"farthest"`` anchor seeding,
        deterministic under ``random_state``.
    n_jobs:
        Number of restarts optimised concurrently.  ``None`` or ``1``
        runs them sequentially; ``-1`` uses one worker per CPU.  The
        selected model is identical to the sequential result for any
        value: the best loss wins, ties broken by seed order.
    backend:
        How parallel restarts run: ``"process"`` (default) forks real
        workers through :class:`repro.core.executor.ParallelExecutor`
        — the training matrix is broadcast zero-copy via shared
        memory and each worker rebuilds the (deterministic) objective
        once — or ``"thread"``, the historical escape hatch for fits
        dominated by GIL-releasing BLAS calls.
    pool:
        ``"per-call"`` (default) spawns a private worker pool for this
        fit; ``"session"`` borrows the persistent broker pool
        (:class:`repro.core.executor.PoolBroker`) and the shm arena
        cache, so repeated fits — serving refits, tuning loops — skip
        the pool spawn, and a matrix already broadcast (e.g. by the
        grid search that chose these hyper-parameters) is reused
        rather than re-published.  The fitted model is bitwise
        identical either way.
    warm_start_theta:
        Optional packed parameter vector ``[V.ravel(), alpha]`` used
        as the first restart's initial point instead of its seeded
        draw (remaining restarts keep their seeds).  This is how
        successive-halving tuning resumes a survivor from its
        previous-rung fit.
    oracle_jobs:
        Workers evaluating **row shards of one oracle call** (the
        large-M axis; requires ``pair_mode="landmark"``).  ``None``/1
        evaluates shards in-process, ``-1`` uses one worker per CPU.
        Mutually exclusive with restart parallelism (``n_jobs``): the
        worker pool serves shards, so restarts run sequentially in the
        parent.  Results are bitwise identical at any value for a
        fixed ``oracle_shards``.
    oracle_shards:
        Number of row-range shards per oracle evaluation (default: the
        resolved ``oracle_jobs`` count).  Fixing it pins the reduction
        tree, making results independent of the worker count.
    batch_mode:
        ``"full"`` (default) evaluates every row per oracle call;
        ``"stochastic"`` draws ``batch_size`` rows per call from
        deterministic spawn-key RNG streams — an unbiased estimate of
        the M/L-scaled landmark loss that reduces exactly to the full
        sharded path at ``batch_size = M``.  Requires
        ``pair_mode="landmark"``.
    batch_size:
        Rows per stochastic oracle call (required for, and only valid
        with, ``batch_mode="stochastic"``).
    random_state:
        Master seed: spawns per-restart seeds, the pair subsample, and
        the stochastic batch streams.

    Attributes
    ----------
    prototypes_:
        Learned V, shape (K, N).
    alpha_:
        Learned attribute weights, shape (N,).
    loss_:
        Best training loss.
    restarts_:
        Per-restart diagnostics.
    landmarks_:
        Sorted anchor row indices of the training matrix when fitted
        with ``pair_mode="landmark"``, else ``None``.
    """

    def __init__(
        self,
        n_prototypes: int = 10,
        lambda_util: float = 1.0,
        mu_fair: float = 1.0,
        *,
        p: float = 2.0,
        init: str = "protected_zero",
        protected_alpha_init: float = 1e-3,
        n_restarts: int = 3,
        max_iter: int = 200,
        tol: float = 1e-6,
        max_pairs: Optional[int] = None,
        pair_mode: str = "auto",
        n_landmarks: Optional[int] = None,
        landmark_method: str = "kmeans++",
        n_jobs: Optional[int] = None,
        backend: str = "process",
        pool: str = "per-call",
        warm_start_theta: Optional[np.ndarray] = None,
        oracle_jobs: Optional[int] = None,
        oracle_shards: Optional[int] = None,
        batch_mode: str = "full",
        batch_size: Optional[int] = None,
        random_state: RandomStateLike = 0,
    ):
        if init not in ("random", "protected_zero"):
            raise ValidationError("init must be 'random' or 'protected_zero'")
        if n_restarts < 1:
            raise ValidationError("n_restarts must be at least 1")
        if not 0 < protected_alpha_init < 1:
            raise ValidationError("protected_alpha_init must lie in (0, 1)")
        if pair_mode not in PAIR_MODES:
            raise ValidationError(f"pair_mode must be one of {PAIR_MODES}")
        if landmark_method not in LANDMARK_METHODS:
            raise ValidationError(
                f"landmark_method must be one of {LANDMARK_METHODS}"
            )
        if n_landmarks is not None and n_landmarks < 1:
            raise ValidationError("n_landmarks must be at least 1")
        if n_jobs is not None and (n_jobs == 0 or n_jobs < -1):
            raise ValidationError("n_jobs must be None, -1, or a positive integer")
        if backend not in RESTART_BACKENDS:
            raise ValidationError(
                f"backend must be one of {RESTART_BACKENDS}, got {backend!r}"
            )
        if pool not in POOL_MODES:
            raise ValidationError(
                f"pool must be one of {POOL_MODES}, got {pool!r}"
            )
        if batch_mode not in SHARD_BATCH_MODES:
            raise ValidationError(
                f"batch_mode must be one of {SHARD_BATCH_MODES}, got {batch_mode!r}"
            )
        if oracle_jobs is not None and (oracle_jobs == 0 or oracle_jobs < -1):
            raise ValidationError(
                "oracle_jobs must be None, -1, or a positive integer"
            )
        if oracle_shards is not None and oracle_shards < 1:
            raise ValidationError("oracle_shards must be at least 1")
        if batch_mode == "stochastic" and batch_size is None:
            raise ValidationError("batch_mode='stochastic' requires batch_size")
        if batch_size is not None:
            if batch_mode != "stochastic":
                raise ValidationError(
                    "batch_size only applies to batch_mode='stochastic'"
                )
            if batch_size < 1:
                raise ValidationError("batch_size must be a positive integer")
        sharded = (
            oracle_jobs is not None
            or oracle_shards is not None
            or batch_mode != "full"
        )
        if sharded and pair_mode != "landmark":
            raise ValidationError(
                "oracle_jobs/oracle_shards/batch_mode require pair_mode='landmark'"
            )
        if sharded and n_jobs is not None and n_jobs != 1:
            raise ValidationError(
                "the sharded oracle owns the worker pool: restart "
                "parallelism (n_jobs) cannot combine with "
                "oracle_jobs/oracle_shards/batch_mode"
            )
        self.n_prototypes = int(n_prototypes)
        self.lambda_util = float(lambda_util)
        self.mu_fair = float(mu_fair)
        self.p = float(p)
        self.init = init
        self.protected_alpha_init = float(protected_alpha_init)
        self.n_restarts = int(n_restarts)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.max_pairs = max_pairs
        self.pair_mode = pair_mode
        self.n_landmarks = n_landmarks
        self.landmark_method = landmark_method
        self.n_jobs = n_jobs
        self.backend = backend
        self.pool = pool
        self.warm_start_theta = (
            None
            if warm_start_theta is None
            else np.asarray(warm_start_theta, dtype=np.float64).ravel()
        )
        self.oracle_jobs = oracle_jobs
        self.oracle_shards = oracle_shards
        self.batch_mode = batch_mode
        self.batch_size = None if batch_size is None else int(batch_size)
        self.random_state = random_state

        self.prototypes_: Optional[np.ndarray] = None
        self.alpha_: Optional[np.ndarray] = None
        self.loss_: float = np.inf
        self.restarts_: List[RestartRecord] = []
        self.landmarks_: Optional[np.ndarray] = None
        self.n_partial_fits_: int = 0
        self._protected: Optional[np.ndarray] = None
        self._window: Optional[deque] = None

    # ------------------------------------------------------------------

    def fit(self, X, protected_indices=None) -> "IFair":
        """Learn prototypes and attribute weights from ``X``.

        Parameters
        ----------
        X:
            Training records (already encoded/scaled), shape (M, N).
        protected_indices:
            Columns of ``X`` holding protected attributes.  They are
            excluded from the fairness target distances and, for
            iFair-b, initialised with near-zero weights.
        """
        X = check_matrix(X, "X", min_rows=2)
        self._protected = check_protected_indices(protected_indices, X.shape[1])
        workers = self._n_workers()
        use_process = workers > 1 and self.backend == "process"
        get_registry().counter("fit_total").inc()
        with get_tracer().span(
            "fit",
            n_records=int(X.shape[0]),
            n_restarts=self.n_restarts,
            backend=self.backend if workers > 1 else "serial",
        ):
            return self._fit_inner(X, workers, use_process)

    def _uses_sharded_oracle(self) -> bool:
        """Whether this fit evaluates the oracle through row shards."""
        return self.pair_mode == "landmark" and (
            self.oracle_jobs is not None
            or self.oracle_shards is not None
            or self.batch_mode != "full"
        )

    def _fit_inner(
        self, X: np.ndarray, workers: int, use_process: bool
    ) -> "IFair":
        sharded = self._uses_sharded_oracle()
        # The process path never evaluates the oracle parent-side:
        # construct it deferred (validation and shape bookkeeping only)
        # and let the workers build — or reuse from their cache — the
        # expensive support structures.  Serial and thread paths
        # optimise this very object, so they precompute as always.
        # The sharded path also defers: the oracle coordinator builds
        # its own (shard-shaped) support, never the objective's.
        objective = self._build_objective(
            X, precompute=not (use_process or sharded)
        )
        self.landmarks_ = objective.landmark_indices
        seeds = spawn_seeds(self.random_state, self.n_restarts)
        bounds = self._bounds(objective)
        if self.warm_start_theta is not None and (
            self.warm_start_theta.size != objective.n_params
        ):
            raise ValidationError(
                f"warm_start_theta must have {objective.n_params} entries, "
                f"got {self.warm_start_theta.size}"
            )
        if sharded:
            outcomes = self._restarts_sharded(objective, bounds, seeds)
        elif use_process:
            outcomes = self._restarts_process(objective.X, seeds, workers)
        elif workers > 1:
            # Thread escape hatch: the objective's workspace buffers
            # are thread-local, so one shared oracle is safe; only
            # worthwhile when BLAS (which releases the GIL) dominates.
            with ParallelExecutor(
                lambda task: self._run_restart(objective, bounds, task[1], index=task[0]),
                workers,
                backend="thread",
            ) as pool:
                outcomes = pool.map(list(enumerate(seeds)))
        else:
            outcomes = [
                self._run_restart(objective, bounds, seed, index=index)
                for index, seed in enumerate(seeds)
            ]

        # Deterministic best-of-N selection, independent of completion
        # order: strict improvement in seed order breaks ties in favour
        # of the earliest seed — exactly the sequential semantics.
        best_loss = np.inf
        best_theta: Optional[np.ndarray] = None
        self.restarts_ = []
        for record, theta in outcomes:
            self.restarts_.append(record)
            if record.loss < best_loss:
                best_loss = record.loss
                best_theta = theta
        if best_theta is None:  # pragma: no cover - L-BFGS always returns x
            raise NotFittedError("optimisation produced no parameters")
        self.prototypes_, self.alpha_ = objective.unpack(best_theta)
        self.loss_ = best_loss
        return self

    def _build_objective(
        self, X: np.ndarray, *, precompute: bool = True
    ) -> IFairObjective:
        """The loss/gradient oracle for ``X`` under this configuration.

        Deterministic in (X, constructor params): executor workers
        rebuild it from the shared-memory broadcast and optimise the
        exact oracle the serial path does.  ``precompute=False``
        validates and sizes the oracle without building its support
        structures — the parent side of a process-parallel fit, which
        never evaluates the loss itself.
        """
        return IFairObjective(
            X,
            self._protected,
            lambda_util=self.lambda_util,
            mu_fair=self.mu_fair,
            n_prototypes=self.n_prototypes,
            p=self.p,
            max_pairs=self.max_pairs,
            pair_mode=self.pair_mode,
            n_landmarks=self.n_landmarks,
            landmark_method=self.landmark_method,
            random_state=self.random_state,
            precompute=precompute,
        )

    def _n_workers(self) -> int:
        """Resolve ``n_jobs`` into a concrete worker count for this fit.

        Collapses to 1 inside an executor worker (nested pools would
        oversubscribe the machine — a parallel grid search over
        parallel fits runs the outer level wide, the inner serial).
        """
        return effective_n_jobs(self.n_jobs, limit=self.n_restarts)

    def _restarts_sharded(
        self, objective: IFairObjective, bounds, seeds: List[int]
    ) -> List[Tuple[RestartRecord, np.ndarray]]:
        """Run restarts sequentially over the sharded landmark oracle.

        The worker pool (``oracle_jobs``) parallelises *within* each
        L-BFGS evaluation — row shards of one oracle call — so the
        restarts themselves run in the parent.  The oracle's batch
        stream rewinds before every restart, making each restart (and
        therefore the best-of-N selection) independent of how many
        restarts ran before it.
        """
        get_registry().counter("fit_sharded_total").inc()
        oracle = ShardedLandmarkOracle(
            objective,
            n_shards=self.oracle_shards,
            n_jobs=self.oracle_jobs,
            pool=self.pool,
            batch_mode=self.batch_mode,
            batch_size=self.batch_size,
            random_state=self.random_state,
        )
        with oracle:
            outcomes = []
            for index, seed in enumerate(seeds):
                oracle.reset_batches()
                outcomes.append(
                    self._run_restart(oracle, bounds, seed, index=index)
                )
        return outcomes

    def _restarts_process(
        self, X: np.ndarray, seeds: List[int], workers: int
    ) -> List[Tuple[RestartRecord, np.ndarray]]:
        """Run restarts on a process pool with a shared-memory ``X``.

        Each worker rebuilds the objective once from the broadcast
        matrix and the constructor parameters (both deterministic, so
        every worker optimises the exact oracle the serial path does)
        and then serves any number of restart tasks; results reduce in
        seed order, making the selected model bitwise-identical to the
        sequential fit.
        """
        state = {
            "params": self.get_params(),
            "protected": None if self._protected is None else list(self._protected),
        }
        with ParallelExecutor(
            _restart_task,
            workers,
            state=state,
            shared={"X": X},
            pool=self.pool,
        ) as pool:
            return pool.map(list(enumerate(seeds)))

    # get_params/set_params come from ParamsMixin: constructor-argument
    # introspection yields exactly the historical explicit dict (every
    # __init__ argument is stored under its own name), so the executor
    # worker-state channel and the artifact manifest see an unchanged
    # contract.

    def partial_fit(
        self,
        X_increment,
        protected_indices=None,
        *,
        window_size: int = 2048,
    ) -> "IFair":
        """Warm-started incremental refit over a sliding window.

        Appends ``X_increment`` to a bounded buffer of the most recent
        ``window_size`` rows and refits over that window, starting the
        first restart from the current ``theta_`` (when fitted) so the
        optimiser resumes rather than restarts.  Refit cost is
        O(window), not O(total stream), and the result is exactly what
        ``IFair(**params, warm_start_theta=theta).fit(window)`` would
        produce — bitwise, which is what pins the online serving path
        to the offline semantics.

        Parameters
        ----------
        X_increment:
            New rows (already encoded/scaled), shape (m, N); a single
            row is fine.  Until the buffer holds at least 2 rows the
            refit is deferred (the optimiser needs pairs) and the call
            only buffers.
        protected_indices:
            Protected columns; defaults to the previous fit's.
        window_size:
            Buffer bound.  Growing or shrinking it between calls keeps
            the most recent rows.

        Notes
        -----
        Under ``pair_mode="landmark"`` an explicit ``n_landmarks``
        larger than the current window is capped at the window size for
        the refit (anchors are rows of the window), without mutating
        the configured parameter.
        """
        X = check_matrix(X_increment, "X_increment", min_rows=1)
        window_size = int(window_size)
        if window_size < 2:
            raise ValidationError("window_size must be at least 2")
        if self.prototypes_ is not None and X.shape[1] != self.prototypes_.shape[1]:
            raise ValidationError(
                f"X_increment has {X.shape[1]} features, model was fitted "
                f"with {self.prototypes_.shape[1]}"
            )
        if self._window is None:
            self._window = deque(maxlen=window_size)
        elif self._window.maxlen != window_size:
            self._window = deque(self._window, maxlen=window_size)
        if self._window and self._window[0].shape[0] != X.shape[1]:
            raise ValidationError(
                f"X_increment has {X.shape[1]} features, the window holds "
                f"rows with {self._window[0].shape[0]}"
            )
        for row in X:
            self._window.append(row)
        if len(self._window) < 2:
            return self  # refit deferred until the window can pair rows
        if protected_indices is None and self._protected is not None:
            protected_indices = list(self._protected)
        W = np.asarray(self._window, dtype=np.float64)
        saved_warm = self.warm_start_theta
        saved_landmarks = self.n_landmarks
        if self.prototypes_ is not None and self.alpha_ is not None:
            self.warm_start_theta = self.theta_
        if (
            self.pair_mode == "landmark"
            and self.n_landmarks is not None
            and self.n_landmarks > W.shape[0]
        ):
            self.n_landmarks = W.shape[0]
        get_registry().counter("partial_fit_total").inc()
        try:
            with get_tracer().span(
                "partial_fit",
                n_new=int(X.shape[0]),
                n_window=int(W.shape[0]),
            ):
                self.fit(W, protected_indices)
        finally:
            self.warm_start_theta = saved_warm
            self.n_landmarks = saved_landmarks
        self.n_partial_fits_ += 1
        return self

    @property
    def n_buffered(self) -> int:
        """Rows currently held in the ``partial_fit`` window."""
        return 0 if self._window is None else len(self._window)

    def _run_restart(
        self, objective: IFairObjective, bounds, seed: int, *, index: int = -1
    ) -> Tuple[RestartRecord, np.ndarray]:
        """Optimise from one seeded initialisation; thread-safe.

        ``index`` identifies the restart within the fit: restart 0
        starts from ``warm_start_theta`` when one was given.
        """
        theta0 = self._initial_theta(objective, seed, index=index)
        with get_tracer().span("fit.restart", seed=int(seed), index=index):
            result = optimize.minimize(
                objective.loss_and_grad,
                theta0,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": self.max_iter, "gtol": self.tol},
            )
        registry = get_registry()
        registry.counter("fit_restarts_total").inc()
        registry.counter("fit_lbfgs_iterations_total").inc(int(result.nit))
        record = RestartRecord(
            seed=seed,
            loss=float(result.fun),
            n_iterations=int(result.nit),
            converged=bool(result.success),
        )
        return record, result.x

    def _bounds(self, objective: IFairObjective):
        """V unbounded; alpha constrained non-negative."""
        n_v = objective.n_prototypes * objective.n_features
        return [(None, None)] * n_v + [(0.0, None)] * objective.n_features

    def _initial_theta(
        self, objective: IFairObjective, seed: int, *, index: int = -1
    ) -> np.ndarray:
        if index == 0 and self.warm_start_theta is not None:
            return self.warm_start_theta.copy()
        rng = check_random_state(seed)
        V0 = rng.uniform(0.0, 1.0, size=(objective.n_prototypes, objective.n_features))
        alpha0 = rng.uniform(0.0, 1.0, size=objective.n_features)
        if self.init == "protected_zero":
            alpha0[objective.protected] = self.protected_alpha_init
        return objective.pack(V0, alpha0)

    # ------------------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.prototypes_ is None or self.alpha_ is None:
            raise NotFittedError("IFair must be fitted before transforming data")

    @property
    def theta_(self) -> np.ndarray:
        """Fitted packed parameter vector ``[V.ravel(), alpha]``.

        The vector accepted back by ``warm_start_theta`` — successive
        halving resumes survivors from it across rungs.
        """
        self._check_fitted()
        return np.concatenate([self.prototypes_.ravel(), self.alpha_])

    def memberships(
        self,
        X,
        *,
        batch_size: Optional[int] = None,
        validate: bool = True,
    ) -> np.ndarray:
        """Per-record prototype probabilities u_i (Definition 8).

        Parameters
        ----------
        X:
            Records to evaluate, shape (M, N).
        batch_size:
            Evaluate at most this many rows at a time.  The intermediate
            record-prototype difference tensor has shape
            ``(batch, K, N)``; chunking keeps it bounded for large M
            (e.g. at serving time) while remaining exactly equal to the
            unchunked result, because each row's memberships depend only
            on that row.
        validate:
            Skip the input checks (finite values, shape) when the
            caller already performed them — the serving engine's
            single-record hot path validates once at ingestion and
            must not pay the full-matrix scan twice per request.
        """
        self._check_fitted()
        if validate:
            X = check_matrix(X, "X")
        else:
            X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != self.prototypes_.shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.prototypes_.shape[1]}"
            )
        if batch_size is not None:
            batch_size = int(batch_size)
            if batch_size < 1:
                raise ValidationError("batch_size must be a positive integer")
        if batch_size is None or X.shape[0] <= batch_size:
            return self._memberships_block(X)
        out = np.empty((X.shape[0], self.prototypes_.shape[0]))
        for start in range(0, X.shape[0], batch_size):
            stop = start + batch_size
            out[start:stop] = self._memberships_block(X[start:stop])
        return out

    def _memberships_block(self, X: np.ndarray) -> np.ndarray:
        # Row-stable kernel (no (batch, K, N) tensor for p == 2): each
        # row's distances are independent of the batch height, which
        # keeps chunked evaluation bitwise equal to one-shot.
        d = weighted_minkowski_to_prototypes(X, self.prototypes_, self.alpha_, p=self.p)
        return softmax(-d, axis=1)

    def transform(
        self,
        X,
        *,
        batch_size: Optional[int] = None,
        validate: bool = True,
    ) -> np.ndarray:
        """Apply the learned mapping phi (Definition 3) to records."""
        return (
            self.memberships(X, batch_size=batch_size, validate=validate)
            @ self.prototypes_
        )

    def fit_transform(self, X, protected_indices=None) -> np.ndarray:
        """Fit on ``X`` and return its transformed representation."""
        return self.fit(X, protected_indices).transform(X)

    def reconstruction_error(self, X) -> float:
        """Mean squared reconstruction error of ``X`` under the mapping."""
        X = check_matrix(X, "X")
        X_tilde = self.transform(X)
        return float(np.mean((X - X_tilde) ** 2))

    def __repr__(self) -> str:
        return (
            f"IFair(n_prototypes={self.n_prototypes}, lambda_util={self.lambda_util}, "
            f"mu_fair={self.mu_fair}, init={self.init!r})"
        )
