"""Process-based parallel task execution for experiment workloads.

Grid search fits hundreds of independent candidates and ``IFair.fit``
runs independent restarts; both are pure-CPU NumPy/Python work that a
thread pool cannot scale (the L-BFGS driver holds the GIL between BLAS
calls).  :class:`ParallelExecutor` runs such task lists on a pool of
**worker processes** with three properties the experiment layers rely
on:

* **determinism** — tasks carry their own seeds in the payload, results
  are returned in task order, and reductions over them are therefore
  independent of scheduling; for a fixed seed, ``n_jobs=1`` and
  ``n_jobs=8`` produce bitwise-identical outputs;
* **zero-copy inputs** — large arrays are broadcast once through
  :mod:`repro.utils.shm` instead of being pickled per task; workers
  read them via :func:`get_shared`;
* **crash isolation** — a worker that dies mid-task (OOM kill,
  segfault, ``os._exit``) is detected, respawned, and the task retried
  up to ``max_retries`` times before :class:`WorkerCrashError` is
  raised; a task that *raises* surfaces as a :class:`TaskError`
  carrying the worker traceback, and the pool stays usable either way.

Pool modes
----------
``pool="per-call"`` (default) spawns a private pool per executor and
tears it down on shutdown — fully isolated, but a small fit pays the
whole spawn + broadcast cost every time.  ``pool="session"`` borrows a
persistent pool from the process-wide :class:`PoolBroker` instead: the
workers outlive the executor (reference-counted, reaped after
``PoolBroker.idle_timeout`` seconds without a lease), the task
function travels by pickle, and shared arrays go through the
content-addressed :func:`repro.utils.shm.arena` cache so a matrix
already broadcast for tuning is reused by the subsequent refit.
Results are bitwise-identical between the two modes; a task function
that cannot be pickled (a closure) silently falls back to a per-call
pool, where fork inheritance still transports it.

Backends
--------
``"process"`` (default) forks one process per job slot.  Under the
``fork`` start method the task function and ``state`` are handed to
workers through inherited memory, so closures work; under ``spawn``
they are pickled, so they must be module-level.  ``"thread"`` is an
explicit escape hatch for workloads that release the GIL (e.g. fits
dominated by large BLAS calls), and ``"serial"`` runs inline — the
reference semantics the parallel backends must reproduce bitwise.

Nesting is refused gracefully: code running inside a worker sees
:func:`in_worker` return ``True`` and :func:`effective_n_jobs`
collapse to 1, so a parallel grid search over a model whose ``fit``
is itself parallel never over-subscribes the machine.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import connection, shared_memory
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.telemetry.metrics import get_registry, snapshot_diff
from repro.telemetry.tracing import get_tracer
from repro.utils.shm import ArenaLease, SharedArrayHandle, SharedArrays, arena

EXECUTOR_BACKENDS = ("process", "thread", "serial")
POOL_MODES = ("per-call", "session")

#: Default seconds a broker pool survives without a lease before its
#: workers are reaped (mutable on ``PoolBroker.instance()``).
DEFAULT_IDLE_TIMEOUT = 30.0

#: Environment flag set in worker processes; survives exec-style spawn.
_WORKER_ENV = "REPRO_EXECUTOR_WORKER"

# Fork-path handoff: (fn, state) published here before the fork are
# inherited by the child without pickling, which is what lets closures
# capture numpy arrays or fitted models as task functions.
_FORK_HANDOFF: Dict[int, tuple] = {}

# Mints process-unique config tokens: every executor lifecycle gets a
# fresh one, so worker-side caches keyed by :func:`get_config_token`
# can never collide across the sequential fits a session pool serves
# (unlike ``id(state)``, which the allocator may reuse).
_CFG_COUNTER = itertools.count(1)

# Worker-side context, also used by the serial/thread backends so task
# functions read their inputs the same way under every backend.
_WORKER_STATE: Optional[Any] = None
_WORKER_SHARED: Dict[str, np.ndarray] = {}
_WORKER_HANDLES: Dict[str, SharedArrayHandle] = {}
_WORKER_CFG_TOKEN: Optional[int] = None
_IN_WORKER = False


class TaskError(ReproError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, task_index: int, exc_type: str, message: str, remote_tb: str):
        super().__init__(
            f"task {task_index} raised {exc_type}: {message}\n"
            f"--- worker traceback ---\n{remote_tb}"
        )
        self.task_index = task_index
        self.exc_type = exc_type
        self.remote_traceback = remote_tb


class WorkerCrashError(ReproError):
    """A worker process died mid-task and retries were exhausted."""

    def __init__(self, task_index: int, attempts: int):
        super().__init__(
            f"worker died while running task {task_index} "
            f"({attempts} attempt(s)); the task was retried on fresh "
            "workers and crashed every time"
        )
        self.task_index = task_index
        self.attempts = attempts


def in_worker() -> bool:
    """True when the calling code runs inside an executor worker."""
    return _IN_WORKER or os.environ.get(_WORKER_ENV) == "1"


def get_state() -> Any:
    """The ``state`` object the executor was constructed with."""
    return _WORKER_STATE


def get_shared() -> Dict[str, np.ndarray]:
    """The broadcast arrays, keyed as passed to ``shared=``."""
    return _WORKER_SHARED


def get_shared_handles() -> Dict[str, SharedArrayHandle]:
    """Segment descriptors of the broadcast arrays (process backend).

    Segment names are minted from a never-reused counter and, under
    the session arena, content-addressed — two broadcasts carrying the
    same name are byte-identical.  That makes the name a sound key for
    worker-side caches of derived structures (e.g. a fit objective
    precomputed from the training matrix).  Empty for the serial and
    thread backends, where no segments exist.
    """
    return _WORKER_HANDLES


def get_config_token() -> Optional[int]:
    """Process-unique token of the executor serving the current task.

    Stable across every task of one executor lifecycle and never
    reused, under any backend — the safe key for worker-side caches
    that must not leak between the consecutive fits a session pool
    serves (see ``repro.core.model._WORKER_FIT_CACHE``).
    """
    return _WORKER_CFG_TOKEN


def effective_n_jobs(n_jobs: Optional[int], *, limit: Optional[int] = None) -> int:
    """Resolve an ``n_jobs`` knob into a concrete worker count.

    ``None``/``1`` mean serial, ``-1`` means one worker per CPU, and
    the result is clamped to ``limit`` (e.g. the task count).  Inside
    an executor worker this always returns 1 — nested pools would
    oversubscribe the machine without speeding anything up.
    """
    if n_jobs is not None and (n_jobs == 0 or n_jobs < -1):
        raise ValidationError("n_jobs must be None, -1, or a positive integer")
    if n_jobs is None:
        jobs = 1
    elif n_jobs == -1:
        jobs = os.cpu_count() or 1
    else:
        jobs = int(n_jobs)
    if in_worker():
        return 1
    if limit is not None:
        jobs = min(jobs, max(1, int(limit)))
    return max(1, jobs)


@dataclass(frozen=True)
class _WireConfig:
    """One task context (fn, state, shared handles) as sent to workers.

    Exactly one transport is set: ``handoff`` (a :data:`_FORK_HANDOFF`
    token, inherited without pickling — per-call pools under fork),
    ``payload`` (the raw ``(fn, state)`` tuple, pickled by the
    multiprocessing machinery — per-call pools under spawn), or
    ``blob`` (bytes pre-pickled in the parent — session pools, where
    the workers already exist and eager pickling lets unpicklable
    functions fail fast and fall back to a per-call pool).
    """

    token: int
    handoff: Optional[int] = None
    payload: Optional[tuple] = None
    blob: Optional[bytes] = None
    shared: Optional[Dict[str, SharedArrayHandle]] = None


def _worker_main(configs: Dict[int, _WireConfig], conn) -> None:
    """Worker process body: serve tasks for any installed config.

    Each worker talks to the parent over its **own** duplex pipe —
    there is no shared queue, so a worker dying at any instant can
    never leave a cross-worker lock held or interleave a partial
    message into another worker's stream (``Connection.send`` is
    synchronous; an async feeder thread would let ``os._exit`` kill a
    half-written frame).  Messages in are ``None`` (exit),
    ``("cfg", wire)``, ``("drop", token)``, or ``("task", token,
    index, payload)``; messages out are ``(task_index, status,
    payload, telemetry)`` with status ``"ok"`` or ``"err"`` and
    ``telemetry`` either ``None`` or ``(metrics_delta, spans)`` — the
    worker's process-local registry delta since its previous reply
    plus any finished tracer spans, which the parent folds into its
    own registry/tracer (so cross-process totals are exact and
    schedule-independent).  Shared-memory
    segments are attached once per name and refcounted across configs,
    so a session pool re-targeted at the same broadcast (the arena
    cache hit) pays no re-attach.  Everything here is deliberately
    small: this code runs outside the parent's test coverage, so the
    logic that matters (retry accounting, ordering, reduction) lives
    parent-side.
    """
    global _WORKER_STATE, _WORKER_SHARED, _WORKER_HANDLES
    global _WORKER_CFG_TOKEN, _IN_WORKER
    _IN_WORKER = True
    os.environ[_WORKER_ENV] = "1"
    # Segment mappings live for the whole worker lifetime: closing a
    # mapping unmaps its pages even while numpy views exist, and task
    # code legitimately caches structures derived from the broadcast
    # across configs (e.g. the fit oracle memo in repro.core.model,
    # keyed by segment name) — dropping a config must never turn such
    # a cache entry into a dangling pointer.  The mappings die with
    # the worker, which the broker reaps together with the arena's
    # cached segments.
    segments: Dict[str, shared_memory.SharedMemory] = {}
    installed: Dict[int, tuple] = {}  # token -> (fn, state, arrays, handles)
    broken: Dict[int, tuple] = {}  # token -> (exc_type, message, traceback)

    # Telemetry baseline: under fork the child inherits the parent's
    # registry contents and tracer buffer — snapshot/clear now so only
    # counts produced *by this worker* are ever shipped back.
    registry = get_registry()
    tracer = get_tracer()
    tracer.clear()
    shipped = registry.snapshot()

    def telemetry_delta():
        nonlocal shipped
        current = registry.snapshot()
        delta = snapshot_diff(current, shipped)
        shipped = current
        spans = tracer.drain() if tracer.enabled else []
        if not delta and not spans:
            return None
        return (delta or None, spans or None)

    def install(wire: _WireConfig) -> None:
        # A config that fails to install (typically: the blob pickled
        # by reference to a name this worker's modules don't have yet)
        # must not kill the worker — its tasks answer with the install
        # error instead, which the parent surfaces as a TaskError.
        try:
            if wire.handoff is not None:  # fork path: inherited, never pickled
                fn, state = _FORK_HANDOFF[wire.handoff]
            elif wire.blob is not None:  # session path: parent-pickled
                fn, state = pickle.loads(wire.blob)
            else:  # spawn path: pickled by the mp machinery
                fn, state = wire.payload
            handles = wire.shared or {}
            arrays: Dict[str, np.ndarray] = {}
            for key, handle in handles.items():
                segment = segments.get(handle.name)
                if segment is None:
                    # Workers share the parent's resource tracker;
                    # attaching neither duplicates its registration nor
                    # takes over the unlink duty, which stays with the
                    # creating parent.
                    segment = shared_memory.SharedMemory(name=handle.name)
                    segments[handle.name] = segment
                view = np.ndarray(
                    handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
                )
                view.flags.writeable = False
                arrays[key] = view
        except BaseException as exc:
            broken[wire.token] = (
                type(exc).__name__,
                f"config install failed: {exc}",
                traceback.format_exc(),
            )
            return
        broken.pop(wire.token, None)
        installed[wire.token] = (fn, state, arrays, handles)

    def drop(token: int) -> None:
        installed.pop(token, None)  # mappings stay (see above)
        broken.pop(token, None)

    for wire in configs.values():
        install(wire)
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            kind = msg[0]
            if kind == "cfg":
                install(msg[1])
                continue
            if kind == "drop":
                drop(msg[1])
                continue
            token, index, payload = msg[1], msg[2], msg[3]
            if token in broken:
                conn.send((index, "err", broken[token], None))
                continue
            fn, state, arrays, handles = installed[token]
            _WORKER_STATE, _WORKER_SHARED, _WORKER_CFG_TOKEN = state, arrays, token
            _WORKER_HANDLES = dict(handles)
            try:
                result = fn(payload)
                conn.send((index, "ok", result, telemetry_delta()))
            except BaseException as exc:  # surfaced parent-side as TaskError
                conn.send(
                    (
                        index,
                        "err",
                        (type(exc).__name__, str(exc), traceback.format_exc()),
                        telemetry_delta(),
                    )
                )
    except EOFError:  # parent died; nothing left to serve
        pass
    finally:
        for segment in segments.values():
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - best-effort
                pass


def _process_context():
    """The multiprocessing context every pool uses (fork when available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class WorkerPool:
    """A set of persistent, *retargetable* worker processes.

    The pool carries no task function of its own: callers install
    **configs** (:class:`_WireConfig`) and run payload batches against
    a config token, so one pool can serve a grid search, then a fit's
    restarts, then a serving refit without respawning.
    :class:`ParallelExecutor` owns a private pool for the per-call
    mode; :class:`PoolBroker` lends long-lived ones for the session
    mode.  The config table is replayed to every (re)spawned worker,
    which is what keeps crash-respawn working mid-session.
    """

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ValidationError("n_workers must be at least 1")
        self.n_workers = int(n_workers)
        self._configs: Dict[int, _WireConfig] = {}
        self._workers: List = []
        self._conns: List = []
        self._ctx = None
        self._started = False
        # Runs are serialised: the dispatch loop owns every pipe.
        self._run_lock = threading.Lock()

    @property
    def started(self) -> bool:
        return self._started

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (diagnostics and warm-reuse tests)."""
        return [process.pid for process in self._workers]

    @property
    def is_fork(self) -> bool:
        """Whether workers inherit memory (fork) or pickle (spawn)."""
        ctx = self._ctx if self._ctx is not None else _process_context()
        return ctx.get_start_method() == "fork"

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        if self._started:
            return
        self._ctx = _process_context()
        self._workers = []
        self._conns = []
        for worker_id in range(self.n_workers):
            self._spawn_worker(worker_id)
        self._started = True

    def _spawn_worker(self, worker_id: int) -> None:
        """(Re)start one worker on a private duplex pipe.

        The worker receives the *current* config table through the
        process arguments — inherited under fork, pickled under spawn
        — so a respawn after a crash re-installs every live config
        before the retried task arrives.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(dict(self._configs), child_conn),
            daemon=True,
        )
        process.start()
        # The child holds its own copy of the pipe end; closing ours
        # makes a dead worker observable as EOF on parent_conn.
        child_conn.close()
        if worker_id < len(self._workers):
            self._workers[worker_id] = process
            self._conns[worker_id] = parent_conn
        else:
            self._workers.append(process)
            self._conns.append(parent_conn)

    def add_config(self, wire: _WireConfig) -> None:
        """Install a config on every worker (and in the respawn table).

        Takes the run lock: a concurrent :meth:`run` (another thread
        sharing this broker pool) owns the pipes while dispatching,
        and ``Connection.send`` frames must never interleave.
        """
        with self._run_lock:
            self._configs[wire.token] = wire
            if not self._started:
                return
            for worker_id in range(len(self._workers)):
                try:
                    self._conns[worker_id].send(("cfg", wire))
                except (BrokenPipeError, OSError, ValueError):
                    # Dead between runs: a fresh worker picks the config
                    # up from the table; no task was in flight to retry.
                    self._respawn_dead(worker_id)

    def drop_config(self, token: int) -> None:
        """Forget a config (workers release its arrays, best-effort)."""
        with self._run_lock:
            self._configs.pop(token, None)
            for conn in self._conns:
                try:
                    conn.send(("drop", token))
                except (BrokenPipeError, OSError, ValueError):
                    pass  # dead worker respawns from the (updated) table

    def _respawn_dead(self, worker_id: int) -> None:
        self._workers[worker_id].join()
        self._conns[worker_id].close()
        self._spawn_worker(worker_id)

    def shutdown(self) -> None:
        """Stop the workers (idempotent); the config table survives."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError, BrokenPipeError):  # dead worker
                pass
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._workers = []
        self._conns = []
        self._started = False

    def _abort(self) -> None:
        """Hard teardown after an unrecoverable crash.

        Configs are kept: a broker-owned pool respawns from the table
        on its next run, so one poisoned session does not strand every
        later caller.
        """
        for process in self._workers:
            if process.is_alive():
                process.terminate()
        for process in self._workers:
            process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._workers = []
        self._conns = []
        self._started = False

    # ------------------------------------------------------------------
    # execution

    def run(
        self, token: int, payloads: Sequence[Any], max_retries: int
    ) -> List[Any]:
        """Run one config over payloads; results in payload order.

        ``connection.wait`` watches every worker's pipe *and* its
        process sentinel, so a completed task and a crashed worker are
        both observed immediately, with no polling interval and no
        shared queue whose locks a dying worker could take down.
        """
        with self._run_lock:
            if not self._started:
                self.start()
            return self._run_inner(token, list(payloads), int(max_retries))

    def _run_inner(
        self, token: int, payloads: List[Any], max_retries: int
    ) -> List[Any]:
        n_tasks = len(payloads)
        results: List[Any] = [None] * n_tasks
        done = [False] * n_tasks
        retries = [0] * n_tasks
        pending = list(range(n_tasks - 1, -1, -1))  # pop() -> task order
        assigned: Dict[int, Optional[int]] = {
            w: None for w in range(len(self._workers))
        }
        n_done = 0
        failure: Optional[TaskError] = None

        def dispatch(worker_id: int) -> None:
            while failure is None and pending:
                index = pending.pop()
                try:
                    self._conns[worker_id].send(
                        ("task", token, index, payloads[index])
                    )
                except (BrokenPipeError, OSError):
                    # The worker died between its last answer and this
                    # send; its slot is already unassigned, so this is
                    # a plain respawn, not a task retry.
                    pending.append(index)
                    self._handle_crash(worker_id, assigned, retries, pending, max_retries)
                    continue
                assigned[worker_id] = index
                return

        def record(
            index: int, status: str, payload: Any, telemetry: Any
        ) -> None:
            nonlocal n_done, failure
            if telemetry is not None:
                # Parent-side reduction of the worker's shipped delta:
                # counters/histograms add, so the totals are exact no
                # matter which worker ran which task.
                metrics_delta, spans = telemetry
                if metrics_delta:
                    get_registry().merge(metrics_delta)
                if spans:
                    get_tracer().ingest(spans)
            if status == "ok":
                results[index] = payload
            elif failure is None:
                failure = TaskError(index, *payload)
            if not done[index]:
                done[index] = True
                n_done += 1

        for worker_id in assigned:
            dispatch(worker_id)

        while n_done < n_tasks:
            if failure is not None and all(
                index is None for index in assigned.values()
            ):
                break  # error + nothing in flight: surface it
            watch = {self._conns[w]: w for w in assigned}
            watch.update({self._workers[w].sentinel: w for w in assigned})
            for ready in connection.wait(list(watch)):
                worker_id = watch[ready]
                conn = self._conns[worker_id]
                if ready is conn or conn.poll():
                    # Drain the result even when the wake-up came from
                    # the sentinel — the worker may have finished its
                    # task and exited before we looked.
                    try:
                        index, status, payload, telemetry = conn.recv()
                    except (EOFError, OSError):
                        self._handle_crash(
                            worker_id, assigned, retries, pending, max_retries
                        )
                        dispatch(worker_id)
                        continue
                    assigned[worker_id] = None
                    record(index, status, payload, telemetry)
                    dispatch(worker_id)
                elif not self._workers[worker_id].is_alive():
                    self._handle_crash(
                        worker_id, assigned, retries, pending, max_retries
                    )
                    dispatch(worker_id)

        if failure is not None:
            raise failure
        return results

    def _handle_crash(
        self,
        worker_id: int,
        assigned: Dict[int, Optional[int]],
        retries: List[int],
        pending: List[int],
        max_retries: int,
    ) -> None:
        """Respawn a dead worker and requeue (or give up on) its task."""
        get_registry().counter("executor_worker_respawns_total").inc()
        self._workers[worker_id].join()
        self._conns[worker_id].close()
        index = assigned[worker_id]
        self._spawn_worker(worker_id)
        assigned[worker_id] = None
        if index is None:
            return
        retries[index] += 1
        if retries[index] > max_retries:
            self._abort()
            raise WorkerCrashError(index, retries[index])
        # Retry on the freshly spawned worker; determinism is
        # unaffected because the payload (and its seed) is reused.
        # Counted separately from respawns: a respawn between runs
        # (dead pipe on dispatch) retries nothing.
        get_registry().counter("executor_task_retries_total").inc()
        pending.append(index)


class PoolLease:
    """A reference-counted borrow of a broker pool (release once)."""

    def __init__(self, broker: "PoolBroker", key: int, pool: WorkerPool):
        self._broker = broker
        self._key = key
        self.pool = pool
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._broker._release(self._key)


class PoolBroker:
    """Process-wide lender of persistent :class:`WorkerPool`s.

    One pool per worker count, created on first lease and shared by
    every ``pool="session"`` executor that asks for that width (grid
    search, fit restarts, serving refits).  Leases are reference-
    counted; when the last one is released a daemon timer reaps the
    pool after :attr:`idle_timeout` seconds of disuse (and, once no
    pool remains, the refcount-free entries of the shm arena cache),
    so an idle interpreter holds no worker processes or segments
    forever.  A fork guard drops inherited broker state in child
    processes — the parent's workers are not the child's to talk to.
    """

    _instance: Optional["PoolBroker"] = None
    _instance_lock = threading.Lock()

    def __init__(self, idle_timeout: float = DEFAULT_IDLE_TIMEOUT):
        self.idle_timeout = float(idle_timeout)
        self._lock = threading.RLock()
        self._pools: Dict[int, dict] = {}
        self._pid = os.getpid()

    @classmethod
    def instance(cls) -> "PoolBroker":
        with cls._instance_lock:
            if cls._instance is None:
                cls._instance = PoolBroker()
            return cls._instance

    @classmethod
    def reset(cls) -> None:
        """Shut the singleton down (tests, atexit)."""
        with cls._instance_lock:
            broker = cls._instance
            cls._instance = None
        if broker is not None:
            broker.shutdown()

    # ------------------------------------------------------------------

    def lease(self, n_workers: int) -> PoolLease:
        """Borrow the shared pool of ``n_workers`` (creating it cold)."""
        with self._lock:
            self._check_fork()
            entry = self._pools.get(n_workers)
            if entry is None:
                entry = {
                    "pool": WorkerPool(n_workers),
                    "refs": 0,
                    "generation": 0,
                    "timer": None,
                }
                self._pools[n_workers] = entry
            if entry["timer"] is not None:
                entry["timer"].cancel()
                entry["timer"] = None
            entry["refs"] += 1
            entry["generation"] += 1
            return PoolLease(self, n_workers, entry["pool"])

    def _release(self, key: int) -> None:
        with self._lock:
            entry = self._pools.get(key)
            if entry is None:
                return
            entry["refs"] -= 1
            if entry["refs"] > 0:
                return
            generation = entry["generation"]
            if self.idle_timeout <= 0:
                self._reap(key, generation)
                return
            timer = threading.Timer(
                self.idle_timeout, self._reap, args=(key, generation)
            )
            timer.daemon = True
            entry["timer"] = timer
            timer.start()

    def _reap(self, key: int, generation: int) -> None:
        """Shut an idle pool down, unless it was re-leased meanwhile."""
        with self._lock:
            entry = self._pools.get(key)
            if (
                entry is None
                or entry["refs"] > 0
                or entry["generation"] != generation
            ):
                return
            entry["pool"].shutdown()
            del self._pools[key]
            last_pool = not self._pools
        if last_pool:
            # No session pool left to warm: cached (refcount-free)
            # arena broadcasts would outlive their only consumers.
            arena().reap()

    def reap_idle(self) -> None:
        """Immediately reap every lease-free pool (deterministic tests)."""
        with self._lock:
            keys = [
                (key, entry["generation"])
                for key, entry in self._pools.items()
                if entry["refs"] <= 0
            ]
        for key, generation in keys:
            self._reap(key, generation)

    def shutdown(self) -> None:
        """Stop every pool and cancel pending reap timers."""
        with self._lock:
            entries = list(self._pools.values())
            self._pools = {}
        for entry in entries:
            if entry["timer"] is not None:
                entry["timer"].cancel()
            entry["pool"].shutdown()

    def stats(self) -> Dict[int, Dict[str, int]]:
        """Per-width pool diagnostics (refcounts, liveness).

        The same numbers land in the process-wide metrics registry as
        ``executor_pool_*`` gauges, so the Prometheus endpoint and this
        dict can never disagree.
        """
        with self._lock:
            stats = {
                key: {
                    "refs": entry["refs"],
                    "started": entry["pool"].started,
                    "workers": len(entry["pool"].worker_pids()),
                }
                for key, entry in self._pools.items()
            }
        registry = get_registry()
        registry.gauge("executor_pools").set(len(stats))
        for key, entry in stats.items():
            labels = {"width": str(key)}
            registry.gauge("executor_pool_refs", labels).set(entry["refs"])
            registry.gauge("executor_pool_workers", labels).set(
                entry["workers"]
            )
        return stats

    def _check_fork(self) -> None:
        # A forked child inherits this dict, but the worker processes
        # in it belong to the parent: forget them without touching.
        if os.getpid() != self._pid:
            self._pools.clear()
            self._pid = os.getpid()


def shutdown_session_pools() -> None:
    """Tear down the broker's pools and the shm arena cache.

    The explicit end-of-session hook for benchmarks and tests that
    must leave ``/dev/shm`` clean before asserting on it; interpreter
    exit runs the same cleanup through ``atexit``.
    """
    PoolBroker.reset()
    arena().clear()


def _forget_broker_in_child() -> None:
    broker = PoolBroker._instance
    if broker is not None:
        broker._pools.clear()
        broker._pid = os.getpid()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX-only repo
    os.register_at_fork(after_in_child=_forget_broker_in_child)

atexit.register(shutdown_session_pools)


class ParallelExecutor:
    """Run one task function over payload lists, in parallel.

    Parameters
    ----------
    fn:
        The task function, called as ``fn(payload)`` for every payload
        passed to :meth:`map`.  It reads broadcast arrays via
        :func:`get_shared` and the shared ``state`` via
        :func:`get_state`, identically under every backend.
    n_jobs:
        Worker count (``None``/1 serial, ``-1`` per-CPU).
    backend:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.
    state:
        Arbitrary object made available to tasks via :func:`get_state`
        — transported by fork inheritance when possible, by pickle
        under spawn and in session pools.
    shared:
        Mapping of name -> ndarray broadcast zero-copy to workers
        (:mod:`repro.utils.shm`).  A per-call executor owns the
        segments and unlinks them on :meth:`shutdown` even when a map
        raises; a session executor leases them from the process-wide
        arena cache, which keeps them warm for the next publisher of
        the same bytes.
    max_retries:
        How many times a task whose worker *died* is retried on a
        fresh worker before :class:`WorkerCrashError`.
    pool:
        ``"per-call"`` (default: private pool, torn down with the
        executor) or ``"session"`` (borrow the persistent broker pool
        and the arena cache — same results, amortised spawn/broadcast
        cost).  ``fn``/``state`` that cannot be pickled fall back to
        per-call, where fork inheritance transports them.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        n_jobs: Optional[int] = None,
        *,
        backend: str = "process",
        state: Any = None,
        shared: Optional[Mapping[str, np.ndarray]] = None,
        max_retries: int = 1,
        pool: str = "per-call",
    ):
        if backend not in EXECUTOR_BACKENDS:
            raise ValidationError(
                f"backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
            )
        if pool not in POOL_MODES:
            raise ValidationError(
                f"pool must be one of {POOL_MODES}, got {pool!r}"
            )
        if max_retries < 0:
            raise ValidationError("max_retries must be non-negative")
        self.fn = fn
        self.n_jobs = effective_n_jobs(n_jobs)
        self.backend = backend if self.n_jobs > 1 else "serial"
        self.pool_mode = pool
        self.max_retries = int(max_retries)
        self._state = state
        self._shared_input = dict(shared) if shared else {}
        self._shm: Optional[SharedArrays] = None
        self._own_pool: Optional[WorkerPool] = None
        self._lease: Optional[PoolLease] = None
        self._arena_lease: Optional[ArenaLease] = None
        self._handoff_token: Optional[int] = None
        self._token: int = 0
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle

    def __enter__(self) -> "ParallelExecutor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._token = next(_CFG_COUNTER)
        if self.backend != "process":
            return
        try:
            if self.pool_mode == "session" and self._start_session():
                return
            self._start_per_call()
        except BaseException:
            # A half-started executor must not strand leases (a leaked
            # refcount keeps broker workers alive past every idle
            # reap) or segments; shutdown releases whatever the
            # failing step had already acquired.
            self.shutdown()
            raise

    def _start_session(self) -> bool:
        """Borrow the broker pool; False -> fall back to per-call."""
        try:
            blob = pickle.dumps((self.fn, self._state))
        except Exception:
            # Closures can't reach pre-existing workers; a private
            # fork-inheriting pool still runs them, with identical
            # results (only the warmth is lost).
            return False
        handles = None
        if self._shared_input:
            self._arena_lease = arena().publish(self._shared_input)
            handles = self._arena_lease.handles
        self._lease = PoolBroker.instance().lease(self.n_jobs)
        self._lease.pool.add_config(
            _WireConfig(token=self._token, blob=blob, shared=handles)
        )
        return True

    def _start_per_call(self) -> None:
        self._own_pool = WorkerPool(self.n_jobs)
        handles = None
        if self._shared_input:
            self._shm = SharedArrays(self._shared_input)
            handles = self._shm.handles
        if self._own_pool.is_fork:
            self._handoff_token = next(_CFG_COUNTER)
            _FORK_HANDOFF[self._handoff_token] = (self.fn, self._state)
            wire = _WireConfig(
                token=self._token, handoff=self._handoff_token, shared=handles
            )
        else:
            wire = _WireConfig(
                token=self._token, payload=(self.fn, self._state), shared=handles
            )
        self._own_pool.add_config(wire)
        self._own_pool.start()

    def shutdown(self) -> None:
        """Release workers and shared segments (idempotent).

        Per-call: stop the private pool and unlink its segments.
        Session: drop this executor's config from the shared pool and
        release the leases — the workers (and the cached broadcast)
        stay warm for the next caller.
        """
        if self._lease is not None:
            self._lease.pool.drop_config(self._token)
            self._lease.release()
            self._lease = None
        if self._arena_lease is not None:
            self._arena_lease.release()
            self._arena_lease = None
        if self._own_pool is not None:
            self._own_pool.shutdown()
            self._own_pool = None
        if self._handoff_token is not None:
            _FORK_HANDOFF.pop(self._handoff_token, None)
            self._handoff_token = None
        if self._shm is not None:
            self._shm.unlink()
            self._shm = None
        self._started = False

    # ------------------------------------------------------------------
    # execution

    def map(self, payloads: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over every payload; results in payload order.

        Raises :class:`TaskError` if a task raised (after letting
        in-flight tasks finish) and :class:`WorkerCrashError` when a
        worker death exhausted its retries.  The pool survives a
        ``TaskError`` — subsequent :meth:`map` calls reuse it; after a
        ``WorkerCrashError`` the executor resets, and the next map
        rebuilds its context from the *current* ``fn``/``state``.
        """
        if not self._started:
            self.start()
        payloads = list(payloads)
        if not payloads:
            return []
        # Counted parent-side so every backend (serial, thread,
        # process) reports the same totals for the same work — the
        # invariant the metrics-merge parity test pins down.
        registry = get_registry()
        registry.counter("executor_maps_total").inc()
        registry.counter("executor_tasks_total").inc(len(payloads))
        with get_tracer().span(
            "executor.map", backend=self.backend, n_tasks=len(payloads)
        ):
            if self.backend == "serial":
                return self._map_local(payloads, parallel=False)
            if self.backend == "thread":
                return self._map_local(payloads, parallel=True)
            pool = (
                self._lease.pool if self._lease is not None else self._own_pool
            )
            try:
                return pool.run(self._token, payloads, self.max_retries)
            except WorkerCrashError:
                self.shutdown()
                raise

    def _map_local(self, payloads: List[Any], *, parallel: bool) -> List[Any]:
        """Serial/thread execution with the same context accessors.

        The thread backend also raises the :func:`in_worker` flag so
        task code applying the nested-parallelism guard behaves the
        same as under the process backend; plain serial maps leave it
        down (a serial search over parallel fits is legitimate).
        """
        global _WORKER_STATE, _WORKER_SHARED, _WORKER_HANDLES
        global _WORKER_CFG_TOKEN, _IN_WORKER
        prev = (
            _WORKER_STATE,
            _WORKER_SHARED,
            _WORKER_HANDLES,
            _WORKER_CFG_TOKEN,
            _IN_WORKER,
        )
        _WORKER_STATE = self._state
        _WORKER_SHARED = dict(self._shared_input)
        _WORKER_HANDLES = {}
        _WORKER_CFG_TOKEN = self._token
        try:
            if not parallel:
                return [self.fn(payload) for payload in payloads]
            _IN_WORKER = True
            with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
                return list(pool.map(self.fn, payloads))
        finally:
            (
                _WORKER_STATE,
                _WORKER_SHARED,
                _WORKER_HANDLES,
                _WORKER_CFG_TOKEN,
                _IN_WORKER,
            ) = prev


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    n_jobs: Optional[int] = None,
    *,
    backend: str = "process",
    state: Any = None,
    shared: Optional[Mapping[str, np.ndarray]] = None,
    max_retries: int = 1,
    pool: str = "per-call",
) -> List[Any]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    with ParallelExecutor(
        fn,
        n_jobs,
        backend=backend,
        state=state,
        shared=shared,
        max_retries=max_retries,
        pool=pool,
    ) as executor:
        return executor.map(payloads)
