"""Process-based parallel task execution for experiment workloads.

Grid search fits hundreds of independent candidates and ``IFair.fit``
runs independent restarts; both are pure-CPU NumPy/Python work that a
thread pool cannot scale (the L-BFGS driver holds the GIL between BLAS
calls).  :class:`ParallelExecutor` runs such task lists on a pool of
**worker processes** with three properties the experiment layers rely
on:

* **determinism** — tasks carry their own seeds in the payload, results
  are returned in task order, and reductions over them are therefore
  independent of scheduling; for a fixed seed, ``n_jobs=1`` and
  ``n_jobs=8`` produce bitwise-identical outputs;
* **zero-copy inputs** — large arrays are broadcast once through
  :mod:`repro.utils.shm` instead of being pickled per task; workers
  read them via :func:`get_shared`;
* **crash isolation** — a worker that dies mid-task (OOM kill,
  segfault, ``os._exit``) is detected, respawned, and the task retried
  up to ``max_retries`` times before :class:`WorkerCrashError` is
  raised; a task that *raises* surfaces as a :class:`TaskError`
  carrying the worker traceback, and the pool stays usable either way.

Backends
--------
``"process"`` (default) forks one process per job slot.  Under the
``fork`` start method the task function and ``state`` are handed to
workers through inherited memory, so closures work; under ``spawn``
they are pickled, so they must be module-level.  ``"thread"`` is an
explicit escape hatch for workloads that release the GIL (e.g. fits
dominated by large BLAS calls), and ``"serial"`` runs inline — the
reference semantics the parallel backends must reproduce bitwise.

Nesting is refused gracefully: code running inside a worker sees
:func:`in_worker` return ``True`` and :func:`effective_n_jobs`
collapse to 1, so a parallel grid search over a model whose ``fit``
is itself parallel never over-subscribes the machine.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import traceback
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.utils.shm import SharedArrays, attach

EXECUTOR_BACKENDS = ("process", "thread", "serial")

#: Environment flag set in worker processes; survives exec-style spawn.
_WORKER_ENV = "REPRO_EXECUTOR_WORKER"

# Fork-path handoff: (fn, state) published here before the fork are
# inherited by the child without pickling, which is what lets closures
# capture numpy arrays or fitted models as task functions.
_FORK_HANDOFF: Dict[int, tuple] = {}
_HANDOFF_COUNTER = itertools.count()

# Worker-side context, also used by the serial/thread backends so task
# functions read their inputs the same way under every backend.
_WORKER_STATE: Optional[Any] = None
_WORKER_SHARED: Dict[str, np.ndarray] = {}
_IN_WORKER = False


class TaskError(ReproError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, task_index: int, exc_type: str, message: str, remote_tb: str):
        super().__init__(
            f"task {task_index} raised {exc_type}: {message}\n"
            f"--- worker traceback ---\n{remote_tb}"
        )
        self.task_index = task_index
        self.exc_type = exc_type
        self.remote_traceback = remote_tb


class WorkerCrashError(ReproError):
    """A worker process died mid-task and retries were exhausted."""

    def __init__(self, task_index: int, attempts: int):
        super().__init__(
            f"worker died while running task {task_index} "
            f"({attempts} attempt(s)); the task was retried on fresh "
            "workers and crashed every time"
        )
        self.task_index = task_index
        self.attempts = attempts


def in_worker() -> bool:
    """True when the calling code runs inside an executor worker."""
    return _IN_WORKER or os.environ.get(_WORKER_ENV) == "1"


def get_state() -> Any:
    """The ``state`` object the executor was constructed with."""
    return _WORKER_STATE


def get_shared() -> Dict[str, np.ndarray]:
    """The broadcast arrays, keyed as passed to ``shared=``."""
    return _WORKER_SHARED


def effective_n_jobs(n_jobs: Optional[int], *, limit: Optional[int] = None) -> int:
    """Resolve an ``n_jobs`` knob into a concrete worker count.

    ``None``/``1`` mean serial, ``-1`` means one worker per CPU, and
    the result is clamped to ``limit`` (e.g. the task count).  Inside
    an executor worker this always returns 1 — nested pools would
    oversubscribe the machine without speeding anything up.
    """
    if n_jobs is not None and (n_jobs == 0 or n_jobs < -1):
        raise ValidationError("n_jobs must be None, -1, or a positive integer")
    if n_jobs is None:
        jobs = 1
    elif n_jobs == -1:
        jobs = os.cpu_count() or 1
    else:
        jobs = int(n_jobs)
    if in_worker():
        return 1
    if limit is not None:
        jobs = min(jobs, max(1, int(limit)))
    return max(1, jobs)


def _worker_main(
    handoff_token: Optional[int],
    pickled_fn_state: Optional[tuple],
    shared_handles: Optional[dict],
    conn,
) -> None:
    """Worker process body: attach shared arrays, then serve tasks.

    Each worker talks to the parent over its **own** duplex pipe —
    there is no shared queue, so a worker dying at any instant can
    never leave a cross-worker lock held or interleave a partial
    message into another worker's stream (``Connection.send`` is
    synchronous; an async feeder thread would let ``os._exit`` kill a
    half-written frame).  Messages out are ``(task_index, status,
    payload)`` with status ``"ok"`` or ``"err"``; the loop exits on a
    ``None`` sentinel.  Everything here is deliberately small: this
    code runs outside the parent's test coverage, so the logic that
    matters (retry accounting, ordering, reduction) lives parent-side.
    """
    global _WORKER_STATE, _WORKER_SHARED, _IN_WORKER
    _IN_WORKER = True
    os.environ[_WORKER_ENV] = "1"
    if handoff_token is not None:  # fork path: inherited, never pickled
        fn, state = _FORK_HANDOFF[handoff_token]
    else:  # spawn path
        fn, state = pickled_fn_state
    _WORKER_STATE = state
    attached = attach(shared_handles) if shared_handles else None
    _WORKER_SHARED = attached.arrays if attached is not None else {}
    try:
        while True:
            item = conn.recv()
            if item is None:
                break
            index, payload = item
            try:
                conn.send((index, "ok", fn(payload)))
            except BaseException as exc:  # surfaced parent-side as TaskError
                conn.send(
                    (
                        index,
                        "err",
                        (type(exc).__name__, str(exc), traceback.format_exc()),
                    )
                )
    except EOFError:  # parent died; nothing left to serve
        pass
    finally:
        if attached is not None:
            attached.close()


class ParallelExecutor:
    """Run one task function over payload lists, in parallel.

    Parameters
    ----------
    fn:
        The task function, called as ``fn(payload)`` for every payload
        passed to :meth:`map`.  It reads broadcast arrays via
        :func:`get_shared` and the shared ``state`` via
        :func:`get_state`, identically under every backend.
    n_jobs:
        Worker count (``None``/1 serial, ``-1`` per-CPU).
    backend:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.
    state:
        Arbitrary object made available to tasks via :func:`get_state`
        — transported by fork inheritance when possible, by pickle
        under spawn.
    shared:
        Mapping of name -> ndarray broadcast zero-copy to workers
        (:mod:`repro.utils.shm`); the executor owns the segments and
        unlinks them on :meth:`shutdown` even when a map raises.
    max_retries:
        How many times a task whose worker *died* is retried on a
        fresh worker before :class:`WorkerCrashError`.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        n_jobs: Optional[int] = None,
        *,
        backend: str = "process",
        state: Any = None,
        shared: Optional[Mapping[str, np.ndarray]] = None,
        max_retries: int = 1,
    ):
        if backend not in EXECUTOR_BACKENDS:
            raise ValidationError(
                f"backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
            )
        if max_retries < 0:
            raise ValidationError("max_retries must be non-negative")
        self.fn = fn
        self.n_jobs = effective_n_jobs(n_jobs)
        self.backend = backend if self.n_jobs > 1 else "serial"
        self.max_retries = int(max_retries)
        self._state = state
        self._shared_input = dict(shared) if shared else {}
        self._shm: Optional[SharedArrays] = None
        self._workers: List = []
        self._conns: List = []
        self._ctx = None
        self._handoff_token: Optional[int] = None
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle

    def __enter__(self) -> "ParallelExecutor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.backend != "process":
            return
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._fork = self._ctx.get_start_method() == "fork"
        if self._shared_input:
            self._shm = SharedArrays(self._shared_input)
        if self._fork:
            self._handoff_token = next(_HANDOFF_COUNTER)
            _FORK_HANDOFF[self._handoff_token] = (self.fn, self._state)
        for worker_id in range(self.n_jobs):
            self._spawn_worker(worker_id)

    def _spawn_worker(self, worker_id: int) -> None:
        """(Re)start one worker on a private duplex pipe."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._handoff_token,
                None if self._fork else (self.fn, self._state),
                self._shm.handles if self._shm is not None else None,
                child_conn,
            ),
            daemon=True,
        )
        process.start()
        # The child holds its own copy of the pipe end; closing ours
        # makes a dead worker observable as EOF on parent_conn.
        child_conn.close()
        if worker_id < len(self._workers):
            self._workers[worker_id] = process
            self._conns[worker_id] = parent_conn
        else:
            self._workers.append(process)
            self._conns.append(parent_conn)

    def shutdown(self) -> None:
        """Stop workers and release shared segments (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError, BrokenPipeError):  # dead worker
                pass
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._workers = []
        self._conns = []
        if self._handoff_token is not None:
            _FORK_HANDOFF.pop(self._handoff_token, None)
            self._handoff_token = None
        if self._shm is not None:
            self._shm.unlink()
            self._shm = None
        self._started = False

    # ------------------------------------------------------------------
    # execution

    def map(self, payloads: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over every payload; results in payload order.

        Raises :class:`TaskError` if a task raised (after letting
        in-flight tasks finish) and :class:`WorkerCrashError` when a
        worker death exhausted its retries.  The pool survives a
        ``TaskError`` — subsequent :meth:`map` calls reuse it.
        """
        if not self._started:
            self.start()
        payloads = list(payloads)
        if not payloads:
            return []
        if self.backend == "serial":
            return self._map_local(payloads, parallel=False)
        if self.backend == "thread":
            return self._map_local(payloads, parallel=True)
        return self._map_process(payloads)

    def _map_local(self, payloads: List[Any], *, parallel: bool) -> List[Any]:
        """Serial/thread execution with the same context accessors.

        The thread backend also raises the :func:`in_worker` flag so
        task code applying the nested-parallelism guard behaves the
        same as under the process backend; plain serial maps leave it
        down (a serial search over parallel fits is legitimate).
        """
        global _WORKER_STATE, _WORKER_SHARED, _IN_WORKER
        prev = (_WORKER_STATE, _WORKER_SHARED, _IN_WORKER)
        _WORKER_STATE = self._state
        _WORKER_SHARED = dict(self._shared_input)
        try:
            if not parallel:
                return [self.fn(payload) for payload in payloads]
            _IN_WORKER = True
            with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
                return list(pool.map(self.fn, payloads))
        finally:
            _WORKER_STATE, _WORKER_SHARED, _IN_WORKER = prev

    def _map_process(self, payloads: List[Any]) -> List[Any]:
        """Dispatch/collect loop over the per-worker pipes.

        ``connection.wait`` watches every worker's pipe *and* its
        process sentinel, so a completed task and a crashed worker are
        both observed immediately, with no polling interval and no
        shared queue whose locks a dying worker could take down.
        """
        n_tasks = len(payloads)
        results: List[Any] = [None] * n_tasks
        done = [False] * n_tasks
        retries = [0] * n_tasks
        pending = list(range(n_tasks - 1, -1, -1))  # pop() -> task order
        assigned: Dict[int, Optional[int]] = {
            w: None for w in range(len(self._workers))
        }
        n_done = 0
        failure: Optional[TaskError] = None

        def dispatch(worker_id: int) -> None:
            while failure is None and pending:
                index = pending.pop()
                try:
                    self._conns[worker_id].send((index, payloads[index]))
                except (BrokenPipeError, OSError):
                    # The worker died between its last answer and this
                    # send; its slot is already unassigned, so this is
                    # a plain respawn, not a task retry.
                    pending.append(index)
                    self._handle_crash(worker_id, assigned, retries, pending)
                    continue
                assigned[worker_id] = index
                return

        def record(index: int, status: str, payload: Any) -> None:
            nonlocal n_done, failure
            if status == "ok":
                results[index] = payload
            elif failure is None:
                failure = TaskError(index, *payload)
            if not done[index]:
                done[index] = True
                n_done += 1

        for worker_id in assigned:
            dispatch(worker_id)

        while n_done < n_tasks:
            if failure is not None and all(
                index is None for index in assigned.values()
            ):
                break  # error + nothing in flight: surface it
            watch = {self._conns[w]: w for w in assigned}
            watch.update({self._workers[w].sentinel: w for w in assigned})
            for ready in connection.wait(list(watch)):
                worker_id = watch[ready]
                conn = self._conns[worker_id]
                if ready is conn or conn.poll():
                    # Drain the result even when the wake-up came from
                    # the sentinel — the worker may have finished its
                    # task and exited before we looked.
                    try:
                        index, status, payload = conn.recv()
                    except (EOFError, OSError):
                        self._handle_crash(worker_id, assigned, retries, pending)
                        dispatch(worker_id)
                        continue
                    assigned[worker_id] = None
                    record(index, status, payload)
                    dispatch(worker_id)
                elif not self._workers[worker_id].is_alive():
                    self._handle_crash(worker_id, assigned, retries, pending)
                    dispatch(worker_id)

        if failure is not None:
            raise failure
        return results

    def _handle_crash(
        self,
        worker_id: int,
        assigned: Dict[int, Optional[int]],
        retries: List[int],
        pending: List[int],
    ) -> None:
        """Respawn a dead worker and requeue (or give up on) its task."""
        self._workers[worker_id].join()
        self._conns[worker_id].close()
        index = assigned[worker_id]
        self._spawn_worker(worker_id)
        assigned[worker_id] = None
        if index is None:
            return
        retries[index] += 1
        if retries[index] > self.max_retries:
            self._abort_workers()
            raise WorkerCrashError(index, retries[index])
        # Retry on the freshly spawned worker; determinism is
        # unaffected because the payload (and its seed) is reused.
        pending.append(index)

    def _abort_workers(self) -> None:
        """Tear the pool down hard after an unrecoverable crash."""
        for process in self._workers:
            if process.is_alive():
                process.terminate()
        for process in self._workers:
            process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._workers = []
        self._conns = []
        self._started = False
        if self._handoff_token is not None:
            _FORK_HANDOFF.pop(self._handoff_token, None)
            self._handoff_token = None
        if self._shm is not None:
            self._shm.unlink()
            self._shm = None


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    n_jobs: Optional[int] = None,
    *,
    backend: str = "process",
    state: Any = None,
    shared: Optional[Mapping[str, np.ndarray]] = None,
    max_retries: int = 1,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    with ParallelExecutor(
        fn,
        n_jobs,
        backend=backend,
        state=state,
        shared=shared,
        max_retries=max_retries,
    ) as executor:
        return executor.map(payloads)
