"""The paper's primary contribution: the iFair representation learner.

* :class:`~repro.core.distance.WeightedMinkowski` — Definition 7.
* :class:`~repro.core.objective.IFairObjective` — Definitions 4-6 and 9
  with fully analytic gradients.
* :class:`~repro.core.model.IFair` — the estimator (Definitions 2, 3, 8,
  L-BFGS optimisation of Section III-C, iFair-a / iFair-b inits).
* :mod:`~repro.core.pareto` / :mod:`~repro.core.tuning` — the paper's
  hyper-parameter protocol (grid search with process-parallel and
  successive-halving execution, Pareto-optimal models, the three
  tuning criteria of Table III).
* :mod:`~repro.core.executor` — the process-based parallel task
  runner behind ``n_jobs`` knobs (deterministic seeding, shared-memory
  broadcast, crash-isolated retry).
"""

from repro.core.distance import WeightedMinkowski
from repro.core.executor import (
    ParallelExecutor,
    PoolBroker,
    TaskError,
    WorkerCrashError,
    WorkerPool,
    effective_n_jobs,
    run_tasks,
    shutdown_session_pools,
)
from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.core.pareto import pareto_front, is_dominated
from repro.core.tuning import (
    GridSearch,
    GridSearchResult,
    HalvingConfig,
    TuningCriterion,
    default_hyper_grid,
)

__all__ = [
    "WeightedMinkowski",
    "IFair",
    "IFairObjective",
    "ParallelExecutor",
    "PoolBroker",
    "WorkerPool",
    "TaskError",
    "WorkerCrashError",
    "effective_n_jobs",
    "run_tasks",
    "shutdown_session_pools",
    "pareto_front",
    "is_dominated",
    "GridSearch",
    "GridSearchResult",
    "HalvingConfig",
    "TuningCriterion",
    "default_hyper_grid",
]
