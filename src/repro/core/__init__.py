"""The paper's primary contribution: the iFair representation learner.

* :class:`~repro.core.distance.WeightedMinkowski` — Definition 7.
* :class:`~repro.core.objective.IFairObjective` — Definitions 4-6 and 9
  with fully analytic gradients.
* :class:`~repro.core.model.IFair` — the estimator (Definitions 2, 3, 8,
  L-BFGS optimisation of Section III-C, iFair-a / iFair-b inits).
* :mod:`~repro.core.pareto` / :mod:`~repro.core.tuning` — the paper's
  hyper-parameter protocol (grid search, Pareto-optimal models, the
  three tuning criteria of Table III).
"""

from repro.core.distance import WeightedMinkowski
from repro.core.model import IFair
from repro.core.objective import IFairObjective
from repro.core.pareto import pareto_front, is_dominated
from repro.core.tuning import (
    GridSearch,
    TuningCriterion,
    default_hyper_grid,
)

__all__ = [
    "WeightedMinkowski",
    "IFair",
    "IFairObjective",
    "pareto_front",
    "is_dominated",
    "GridSearch",
    "TuningCriterion",
    "default_hyper_grid",
]
