"""Hyper-parameter search with the paper's tuning criteria.

Section V-B/V-D protocol: grid search the mixture coefficients over
``{0, 0.05, 0.1, 1, 10, 100}`` and the prototype count over
``{10, 20, 30}``, evaluate each candidate on a validation split, and
select according to one of three criteria (Table III):

* ``TuningCriterion.MAX_UTILITY`` — best utility (AUC / MAP);
* ``TuningCriterion.MAX_FAIRNESS`` — best consistency yNN;
* ``TuningCriterion.OPTIMAL`` — best harmonic mean of the two.

:class:`GridSearch` is deliberately model-agnostic: it receives a
factory building a candidate from one grid point and an evaluation
callback returning ``(utility, fairness)``.  Two execution knobs make
the protocol fast at scale:

* ``n_jobs`` fans candidate fits over a process pool
  (:class:`repro.core.executor.ParallelExecutor`); results are
  identical to the serial run because every candidate is seeded by its
  parameters, not by execution order.
* ``strategy="halving"`` replaces the exhaustive sweep with successive
  halving: rung 0 fits *every* candidate at a fraction of the
  iteration budget with a single restart, each rung promotes the top
  fraction under **each** criterion (their union, so all three
  winners survive), warm-starts survivors from their previous-rung
  parameters, and the final rung re-fits the few survivors at the
  exact original budgets — so the selected candidate is the same one
  exhaustive search picks whenever its winner survives the early
  rungs (pinned on seeded data by the property suite).

Two further knobs refine those:

* ``pool="session"`` borrows the persistent broker worker pool
  (:class:`repro.core.executor.PoolBroker`) instead of spawning a
  fresh one, and routes the ``shared`` broadcast through the shm
  arena cache — back-to-back searches and refits skip the spawn and
  re-broadcast cost, with bitwise-identical results.
* ``HalvingConfig(promote="extrapolate")`` replaces rank-based rung
  promotion with a learning-curve extrapolation: each candidate's
  scores over the rung budgets are fit with a saturating curve and
  the rung promotes on the *predicted full-budget* score, so a slow
  starter with the higher asymptote survives rungs that pure ranking
  would eliminate it from.  The Pareto-front protection of the rank
  promoter is kept.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.executor import (
    POOL_MODES,
    ParallelExecutor,
    effective_n_jobs,
    get_state,
)
from repro.core.pareto import pareto_front
from repro.exceptions import ValidationError
from repro.telemetry.metrics import get_registry
from repro.telemetry.tracing import get_tracer
from repro.utils.mathkit import harmonic_mean

MIXTURE_GRID: Tuple[float, ...] = (0.0, 0.05, 0.1, 1.0, 10.0, 100.0)
PROTOTYPE_GRID: Tuple[int, ...] = (10, 20, 30)
# Anchor counts searched when the landmark fairness oracle is enabled;
# accuracy grows with L while each oracle call stays O(M * L * N).
LANDMARK_GRID: Tuple[int, ...] = (32, 64, 128)

TUNING_STRATEGIES = ("exhaustive", "halving")
PROMOTE_MODES = ("rank", "extrapolate")


class TuningCriterion(enum.Enum):
    """Model-selection rules of Table III."""

    MAX_UTILITY = "max_utility"
    MAX_FAIRNESS = "max_fairness"
    OPTIMAL = "optimal"

    def score(self, utility: float, fairness: float) -> float:
        """Scalarise a (utility, fairness) pair under this criterion."""
        if self is TuningCriterion.MAX_UTILITY:
            return utility
        if self is TuningCriterion.MAX_FAIRNESS:
            return fairness
        return harmonic_mean(utility, fairness)


def default_hyper_grid(
    mixtures: Sequence[float] = MIXTURE_GRID,
    prototypes: Sequence[int] = PROTOTYPE_GRID,
    landmarks: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """The paper's grid: all (lambda, mu, K) combinations.

    The degenerate corner lambda = mu = 0 (nothing to optimise) is
    dropped.  Passing ``landmarks`` (e.g. :data:`LANDMARK_GRID`)
    crosses the grid with the landmark fairness oracle's anchor count:
    each point gains ``pair_mode="landmark"`` and one ``n_landmarks``
    value, making the accuracy-vs-cost knob of the large-M oracle a
    first-class tunable.
    """
    grid = []
    for lam, mu, k in itertools.product(mixtures, mixtures, prototypes):
        if lam == 0.0 and mu == 0.0:
            continue
        base = {"lambda_util": lam, "mu_fair": mu, "n_prototypes": int(k)}
        if landmarks is None:
            grid.append(base)
            continue
        for n_land in landmarks:
            point = dict(base)
            point["pair_mode"] = "landmark"
            point["n_landmarks"] = int(n_land)
            grid.append(point)
    return grid


@dataclass
class CandidateResult:
    """One evaluated grid point.

    ``order`` is the candidate's position in the original grid — the
    deterministic tie-break of :meth:`GridSearchResult.best` and the
    key halving uses to report promotions.  ``theta`` carries the
    fitted parameter vector when the build artifact exposes one
    (``artifact.theta_``); it survives ``keep_artifacts=False`` so
    parity tests can compare fits bitwise without holding models.
    """

    params: Dict
    utility: float
    fairness: float
    artifact: object = None
    order: int = 0
    info: Optional[Dict] = None
    theta: Optional[np.ndarray] = None

    def score(self, criterion: TuningCriterion) -> float:
        return criterion.score(self.utility, self.fairness)


def _selection_key(
    candidate: CandidateResult, criterion: TuningCriterion
) -> Tuple[float, float, float]:
    """Total order used for selection and promotion.

    Higher score wins; equal scores break by higher utility, then by
    earlier grid order — explicitly, rather than through ``max``'s
    first-wins behaviour, so halving (which sees a subset of the grid)
    and exhaustive search agree on tied candidates.  NaN scores sort
    last.
    """

    return (
        _finite_or_neg_inf(candidate.score(criterion)),
        _finite_or_neg_inf(candidate.utility),
        -candidate.order,
    )


def _finite_or_neg_inf(value: float) -> float:
    """NaN-safe sort key component (NaN sorts last)."""
    return -math.inf if value != value else value


@dataclass
class GridSearchResult:
    """All evaluated candidates plus convenience selectors."""

    candidates: List[CandidateResult] = field(default_factory=list)
    strategy: str = "exhaustive"
    n_fits: int = 0
    history: List[Dict] = field(default_factory=list)
    _refit: Optional[Callable[[Dict], object]] = field(
        default=None, repr=False, compare=False
    )

    def best(self, criterion: TuningCriterion) -> CandidateResult:
        """Highest-scoring candidate under ``criterion``.

        Ties break deterministically by (utility, then grid order) —
        see :func:`_selection_key`.
        """
        if not self.candidates:
            raise ValidationError("grid search produced no candidates")
        return max(self.candidates, key=lambda c: _selection_key(c, criterion))

    def refit_best(self, criterion: TuningCriterion) -> object:
        """Re-build the winning candidate and return the artifact.

        The refit-on-demand counterpart of ``keep_artifacts=False``:
        large searches drop every fitted artifact after scoring, and
        the one winner that is actually needed is rebuilt here from
        its exact grid parameters (deterministic builds give the same
        artifact the search scored).
        """
        best = self.best(criterion)
        if best.artifact is not None:
            return best.artifact
        if self._refit is None:
            raise ValidationError(
                "refit_best needs the GridSearch that produced this result"
            )
        return self._refit(dict(best.params))

    def pareto_optimal(self) -> List[CandidateResult]:
        """Candidates on the (utility, fairness) Pareto front."""
        if not self.candidates:
            return []
        points = [[c.utility, c.fairness] for c in self.candidates]
        return [self.candidates[i] for i in pareto_front(points)]


@dataclass(frozen=True)
class HalvingConfig:
    """Successive-halving schedule knobs.

    Attributes
    ----------
    n_rungs:
        Total rungs including the final full-budget one.  Rung ``r``
        (of the early rungs) runs at ``max_iter / 2**(n_rungs-1-r)``
        with a single restart; the final rung re-fits survivors at the
        candidate's exact original budgets.
    promote_fraction:
        Fraction of the rung's candidates promoted *per criterion*;
        the promoted set is the union over all three criteria, so each
        criterion's front-runners survive even when utility and
        fairness disagree (they usually do — that trade-off is the
        paper's point).
    min_promote:
        Per-criterion floor on promotions, so tiny grids never shrink
        below a meaningful final rung.
    warm_start:
        Pass the previous rung's fitted ``theta`` to survivor builds
        under the ``warm_start_theta`` parameter key (builds that do
        not understand the key may ignore it).  The final rung is
        always fitted cold at the original parameters, which makes its
        fits — and therefore the selected candidate — identical to the
        exhaustive run's whenever the winner survives.
    promote:
        ``"rank"`` (default) promotes each rung's top slice by the
        *observed* low-budget scores; ``"extrapolate"`` fits a
        saturating learning curve ``s(b) = a + c / b`` over the rung
        budget fractions seen so far and promotes by the *predicted*
        score at the full budget (``b = 1``) — robust to candidates
        whose curves cross, i.e. slow starters with higher asymptotes
        that rank promotion eliminates early.  Rungs with a single
        observation (always rung 0) degrade to rank promotion, and
        both modes keep the (utility, fairness) Pareto-front
        protection.
    """

    n_rungs: int = 3
    promote_fraction: float = 1.0 / 3.0
    min_promote: int = 2
    warm_start: bool = True
    promote: str = "rank"

    def __post_init__(self):
        if self.n_rungs < 1:
            raise ValidationError("n_rungs must be at least 1")
        if not 0.0 < self.promote_fraction <= 1.0:
            raise ValidationError("promote_fraction must lie in (0, 1]")
        if self.min_promote < 1:
            raise ValidationError("min_promote must be at least 1")
        if self.promote not in PROMOTE_MODES:
            raise ValidationError(
                f"promote must be one of {PROMOTE_MODES}, got {self.promote!r}"
            )


def predict_full_budget(observations: Sequence[Tuple[float, float]]) -> float:
    """Extrapolate a candidate's score to the full training budget.

    ``observations`` are ``(budget_fraction, score)`` pairs from the
    halving rungs (fractions in ``(0, 1]``).  A least-squares fit of
    the saturating model ``s(b) = a + c / b`` — linear in ``1/b``, so
    two points determine it exactly and more points regress it —
    yields the prediction ``s(1) = a + c``.  With fewer than two
    finite observations (or a degenerate fit) the latest observed
    score is returned, which makes extrapolation promotion collapse
    to rank promotion exactly when there is no curve to fit.
    """
    finite = [
        (b, s) for b, s in observations if math.isfinite(s) and b > 0.0
    ]
    if not finite:
        return float("nan")
    if len({b for b, _ in finite}) < 2:
        return finite[-1][1]
    budgets = np.array([b for b, _ in finite], dtype=np.float64)
    scores = np.array([s for _, s in finite], dtype=np.float64)
    design = np.stack([np.ones_like(budgets), 1.0 / budgets], axis=1)
    coef, *_ = np.linalg.lstsq(design, scores, rcond=None)
    predicted = float(coef[0] + coef[1])
    if not math.isfinite(predicted):  # pragma: no cover - defensive
        return finite[-1][1]
    return predicted


def _default_theta_of(artifact: object) -> Optional[np.ndarray]:
    """Fitted parameter vector of an artifact, when it exposes one."""
    theta = getattr(artifact, "theta_", None)
    if theta is None:
        return None
    return np.asarray(theta, dtype=np.float64)


def _grid_task(payload: Dict) -> Dict:
    """Worker body: build one candidate, evaluate it, strip it down.

    Runs under any executor backend; the build/evaluate callables ride
    in the executor ``state`` (inherited memory under fork, pickled
    under spawn).  The artifact itself is only shipped back when the
    caller asked to keep it — for large grids the fitted model stays
    in the worker and dies with the task.
    """
    state = get_state()
    artifact = state["build"](dict(payload["params"]))
    utility, fairness = state["evaluate"](artifact)
    summarize = state["summarize"]
    theta_of = state["theta_of"]
    want_summary = summarize is not None and payload["summarize"]
    return {
        "order": payload["order"],
        "utility": float(utility),
        "fairness": float(fairness),
        "artifact": artifact if payload["keep"] else None,
        "info": summarize(artifact) if want_summary else None,
        "theta": theta_of(artifact) if theta_of is not None else None,
    }


class GridSearch:
    """Search an explicit list of parameter dicts.

    Parameters
    ----------
    build:
        Callable ``params -> artifact`` training one candidate (e.g. a
        fitted representation plus downstream model).  For identical
        serial/parallel results it must be deterministic in ``params``
        (seed from your config, not from global state).
    evaluate:
        Callable ``artifact -> (utility, fairness)`` scoring the
        candidate on validation data.
    grid:
        Iterable of parameter dicts; defaults to the paper's grid.
    n_jobs:
        Candidate fits run on this many worker processes (``None``/1
        serial, ``-1`` per CPU).  The selected candidate, scores and
        fitted parameters are identical for any value.
    backend:
        ``"process"`` (default), ``"thread"``, or ``"serial"`` — see
        :mod:`repro.core.executor`.
    strategy:
        ``"exhaustive"`` (every grid point at full budget) or
        ``"halving"`` (successive halving, 3-4x fewer fit-iterations
        on the paper grid; see :class:`HalvingConfig`).
    halving:
        Schedule knobs for ``strategy="halving"``.
    keep_artifacts:
        ``False`` drops each fitted artifact after scoring (they never
        leave the worker), bounding memory on 630-point searches; use
        :meth:`GridSearchResult.refit_best` to rebuild the winner.
    summarize:
        Optional ``artifact -> dict`` reduced worker-side before the
        artifact is dropped; stored as ``CandidateResult.info``.
    theta_of:
        Optional ``artifact -> ndarray`` extracting the fitted
        parameter vector (default: ``artifact.theta_`` if present).
        Halving warm-starts survivors from it.
    shared:
        Mapping of name -> ndarray broadcast zero-copy to worker
        processes; builds read it via
        :func:`repro.core.executor.get_shared`.
    pool:
        ``"per-call"`` (default) spawns a private worker pool for this
        search; ``"session"`` borrows the persistent broker pool and
        the shm arena cache, so consecutive searches (and the refit
        that follows) skip the spawn and re-broadcast cost.  Selected
        candidates, scores and thetas are identical either way.
    """

    def __init__(
        self,
        build: Callable[[Dict], object],
        evaluate: Callable[[object], Tuple[float, float]],
        grid: Optional[Iterable[Dict]] = None,
        *,
        n_jobs: Optional[int] = None,
        backend: str = "process",
        strategy: str = "exhaustive",
        halving: Optional[HalvingConfig] = None,
        keep_artifacts: bool = True,
        summarize: Optional[Callable[[object], Dict]] = None,
        theta_of: Optional[Callable[[object], Optional[np.ndarray]]] = _default_theta_of,
        shared: Optional[Dict[str, np.ndarray]] = None,
        pool: str = "per-call",
    ):
        if strategy not in TUNING_STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {TUNING_STRATEGIES}, got {strategy!r}"
            )
        if pool not in POOL_MODES:
            raise ValidationError(
                f"pool must be one of {POOL_MODES}, got {pool!r}"
            )
        self.build = build
        self.evaluate = evaluate
        self.grid = list(grid) if grid is not None else default_hyper_grid()
        if not self.grid:
            raise ValidationError("hyper-parameter grid must not be empty")
        self.n_jobs = n_jobs
        self.backend = backend
        self.strategy = strategy
        self.halving = halving or HalvingConfig()
        self.keep_artifacts = bool(keep_artifacts)
        self.summarize = summarize
        self.theta_of = theta_of
        self.shared = shared
        self.pool = pool

    # ------------------------------------------------------------------

    def run(self) -> GridSearchResult:
        """Execute the search and return every scored candidate."""
        state = {
            "build": self.build,
            "evaluate": self.evaluate,
            "summarize": self.summarize,
            "theta_of": self.theta_of,
        }
        registry = get_registry()
        registry.counter("tuning_searches_total").inc()
        with get_tracer().span(
            "tuning.search", strategy=self.strategy, grid=len(self.grid)
        ), ParallelExecutor(
            _grid_task,
            # A pool wider than the grid would spawn idle workers.
            effective_n_jobs(self.n_jobs, limit=len(self.grid)),
            backend=self.backend,
            state=state,
            shared=self.shared,
            pool=self.pool,
        ) as executor:
            if (
                self.strategy == "halving"
                and self.halving.n_rungs > 1
                and len(self.grid) > self.halving.min_promote + 1
            ):
                result = self._run_halving(executor)
            else:
                # Halving cannot prune a grid this small — the final
                # rung would hold everything anyway, making the early
                # rungs pure overhead.
                result = self._run_exhaustive(executor)
        registry.counter("tuning_fits_total").inc(result.n_fits)
        result._refit = self._refit_candidate
        return result

    def _refit_candidate(self, params: Dict) -> object:
        """Rebuild one candidate after the search pool is gone.

        Builds read their inputs through the executor context
        (:func:`~repro.core.executor.get_shared` / ``get_state``), so
        the rebuild runs inside a one-shot serial executor carrying
        the same state and shared arrays the search workers saw — a
        bare ``self.build(params)`` call would find an empty context
        (and, for the process backend, unlinked segments).
        """
        state = {
            "build": self.build,
            "evaluate": self.evaluate,
            "summarize": self.summarize,
            "theta_of": self.theta_of,
        }
        with ParallelExecutor(
            lambda p: self.build(dict(p)),
            None,
            state=state,
            shared=self.shared,
            pool=self.pool,
        ) as executor:
            return executor.map([dict(params)])[0]

    def _evaluate_points(
        self,
        executor: ParallelExecutor,
        points: List[Tuple[int, Dict]],
        *,
        keep: bool,
        summarize: bool = True,
    ) -> List[CandidateResult]:
        """Fit/score ``(order, params)`` points; results in input order.

        ``summarize=False`` skips the (possibly expensive) summary
        reduction — early halving rungs exist only to rank candidates,
        and their summaries would be discarded with them.
        """
        payloads = [
            {"order": order, "params": params, "keep": keep, "summarize": summarize}
            for order, params in points
        ]
        rows = executor.map(payloads)
        return [
            CandidateResult(
                params=dict(self.grid[row["order"]]),
                utility=row["utility"],
                fairness=row["fairness"],
                artifact=row["artifact"],
                order=row["order"],
                info=row["info"],
                theta=row["theta"],
            )
            for row in rows
        ]

    def _run_exhaustive(self, executor: ParallelExecutor) -> GridSearchResult:
        points = [(order, params) for order, params in enumerate(self.grid)]
        candidates = self._evaluate_points(
            executor, points, keep=self.keep_artifacts
        )
        return GridSearchResult(
            candidates=candidates,
            strategy="exhaustive",
            n_fits=len(points),
        )

    # ------------------------------------------------------------------
    # successive halving

    def _rung_budget(self, rung: int) -> int:
        """Iteration-budget divisor of an early rung (final rung is 1)."""
        return 2 ** (self.halving.n_rungs - 1 - rung)

    def _rung_params(
        self, order: int, rung: int, thetas: Dict[int, np.ndarray]
    ) -> Dict:
        """Parameters of one candidate at one rung.

        Early rungs shrink the ``max_iter``/``n_restarts`` budget keys
        (when the grid carries them) and warm-start from the previous
        rung; the final rung returns the grid point verbatim, so its
        fits match the exhaustive run's bitwise.
        """
        params = dict(self.grid[order])
        if rung == self.halving.n_rungs - 1:
            return params
        divisor = self._rung_budget(rung)
        if "max_iter" in params:
            params["max_iter"] = max(1, int(math.ceil(params["max_iter"] / divisor)))
        if "n_restarts" in params:
            params["n_restarts"] = 1
        theta = thetas.get(order)
        if self.halving.warm_start and theta is not None:
            params["warm_start_theta"] = theta
        return params

    def _promote(
        self,
        candidates: List[CandidateResult],
        curves: Optional[Dict[int, List[Tuple[float, CandidateResult]]]] = None,
    ) -> List[int]:
        """Orders surviving a rung.

        Union of (a) the top ``promote_fraction`` slice under *each*
        criterion and (b) the (utility, fairness) Pareto front.  Every
        criterion's full-budget winner lies on the front, and front
        membership only depends on the candidates' *ordering* along
        each axis — which low-budget fits preserve far more reliably
        than absolute scores (underfit models drift toward low
        utility / high fairness, shifting the harmonic-mean argmax but
        not who dominates whom).  Promoting the front is what makes
        halving agree with exhaustive search on the seeded benchmark
        configs under all three criteria.

        Under ``promote="extrapolate"`` the per-criterion ranking uses
        the *predicted full-budget* score from each candidate's rung
        learning curve (``curves``) instead of the observed low-budget
        score; the front protection is unchanged (it operates on the
        observed ordering, which extrapolation would only amplify).
        """
        count = max(
            self.halving.min_promote,
            int(math.ceil(self.halving.promote_fraction * len(candidates))),
        )
        extrapolate = self.halving.promote == "extrapolate" and curves is not None
        survivors: set = set()
        for criterion in TuningCriterion:
            if extrapolate:
                predicted = {
                    c.order: predict_full_budget(
                        [(b, cand.score(criterion)) for b, cand in curves[c.order]]
                    )
                    for c in candidates
                }
                key = lambda c: (  # noqa: E731 - mirrors _selection_key
                    _finite_or_neg_inf(predicted[c.order]),
                    _finite_or_neg_inf(c.utility),
                    -c.order,
                )
            else:
                key = lambda c: _selection_key(c, criterion)  # noqa: E731
            ranked = sorted(candidates, key=key, reverse=True)
            survivors.update(c.order for c in ranked[:count])
        points = [[c.utility, c.fairness] for c in candidates]
        if np.all(np.isfinite(points)):
            survivors.update(candidates[i].order for i in pareto_front(points))
        return sorted(survivors)

    def _run_halving(self, executor: ParallelExecutor) -> GridSearchResult:
        config = self.halving
        alive = list(range(len(self.grid)))
        thetas: Dict[int, np.ndarray] = {}
        history: List[Dict] = []
        # Per-candidate (budget_fraction, result) observations across
        # rungs — the learning curves promote="extrapolate" fits.  A
        # warm-started rung *resumes* the previous fit, so its score
        # reflects the cumulative iterations spent on that candidate,
        # not the rung's own slice; recording the raw slice would make
        # every curve look steeper than it is and systematically
        # inflate predicted asymptotes.
        curves: Dict[int, List[Tuple[float, CandidateResult]]] = {
            order: [] for order in alive
        }
        spent: Dict[int, float] = {}
        n_fits = 0
        candidates: List[CandidateResult] = []
        for rung in range(config.n_rungs - 1):
            points = [
                (order, self._rung_params(order, rung, thetas)) for order in alive
            ]
            with get_tracer().span(
                "tuning.rung",
                rung=rung,
                candidates=len(points),
                budget_divisor=self._rung_budget(rung),
            ):
                candidates = self._evaluate_points(
                    executor, points, keep=False, summarize=False
                )
            n_fits += len(points)
            fraction = 1.0 / self._rung_budget(rung)
            for candidate in candidates:
                # Same predicate _rung_params used when building this
                # rung: a candidate resumed from its previous theta
                # has spent its earlier rungs' budget too.
                warm_started = (
                    config.warm_start and thetas.get(candidate.order) is not None
                )
                budget = fraction + (
                    spent.get(candidate.order, 0.0) if warm_started else 0.0
                )
                spent[candidate.order] = budget
                curves[candidate.order].append((budget, candidate))
            promoted = self._promote(candidates, curves)
            history.append(
                {
                    "rung": rung,
                    "budget_divisor": self._rung_budget(rung),
                    "candidates": list(alive),
                    "promoted": promoted,
                    # Cumulative-when-warm-started fraction each
                    # candidate's score corresponds to (the x-axis of
                    # the extrapolation curves).
                    "budget_fraction_spent": {
                        order: spent[order] for order in alive
                    },
                }
            )
            thetas = {c.order: c.theta for c in candidates if c.theta is not None}
            if len(promoted) == len(alive):
                # Promotion is not pruning (tiny grid / generous
                # fraction): further reduced-budget rungs cost fits
                # without shrinking the final rung — skip to it.
                alive = promoted
                break
            alive = promoted
        final_rung = config.n_rungs - 1
        points = [
            (order, self._rung_params(order, final_rung, thetas)) for order in alive
        ]
        with get_tracer().span(
            "tuning.rung",
            rung=final_rung,
            candidates=len(points),
            budget_divisor=1,
        ):
            candidates = self._evaluate_points(
                executor, points, keep=self.keep_artifacts
            )
        n_fits += len(points)
        history.append(
            {
                "rung": final_rung,
                "budget_divisor": 1,
                "candidates": list(alive),
                "promoted": list(alive),
            }
        )
        return GridSearchResult(
            candidates=candidates,
            strategy="halving",
            n_fits=n_fits,
            history=history,
        )
