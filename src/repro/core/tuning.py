"""Hyper-parameter grid search with the paper's tuning criteria.

Section V-B/V-D protocol: grid search the mixture coefficients over
``{0, 0.05, 0.1, 1, 10, 100}`` and the prototype count over
``{10, 20, 30}``, evaluate each candidate on a validation split, and
select according to one of three criteria (Table III):

* ``TuningCriterion.MAX_UTILITY`` — best utility (AUC / MAP);
* ``TuningCriterion.MAX_FAIRNESS`` — best consistency yNN;
* ``TuningCriterion.OPTIMAL`` — best harmonic mean of the two.

:class:`GridSearch` is deliberately model-agnostic: it receives a
factory building a candidate from one grid point and an evaluation
callback returning ``(utility, fairness)``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.pareto import pareto_front
from repro.exceptions import ValidationError
from repro.utils.mathkit import harmonic_mean

MIXTURE_GRID: Tuple[float, ...] = (0.0, 0.05, 0.1, 1.0, 10.0, 100.0)
PROTOTYPE_GRID: Tuple[int, ...] = (10, 20, 30)
# Anchor counts searched when the landmark fairness oracle is enabled;
# accuracy grows with L while each oracle call stays O(M * L * N).
LANDMARK_GRID: Tuple[int, ...] = (32, 64, 128)


class TuningCriterion(enum.Enum):
    """Model-selection rules of Table III."""

    MAX_UTILITY = "max_utility"
    MAX_FAIRNESS = "max_fairness"
    OPTIMAL = "optimal"

    def score(self, utility: float, fairness: float) -> float:
        """Scalarise a (utility, fairness) pair under this criterion."""
        if self is TuningCriterion.MAX_UTILITY:
            return utility
        if self is TuningCriterion.MAX_FAIRNESS:
            return fairness
        return harmonic_mean(utility, fairness)


def default_hyper_grid(
    mixtures: Sequence[float] = MIXTURE_GRID,
    prototypes: Sequence[int] = PROTOTYPE_GRID,
    landmarks: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    """The paper's grid: all (lambda, mu, K) combinations.

    The degenerate corner lambda = mu = 0 (nothing to optimise) is
    dropped.  Passing ``landmarks`` (e.g. :data:`LANDMARK_GRID`)
    crosses the grid with the landmark fairness oracle's anchor count:
    each point gains ``pair_mode="landmark"`` and one ``n_landmarks``
    value, making the accuracy-vs-cost knob of the large-M oracle a
    first-class tunable.
    """
    grid = []
    for lam, mu, k in itertools.product(mixtures, mixtures, prototypes):
        if lam == 0.0 and mu == 0.0:
            continue
        base = {"lambda_util": lam, "mu_fair": mu, "n_prototypes": int(k)}
        if landmarks is None:
            grid.append(base)
            continue
        for n_land in landmarks:
            point = dict(base)
            point["pair_mode"] = "landmark"
            point["n_landmarks"] = int(n_land)
            grid.append(point)
    return grid


@dataclass
class CandidateResult:
    """One evaluated grid point."""

    params: Dict
    utility: float
    fairness: float
    artifact: object = None

    def score(self, criterion: TuningCriterion) -> float:
        return criterion.score(self.utility, self.fairness)


@dataclass
class GridSearchResult:
    """All evaluated candidates plus convenience selectors."""

    candidates: List[CandidateResult] = field(default_factory=list)

    def best(self, criterion: TuningCriterion) -> CandidateResult:
        """Highest-scoring candidate under ``criterion``."""
        if not self.candidates:
            raise ValidationError("grid search produced no candidates")
        return max(self.candidates, key=lambda c: c.score(criterion))

    def pareto_optimal(self) -> List[CandidateResult]:
        """Candidates on the (utility, fairness) Pareto front."""
        if not self.candidates:
            return []
        points = [[c.utility, c.fairness] for c in self.candidates]
        return [self.candidates[i] for i in pareto_front(points)]


class GridSearch:
    """Exhaustive search over an explicit list of parameter dicts.

    Parameters
    ----------
    build:
        Callable ``params -> artifact`` training one candidate (e.g. a
        fitted representation plus downstream model).
    evaluate:
        Callable ``artifact -> (utility, fairness)`` scoring the
        candidate on validation data.
    grid:
        Iterable of parameter dicts; defaults to the paper's grid.
    """

    def __init__(
        self,
        build: Callable[[Dict], object],
        evaluate: Callable[[object], Tuple[float, float]],
        grid: Optional[Iterable[Dict]] = None,
    ):
        self.build = build
        self.evaluate = evaluate
        self.grid = list(grid) if grid is not None else default_hyper_grid()
        if not self.grid:
            raise ValidationError("hyper-parameter grid must not be empty")

    def run(self) -> GridSearchResult:
        """Train and evaluate every grid point."""
        result = GridSearchResult()
        for params in self.grid:
            artifact = self.build(dict(params))
            utility, fairness = self.evaluate(artifact)
            result.candidates.append(
                CandidateResult(
                    params=dict(params),
                    utility=float(utility),
                    fairness=float(fairness),
                    artifact=artifact,
                )
            )
        return result
