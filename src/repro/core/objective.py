r"""The iFair loss (Definitions 4-6, 9) with fully analytic gradients.

Forward pass
------------
Given records ``X`` (M x N), prototypes ``V`` (K x N) and attribute
weights ``alpha`` (N,):

.. math::

    d_{ik}      &= \sum_n \alpha_n |x_{in} - v_{kn}|^p           \\
    u_{ik}      &= \mathrm{softmax}_k(-d_{ik})                   \\
    \tilde X    &= U V                                            \\
    L_{util}    &= \sum_{i,n} (x_{in} - \tilde x_{in})^2          \\
    L_{fair}    &= \sum_{i,j} (\tilde D_{ij} - D^*_{ij})^2        \\
    L           &= \lambda L_{util} + \mu L_{fair}

where :math:`\tilde D_{ij} = \|\tilde x_i - \tilde x_j\|^2` and
:math:`D^*_{ij} = \|x^*_i - x^*_j\|^2` is the (precomputed) squared
Euclidean distance on the *non-protected* attributes of the original
records.  ``alpha`` thus parameterises only the clustering softmax;
the fairness target uses unit weights (see DESIGN.md section 4).

Backward pass
-------------
With :math:`G = \partial L / \partial \tilde X`:

* utility part: :math:`2 \lambda (\tilde X - X)`;
* fairness part (full ordered-pair sum, :math:`E = \tilde D - D^*`,
  :math:`r_i = \sum_j E_{ij}`): :math:`8 \mu (r_i \tilde x_i - \sum_j
  E_{ij} \tilde x_j)`;
* through the linear map: :math:`\partial L/\partial V \mathrel{+}= U^T
  G` and :math:`C = G V^T`;
* through the softmax: :math:`P_{ik} = u_{ik} (C_{ik} - \sum_m u_{im}
  C_{im})` and :math:`\partial L / \partial d = -P`;
* through the distance: with ``diff = x_in - v_kn``,
  :math:`\partial L/\partial v_{kn} \mathrel{+}= p\,\alpha_n \sum_i
  P_{ik}\,\mathrm{sign}(diff)\,|diff|^{p-1}` and
  :math:`\partial L/\partial \alpha_n = -\sum_{ik} P_{ik} |diff|^p`.

All of this is verified against central finite differences by the
property tests in ``tests/property/test_gradients.py``.

Fast kernels (GEMM derivation)
------------------------------
For the default ``p = 2`` the oracle never materialises the
``(M, K, N)`` tensors above.  Expanding the square turns the distance
matrix into three matrix products,

.. math::

    d_{ik} = (X^{\circ 2} \alpha)_i
             - 2 \bigl(X (\alpha \circ V)^T\bigr)_{ik}
             + (V^{\circ 2} \alpha)_k,

and the backward pass collapses the same way: with the softmax-Jacobian
product :math:`P` from above,

.. math::

    \sum_m P_{mk} (x_{mn} - v_{kn})
        &= (P^T X)_{kn} - \mathrm{colsum}(P)_k\, v_{kn}, \\
    \sum_{mk} P_{mk} (x_{mn} - v_{kn})^2
        &= \mathrm{rowsum}(P)^T X^{\circ 2}
           - 2 \sum_k (P^T X \circ V)_{kn}
           + \mathrm{colsum}(P)^T V^{\circ 2},

so ``grad_V`` and ``grad_alpha`` share one ``(K, N)`` GEMM
(:math:`P^T X`).  Peak extra allocation drops from ``O(M*K*N)`` to
``O(M*K + M*N)`` and the big per-iteration intermediates live in a
thread-local workspace reused across L-BFGS evaluations.

The fairness term gets the same treatment: the full ordered-pair loss
and its ``dL/dX_tilde`` contribution are evaluated in *moment form*
(:class:`repro.utils.kernels.FullPairFairness`) — expanding
:math:`\tilde D_{ij} = \|\tilde x_i\|^2 + \|\tilde x_j\|^2 - 2
\langle \tilde x_i, \tilde x_j \rangle` collapses every
:math:`O(M^2)` pair sum into Gram-matrix contractions costing
``O(M*N^2)`` — and the sampled-pair gather/scatter runs through a
precomputed sparse incidence operator
(:class:`repro.utils.kernels.PairScatter`) instead of ``np.add.at``.
The kernels live in :mod:`repro.utils.kernels`; the
original einsum implementation is kept verbatim as the generic-``p``
fallback (and as the reference that the property tests in
``tests/property/test_kernel_equivalence.py`` hold the fast path to,
at ``rtol = 1e-10``).  Construct with ``fast_kernels=False`` to force
the reference path.

Pair modes (large-M fairness oracle)
------------------------------------
``pair_mode`` selects how the fairness term sums record pairs:

* ``"full"`` — every ordered pair.  The fast path evaluates it in
  moment form (``O(M * N^2)``, no ``(M, M)`` matrix); the reference
  path precomputes the dense ``D*`` target in ``O(M^2)``.
* ``"sampled"`` — ``max_pairs`` unordered pairs drawn once at
  construction (``O(max_pairs * N)`` per call).
* ``"landmark"`` — the full-pair loss approximated through ``L << M``
  landmark anchors (:class:`repro.utils.kernels.LandmarkFairness`,
  seeded by k-means++ or farthest-point traversal under
  ``random_state``).  Each oracle call costs ``O(M * L * N)`` for any
  Minkowski ``p`` and never materialises an ``(M, M)`` or
  ``(M, K, N)`` tensor: the prototype-distance tensors of the
  generic-``p`` path are evaluated in row blocks
  (:func:`repro.utils.kernels.minkowski_dists_blocked`).  The loss is
  scaled by ``M / L`` so it estimates the full ordered-pair sum —
  ``mu_fair`` keeps one meaning across modes (see
  :attr:`IFairObjective.effective_pairs`) — and at ``L = M`` it
  equals the full-pair loss exactly.

``pair_mode="auto"`` (the default) preserves the historical
behaviour: ``"sampled"`` when ``max_pairs`` is given, else ``"full"``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.telemetry.metrics import get_registry
from repro.telemetry.tracing import get_tracer
from repro.utils import kernels
from repro.utils.landmarks import LANDMARK_METHODS, select_landmarks
from repro.utils.mathkit import pairwise_sq_euclidean, softmax

PAIR_MODES = ("auto", "full", "sampled", "landmark")
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import (
    check_matrix,
    check_protected_indices,
    nonprotected_indices,
)


class IFairObjective:
    """Loss/gradient oracle for one training matrix.

    Parameters
    ----------
    X:
        Training records, shape (M, N).
    protected_indices:
        Column indices of protected attributes (may be empty/None).
    lambda_util, mu_fair:
        Mixture coefficients of Definition 6.
    n_prototypes:
        K, the number of prototype vectors.
    p:
        Minkowski exponent of the softmax distance (p >= 1).
    max_pairs:
        Optional cap on the number of (unordered) record pairs used by
        the fairness loss.  ``None`` uses the full ordered-pair sum;
        otherwise pairs are sampled once at construction.
    pair_mode:
        ``"auto"`` (default: ``"sampled"`` iff ``max_pairs`` is set),
        ``"full"``, ``"sampled"``, or ``"landmark"`` (see module
        docstring).
    n_landmarks:
        Anchor count L for ``pair_mode="landmark"``; defaults to
        ``min(M, 128)``.  Capped at M; at ``L = M`` the landmark loss
        equals the full-pair loss.
    landmark_method:
        ``"kmeans++"`` (default) or ``"farthest"`` anchor seeding.
    landmarks:
        Explicit anchor row indices (distinct); overrides
        ``n_landmarks``/``landmark_method``.  Stored sorted, so anchor
        ordering never affects results.
    random_state:
        Seeds the pair subsample and the landmark selection only.
    fast_kernels:
        Use the GEMM fast path for ``p == 2`` (see module docstring).
        ``False`` forces the reference einsum implementation; generic
        ``p`` always uses the reference path (row-blocked in landmark
        mode).
    precompute:
        ``True`` (default) builds the oracle's support structures
        (pair subsample, landmark selection, moment statistics) at
        construction.  ``False`` defers them until the first loss
        evaluation: every parameter is still validated eagerly, so a
        parent process can construct-and-validate the oracle cheaply
        while worker processes (which rebuild it from the same inputs,
        or reuse a cached one) do the actual computing.
    """

    DEFAULT_LANDMARKS = 128

    def __init__(
        self,
        X,
        protected_indices=None,
        *,
        lambda_util: float = 1.0,
        mu_fair: float = 1.0,
        n_prototypes: int = 10,
        p: float = 2.0,
        max_pairs: Optional[int] = None,
        pair_mode: str = "auto",
        n_landmarks: Optional[int] = None,
        landmark_method: str = "kmeans++",
        landmarks=None,
        random_state: RandomStateLike = 0,
        fast_kernels: bool = True,
        precompute: bool = True,
    ):
        self.X = check_matrix(X, "X")
        m, n = self.X.shape
        self.protected = check_protected_indices(protected_indices, n)
        self.nonprotected = nonprotected_indices(self.protected, n)
        if self.nonprotected.size == 0:
            raise ValidationError("at least one non-protected attribute is required")
        if lambda_util < 0 or mu_fair < 0:
            raise ValidationError("lambda_util and mu_fair must be non-negative")
        if n_prototypes < 1:
            raise ValidationError("n_prototypes must be at least 1")
        if n_prototypes >= m:
            raise ValidationError(
                f"n_prototypes must be < number of records ({m}) for a low-rank map"
            )
        if p < 1:
            raise ValidationError("Minkowski exponent p must be >= 1")
        if pair_mode not in PAIR_MODES:
            raise ValidationError(
                f"pair_mode must be one of {PAIR_MODES}, got {pair_mode!r}"
            )
        if pair_mode == "auto":
            pair_mode = "sampled" if max_pairs is not None else "full"
        if pair_mode == "sampled" and max_pairs is None:
            raise ValidationError("pair_mode='sampled' requires max_pairs")
        if pair_mode != "sampled" and max_pairs is not None:
            raise ValidationError(
                f"max_pairs only applies to pair_mode='sampled', not {pair_mode!r}"
            )
        if landmark_method not in LANDMARK_METHODS:
            raise ValidationError(
                f"landmark_method must be one of {LANDMARK_METHODS}, "
                f"got {landmark_method!r}"
            )
        if pair_mode != "landmark" and (n_landmarks is not None or landmarks is not None):
            raise ValidationError(
                "n_landmarks/landmarks only apply to pair_mode='landmark'"
            )
        self.pair_mode = pair_mode
        self.landmark_method = landmark_method
        self.lambda_util = float(lambda_util)
        self.mu_fair = float(mu_fair)
        self.n_prototypes = int(n_prototypes)
        self.p = float(p)
        self.fast_kernels = bool(fast_kernels)
        # Snapshot the path decision: the fast-path support structures
        # below exist only when it is taken at construction time.
        self._use_fast = self.fast_kernels and self.p == 2.0
        self._ws = kernels.Workspace()

        # Remaining validation stays eager even when the (possibly
        # expensive) support structures are deferred — a bad parameter
        # must raise here, in the constructing process, not inside a
        # worker.
        explicit_landmarks = None
        resolved_landmarks = None
        if pair_mode == "sampled":
            if max_pairs < 1:
                raise ValidationError("max_pairs must be positive")
        elif pair_mode == "landmark":
            if landmarks is not None:
                explicit_landmarks = np.asarray(landmarks, dtype=np.int64).ravel()
                if explicit_landmarks.size != np.unique(explicit_landmarks).size:
                    raise ValidationError("landmark indices must be distinct")
                if (
                    explicit_landmarks.size < 1
                    or explicit_landmarks.min() < 0
                    or explicit_landmarks.max() >= m
                ):
                    raise ValidationError("landmark indices out of range")
            else:
                resolved_landmarks = (
                    min(m, self.DEFAULT_LANDMARKS)
                    if n_landmarks is None
                    else int(n_landmarks)
                )
                if resolved_landmarks < 1:
                    raise ValidationError("n_landmarks must be at least 1")
                resolved_landmarks = min(resolved_landmarks, m)
        self._precompute_args = (
            max_pairs,
            explicit_landmarks,
            resolved_landmarks,
            random_state,
        )

        self._X_sq: Optional[np.ndarray] = None
        self._fair_full: Optional[kernels.FullPairFairness] = None
        self._pair_scatter: Optional[kernels.PairScatter] = None
        self._fair_landmark: Optional[kernels.LandmarkFairness] = None
        self._pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._d_star = None
        self._anchor_cache: Optional[np.ndarray] = None
        self._ready = False
        if precompute:
            self.ensure_ready()

    def _anchor_indices(self) -> np.ndarray:
        """Sorted anchor row indices of landmark mode (cached).

        Much cheaper than :meth:`ensure_ready`: only the anchor
        *selection* runs, not the fairness-kernel precompute — the
        parent of a process-parallel fit needs the indices (for
        ``IFair.landmarks_``) but never evaluates the loss.
        """
        if self._anchor_cache is None:
            _, explicit_landmarks, n_land, random_state = self._precompute_args
            if explicit_landmarks is not None:
                idx = explicit_landmarks
            else:
                with get_tracer().span(
                    "fit.landmark_select",
                    n_records=int(self.X.shape[0]),
                    method=self.landmark_method,
                ):
                    idx = select_landmarks(
                        self.X[:, self.nonprotected],
                        n_land,
                        method=self.landmark_method,
                        random_state=random_state,
                    )
            self._anchor_cache = np.sort(np.asarray(idx, dtype=np.int64))
        return self._anchor_cache

    def ensure_ready(self) -> None:
        """Build the oracle support structures (idempotent).

        Called automatically by every compute path, so a deferred
        objective (``precompute=False``) pays the cost on first use —
        or never, when a parent constructs it only for validation and
        shape bookkeeping while workers evaluate their own copies.
        A failed build leaves the objective un-ready, so a retry
        re-raises the real cause instead of dereferencing
        half-initialised structures.
        """
        if self._ready:
            return
        get_registry().counter("fit_oracle_builds_total").inc()
        with get_tracer().span(
            "fit.build_oracle",
            n_records=int(self.X.shape[0]),
            pair_mode=self.pair_mode,
        ):
            self._build_support()
        self._ready = True

    def _build_support(self) -> None:
        m = self.X.shape[0]
        max_pairs, explicit_landmarks, n_land, random_state = self._precompute_args
        # X is fixed for the objective's lifetime, so its elementwise
        # square (used by the GEMM forward and grad_alpha) is computed
        # once.  Workspace buffers are thread-local, so one objective
        # can serve parallel restarts.
        self._X_sq = self.X * self.X if self._use_fast else None
        X_star = self.X[:, self.nonprotected]
        if self.pair_mode == "full":
            if self._use_fast:
                # Moment form needs only O(M + N^2) precomputed X*
                # statistics — the dense (M, M) target matrix is a
                # reference-path-only structure.
                self._fair_full = kernels.FullPairFairness(X_star)
            else:
                self._d_star = pairwise_sq_euclidean(X_star)
        elif self.pair_mode == "sampled":
            rng = check_random_state(random_state)
            total = m * (m - 1) // 2
            n_pairs = min(int(max_pairs), total)
            # Sample unordered pairs without replacement via flat indices.
            flat = rng.choice(total, size=n_pairs, replace=False)
            ii, jj = _triu_unravel(flat, m)
            self._pairs = (ii, jj)
            diff = X_star[ii] - X_star[jj]
            self._d_star = np.sum(diff * diff, axis=1)
            if self._use_fast:
                self._pair_scatter = kernels.PairScatter(ii, jj, m)
        else:  # landmark
            idx = self._anchor_indices()
            # Scale M/L makes the landmark sum estimate the full
            # ordered-pair sum, so mu_fair transfers across modes.
            self._fair_landmark = kernels.LandmarkFairness(
                X_star, idx, scale=m / idx.size
            )

    # ------------------------------------------------------------------
    # Parameter packing
    # ------------------------------------------------------------------

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_params(self) -> int:
        """Size of the packed parameter vector [V.ravel(), alpha]."""
        return self.n_prototypes * self.n_features + self.n_features

    @property
    def effective_pairs(self) -> int:
        """Ordered-pair count the fairness loss represents.

        ``full`` and ``landmark`` both report ``M^2`` — the landmark
        loss is rescaled by ``M / L`` to estimate the full ordered-pair
        sum, so a given ``mu_fair`` carries the same weight in either
        mode.  ``sampled`` reports the raw sampled-pair count (the
        historical, unscaled semantics).
        """
        m = self.X.shape[0]
        if self.pair_mode == "sampled":
            self.ensure_ready()
            return int(self._pairs[0].size)
        return m * m

    @property
    def n_landmarks(self) -> Optional[int]:
        """Anchor count L in landmark mode, else ``None``."""
        if self.pair_mode != "landmark":
            return None
        return int(self._anchor_indices().size)

    @property
    def landmark_indices(self) -> Optional[np.ndarray]:
        """Sorted anchor row indices in landmark mode, else ``None``."""
        if self.pair_mode != "landmark":
            return None
        return self._anchor_indices()

    def pack(self, V: np.ndarray, alpha: np.ndarray) -> np.ndarray:
        """Concatenate prototypes and weights into one flat vector."""
        V = check_matrix(V, "V")
        if V.shape != (self.n_prototypes, self.n_features):
            raise ValidationError(
                f"V must have shape {(self.n_prototypes, self.n_features)}, got {V.shape}"
            )
        alpha = np.asarray(alpha, dtype=np.float64).ravel()
        if alpha.shape != (self.n_features,):
            raise ValidationError(f"alpha must have shape ({self.n_features},)")
        return np.concatenate([V.ravel(), alpha])

    def unpack(self, theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`pack`."""
        theta = np.asarray(theta, dtype=np.float64).ravel()
        if theta.size != self.n_params:
            raise ValidationError(
                f"theta must have {self.n_params} entries, got {theta.size}"
            )
        split = self.n_prototypes * self.n_features
        V = theta[:split].reshape(self.n_prototypes, self.n_features)
        alpha = theta[split:]
        return V, alpha

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def _distances(self, V: np.ndarray, alpha: np.ndarray) -> np.ndarray:
        """d[i, k] = sum_n alpha_n |x_in - v_kn|^p, shape (M, K).

        The returned array may be a reusable workspace buffer on the
        fast path — copy it before the next oracle call if it must
        survive.
        """
        self.ensure_ready()
        if self._use_fast:
            m, k = self.X.shape[0], V.shape[0]
            return kernels.weighted_sq_dists_gemm(
                self.X, V, alpha, x_sq=self._X_sq, out=self._ws.take("d", (m, k))
            )
        if self.pair_mode == "landmark":
            # Landmark mode promises no (M, K, N) tensor for any p:
            # the per-row arithmetic is identical, just row-blocked.
            m, k = self.X.shape[0], V.shape[0]
            return kernels.minkowski_dists_blocked(
                self.X, V, alpha, self.p, out=self._ws.take("d", (m, k))
            )
        diff = self.X[:, None, :] - V[None, :, :]
        if self.p == 2.0:
            powed = diff * diff
        else:
            powed = np.abs(diff) ** self.p
        return powed @ alpha

    def memberships(self, V: np.ndarray, alpha: np.ndarray) -> np.ndarray:
        """Probability vectors U = softmax(-d) of Definition 8."""
        return softmax(-self._distances(V, alpha), axis=1)

    def transform(self, V: np.ndarray, alpha: np.ndarray) -> np.ndarray:
        """Transformed representation X-tilde = U V (Definition 2)."""
        return self.memberships(V, alpha) @ V

    def loss_components(self, theta: np.ndarray) -> Tuple[float, float]:
        """(L_util, L_fair) at ``theta`` — unweighted by lambda/mu."""
        V, alpha = self.unpack(theta)
        X_tilde = self.transform(V, alpha)
        resid = self.X - X_tilde
        l_util = float(np.sum(resid * resid))
        l_fair = self._fair_loss(X_tilde)
        return l_util, l_fair

    def loss(self, theta: np.ndarray) -> float:
        """Combined objective L(theta) of Definition 6."""
        l_util, l_fair = self.loss_components(theta)
        return self.lambda_util * l_util + self.mu_fair * l_fair

    def _fair_loss(self, X_tilde: np.ndarray) -> float:
        if self._fair_landmark is not None:
            return self._fair_landmark.loss(X_tilde)
        if self._pairs is None:
            if self._fair_full is not None:
                return self._fair_full.loss(X_tilde)
            d_tilde = pairwise_sq_euclidean(X_tilde)
            err = d_tilde - self._d_star
            return float(np.sum(err * err))
        ii, jj = self._pairs
        if self._pair_scatter is not None:
            diff = self._pair_scatter.diffs(X_tilde)
        else:
            diff = X_tilde[ii] - X_tilde[jj]
        d_tilde = np.sum(diff * diff, axis=1)
        err = d_tilde - self._d_star
        return float(np.sum(err * err))

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------

    def loss_and_grad(self, theta: np.ndarray) -> Tuple[float, np.ndarray]:
        """Loss and analytic gradient w.r.t. the packed parameters.

        Dispatches to the GEMM fast path for ``p == 2`` (see module
        docstring) and to the reference einsum implementation for
        generic ``p`` or when ``fast_kernels=False``; landmark mode
        routes the non-GEMM case through the row-blocked kernels so no
        ``(M, K, N)`` tensor is built at any ``p``.
        """
        self.ensure_ready()
        if self._use_fast:
            return self._loss_and_grad_fast(theta)
        if self.pair_mode == "landmark":
            return self._loss_and_grad_landmark_blocked(theta)
        return self._loss_and_grad_reference(theta)

    def _loss_and_grad_fast(self, theta: np.ndarray) -> Tuple[float, np.ndarray]:
        """GEMM fast path for ``p == 2``; no (M, K, N) tensor is built.

        All (M, K)- and (M, N)-sized intermediates live in reusable
        thread-local workspace buffers; the returned gradient is a
        fresh array (L-BFGS keeps a history of it).
        """
        V, alpha = self.unpack(theta)
        X = self.X
        m, n = X.shape
        k = V.shape[0]
        ws = self._ws

        d = kernels.weighted_sq_dists_gemm(
            X, V, alpha, x_sq=self._X_sq, out=ws.take("d", (m, k))
        )
        U = kernels.softmax_neg_inplace(d)  # aliases d's buffer
        X_tilde = np.matmul(U, V, out=ws.take("x_tilde", (m, n)))
        resid = np.subtract(X_tilde, X, out=ws.take("resid", (m, n)))
        l_util = float(np.einsum("mn,mn->", resid, resid))

        # dL/dX_tilde from both loss terms.
        G = np.multiply(2.0 * self.lambda_util, resid, out=ws.take("g", (m, n)))
        if self._fair_landmark is not None:
            # Blocked landmark fairness: O(M * L * N), no (M, M) matrix.
            l_fair, g_fair = self._fair_landmark.loss_and_grad_x(X_tilde)
            g_fair *= self.mu_fair
            G += g_fair
        elif self._pairs is None:
            # Moment-form fairness: O(M * N^2), no (M, M) matrix.
            l_fair, row, e_xt = self._fair_full.loss_row_grad(X_tilde)
            e_xt -= row[:, None] * X_tilde
            e_xt *= -8.0 * self.mu_fair
            G += e_xt
        else:
            pd = self._pair_scatter.diffs(X_tilde)  # X_tilde[ii] - X_tilde[jj]
            err = np.einsum("pn,pn->p", pd, pd)
            err -= self._d_star
            l_fair = float(err @ err)
            pd *= (4.0 * self.mu_fair) * err[:, None]  # pair contributions
            self._pair_scatter.scatter_add(G, pd)

        loss = self.lambda_util * l_util + self.mu_fair * l_fair

        # Through X_tilde = U V (grad_V before P overwrites C's buffer).
        grad_V = U.T @ G  # (K, N)
        C = np.matmul(G, V.T, out=ws.take("c", (m, k)))
        # Softmax Jacobian: P = U * (C - rowsum(U * C)), in C's buffer.
        C -= np.einsum("mk,mk->m", U, C)[:, None]
        C *= U
        grad_alpha, grad_V_dist = kernels.sq_dist_backward(
            C, X, V, alpha, x_sq=self._X_sq
        )
        grad_V += grad_V_dist
        return loss, np.concatenate([grad_V.ravel(), grad_alpha])

    def _loss_and_grad_landmark_blocked(
        self, theta: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Landmark mode off the GEMM path (generic ``p``), row-blocked.

        Same arithmetic as the reference implementation for the
        prototype part — each row's distances and backward
        contributions are independent, so blocking only bounds memory —
        with the fairness term evaluated by the blocked landmark
        kernel.  Peak transient allocation is O(B * K * N + B * L)
        regardless of M.
        """
        V, alpha = self.unpack(theta)
        X = self.X
        m, n = X.shape
        k = V.shape[0]
        ws = self._ws

        d = kernels.minkowski_dists_blocked(
            X, V, alpha, self.p, out=ws.take("d", (m, k))
        )
        U = softmax(-d, axis=1)
        X_tilde = U @ V
        resid = X_tilde - X
        l_util = float(np.sum(resid * resid))

        G = 2.0 * self.lambda_util * resid
        l_fair, g_fair = self._fair_landmark.loss_and_grad_x(X_tilde)
        g_fair *= self.mu_fair
        G += g_fair

        # Compensated assembly: in the landmark regime a fit can drive
        # D_tilde -> D* (the ROADMAP watch-item), leaving l_fair many
        # orders below l_util — keep every digit the parts have.
        loss = (
            kernels.CompensatedSum()
            .add(self.lambda_util * l_util)
            .add(self.mu_fair * l_fair)
            .result
        )

        # Through X_tilde = U V.
        grad_V = U.T @ G
        C = G @ V.T
        P = U * (C - np.sum(U * C, axis=1, keepdims=True))
        grad_alpha, grad_V_dist = kernels.minkowski_backward_blocked(
            P, X, V, alpha, self.p
        )
        grad_V += grad_V_dist
        return loss, np.concatenate([grad_V.ravel(), grad_alpha])

    def _loss_and_grad_reference(self, theta: np.ndarray) -> Tuple[float, np.ndarray]:
        """Reference einsum implementation (generic ``p``).

        Kept verbatim as the ground truth the fast path is tested
        against; materialises the (M, K, N) difference tensors.
        """
        V, alpha = self.unpack(theta)
        X = self.X
        m = X.shape[0]

        diff = X[:, None, :] - V[None, :, :]  # (M, K, N)
        if self.p == 2.0:
            powed = diff * diff
            deriv = diff  # sign(diff)*|diff|^(p-1) for p=2
        else:
            absdiff = np.abs(diff)
            powed = absdiff ** self.p
            deriv = np.sign(diff) * absdiff ** (self.p - 1.0)
        d = powed @ alpha  # (M, K)
        U = softmax(-d, axis=1)
        X_tilde = U @ V
        resid = X_tilde - X

        l_util = float(np.sum(resid * resid))

        # dL/dX_tilde from both loss terms.
        G = 2.0 * self.lambda_util * resid
        if self._pairs is None:
            d_tilde = pairwise_sq_euclidean(X_tilde)
            E = d_tilde - self._d_star
            l_fair = float(np.sum(E * E))
            row = E.sum(axis=1)
            G += 8.0 * self.mu_fair * (row[:, None] * X_tilde - E @ X_tilde)
        else:
            ii, jj = self._pairs
            pair_diff = X_tilde[ii] - X_tilde[jj]
            d_tilde = np.sum(pair_diff * pair_diff, axis=1)
            err = d_tilde - self._d_star
            l_fair = float(np.sum(err * err))
            contrib = 4.0 * self.mu_fair * err[:, None] * pair_diff
            np.add.at(G, ii, contrib)
            np.add.at(G, jj, -contrib)

        loss = self.lambda_util * l_util + self.mu_fair * l_fair

        # Through X_tilde = U V.
        grad_V = U.T @ G  # direct path, (K, N)
        C = G @ V.T  # (M, K)
        # Softmax Jacobian: P = dL/d(-d).
        P = U * (C - np.sum(U * C, axis=1, keepdims=True))
        # dL/dd = -P; d = powed @ alpha.
        grad_alpha = -np.einsum("mk,mkn->n", P, powed)
        # dd/dV path: dd_ik/dv_kn = -p * alpha_n * deriv_ikn.
        grad_V += self.p * alpha[None, :] * np.einsum("mk,mkn->kn", P, deriv)

        grad = np.concatenate([grad_V.ravel(), grad_alpha])
        return loss, grad


def _triu_unravel(flat: np.ndarray, m: int) -> Tuple[np.ndarray, np.ndarray]:
    """Map flat indices 0..m*(m-1)/2-1 to (i, j) with i < j.

    Uses the closed-form inverse of the row-major strict-upper-triangle
    enumeration, so sampling pairs never materialises the full list.
    """
    flat = np.asarray(flat, dtype=np.int64)
    # Row i starts at offset i*m - i*(i+1)/2 - ... solve the quadratic.
    # count(i) = i*(2m - i - 1)/2 pairs precede row i.
    i = (2 * m - 1 - np.sqrt((2 * m - 1) ** 2 - 8 * flat)) // 2
    i = i.astype(np.int64)
    start = i * (2 * m - i - 1) // 2
    j = flat - start + i + 1
    return i, j.astype(np.int64)
