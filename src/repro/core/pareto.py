"""Pareto-front utilities for multi-objective model selection.

The paper selects hyper-parameters that are "Pareto-optimal with regard
to AUC and yNN" (Section V-D, Figure 3).  All objectives here are
maximised; flip the sign of anything you want minimised.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_matrix


def is_dominated(point: Sequence[float], others) -> bool:
    """True if some row of ``others`` is >= ``point`` everywhere and
    strictly greater somewhere (maximisation convention)."""
    point = np.asarray(point, dtype=np.float64).ravel()
    others = check_matrix(others, "others")
    if others.shape[1] != point.size:
        raise ValidationError("dimension mismatch between point and others")
    ge = np.all(others >= point, axis=1)
    gt = np.any(others > point, axis=1)
    return bool(np.any(ge & gt))


def pareto_front(points) -> List[int]:
    """Indices of the non-dominated rows of ``points`` (maximisation).

    Duplicated optimal points are all kept.  The result is sorted by
    the first objective, descending, for stable presentation.
    """
    pts = check_matrix(points, "points")
    n = pts.shape[0]
    keep = []
    for i in range(n):
        others = np.delete(pts, i, axis=0)
        if others.shape[0] == 0 or not is_dominated(pts[i], others):
            keep.append(i)
    keep.sort(key=lambda i: -pts[i, 0])
    return keep
