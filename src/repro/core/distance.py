"""The attribute-weighted Minkowski distance family (Definition 7).

    d(x, y) = [ sum_n alpha_n * |x_n - y_n|**p ] ** (1/p)

The paper notes that p = 2 "corresponds to a Gaussian kernel" once
plugged into ``exp(-d)`` — that identity holds for the *unrooted* form,
so the default here is ``root=False`` (weighted squared Euclidean for
p = 2), matching the LFR lineage and keeping gradients smooth at zero.
Set ``root=True`` for the literal metric form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.mathkit import weighted_minkowski_to_prototypes
from repro.utils.validation import check_matrix, check_vector


class WeightedMinkowski:
    """Callable weighted Minkowski distance with exponent ``p``.

    Parameters
    ----------
    p:
        Minkowski exponent, must satisfy ``p >= 1``.
    root:
        Apply the final ``1/p`` root.  Off by default (see module
        docstring).
    """

    def __init__(self, p: float = 2.0, root: bool = False):
        if p < 1:
            raise ValidationError("Minkowski exponent p must be >= 1")
        self.p = float(p)
        self.root = bool(root)

    def pairwise(self, X, Y=None, alpha=None) -> np.ndarray:
        """All-pairs distances between rows of ``X`` and rows of ``Y``.

        ``alpha`` defaults to all-ones (unweighted).  Returns an
        ``(len(X), len(Y))`` matrix.
        """
        X = check_matrix(X, "X")
        Y = X if Y is None else check_matrix(Y, "Y")
        if X.shape[1] != Y.shape[1]:
            raise ValidationError("X and Y must share their feature dimension")
        alpha = self._check_alpha(alpha, X.shape[1])
        return weighted_minkowski_to_prototypes(X, Y, alpha, p=self.p, root=self.root)

    def between(self, x, y, alpha=None) -> float:
        """Distance between two single records."""
        x = check_vector(x, "x")
        y = check_vector(y, "y", length=x.size)
        alpha = self._check_alpha(alpha, x.size)
        d = float(np.dot(alpha, np.abs(x - y) ** self.p))
        if self.root:
            d = d ** (1.0 / self.p)
        return d

    def _check_alpha(self, alpha, n_features: int) -> np.ndarray:
        if alpha is None:
            return np.ones(n_features)
        alpha = check_vector(alpha, "alpha", length=n_features)
        if np.any(alpha < 0):
            raise ValidationError("attribute weights alpha must be non-negative")
        return alpha

    def __repr__(self) -> str:
        return f"WeightedMinkowski(p={self.p}, root={self.root})"
