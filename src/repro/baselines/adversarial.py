"""Adversarially censored representations (related-work baseline).

The paper's related work (Edwards & Storkey 2015; Louizos et al. 2015)
learns representations from which an adversary cannot recover the
protected attribute.  This module implements a lightweight linear
variant for comparison with iFair's obfuscation behaviour (Figure 4):

repeat for ``n_rounds``:
  1. fit a logistic-regression adversary predicting the protected
     group from the current representation;
  2. remove the component of the representation along the adversary's
     weight vector (project onto its orthogonal complement).

Each round deletes the single most group-predictive linear direction;
after a few rounds no linear adversary beats chance.  Unlike iFair this
provides *no* individual-fairness guarantee — it only censors — which
is exactly the contrast the paper draws with [22, 9].
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.learners.logistic import LogisticRegression
from repro.utils.validation import check_binary_labels, check_matrix


class AdversarialCensoring:
    """Iterative linear censoring of protected information.

    Parameters
    ----------
    n_rounds:
        Number of adversary-fit / project-out rounds.
    l2:
        Regularisation of each round's adversary.
    tol:
        Stop early once the adversary's weight norm falls below this
        (nothing left to censor).
    """

    def __init__(self, n_rounds: int = 5, l2: float = 1.0, tol: float = 1e-6):
        if n_rounds < 1:
            raise ValidationError("n_rounds must be at least 1")
        self.n_rounds = int(n_rounds)
        self.l2 = float(l2)
        self.tol = float(tol)
        self.directions_: List[np.ndarray] = []
        self._n_features: Optional[int] = None

    def fit(self, X, protected) -> "AdversarialCensoring":
        """Learn the censoring directions from training data."""
        X = check_matrix(X, "X", min_rows=4)
        protected = check_binary_labels(protected, "protected", length=X.shape[0])
        if np.unique(protected).size < 2:
            raise ValidationError("need both protected groups to train the adversary")
        self._n_features = X.shape[1]
        self.directions_ = []
        Z = X.copy()
        for _ in range(self.n_rounds):
            adversary = LogisticRegression(l2=self.l2).fit(Z, protected)
            w = adversary.coef_
            norm = float(np.linalg.norm(w))
            if norm < self.tol:
                break
            direction = w / norm
            self.directions_.append(direction)
            Z = Z - np.outer(Z @ direction, direction)
        return self

    def transform(self, X) -> np.ndarray:
        """Project records onto the censored subspace."""
        if self._n_features is None:
            raise NotFittedError("AdversarialCensoring must be fitted first")
        X = check_matrix(X, "X")
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"X has {X.shape[1]} features, censor was fitted with {self._n_features}"
            )
        Z = X.copy()
        for direction in self.directions_:
            Z = Z - np.outer(Z @ direction, direction)
        return Z

    def fit_transform(self, X, protected) -> np.ndarray:
        return self.fit(X, protected).transform(X)

    @property
    def n_censored_directions(self) -> int:
        """How many linear directions were removed."""
        return len(self.directions_)
