r"""LFR — Learning Fair Representations (Zemel et al., ICML 2013).

The paper's main prior-work comparator.  LFR learns K prototypes
``V`` (K x N), attribute weights ``alpha`` (N,) and per-prototype label
probabilities ``w`` (K,) by minimising

.. math::

    L = A_x L_x + A_y L_y + A_z L_z

with, using the same softmax memberships ``U`` as iFair,

* :math:`L_x = \sum_i \|x_i - \hat x_i\|^2`, :math:`\hat X = U V`
  (reconstruction / individual-fairness proxy),
* :math:`L_y = -\sum_i y_i \log \hat y_i + (1 - y_i) \log (1 - \hat
  y_i)`, :math:`\hat y = U w` (classifier accuracy),
* :math:`L_z = \sum_k | \overline{U}^{S=1}_k - \overline{U}^{S=0}_k |`
  (statistical parity of cluster occupancy between the protected group
  S=1 and its complement).

Unlike iFair, LFR is tied to a binary classification target and one
pre-specified protected group — exactly the limitation the paper
addresses.  Gradients are analytic (the L_z term uses the sign
subgradient); they are validated against finite differences in the
property tests at points where no |.| argument is near zero.

The distance matrix and its gradients use the same GEMM fast kernels
as the iFair objective (:mod:`repro.utils.kernels`) — LFR's distance
is always the ``p = 2`` weighted squared Euclidean, so no
``(M, K, N)`` tensor is ever materialised.

As an extension beyond Zemel et al., the objective accepts an optional
*individual*-fairness regulariser ``mu_fair > 0``: the same landmark
pair-distance term the iFair oracle uses at scale
(:class:`repro.utils.kernels.LandmarkFairness`, O(M * L * N) per call,
target distances on all attributes since LFR has no protected-column
notion).  The default ``mu_fair = 0`` keeps the classic LFR objective
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.exceptions import NotFittedError, ValidationError
from repro.learners.base import ParamsMixin
from repro.utils import kernels
from repro.utils.landmarks import select_landmarks
from repro.utils.mathkit import softmax, weighted_minkowski_to_prototypes
from repro.utils.rng import RandomStateLike, check_random_state, spawn_seeds
from repro.utils.validation import check_binary_labels, check_matrix

_CLIP = 1e-6


class LFRObjective:
    """Loss/gradient oracle for LFR on one training set."""

    def __init__(
        self,
        X,
        y,
        protected,
        *,
        a_x: float = 0.01,
        a_y: float = 1.0,
        a_z: float = 0.5,
        n_prototypes: int = 10,
        mu_fair: float = 0.0,
        n_landmarks: Optional[int] = None,
        landmark_method: str = "kmeans++",
        random_state: RandomStateLike = 0,
    ):
        self.X = check_matrix(X, "X")
        m, n = self.X.shape
        self.y = check_binary_labels(y, "y", length=m)
        self.protected = check_binary_labels(protected, "protected", length=m)
        if a_x < 0 or a_y < 0 or a_z < 0:
            raise ValidationError("A_x, A_y, A_z must be non-negative")
        if mu_fair < 0:
            raise ValidationError("mu_fair must be non-negative")
        if not np.any(self.protected == 1) or not np.any(self.protected == 0):
            raise ValidationError("LFR needs both protected and unprotected samples")
        if n_prototypes < 1 or n_prototypes >= m:
            raise ValidationError("n_prototypes must be in [1, n_records)")
        self.a_x = float(a_x)
        self.a_y = float(a_y)
        self.a_z = float(a_z)
        self.n_prototypes = int(n_prototypes)
        self.mu_fair = float(mu_fair)
        self._mask1 = self.protected == 1
        self._mask0 = ~self._mask1
        self._X_sq = self.X * self.X  # reused by the GEMM kernels
        self._ws = kernels.Workspace()
        self._fair: Optional[kernels.LandmarkFairness] = None
        if self.mu_fair > 0.0:
            # LFR has no protected-column notion, so the individual-
            # fairness target distances use every attribute.
            n_land = min(m, 128) if n_landmarks is None else min(int(n_landmarks), m)
            idx = select_landmarks(
                self.X, n_land, method=landmark_method, random_state=random_state
            )
            self._fair = kernels.LandmarkFairness(self.X, idx, scale=m / idx.size)

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_params(self) -> int:
        """Packed parameters: [V.ravel(), alpha, w]."""
        return self.n_prototypes * self.n_features + self.n_features + self.n_prototypes

    def pack(self, V, alpha, w) -> np.ndarray:
        return np.concatenate(
            [np.asarray(V).ravel(), np.asarray(alpha).ravel(), np.asarray(w).ravel()]
        )

    def unpack(self, theta) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        theta = np.asarray(theta, dtype=np.float64).ravel()
        if theta.size != self.n_params:
            raise ValidationError(
                f"theta must have {self.n_params} entries, got {theta.size}"
            )
        k, n = self.n_prototypes, self.n_features
        V = theta[: k * n].reshape(k, n)
        alpha = theta[k * n : k * n + n]
        w = theta[k * n + n :]
        return V, alpha, w

    def _memberships(self, V, alpha) -> np.ndarray:
        d = kernels.weighted_sq_dists_gemm(
            self.X,
            V,
            alpha,
            x_sq=self._X_sq,
            out=self._ws.take("d", (self.X.shape[0], V.shape[0])),
        )
        return kernels.softmax_neg_inplace(d)  # aliases d's buffer

    def _forward_parts(self, theta):
        """One membership evaluation feeding every loss component."""
        V, alpha, w = self.unpack(theta)
        U = self._memberships(V, alpha)
        X_hat = U @ V
        resid = X_hat - self.X
        l_x = float(np.sum(resid * resid))
        y_hat = np.clip(U @ w, _CLIP, 1.0 - _CLIP)
        l_y = float(
            -np.sum(self.y * np.log(y_hat) + (1.0 - self.y) * np.log(1.0 - y_hat))
        )
        gap = U[self._mask1].mean(axis=0) - U[self._mask0].mean(axis=0)
        l_z = float(np.sum(np.abs(gap)))
        return X_hat, l_x, l_y, l_z

    def forward(self, theta) -> Tuple[float, float, float]:
        """(L_x, L_y, L_z) — unweighted components."""
        _, l_x, l_y, l_z = self._forward_parts(theta)
        return l_x, l_y, l_z

    def loss(self, theta) -> float:
        X_hat, l_x, l_y, l_z = self._forward_parts(theta)
        total = self.a_x * l_x + self.a_y * l_y + self.a_z * l_z
        if self._fair is not None:
            total += self.mu_fair * self._fair.loss(X_hat)
        return total

    def loss_and_grad(self, theta) -> Tuple[float, np.ndarray]:
        """Analytic loss and gradient (sign subgradient for L_z)."""
        V, alpha, w = self.unpack(theta)
        U = self._memberships(V, alpha)
        m = self.X.shape[0]

        X_hat = U @ V
        resid = X_hat - self.X
        l_x = float(np.sum(resid * resid))

        y_lin = U @ w
        y_hat = np.clip(y_lin, _CLIP, 1.0 - _CLIP)
        l_y = float(
            -np.sum(self.y * np.log(y_hat) + (1.0 - self.y) * np.log(1.0 - y_hat))
        )

        mean1 = U[self._mask1].mean(axis=0)
        mean0 = U[self._mask0].mean(axis=0)
        gap = mean1 - mean0
        l_z = float(np.sum(np.abs(gap)))

        loss = self.a_x * l_x + self.a_y * l_y + self.a_z * l_z

        # --- gradient w.r.t. U (collect all three paths) ---
        G_x = 2.0 * self.a_x * resid  # dL/dX_hat
        if self._fair is not None:
            # Landmark individual-fairness extension, through X_hat.
            l_fair, g_fair = self._fair.loss_and_grad_x(X_hat)
            loss += self.mu_fair * l_fair
            g_fair *= self.mu_fair
            G_x = G_x + g_fair
        C = G_x @ V.T  # via X_hat = U V
        # L_y path: dL_y/dy_hat, zero where clipped.
        inside = (y_lin > _CLIP) & (y_lin < 1.0 - _CLIP)
        dLy_dyhat = np.where(
            inside, (y_hat - self.y) / (y_hat * (1.0 - y_hat)), 0.0
        )
        C += self.a_y * dLy_dyhat[:, None] * w[None, :]
        # L_z path: subgradient through the group means.
        sign = np.sign(gap)
        n1 = int(self._mask1.sum())
        n0 = m - n1
        Gz = np.where(self._mask1[:, None], sign[None, :] / n1, -sign[None, :] / n0)
        C += self.a_z * Gz

        # --- through the softmax and the distances (GEMM form) ---
        P = U * (C - np.sum(U * C, axis=1, keepdims=True))  # dL/d(-d) -> dL/ds
        grad_alpha, grad_V_dist = kernels.sq_dist_backward(
            P, self.X, V, alpha, x_sq=self._X_sq
        )
        grad_V = U.T @ G_x
        grad_V += grad_V_dist

        # --- w gradient ---
        grad_w = U.T @ (self.a_y * dLy_dyhat)

        return loss, np.concatenate([grad_V.ravel(), grad_alpha, grad_w])


@dataclass
class LFRRestart:
    """Diagnostics for one optimisation restart."""

    seed: int
    loss: float
    converged: bool


class LFR(ParamsMixin):
    """LFR estimator: representation + built-in classifier.

    Parameters mirror Zemel et al.: ``a_x``/``a_y``/``a_z`` weight
    reconstruction, accuracy and parity; ``n_prototypes`` is K.
    ``fit`` requires labels and a protected-group indicator — the very
    coupling iFair removes.  ``mu_fair > 0`` additionally enables the
    landmark individual-fairness regulariser (``n_landmarks`` anchors,
    seeded by ``landmark_method`` under ``random_state``); the default
    ``0`` is the classic objective.

    ``get_params(deep=True)`` / ``set_params`` follow the sklearn
    estimator protocol (see :class:`repro.learners.base.ParamsMixin`),
    so instances survive ``sklearn.base.clone``.
    """

    def __init__(
        self,
        n_prototypes: int = 10,
        a_x: float = 0.01,
        a_y: float = 1.0,
        a_z: float = 0.5,
        *,
        mu_fair: float = 0.0,
        n_landmarks: Optional[int] = None,
        landmark_method: str = "kmeans++",
        n_restarts: int = 3,
        max_iter: int = 200,
        tol: float = 1e-6,
        random_state: RandomStateLike = 0,
    ):
        if n_restarts < 1:
            raise ValidationError("n_restarts must be at least 1")
        self.n_prototypes = int(n_prototypes)
        self.a_x = float(a_x)
        self.a_y = float(a_y)
        self.a_z = float(a_z)
        self.mu_fair = float(mu_fair)
        self.n_landmarks = n_landmarks
        self.landmark_method = landmark_method
        self.n_restarts = int(n_restarts)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state

        self.prototypes_: Optional[np.ndarray] = None
        self.alpha_: Optional[np.ndarray] = None
        self.label_weights_: Optional[np.ndarray] = None
        self.loss_: float = np.inf
        self.restarts_: List[LFRRestart] = []

    def fit(self, X, y, protected) -> "LFR":
        """Learn prototypes, weights, and label probabilities."""
        objective = LFRObjective(
            X,
            y,
            protected,
            a_x=self.a_x,
            a_y=self.a_y,
            a_z=self.a_z,
            n_prototypes=self.n_prototypes,
            mu_fair=self.mu_fair,
            n_landmarks=self.n_landmarks,
            landmark_method=self.landmark_method,
            random_state=self.random_state,
        )
        k, n = objective.n_prototypes, objective.n_features
        bounds = (
            [(None, None)] * (k * n) + [(0.0, None)] * n + [(0.0, 1.0)] * k
        )
        best_loss, best_theta = np.inf, None
        self.restarts_ = []
        for seed in spawn_seeds(self.random_state, self.n_restarts):
            rng = check_random_state(seed)
            theta0 = objective.pack(
                rng.uniform(0, 1, size=(k, n)),
                rng.uniform(0, 1, size=n),
                rng.uniform(0, 1, size=k),
            )
            result = optimize.minimize(
                objective.loss_and_grad,
                theta0,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": self.max_iter, "gtol": self.tol},
            )
            self.restarts_.append(
                LFRRestart(seed=seed, loss=float(result.fun), converged=bool(result.success))
            )
            if result.fun < best_loss:
                best_loss, best_theta = float(result.fun), result.x
        self.prototypes_, self.alpha_, self.label_weights_ = objective.unpack(best_theta)
        self.loss_ = best_loss
        return self

    def _check_fitted(self) -> None:
        if self.prototypes_ is None:
            raise NotFittedError("LFR must be fitted before use")

    def memberships(self, X) -> np.ndarray:
        """Cluster probabilities U for new records."""
        self._check_fitted()
        X = check_matrix(X, "X")
        if X.shape[1] != self.prototypes_.shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.prototypes_.shape[1]}"
            )
        # Row-stable inference kernel: chunked evaluation of new
        # records stays bitwise equal to one-shot evaluation.
        d = weighted_minkowski_to_prototypes(X, self.prototypes_, self.alpha_, p=2.0)
        return softmax(-d, axis=1)

    def transform(self, X) -> np.ndarray:
        """Fair representation X_hat = U V."""
        return self.memberships(X) @ self.prototypes_

    def predict_proba(self, X) -> np.ndarray:
        """LFR's built-in classifier: y_hat = U w."""
        self._check_fitted()
        return np.clip(self.memberships(X) @ self.label_weights_, 0.0, 1.0)

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        """Hard labels from the built-in classifier."""
        return (self.predict_proba(X) >= threshold).astype(np.float64)
