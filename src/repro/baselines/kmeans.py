"""K-means clustering baseline (Lloyd's algorithm).

The paper's introduction dismisses a naive alternative to iFair:
"Simple approaches like removing all sensitive attributes from the data
and then performing a standard clustering technique do not reconcile
these two conflicting goals, as standard clustering may lose too much
utility."  This module implements that straw man so the claim can be
tested: :class:`KMeansRepresentation` masks protected columns, runs
k-means, and represents every record by its cluster centroid — a hard
(non-probabilistic) counterpart of iFair's soft prototype mixture.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.mathkit import pairwise_sq_euclidean
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_matrix, check_protected_indices


def kmeans(
    X,
    n_clusters: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-7,
    n_init: int = 3,
    random_state: RandomStateLike = 0,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm with k-means++ seeding and multi-restart.

    Returns ``(centroids, labels, inertia)`` of the best restart.
    """
    X = check_matrix(X, "X", min_rows=2)
    m = X.shape[0]
    if not 1 <= n_clusters <= m:
        raise ValidationError(f"n_clusters must lie in [1, {m}]")
    if max_iter < 1 or n_init < 1:
        raise ValidationError("max_iter and n_init must be positive")
    rng = check_random_state(random_state)
    best: Optional[Tuple[np.ndarray, np.ndarray, float]] = None
    for _ in range(n_init):
        centroids = _plusplus_init(X, n_clusters, rng)
        labels = np.zeros(m, dtype=np.intp)
        prev_inertia = np.inf
        for _ in range(max_iter):
            D = pairwise_sq_euclidean(X, centroids)
            labels = np.argmin(D, axis=1)
            inertia = float(D[np.arange(m), labels].sum())
            for k in range(n_clusters):
                mask = labels == k
                if np.any(mask):
                    centroids[k] = X[mask].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-fit point.
                    worst = int(np.argmax(D[np.arange(m), labels]))
                    centroids[k] = X[worst]
            if prev_inertia - inertia <= tol * max(prev_inertia, 1.0):
                break
            prev_inertia = inertia
        D = pairwise_sq_euclidean(X, centroids)
        labels = np.argmin(D, axis=1)
        inertia = float(D[np.arange(m), labels].sum())
        if best is None or inertia < best[2]:
            best = (centroids.copy(), labels.copy(), inertia)
    return best


def _plusplus_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    m = X.shape[0]
    centroids = np.empty((n_clusters, X.shape[1]))
    centroids[0] = X[rng.integers(m)]
    closest = pairwise_sq_euclidean(X, centroids[:1]).ravel()
    for k in range(1, n_clusters):
        total = closest.sum()
        if total <= 0.0:
            centroids[k:] = centroids[0]
            break
        probs = closest / total
        centroids[k] = X[rng.choice(m, p=probs)]
        d_new = pairwise_sq_euclidean(X, centroids[k : k + 1]).ravel()
        np.minimum(closest, d_new, out=closest)
    return centroids


class KMeansRepresentation:
    """Mask protected columns, cluster, represent by centroid.

    Parameters
    ----------
    n_clusters:
        Number of clusters (the analogue of iFair's K).
    max_iter, n_init:
        Lloyd's algorithm budget and restarts.
    random_state:
        Seeding.
    """

    def __init__(
        self,
        n_clusters: int = 10,
        *,
        max_iter: int = 100,
        n_init: int = 3,
        random_state: RandomStateLike = 0,
    ):
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.n_init = int(n_init)
        self.random_state = random_state
        self.centroids_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self._protected: Optional[np.ndarray] = None

    def fit(self, X, protected_indices=None) -> "KMeansRepresentation":
        """Cluster the masked training records."""
        X = check_matrix(X, "X", min_rows=2)
        self._protected = check_protected_indices(protected_indices, X.shape[1])
        masked = X.copy()
        masked[:, self._protected] = 0.0
        n_clusters = min(self.n_clusters, X.shape[0])
        self.centroids_, _, self.inertia_ = kmeans(
            masked,
            n_clusters,
            max_iter=self.max_iter,
            n_init=self.n_init,
            random_state=self.random_state,
        )
        return self

    def predict(self, X) -> np.ndarray:
        """Hard cluster assignment per record (on masked features)."""
        if self.centroids_ is None:
            raise NotFittedError("KMeansRepresentation must be fitted first")
        X = check_matrix(X, "X")
        if X.shape[1] != self.centroids_.shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.centroids_.shape[1]}"
            )
        masked = X.copy()
        masked[:, self._protected] = 0.0
        return np.argmin(pairwise_sq_euclidean(masked, self.centroids_), axis=1)

    def transform(self, X) -> np.ndarray:
        """Represent each record by its assigned centroid."""
        return self.centroids_[self.predict(X)]

    def fit_transform(self, X, protected_indices=None) -> np.ndarray:
        return self.fit(X, protected_indices).transform(X)
