"""Baseline representations and the FA*IR ranking method.

These are the comparison points of the paper's evaluation:

* Full Data / Masked Data (:mod:`repro.baselines.identity`),
* SVD and SVD-masked (:mod:`repro.baselines.svd`, including the
  randomised SVD of Halko et al. cited by the paper),
* LFR, Zemel et al. ICML 2013 (:mod:`repro.baselines.lfr`),
* FA*IR, Zehlike et al. CIKM 2017 (:mod:`repro.baselines.fair_ranking`)
  with the score-interpolation extension described in Section V-E.
"""

from repro.baselines.adversarial import AdversarialCensoring
from repro.baselines.identity import FullData, MaskedData
from repro.baselines.kmeans import KMeansRepresentation, kmeans
from repro.baselines.lfr import LFR
from repro.baselines.svd import SVDTransform, randomized_svd, truncated_svd
from repro.baselines.fair_ranking import FairRanker, minimum_protected_targets

__all__ = [
    "AdversarialCensoring",
    "KMeansRepresentation",
    "kmeans",
    "FullData",
    "MaskedData",
    "LFR",
    "SVDTransform",
    "randomized_svd",
    "truncated_svd",
    "FairRanker",
    "minimum_protected_targets",
]
