"""Trivial representations: the original data and the masked data.

``FullData`` returns records unchanged.  ``MaskedData`` zeroes the
protected columns — the naive "fairness through blindness" approach the
paper shows to be insufficient because correlated attributes still leak
protected information.

Masking zeroes columns rather than dropping them so every
representation in an experiment shares the same feature dimensionality;
a constant (zero) column carries no information for any downstream
learner used here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_matrix, check_protected_indices


class FullData:
    """Identity representation (the paper's "Full Data" baseline)."""

    def fit(self, X, protected_indices=None) -> "FullData":
        check_matrix(X, "X")
        return self

    def transform(self, X) -> np.ndarray:
        return check_matrix(X, "X").copy()

    def fit_transform(self, X, protected_indices=None) -> np.ndarray:
        return self.fit(X, protected_indices).transform(X)


class MaskedData:
    """Zero out protected columns (the paper's "Masked Data" baseline)."""

    def __init__(self):
        self._protected: Optional[np.ndarray] = None
        self._n_features: Optional[int] = None

    def fit(self, X, protected_indices=None) -> "MaskedData":
        X = check_matrix(X, "X")
        self._n_features = X.shape[1]
        self._protected = check_protected_indices(protected_indices, X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        X = check_matrix(X, "X")
        if self._protected is None:
            raise RuntimeError("MaskedData must be fitted before transform")
        out = X.copy()
        out[:, self._protected] = 0.0
        return out

    def fit_transform(self, X, protected_indices=None) -> np.ndarray:
        return self.fit(X, protected_indices).transform(X)


def mask_columns(X, protected_indices) -> np.ndarray:
    """Functional form of :class:`MaskedData` for one-off use."""
    X = check_matrix(X, "X")
    idx = check_protected_indices(protected_indices, X.shape[1])
    out = X.copy()
    out[:, idx] = 0.0
    return out
