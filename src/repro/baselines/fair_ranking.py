"""FA*IR — fair top-k ranking (Zehlike et al., CIKM 2017).

FA*IR post-processes a score-ordered candidate list so that every
prefix of the output ranking contains enough protected candidates to
pass a binomial significance test: prefix ``i`` needs at least

    m(i) = BinomialQuantile(alpha; i, p)

protected candidates, where ``p`` is the target minimum protected
proportion and ``alpha`` the significance level.  The constructive
algorithm keeps two score-sorted queues (protected / non-protected) and
at each rank takes the overall best candidate unless the constraint
forces a protected pick.

The iFair paper extends FA*IR to also emit *fair scores* so that
consistency can be measured on rankings: a candidate promoted by the
constraint receives an interpolated score (placeholder filled by linear
interpolation between the neighbouring organic scores) instead of its
own, keeping the emitted score sequence non-increasing.  That extension
is implemented by :meth:`FairRanker.rank` via ``return_scores=True``.

An optional multiple-testing correction (the paper's "model adjustment")
is provided: :func:`adjust_significance` finds the corrected per-test
alpha whose family-wise failure probability across all k prefixes
matches the requested level, estimated by Monte-Carlo simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_binary_labels, check_vector


def minimum_protected_targets(k: int, p: float, alpha: float = 0.1) -> np.ndarray:
    """Minimum protected count required at each prefix 1..k.

    ``m[i-1]`` is the smallest integer ``t`` such that a
    Binomial(i, p) variable falls at or below ``t`` with probability
    greater than ``alpha`` — i.e. observing fewer protected candidates
    would be statistically implausible under the target proportion.
    """
    if k < 1:
        raise ValidationError("k must be at least 1")
    if not 0.0 < p < 1.0:
        raise ValidationError("target proportion p must lie in (0, 1)")
    if not 0.0 < alpha < 1.0:
        raise ValidationError("significance alpha must lie in (0, 1)")
    prefix = np.arange(1, k + 1)
    # ppf returns the smallest t with CDF(t) >= alpha; a prefix passes
    # when its protected count is >= that quantile.
    targets = stats.binom.ppf(alpha, prefix, p)
    targets = np.nan_to_num(targets, nan=0.0)
    return targets.astype(np.int64)


def ranked_group_fairness_ok(
    protected_flags: Sequence[int], p: float, alpha: float = 0.1
) -> bool:
    """Check the FA*IR condition on an existing ranking prefix-by-prefix."""
    flags = np.asarray(list(protected_flags), dtype=np.int64)
    if flags.size == 0:
        raise ValidationError("ranking must not be empty")
    targets = minimum_protected_targets(flags.size, p, alpha)
    counts = np.cumsum(flags)
    return bool(np.all(counts >= targets))


def adjust_significance(
    k: int,
    p: float,
    alpha: float = 0.1,
    *,
    n_simulations: int = 2000,
    random_state: RandomStateLike = 0,
) -> float:
    """Multiple-testing corrected per-prefix significance level.

    Testing every prefix of a top-k ranking inflates the family-wise
    rejection rate above the per-test ``alpha``.  This routine binary-
    searches the corrected level ``alpha_c`` so that a genuinely fair
    ranking (i.i.d. Bernoulli(p) group draws) fails *some* prefix test
    with probability ``alpha``, estimated over ``n_simulations`` draws.
    """
    if n_simulations < 1:
        raise ValidationError("n_simulations must be positive")
    rng = check_random_state(random_state)
    draws = (rng.random((n_simulations, k)) < p).astype(np.int64)
    counts = np.cumsum(draws, axis=1)

    def family_fail_rate(alpha_c: float) -> float:
        targets = minimum_protected_targets(k, p, alpha_c)
        return float(np.mean(np.any(counts < targets[None, :], axis=1)))

    lo, hi = 0.0, alpha
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if mid <= 0.0:
            break
        if family_fail_rate(mid) > alpha:
            hi = mid
        else:
            lo = mid
    return max(lo, 1e-12)


@dataclass
class FairRankingResult:
    """Output of :meth:`FairRanker.rank`.

    ``ranking`` holds the re-ordered item indices (best first);
    ``scores`` the fair scores aligned with ``ranking`` (original score
    for organic picks, interpolated for forced protected picks);
    ``forced`` flags the positions filled to satisfy the constraint.
    """

    ranking: np.ndarray
    scores: np.ndarray
    forced: np.ndarray


class FairRanker:
    """FA*IR re-ranker with fair-score interpolation.

    Parameters
    ----------
    p:
        Target minimum proportion of protected candidates.
    alpha:
        Per-prefix significance level of the binomial test.
    adjust:
        Apply the Monte-Carlo multiple-testing correction to alpha.
    """

    def __init__(
        self,
        p: float = 0.5,
        alpha: float = 0.1,
        *,
        adjust: bool = False,
        random_state: RandomStateLike = 0,
    ):
        if not 0.0 < p < 1.0:
            raise ValidationError("target proportion p must lie in (0, 1)")
        if not 0.0 < alpha < 1.0:
            raise ValidationError("significance alpha must lie in (0, 1)")
        self.p = float(p)
        self.alpha = float(alpha)
        self.adjust = bool(adjust)
        self.random_state = random_state

    def rank(self, scores, protected, k: Optional[int] = None) -> FairRankingResult:
        """Produce a fair top-``k`` ranking of all items.

        Parameters
        ----------
        scores:
            Deserved score per item (higher is better).
        protected:
            0/1 protected indicator per item.
        k:
            Length of the output ranking; defaults to all items.
        """
        scores = check_vector(scores, "scores")
        protected = check_binary_labels(protected, "protected", length=scores.size)
        n = scores.size
        k = n if k is None else int(k)
        if not 1 <= k <= n:
            raise ValidationError(f"k must lie in [1, {n}], got {k}")

        alpha_eff = (
            adjust_significance(k, self.p, self.alpha, random_state=self.random_state)
            if self.adjust
            else self.alpha
        )
        targets = minimum_protected_targets(k, self.p, alpha_eff)

        order = np.argsort(-scores, kind="mergesort")
        protected_queue = [i for i in order if protected[i] == 1]
        regular_queue = [i for i in order if protected[i] == 0]
        pq, rq = 0, 0  # queue cursors

        ranking = np.empty(k, dtype=np.intp)
        forced = np.zeros(k, dtype=bool)
        n_protected_placed = 0
        for pos in range(k):
            need = targets[pos]
            must_take_protected = n_protected_placed < need
            can_take_protected = pq < len(protected_queue)
            can_take_regular = rq < len(regular_queue)
            if must_take_protected and can_take_protected:
                take_protected = True
                forced_pick = True
            elif can_take_protected and can_take_regular:
                take_protected = scores[protected_queue[pq]] >= scores[regular_queue[rq]]
                forced_pick = False
            elif can_take_protected:
                take_protected = True
                forced_pick = False
            elif can_take_regular:
                take_protected = False
                forced_pick = False
            else:  # pragma: no cover - k <= n guarantees availability
                raise ValidationError("ran out of candidates before filling k ranks")
            if take_protected:
                ranking[pos] = protected_queue[pq]
                pq += 1
                n_protected_placed += 1
                # Only mark as forced when the candidate would not have
                # been chosen on score alone.
                if forced_pick and can_take_regular:
                    organic = scores[ranking[pos]] < scores[regular_queue[rq]]
                    forced[pos] = organic
            else:
                ranking[pos] = regular_queue[rq]
                rq += 1

        fair_scores = self._interpolate_scores(scores[ranking], forced)
        return FairRankingResult(ranking=ranking, scores=fair_scores, forced=forced)

    @staticmethod
    def _interpolate_scores(ordered_scores: np.ndarray, forced: np.ndarray) -> np.ndarray:
        """Fill forced positions by linear interpolation between organic
        neighbours (paper Section V-E extension)."""
        out = ordered_scores.astype(np.float64, copy=True)
        organic_pos = np.flatnonzero(~forced)
        if organic_pos.size == 0:
            return out
        holes = np.flatnonzero(forced)
        if holes.size:
            out[holes] = np.interp(holes, organic_pos, out[organic_pos])
        return out
