"""Truncated SVD baselines, exact and randomised.

The paper's SVD baseline reduces the data via singular value
decomposition and cites Halko, Martinsson & Tropp (2011) — the
randomised range-finder algorithm — which is implemented here from
scratch alongside the exact (LAPACK-backed) truncation.

:class:`SVDTransform` projects records onto the top-``rank`` right
singular vectors and reconstructs them back into the original feature
space, so SVD-transformed data is directly comparable to iFair/LFR
representations (same dimensionality, reduced rank).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_matrix


def truncated_svd(X, rank: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact rank-``rank`` SVD factors ``(U, s, Vt)`` of ``X``."""
    X = check_matrix(X, "X")
    rank = _check_rank(rank, X.shape)
    U, s, Vt = np.linalg.svd(X, full_matrices=False)
    return U[:, :rank], s[:rank], Vt[:rank]


def randomized_svd(
    X,
    rank: int,
    *,
    n_oversamples: int = 10,
    n_power_iter: int = 4,
    random_state: RandomStateLike = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomised truncated SVD (Halko et al. 2011, Algorithm 4.3/5.1).

    1. Sample a Gaussian test matrix Omega (n x (rank + oversamples)).
    2. Form Y = X Omega and orthonormalise to get the range basis Q,
       with optional power iterations to sharpen spectral decay.
    3. SVD the small projected matrix B = Q^T X and map back.
    """
    X = check_matrix(X, "X")
    rank = _check_rank(rank, X.shape)
    if n_oversamples < 0 or n_power_iter < 0:
        raise ValidationError("oversampling and power-iteration counts must be >= 0")
    rng = check_random_state(random_state)
    n_cols = X.shape[1]
    sketch = min(rank + n_oversamples, min(X.shape))
    omega = rng.standard_normal((n_cols, sketch))
    Y = X @ omega
    Q, _ = np.linalg.qr(Y)
    for _ in range(n_power_iter):
        Z, _ = np.linalg.qr(X.T @ Q)
        Q, _ = np.linalg.qr(X @ Z)
    B = Q.T @ X
    Ub, s, Vt = np.linalg.svd(B, full_matrices=False)
    U = Q @ Ub
    return U[:, :rank], s[:rank], Vt[:rank]


def _check_rank(rank: int, shape: Tuple[int, int]) -> int:
    limit = min(shape)
    if not 1 <= rank <= limit:
        raise ValidationError(f"rank must lie in [1, {limit}], got {rank}")
    return int(rank)


class SVDTransform:
    """Low-rank reconstruction baseline.

    Parameters
    ----------
    rank:
        Number of singular components to keep.
    method:
        ``'exact'`` (LAPACK) or ``'randomized'`` (Halko et al.).
    random_state:
        Seed for the randomised sketch (ignored for exact).
    """

    def __init__(
        self,
        rank: int = 10,
        method: str = "exact",
        random_state: RandomStateLike = 0,
    ):
        if method not in ("exact", "randomized"):
            raise ValidationError("method must be 'exact' or 'randomized'")
        self.rank = int(rank)
        self.method = method
        self.random_state = random_state
        self.components_: Optional[np.ndarray] = None  # (rank, N) = Vt
        self.singular_values_: Optional[np.ndarray] = None

    def fit(self, X, protected_indices=None) -> "SVDTransform":
        """Learn the top right-singular subspace of ``X``.

        ``protected_indices`` is accepted (and ignored) so the class
        satisfies the shared representation interface; masking is
        applied upstream for the SVD-masked variant.
        """
        X = check_matrix(X, "X")
        rank = min(self.rank, min(X.shape))
        if self.method == "exact":
            _, s, Vt = truncated_svd(X, rank)
        else:
            _, s, Vt = randomized_svd(X, rank, random_state=self.random_state)
        self.components_ = Vt
        self.singular_values_ = s
        return self

    def transform(self, X) -> np.ndarray:
        """Project onto the learned subspace and reconstruct."""
        if self.components_ is None:
            raise NotFittedError("SVDTransform must be fitted before transform")
        X = check_matrix(X, "X")
        if X.shape[1] != self.components_.shape[1]:
            raise ValidationError(
                f"X has {X.shape[1]} features, SVD was fitted with "
                f"{self.components_.shape[1]}"
            )
        return (X @ self.components_.T) @ self.components_

    def fit_transform(self, X, protected_indices=None) -> np.ndarray:
        return self.fit(X, protected_indices).transform(X)

    def explained_variance_ratio(self, X) -> float:
        """Fraction of squared norm captured by the reconstruction."""
        X = check_matrix(X, "X")
        total = float(np.sum(X * X))
        if total == 0.0:
            return 1.0
        recon = self.transform(X)
        return float(np.sum(recon * recon) / total)
