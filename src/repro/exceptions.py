"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input array, label vector or parameter failed validation."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConvergenceWarningError(ReproError, RuntimeError):
    """Optimisation failed so badly that no usable parameters exist."""


class SchemaError(ReproError, ValueError):
    """A dataset schema is internally inconsistent."""
