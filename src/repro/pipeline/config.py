"""Experiment configuration.

The paper's full protocol (grids of Section V-B at full dataset sizes)
is expensive; :class:`ExperimentConfig` captures every knob with two
presets:

* :meth:`ExperimentConfig.fast` — reduced grids and dataset sizes that
  keep each table/figure regeneration in the seconds-to-minutes range
  (the default for tests and benchmarks);
* :meth:`ExperimentConfig.paper` — the paper's grids
  ({0, 0.05, 0.1, 1, 10, 100} mixtures, K in {10, 20, 30}, best of 3
  restarts) at full dataset sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.executor import POOL_MODES, effective_n_jobs
from repro.core.objective import PAIR_MODES
from repro.core.shards import SHARD_BATCH_MODES
from repro.core.tuning import (
    MIXTURE_GRID,
    PROMOTE_MODES,
    PROTOTYPE_GRID,
    TUNING_STRATEGIES,
)
from repro.exceptions import ValidationError
from repro.utils.landmarks import LANDMARK_METHODS


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the experiment pipeline.

    Attributes
    ----------
    mixture_grid:
        Candidate values for lambda/mu (iFair) and A_x/A_z (LFR).
    prototype_grid:
        Candidate prototype counts K (also used as SVD ranks).
    n_restarts:
        Optimisation restarts per candidate ("best of 3" in the paper).
    max_iter:
        L-BFGS iteration budget per restart.
    max_pairs:
        Cap on fairness-loss pairs (None = exact full sum).
    pair_mode:
        Fairness-oracle mode for iFair fits: ``"auto"`` (default;
        sampled iff ``max_pairs`` set), ``"full"``, ``"sampled"``, or
        ``"landmark"`` (the O(M * L * N) large-M oracle).
    n_landmarks:
        Anchor count when ``pair_mode="landmark"`` (None = the model
        default, min(M, 128)).
    landmark_method:
        ``"kmeans++"`` or ``"farthest"`` anchor seeding.
    oracle_jobs:
        Workers evaluating row shards of one landmark-oracle call
        (``None``/1 in-process, ``-1`` per CPU).  Requires
        ``pair_mode="landmark"``; see
        :class:`repro.core.shards.ShardedLandmarkOracle`.
    oracle_shards:
        Shard count per oracle call (default: the resolved
        ``oracle_jobs``); fixing it pins results across worker counts.
    batch_mode:
        ``"full"`` (default) or ``"stochastic"`` — mini-batch landmark
        oracle with deterministic spawn-key batch streams.
    batch_size:
        Rows per stochastic oracle call (required with, and only
        valid for, ``batch_mode="stochastic"``).
    tune_jobs:
        Candidate fits of the tuning protocol run on this many worker
        processes (``None``/1 serial, ``-1`` per CPU).  Results are
        identical for any value; see :mod:`repro.core.executor`.
    tune_strategy:
        ``"exhaustive"`` (default, the paper's protocol) or
        ``"halving"`` (successive halving over the same grid — 2-4x
        fewer fit-iterations; selection validated against exhaustive
        on seeded configs, see :mod:`repro.core.tuning`).
    tune_pool:
        ``"per-call"`` (default) or ``"session"`` — whether tuning
        searches spawn a private worker pool each or borrow the
        persistent broker pool (and shm arena cache); results are
        bitwise identical, session amortises the spawn/broadcast cost
        across the per-method searches of one experiment.
    tune_promote:
        Halving rung promotion: ``"rank"`` (default, observed
        low-budget scores) or ``"extrapolate"`` (predicted full-budget
        scores from per-candidate learning curves).  Only meaningful
        with ``tune_strategy="halving"``.
    consistency_k:
        Neighbourhood size of yNN.
    l2:
        Regularisation of downstream logistic regression.
    classification_records / ranking_queries / query_size:
        Dataset scale used when the runner generates data itself.
    compas_charge_levels:
        Cardinality knob controlling COMPAS encoded width.
    online_refit:
        Attach the serving-side drift-response controller when this
        config is served (``repro serve --online-refit``); see
        :mod:`repro.serving.online`.
    refresh_window:
        Sliding-window row bound of the online controller (shift
        statistic, landmark re-anchoring, and ``partial_fit`` refits).
    drift_policy:
        Which drift signal schedules a refit — one of
        :data:`repro.serving.online.DRIFT_POLICIES`.
    refit_cooldown_s:
        Minimum seconds between automatic online refits.
    random_state:
        Master seed for data generation, splits and optimisation.
    """

    mixture_grid: Tuple[float, ...] = (0.1, 1.0, 100.0)
    prototype_grid: Tuple[int, ...] = (8,)
    n_restarts: int = 1
    max_iter: int = 60
    max_pairs: Optional[int] = 2500
    pair_mode: str = "auto"
    n_landmarks: Optional[int] = None
    landmark_method: str = "kmeans++"
    oracle_jobs: Optional[int] = None
    oracle_shards: Optional[int] = None
    batch_mode: str = "full"
    batch_size: Optional[int] = None
    tune_jobs: Optional[int] = None
    tune_strategy: str = "exhaustive"
    tune_pool: str = "per-call"
    tune_promote: str = "rank"
    consistency_k: int = 10
    l2: float = 1.0
    classification_records: int = 450
    ranking_queries: int = 12
    query_size: int = 25
    compas_charge_levels: int = 30
    online_refit: bool = False
    refresh_window: int = 512
    drift_policy: str = "either"
    refit_cooldown_s: float = 30.0
    random_state: int = 7

    def __post_init__(self):
        if not self.mixture_grid or not self.prototype_grid:
            raise ValidationError("grids must not be empty")
        if self.n_restarts < 1 or self.max_iter < 1:
            raise ValidationError("n_restarts and max_iter must be positive")
        if self.consistency_k < 1:
            raise ValidationError("consistency_k must be positive")
        if self.pair_mode not in PAIR_MODES:
            raise ValidationError(f"pair_mode must be one of {PAIR_MODES}")
        if self.landmark_method not in LANDMARK_METHODS:
            raise ValidationError(
                f"landmark_method must be one of {LANDMARK_METHODS}"
            )
        if self.n_landmarks is not None and self.n_landmarks < 1:
            raise ValidationError("n_landmarks must be positive")
        if self.batch_mode not in SHARD_BATCH_MODES:
            raise ValidationError(
                f"batch_mode must be one of {SHARD_BATCH_MODES}"
            )
        effective_n_jobs(self.oracle_jobs)  # validates the knob's range
        if self.oracle_shards is not None and self.oracle_shards < 1:
            raise ValidationError("oracle_shards must be positive")
        if self.batch_mode == "stochastic" and self.batch_size is None:
            raise ValidationError('batch_mode="stochastic" needs batch_size')
        if self.batch_size is not None:
            if self.batch_mode != "stochastic":
                raise ValidationError(
                    'batch_size requires batch_mode="stochastic"'
                )
            if self.batch_size < 1:
                raise ValidationError("batch_size must be positive")
        sharded = (
            self.oracle_jobs is not None
            or self.oracle_shards is not None
            or self.batch_mode != "full"
        )
        if sharded and self.pair_mode != "landmark":
            raise ValidationError(
                "oracle_jobs/oracle_shards/batch_mode/batch_size require "
                'pair_mode="landmark"'
            )
        effective_n_jobs(self.tune_jobs)  # validates the knob's range
        if self.tune_strategy not in TUNING_STRATEGIES:
            raise ValidationError(
                f"tune_strategy must be one of {TUNING_STRATEGIES}"
            )
        if self.tune_pool not in POOL_MODES:
            raise ValidationError(f"tune_pool must be one of {POOL_MODES}")
        if self.tune_promote not in PROMOTE_MODES:
            raise ValidationError(
                f"tune_promote must be one of {PROMOTE_MODES}"
            )
        # Deferred import: repro.serving must stay importable without
        # the pipeline package and vice versa.
        from repro.serving.online import DRIFT_POLICIES

        if self.drift_policy not in DRIFT_POLICIES:
            raise ValidationError(
                f"drift_policy must be one of {DRIFT_POLICIES}"
            )
        if self.refresh_window < 2:
            raise ValidationError("refresh_window must be at least 2")
        if self.refit_cooldown_s < 0:
            raise ValidationError("refit_cooldown_s must be non-negative")

    @classmethod
    def fast(cls, random_state: int = 7) -> "ExperimentConfig":
        """Reduced preset for tests and benchmark regeneration."""
        return cls(random_state=random_state)

    @classmethod
    def paper(cls, random_state: int = 7) -> "ExperimentConfig":
        """The paper's full protocol (hours of compute)."""
        return cls(
            mixture_grid=MIXTURE_GRID,
            prototype_grid=PROTOTYPE_GRID,
            n_restarts=3,
            max_iter=200,
            max_pairs=None,
            classification_records=6901,
            ranking_queries=57,
            query_size=40,
            compas_charge_levels=397,
            random_state=random_state,
        )
