"""Experiment configuration.

The paper's full protocol (grids of Section V-B at full dataset sizes)
is expensive; :class:`ExperimentConfig` captures every knob with two
presets:

* :meth:`ExperimentConfig.fast` — reduced grids and dataset sizes that
  keep each table/figure regeneration in the seconds-to-minutes range
  (the default for tests and benchmarks);
* :meth:`ExperimentConfig.paper` — the paper's grids
  ({0, 0.05, 0.1, 1, 10, 100} mixtures, K in {10, 20, 30}, best of 3
  restarts) at full dataset sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.executor import POOL_MODES, effective_n_jobs
from repro.core.objective import PAIR_MODES
from repro.core.tuning import (
    MIXTURE_GRID,
    PROMOTE_MODES,
    PROTOTYPE_GRID,
    TUNING_STRATEGIES,
)
from repro.exceptions import ValidationError
from repro.utils.landmarks import LANDMARK_METHODS


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the experiment pipeline.

    Attributes
    ----------
    mixture_grid:
        Candidate values for lambda/mu (iFair) and A_x/A_z (LFR).
    prototype_grid:
        Candidate prototype counts K (also used as SVD ranks).
    n_restarts:
        Optimisation restarts per candidate ("best of 3" in the paper).
    max_iter:
        L-BFGS iteration budget per restart.
    max_pairs:
        Cap on fairness-loss pairs (None = exact full sum).
    pair_mode:
        Fairness-oracle mode for iFair fits: ``"auto"`` (default;
        sampled iff ``max_pairs`` set), ``"full"``, ``"sampled"``, or
        ``"landmark"`` (the O(M * L * N) large-M oracle).
    n_landmarks:
        Anchor count when ``pair_mode="landmark"`` (None = the model
        default, min(M, 128)).
    landmark_method:
        ``"kmeans++"`` or ``"farthest"`` anchor seeding.
    tune_jobs:
        Candidate fits of the tuning protocol run on this many worker
        processes (``None``/1 serial, ``-1`` per CPU).  Results are
        identical for any value; see :mod:`repro.core.executor`.
    tune_strategy:
        ``"exhaustive"`` (default, the paper's protocol) or
        ``"halving"`` (successive halving over the same grid — 2-4x
        fewer fit-iterations; selection validated against exhaustive
        on seeded configs, see :mod:`repro.core.tuning`).
    tune_pool:
        ``"per-call"`` (default) or ``"session"`` — whether tuning
        searches spawn a private worker pool each or borrow the
        persistent broker pool (and shm arena cache); results are
        bitwise identical, session amortises the spawn/broadcast cost
        across the per-method searches of one experiment.
    tune_promote:
        Halving rung promotion: ``"rank"`` (default, observed
        low-budget scores) or ``"extrapolate"`` (predicted full-budget
        scores from per-candidate learning curves).  Only meaningful
        with ``tune_strategy="halving"``.
    consistency_k:
        Neighbourhood size of yNN.
    l2:
        Regularisation of downstream logistic regression.
    classification_records / ranking_queries / query_size:
        Dataset scale used when the runner generates data itself.
    compas_charge_levels:
        Cardinality knob controlling COMPAS encoded width.
    random_state:
        Master seed for data generation, splits and optimisation.
    """

    mixture_grid: Tuple[float, ...] = (0.1, 1.0, 100.0)
    prototype_grid: Tuple[int, ...] = (8,)
    n_restarts: int = 1
    max_iter: int = 60
    max_pairs: Optional[int] = 2500
    pair_mode: str = "auto"
    n_landmarks: Optional[int] = None
    landmark_method: str = "kmeans++"
    tune_jobs: Optional[int] = None
    tune_strategy: str = "exhaustive"
    tune_pool: str = "per-call"
    tune_promote: str = "rank"
    consistency_k: int = 10
    l2: float = 1.0
    classification_records: int = 450
    ranking_queries: int = 12
    query_size: int = 25
    compas_charge_levels: int = 30
    random_state: int = 7

    def __post_init__(self):
        if not self.mixture_grid or not self.prototype_grid:
            raise ValidationError("grids must not be empty")
        if self.n_restarts < 1 or self.max_iter < 1:
            raise ValidationError("n_restarts and max_iter must be positive")
        if self.consistency_k < 1:
            raise ValidationError("consistency_k must be positive")
        if self.pair_mode not in PAIR_MODES:
            raise ValidationError(f"pair_mode must be one of {PAIR_MODES}")
        if self.landmark_method not in LANDMARK_METHODS:
            raise ValidationError(
                f"landmark_method must be one of {LANDMARK_METHODS}"
            )
        if self.n_landmarks is not None and self.n_landmarks < 1:
            raise ValidationError("n_landmarks must be positive")
        effective_n_jobs(self.tune_jobs)  # validates the knob's range
        if self.tune_strategy not in TUNING_STRATEGIES:
            raise ValidationError(
                f"tune_strategy must be one of {TUNING_STRATEGIES}"
            )
        if self.tune_pool not in POOL_MODES:
            raise ValidationError(f"tune_pool must be one of {POOL_MODES}")
        if self.tune_promote not in PROMOTE_MODES:
            raise ValidationError(
                f"tune_promote must be one of {PROMOTE_MODES}"
            )

    @classmethod
    def fast(cls, random_state: int = 7) -> "ExperimentConfig":
        """Reduced preset for tests and benchmark regeneration."""
        return cls(random_state=random_state)

    @classmethod
    def paper(cls, random_state: int = 7) -> "ExperimentConfig":
        """The paper's full protocol (hours of compute)."""
        return cls(
            mixture_grid=MIXTURE_GRID,
            prototype_grid=PROTOTYPE_GRID,
            n_restarts=3,
            max_iter=200,
            max_pairs=None,
            classification_records=6901,
            ranking_queries=57,
            query_size=40,
            compas_charge_levels=397,
            random_state=random_state,
        )
