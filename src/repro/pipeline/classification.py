"""Classification experiment runner (Figure 3 and Table III).

Protocol (Section V-B/V-D):

1. unit-variance scaling fitted on the train split;
2. random three-way split (train / validation / test);
3. every method is trained on the train split; candidates with
   hyper-parameters are scored on the validation split by (AUC, yNN);
4. Table III rows: for LFR / iFair-a / iFair-b, pick candidates by the
   three tuning criteria and report their *test* metrics;
5. Figure 3 points: test (AUC, yNN) of every candidate, with the
   cross-method Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.executor import get_shared
from repro.core.pareto import pareto_front
from repro.core.tuning import GridSearch, HalvingConfig, TuningCriterion
from repro.data.schema import TabularDataset
from repro.data.splits import Split, stratified_split
from repro.exceptions import ValidationError
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import accuracy, roc_auc
from repro.metrics.group import equal_opportunity, statistical_parity
from repro.metrics.individual import consistency
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.representations import (
    CLASSIFICATION_METHODS,
    FitContext,
    make_method,
    method_candidates,
)
from repro.utils.tables import render_table


@dataclass
class ClassifierMetrics:
    """The five Table III measures on one split."""

    accuracy: float
    auc: float
    eq_opp: float
    parity: float
    consistency: float

    def as_row(self) -> List[float]:
        return [self.accuracy, self.auc, self.eq_opp, self.parity, self.consistency]


@dataclass
class CandidateOutcome:
    """One (method, hyper-params) candidate, scored on val and test."""

    method: str
    params: Dict
    val_auc: float
    val_consistency: float
    test: ClassifierMetrics


@dataclass
class ClassificationReport:
    """Everything the classification benches print."""

    dataset: str
    candidates: List[CandidateOutcome] = field(default_factory=list)

    def method_candidates(self, method: str) -> List[CandidateOutcome]:
        return [c for c in self.candidates if c.method == method]

    def best(self, method: str, criterion: TuningCriterion) -> CandidateOutcome:
        """Tuning happens on validation scores, as in the paper."""
        pool = self.method_candidates(method)
        if not pool:
            raise ValidationError(f"no candidates for method {method!r}")
        return max(
            pool, key=lambda c: criterion.score(c.val_auc, c.val_consistency)
        )

    def pareto_points(self) -> List[CandidateOutcome]:
        """Cross-method Pareto front on test (AUC, yNN) — Figure 3."""
        pts = [[c.test.auc, c.test.consistency] for c in self.candidates]
        return [self.candidates[i] for i in pareto_front(pts)]

    def table3(self) -> str:
        """Render the dataset's Table III block."""
        headers = ["Tuning", "Method", "Acc", "AUC", "EqOpp", "Parity", "yNN"]
        rows: List[List] = []
        full = self.best("Full Data", TuningCriterion.MAX_UTILITY)
        rows.append(["Baseline", "Full Data"] + full.test.as_row())
        labels = {
            TuningCriterion.MAX_UTILITY: "Max Utility",
            TuningCriterion.MAX_FAIRNESS: "Max Fairness",
            TuningCriterion.OPTIMAL: "Optimal",
        }
        for criterion, label in labels.items():
            for method in ("LFR", "iFair-a", "iFair-b"):
                best = self.best(method, criterion)
                rows.append([label, method] + best.test.as_row())
        return render_table(headers, rows, title=f"Table III — {self.dataset}")

    def figure3(self) -> str:
        """Render the Figure 3 scatter (test AUC vs yNN per method)."""
        headers = ["Method", "AUC", "yNN", "Pareto"]
        front = {id(c) for c in self.pareto_points()}
        rows = [
            [c.method, c.test.auc, c.test.consistency, "*" if id(c) in front else ""]
            for c in self.candidates
        ]
        return render_table(headers, rows, title=f"Figure 3 — {self.dataset}")


def _classifier_metrics(
    clf: LogisticRegression,
    Z: np.ndarray,
    y: np.ndarray,
    protected: np.ndarray,
    X_star: np.ndarray,
    k: int,
) -> ClassifierMetrics:
    proba = clf.predict_proba(Z)
    pred = (proba >= 0.5).astype(np.float64)
    try:
        auc = roc_auc(y, proba)
    except ValidationError:
        auc = float("nan")
    try:
        eq = equal_opportunity(y, pred, protected)
    except ValidationError:
        eq = float("nan")
    try:
        parity = statistical_parity(pred, protected)
    except ValidationError:
        parity = float("nan")
    return ClassifierMetrics(
        accuracy=accuracy(y, pred),
        auc=auc,
        eq_opp=eq,
        parity=parity,
        consistency=consistency(X_star, pred, k=min(k, X_star.shape[0] - 1)),
    )


@dataclass(frozen=True)
class _CandidateSpec:
    """Picklable description of one method's candidate-fitting job.

    Everything a worker process needs *besides* the big arrays — those
    travel once through the executor's shared-memory broadcast
    (``X``, ``X_star``, ``y``, ``protected``) instead of being pickled
    into each of the hundreds of grid tasks.
    """

    method: str
    protected_indices: Tuple[int, ...]
    train: np.ndarray
    val: np.ndarray
    test: np.ndarray
    l2: float
    consistency_k: int
    random_state: int


@dataclass
class _FittedCandidate:
    """Worker-side bundle of one fitted candidate (rarely pickled)."""

    method: object
    clf: LogisticRegression
    spec: _CandidateSpec

    @property
    def theta_(self) -> Optional[np.ndarray]:
        """Fitted parameter vector when the method exposes one."""
        return getattr(self.method, "theta_", None)


def _candidate_build(spec: _CandidateSpec, params: Dict) -> _FittedCandidate:
    """Fit one (method, hyper-params) candidate plus its classifier."""
    shared = get_shared()
    X, y = shared["X"], shared["y"]
    context = FitContext(
        X_train=X[spec.train],
        protected_indices=np.asarray(spec.protected_indices, dtype=np.intp),
        y_train=y[spec.train],
        protected_group_train=shared["protected"][spec.train],
        random_state=spec.random_state,
    )
    method = make_method(spec.method, params)
    method.fit(context)
    Z_train = method.transform(X[spec.train])
    clf = LogisticRegression(l2=spec.l2).fit(Z_train, y[spec.train])
    return _FittedCandidate(method=method, clf=clf, spec=spec)


def _candidate_evaluate(fitted: _FittedCandidate) -> Tuple[float, float]:
    """Validation (AUC, yNN) — the tuning scores of Section V-B."""
    shared = get_shared()
    spec = fitted.spec
    X, y, X_star = shared["X"], shared["y"], shared["X_star"]
    Z_val = fitted.method.transform(X[spec.val])
    val_proba = fitted.clf.predict_proba(Z_val)
    val_pred = (val_proba >= 0.5).astype(np.float64)
    try:
        val_auc = float(roc_auc(y[spec.val], val_proba))
    except ValidationError:
        val_auc = float("nan")
    val_ynn = float(
        consistency(
            X_star[spec.val],
            val_pred,
            k=min(spec.consistency_k, spec.val.size - 1),
        )
    )
    return val_auc, val_ynn


def _candidate_summarize(fitted: _FittedCandidate) -> Dict:
    """Test-split metrics, reduced before the artifact is dropped."""
    shared = get_shared()
    spec = fitted.spec
    X, y, X_star = shared["X"], shared["y"], shared["X_star"]
    metrics = _classifier_metrics(
        fitted.clf,
        fitted.method.transform(X[spec.test]),
        y[spec.test],
        shared["protected"][spec.test],
        X_star[spec.test],
        spec.consistency_k,
    )
    return vars(metrics)


def run_classification(
    dataset: TabularDataset,
    config: Optional[ExperimentConfig] = None,
    *,
    methods: Tuple[str, ...] = CLASSIFICATION_METHODS,
) -> ClassificationReport:
    """Run the full classification protocol on one dataset.

    Candidate fits route through :class:`repro.core.tuning.GridSearch`:
    ``config.tune_jobs`` fans them over worker processes (the scaled
    matrix, labels and group vectors are broadcast once via shared
    memory) and ``config.tune_strategy="halving"`` switches the tuned
    methods to successive halving — the report then contains the
    final-rung survivors of each method rather than every grid point.
    Fitted artifacts are always dropped after scoring
    (``keep_artifacts=False``); only metrics leave the workers.
    """
    config = config or ExperimentConfig.fast()
    if dataset.task != "classification":
        raise ValidationError(f"dataset {dataset.name!r} is not a classification task")

    split = stratified_split(dataset.y, random_state=config.random_state)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)
    # yNN neighbours live in the original (pre-representation) record
    # space restricted to non-protected attributes; the unit-variance
    # scaling is part of preprocessing (Section V-B), so X* is scaled
    # too — otherwise a single wide-ranged column owns every neighbour.
    X_star = X[:, dataset.nonprotected_indices]
    shared = {
        "X": X,
        "X_star": X_star,
        "y": dataset.y,
        "protected": dataset.protected,
    }

    report = ClassificationReport(dataset=dataset.name)
    for name in methods:
        spec = _CandidateSpec(
            method=name,
            protected_indices=tuple(
                int(i) for i in np.atleast_1d(dataset.protected_indices)
            ),
            train=split.train,
            val=split.val,
            test=split.test,
            l2=config.l2,
            consistency_k=config.consistency_k,
            random_state=config.random_state,
        )
        search = GridSearch(
            partial(_candidate_build, spec),
            _candidate_evaluate,
            method_candidates(name, config),
            n_jobs=config.tune_jobs,
            strategy=config.tune_strategy,
            halving=HalvingConfig(promote=config.tune_promote),
            keep_artifacts=False,
            summarize=_candidate_summarize,
            shared=shared,
            pool=config.tune_pool,
        )
        for candidate in search.run().candidates:
            report.candidates.append(
                CandidateOutcome(
                    method=name,
                    params=dict(candidate.params),
                    val_auc=candidate.utility,
                    val_consistency=candidate.fairness,
                    test=ClassifierMetrics(**candidate.info),
                )
            )
    return report
