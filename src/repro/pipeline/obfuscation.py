"""Information-obfuscation study (Figure 4).

For each dataset, train an adversarial logistic regression to predict
protected-group membership from three representations:

* Masked Data (protected columns zeroed),
* LFR (classification datasets only — LFR needs labels),
* iFair-b.

The paper's finding to reproduce: masking leaves adversarial accuracy
high (proxies leak), while iFair pushes it toward the 0.5 floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.learners.scaler import StandardScaler
from repro.metrics.obfuscation import adversarial_accuracy
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.representations import FitContext, make_method
from repro.utils.tables import render_table


@dataclass
class ObfuscationRow:
    """Adversarial accuracies for one dataset."""

    dataset: str
    masked: float
    lfr: Optional[float]
    ifair: float


@dataclass
class ObfuscationReport:
    """Figure 4 data across datasets."""

    rows: List[ObfuscationRow] = field(default_factory=list)

    def figure4(self) -> str:
        headers = ["Dataset", "Masked Data", "LFR", "iFair-b"]
        table_rows = [
            [
                row.dataset,
                row.masked,
                "n/a" if row.lfr is None else row.lfr,
                row.ifair,
            ]
            for row in self.rows
        ]
        return render_table(
            headers,
            table_rows,
            title="Figure 4 — adversarial accuracy (lower is better)",
        )


def run_obfuscation(
    dataset: TabularDataset,
    config: Optional[ExperimentConfig] = None,
    *,
    ifair_params: Optional[Dict] = None,
    lfr_params: Optional[Dict] = None,
) -> ObfuscationRow:
    """Audit one dataset's representations for protected-info leakage."""
    config = config or ExperimentConfig.fast()
    scaler = StandardScaler().fit(dataset.X)
    X = scaler.transform(dataset.X)
    is_classification = dataset.task == "classification"
    context = FitContext(
        X_train=X,
        protected_indices=dataset.protected_indices,
        y_train=dataset.y if is_classification else None,
        protected_group_train=dataset.protected if is_classification else None,
        random_state=config.random_state,
    )

    masked = make_method("Masked Data", {}).fit(context)
    acc_masked = adversarial_accuracy(
        masked.transform(X), dataset.protected, random_state=config.random_state
    )

    acc_lfr: Optional[float] = None
    if is_classification:
        lfr = make_method(
            "LFR",
            lfr_params
            or {
                "n_prototypes": config.prototype_grid[0],
                "a_x": 0.01,
                "a_z": 1.0,
                "max_iter": config.max_iter,
                "n_restarts": config.n_restarts,
            },
        ).fit(context)
        acc_lfr = adversarial_accuracy(
            lfr.transform(X), dataset.protected, random_state=config.random_state
        )

    ifair = make_method(
        "iFair-b",
        ifair_params
        or {
            # Low-rank compression is what obfuscates; moderate mu keeps
            # individual fairness without perfectly preserving (and thus
            # leaking) all proxy structure.
            "n_prototypes": min(config.prototype_grid),
            "lambda_util": 1.0,
            "mu_fair": 1.0,
            "max_iter": config.max_iter,
            "n_restarts": config.n_restarts,
            "max_pairs": config.max_pairs,
        },
    ).fit(context)
    acc_ifair = adversarial_accuracy(
        ifair.transform(X), dataset.protected, random_state=config.random_state
    )

    return ObfuscationRow(
        dataset=dataset.name, masked=acc_masked, lfr=acc_lfr, ifair=acc_ifair
    )


def run_obfuscation_study(
    datasets: List[TabularDataset],
    config: Optional[ExperimentConfig] = None,
) -> ObfuscationReport:
    """Figure 4 across a collection of datasets."""
    if not datasets:
        raise ValidationError("need at least one dataset")
    report = ObfuscationReport()
    for dataset in datasets:
        report.rows.append(run_obfuscation(dataset, config))
    return report
