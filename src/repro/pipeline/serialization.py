"""Machine-readable serialisation of experiment reports.

The pipeline's report objects render ASCII tables for the harness;
this module turns the same results into plain dicts (JSON-safe) and CSV
text so downstream tooling (dashboards, regression tracking across
reproduction runs) can consume them.

Supported report types: classification (Table III / Figure 3), ranking
(Table V), weight sensitivity (Table IV), obfuscation (Figure 4),
post-hoc (Figure 5), synthetic study (Figure 2), dataset statistics
(Table II).
"""

from __future__ import annotations

import io
import json
import math
from typing import Dict, List, Sequence

from repro.exceptions import ValidationError
from repro.pipeline.classification import ClassificationReport
from repro.pipeline.datasets import DatasetsReport
from repro.pipeline.motivation import MotivationReport
from repro.pipeline.obfuscation import ObfuscationReport
from repro.pipeline.posthoc import PosthocReport
from repro.pipeline.ranking import RankingReport, WeightSensitivityRow
from repro.pipeline.synthetic_study import SyntheticReport


def _clean(value):
    """JSON-safe scalar: NaN/inf become None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def classification_to_dict(report: ClassificationReport) -> Dict:
    """All candidates with validation and test metrics."""
    return {
        "experiment": "classification",
        "dataset": report.dataset,
        "candidates": [
            {
                "method": c.method,
                "params": c.params,
                "val_auc": _clean(c.val_auc),
                "val_consistency": _clean(c.val_consistency),
                "test": {
                    "accuracy": _clean(c.test.accuracy),
                    "auc": _clean(c.test.auc),
                    "eq_opp": _clean(c.test.eq_opp),
                    "parity": _clean(c.test.parity),
                    "consistency": _clean(c.test.consistency),
                },
            }
            for c in report.candidates
        ],
    }


def ranking_to_dict(report: RankingReport) -> Dict:
    return {
        "experiment": "ranking",
        "dataset": report.dataset,
        "n_queries": report.n_queries,
        "rows": [
            {
                "method": r.method,
                "params": r.params,
                "map": _clean(r.map_score),
                "kendall": _clean(r.kendall),
                "consistency": _clean(r.consistency),
                "protected_share": _clean(r.protected_share),
            }
            for r in report.rows
        ],
    }


def weight_sensitivity_to_dict(rows: Sequence[WeightSensitivityRow]) -> Dict:
    return {
        "experiment": "weight_sensitivity",
        "rows": [
            {
                "weights": list(r.weights),
                "base_rate_protected": _clean(r.base_rate_protected),
                "map": _clean(r.map_score),
                "kendall": _clean(r.kendall),
                "consistency": _clean(r.consistency),
                "protected_share": _clean(r.protected_share),
            }
            for r in rows
        ],
    }


def obfuscation_to_dict(report: ObfuscationReport) -> Dict:
    return {
        "experiment": "obfuscation",
        "rows": [
            {
                "dataset": r.dataset,
                "masked": _clean(r.masked),
                "lfr": _clean(r.lfr) if r.lfr is not None else None,
                "ifair": _clean(r.ifair),
            }
            for r in report.rows
        ],
    }


def posthoc_to_dict(report: PosthocReport) -> Dict:
    return {
        "experiment": "posthoc",
        "dataset": report.dataset,
        "points": [
            {
                "p": pt.p,
                "map": _clean(pt.map_score),
                "protected_share": _clean(pt.protected_share),
                "consistency": _clean(pt.consistency),
            }
            for pt in report.points
        ],
    }


def synthetic_to_dict(report: SyntheticReport) -> Dict:
    return {
        "experiment": "synthetic_study",
        "cells": [
            {
                "variant": c.variant,
                "method": c.method,
                "accuracy": _clean(c.accuracy),
                "consistency": _clean(c.consistency),
                "parity": _clean(c.parity),
                "eq_opp": _clean(c.eq_opp),
            }
            for c in report.cells
        ],
    }


def datasets_to_dict(report: DatasetsReport) -> Dict:
    return {
        "experiment": "dataset_statistics",
        "rows": [
            {
                "dataset": r.name,
                "base_rate_protected": _clean(r.base_rate_protected),
                "base_rate_unprotected": _clean(r.base_rate_unprotected),
                "n_records": r.n_records,
                "n_encoded": r.n_encoded,
                "outcome": r.outcome,
                "protected": r.protected,
            }
            for r in report.rows
        ],
    }


def motivation_to_dict(report: MotivationReport) -> Dict:
    return {
        "experiment": "motivation",
        "query": report.query,
        "group_fair": report.group_fair,
        "mean_rank_gap_similar_pairs": _clean(report.mean_rank_gap_similar_pairs),
        "rows": [
            {
                "rank": r.rank,
                "work_experience": _clean(r.work_experience),
                "education_experience": _clean(r.education_experience),
                "gender": r.gender,
            }
            for r in report.rows
        ],
    }


_SERIALIZERS = {
    MotivationReport: motivation_to_dict,
    ClassificationReport: classification_to_dict,
    RankingReport: ranking_to_dict,
    ObfuscationReport: obfuscation_to_dict,
    PosthocReport: posthoc_to_dict,
    SyntheticReport: synthetic_to_dict,
    DatasetsReport: datasets_to_dict,
}


def report_to_dict(report) -> Dict:
    """Dispatch any known report object to its dict form."""
    serializer = _SERIALIZERS.get(type(report))
    if serializer is None:
        raise ValidationError(
            f"no serializer for report type {type(report).__name__}"
        )
    return serializer(report)


def report_to_json(report, *, indent: int = 2) -> str:
    """JSON text for any known report object."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def rows_to_csv(rows: Sequence[Dict]) -> str:
    """Flat dict rows -> CSV text (header from the union of keys)."""
    if not rows:
        raise ValidationError("rows must not be empty")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if value is None:
                value = ""
            text = str(value)
            # Quote separators, quotes, and line breaks — an unquoted
            # newline would split one record across two CSV rows.
            if any(ch in text for ch in (",", '"', "\n", "\r")):
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        out.write(",".join(cells) + "\n")
    return out.getvalue()
