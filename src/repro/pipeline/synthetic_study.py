"""The Section IV synthetic-property study (Figure 2).

For each of the three protected-assignment variants (random, X1<=3,
X2<=3), learn iFair and LFR representations (hyper-parameters grid-
searched for the classifier's individual fairness, as in the paper),
train a logistic regression on each representation, and report
Acc / yNN / Parity / EqOpp.

Expected shape (the paper's "main findings"): iFair beats LFR on
accuracy, consistency and EqOpp; LFR wins on statistical parity; and
iFair representations barely move across the three variants while LFR's
shift visibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.schema import TabularDataset
from repro.data.synthetic import SyntheticVariant, generate_synthetic
from repro.exceptions import ValidationError
from repro.learners.logistic import LogisticRegression
from repro.metrics.classification import accuracy
from repro.metrics.group import equal_opportunity, statistical_parity
from repro.metrics.individual import consistency
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.representations import FitContext, make_method, method_candidates
from repro.utils.tables import render_table


@dataclass
class SyntheticCell:
    """One Figure 2 subplot: a method's metrics on one variant."""

    variant: str
    method: str
    accuracy: float
    consistency: float
    parity: float
    eq_opp: float
    representation: np.ndarray = field(repr=False, default=None)


@dataclass
class SyntheticReport:
    """All six learned-representation cells of Figure 2."""

    cells: List[SyntheticCell] = field(default_factory=list)

    def cell(self, variant: str, method: str) -> SyntheticCell:
        for cell in self.cells:
            if cell.variant == variant and cell.method == method:
                return cell
        raise ValidationError(f"no cell for ({variant!r}, {method!r})")

    def figure2(self) -> str:
        headers = ["Variant", "Method", "Acc", "yNN", "Parity", "EqOpp"]
        rows = [
            [c.variant, c.method, c.accuracy, c.consistency, c.parity, c.eq_opp]
            for c in self.cells
        ]
        return render_table(headers, rows, title="Figure 2 — synthetic study")


def _score_representation(
    dataset: TabularDataset, Z: np.ndarray, k: int
) -> Tuple[float, float, float, float]:
    """Train a classifier on Z and compute the four reported metrics."""
    clf = LogisticRegression(l2=0.1).fit(Z, dataset.y)
    pred = clf.predict(Z)
    acc = accuracy(dataset.y, pred)
    ynn = consistency(dataset.X_nonprotected, pred, k=k)
    try:
        parity = statistical_parity(pred, dataset.protected)
    except ValidationError:
        parity = float("nan")
    try:
        eq = equal_opportunity(dataset.y, pred, dataset.protected)
    except ValidationError:
        eq = float("nan")
    return acc, ynn, parity, eq


def run_synthetic_study(
    config: Optional[ExperimentConfig] = None,
    *,
    n_records: int = 100,
) -> SyntheticReport:
    """Run the Figure 2 study over all variants and both methods.

    Hyper-parameters are chosen per (variant, method) by the best
    consistency yNN of the resulting classifier — the paper tunes "for
    optimal individual fairness of the classifier".
    """
    config = config or ExperimentConfig.fast()
    report = SyntheticReport()
    # Hyper-parameters are tuned once, on the first (random) variant,
    # and reused for the others.  The three variants share X1, X2 and Y
    # and differ only in group membership, so holding the grid point
    # fixed isolates the effect of the protected attribute — the
    # controlled comparison behind the paper's "representations remain
    # largely unaffected" observation.
    chosen_params: Dict[str, Dict] = {}
    for variant in SyntheticVariant:
        dataset = generate_synthetic(
            variant, n_records, random_state=config.random_state
        )
        k = min(config.consistency_k, n_records - 1)
        context = FitContext(
            X_train=dataset.X,
            protected_indices=dataset.protected_indices,
            y_train=dataset.y,
            protected_group_train=dataset.protected,
            random_state=config.random_state,
        )
        for method_name in ("iFair-b", "LFR"):
            if method_name in chosen_params:
                candidates = [chosen_params[method_name]]
            else:
                candidates = []
                for params in method_candidates(method_name, config):
                    # Figure 2 uses a 2-prototype latent space so the
                    # representation is visualisable.
                    params = dict(params)
                    params["n_prototypes"] = 2
                    candidates.append(params)
            best: Optional[SyntheticCell] = None
            best_params: Optional[Dict] = None
            for params in candidates:
                method = make_method(method_name, params)
                method.fit(context)
                Z = method.transform(dataset.X)
                acc, ynn, parity, eq = _score_representation(dataset, Z, k)
                cell = SyntheticCell(
                    variant=variant.value,
                    method=method_name,
                    accuracy=acc,
                    consistency=ynn,
                    parity=parity,
                    eq_opp=eq,
                    representation=Z,
                )
                # Primary criterion: individual fairness (the paper's
                # tuning target); accuracy breaks near-ties so the
                # selection does not wander to degenerate collapses.
                score = cell.consistency + 0.1 * cell.accuracy
                if best is None or score > best.consistency + 0.1 * best.accuracy:
                    best, best_params = cell, params
            chosen_params.setdefault(method_name, best_params)
            report.cells.append(best)
    return report


def representation_shift(report: SyntheticReport, method: str) -> float:
    """Mean displacement of a method's representation across variants.

    Because all variants share X1, X2 and Y (only group membership
    changes), a representation insensitive to the protected attribute
    should barely move.  Returns the average pairwise mean-squared
    displacement between the method's representations across variants —
    the quantitative version of the paper's "remains largely
    unaffected" observation.  Only the non-protected dimensions (X1,
    X2) are compared: the reconstruction of the protected column itself
    necessarily differs between variants.
    """
    reps = [
        cell.representation[:, :2]
        for cell in report.cells
        if cell.method == method
    ]
    if len(reps) < 2:
        raise ValidationError(f"need representations from >= 2 variants for {method!r}")
    shifts = []
    for i in range(len(reps)):
        for j in range(i + 1, len(reps)):
            shifts.append(float(np.mean((reps[i] - reps[j]) ** 2)))
    return float(np.mean(shifts))
