"""Post-hoc group-fairness enforcement study (Figure 5).

The paper's extensibility demonstration: learn iFair-b representations,
score candidates with a linear regression on them, then sweep the
FA*IR target proportion ``p`` and report, per ``p``:

* ranking utility (MAP),
* protected share of the top-10,
* consistency yNN of the fair scores.

The expected shape: the combined iFair + FA*IR pipeline reaches any
required protected share while the representation's individual-fairness
property persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import TabularDataset
from repro.data.splits import train_val_test_split
from repro.exceptions import ValidationError
from repro.learners.linear import LinearRegression
from repro.learners.scaler import StandardScaler
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.ranking import _evaluate_fair_ranker
from repro.pipeline.representations import FitContext, make_method
from repro.ranking.query import build_queries
from repro.utils.tables import render_table

DEFAULT_P_GRID: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class PosthocPoint:
    """One point of the Figure 5 sweep."""

    p: float
    map_score: float
    protected_share: float
    consistency: float


@dataclass
class PosthocReport:
    """Figure 5 series for one dataset."""

    dataset: str
    points: List[PosthocPoint] = field(default_factory=list)

    def figure5(self) -> str:
        headers = ["p", "MAP", "% Protected@10", "yNN"]
        rows = [
            [pt.p, pt.map_score, 100.0 * pt.protected_share, pt.consistency]
            for pt in self.points
        ]
        return render_table(
            headers, rows, title=f"Figure 5 — iFair + FA*IR on {self.dataset}"
        )


def run_posthoc(
    dataset: TabularDataset,
    config: Optional[ExperimentConfig] = None,
    *,
    p_grid: Sequence[float] = DEFAULT_P_GRID,
    min_query_size: int = 10,
) -> PosthocReport:
    """Sweep FA*IR's p over iFair-b scores (Figure 5)."""
    config = config or ExperimentConfig.fast()
    if dataset.task != "ranking":
        raise ValidationError("posthoc study runs on ranking datasets")
    queries = build_queries(dataset, min_size=min_query_size)
    split = train_val_test_split(dataset.n_records, random_state=config.random_state)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X = scaler.transform(dataset.X)

    context = FitContext(
        X_train=X[split.train],
        protected_indices=dataset.protected_indices,
        random_state=config.random_state,
    )
    ifair = make_method(
        "iFair-b",
        {
            "n_prototypes": config.prototype_grid[0],
            "lambda_util": 1.0,
            "mu_fair": max(config.mixture_grid),
            "max_iter": config.max_iter,
            "n_restarts": config.n_restarts,
            "max_pairs": config.max_pairs,
        },
    ).fit(context)
    Z = ifair.transform(X)
    model = LinearRegression().fit(Z[split.train], dataset.y[split.train])
    base_scores = model.predict(Z)

    report = PosthocReport(dataset=dataset.name)
    for p in p_grid:
        evaluation = _evaluate_fair_ranker(
            dataset,
            X,
            queries,
            split.train,
            config,
            p,
            base_scores=base_scores,
        )
        report.points.append(
            PosthocPoint(
                p=float(p),
                map_score=evaluation.map_score,
                protected_share=evaluation.protected_share,
                consistency=evaluation.consistency,
            )
        )
    return report
