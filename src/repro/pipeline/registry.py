"""Experiment registry: one entry per paper table/figure.

Each runner takes an :class:`~repro.pipeline.config.ExperimentConfig`
and returns a report object exposing a render method; ``run_experiment``
returns the rendered text, which is what the benchmark harness prints.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.data.airbnb import generate_airbnb
from repro.data.compas import generate_compas
from repro.data.census import generate_census
from repro.data.credit import generate_credit
from repro.data.xing import generate_xing
from repro.exceptions import ValidationError
from repro.pipeline.classification import run_classification
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.datasets import run_dataset_statistics
from repro.pipeline.motivation import run_motivation
from repro.pipeline.obfuscation import run_obfuscation_study
from repro.pipeline.posthoc import run_posthoc
from repro.pipeline.ranking import run_ranking, run_weight_sensitivity, table4
from repro.pipeline.synthetic_study import run_synthetic_study


def _classification_datasets(config: ExperimentConfig):
    n = config.classification_records
    return [
        generate_compas(
            n, charge_levels=config.compas_charge_levels, random_state=config.random_state
        ),
        generate_census(n, random_state=config.random_state),
        generate_credit(min(n, 1000), random_state=config.random_state),
    ]


def _ranking_datasets(config: ExperimentConfig):
    xing = generate_xing(
        n_queries=config.ranking_queries,
        candidates_per_query=config.query_size,
        random_state=config.random_state,
    )
    airbnb = generate_airbnb(
        n_records=max(600, config.ranking_queries * config.query_size * 2),
        random_state=config.random_state,
    )
    return xing, airbnb


# ----------------------------------------------------------------------
# report builders — produce report *objects*, shared by the text and
# JSON output paths so both render exactly the same run


def _build_table1(config: ExperimentConfig):
    return run_motivation(config)


def _build_table2(config: ExperimentConfig):
    full = config.classification_records >= 6901
    return run_dataset_statistics(full_scale=full, random_state=config.random_state)


def _build_fig2(config: ExperimentConfig):
    return run_synthetic_study(config)


def _build_classification(config: ExperimentConfig):
    return [
        run_classification(dataset, config)
        for dataset in _classification_datasets(config)
    ]


def _build_table4(config: ExperimentConfig):
    xing, _ = _ranking_datasets(config)
    grid = [
        (0.0, 0.5, 1.0),
        (0.25, 0.75, 0.0),
        (0.5, 1.0, 0.25),
        (0.75, 0.0, 0.5),
        (0.75, 0.25, 0.0),
        (1.0, 0.25, 0.75),
        (1.0, 1.0, 1.0),
    ]
    return run_weight_sensitivity(xing, grid, config)


def _build_table5(config: ExperimentConfig):
    xing, airbnb = _ranking_datasets(config)
    return [
        run_ranking(xing, config, fair_ps=(0.5, 0.9), min_query_size=5),
        run_ranking(airbnb, config, fair_ps=(0.5, 0.6), min_query_size=10),
    ]


def _build_fig4(config: ExperimentConfig):
    xing, airbnb = _ranking_datasets(config)
    datasets = _classification_datasets(config) + [xing, airbnb]
    return run_obfuscation_study(datasets, config)


def _build_fig5(config: ExperimentConfig):
    xing, airbnb = _ranking_datasets(config)
    return [
        run_posthoc(xing, config, min_query_size=5),
        run_posthoc(airbnb, config, min_query_size=10),
    ]


EXPERIMENT_REPORTS: Dict[str, Callable[[ExperimentConfig], object]] = {
    "table1": _build_table1,
    "table2": _build_table2,
    "fig2": _build_fig2,
    "fig3": _build_classification,
    "table3": _build_classification,
    "table4": _build_table4,
    "table5": _build_table5,
    "fig4": _build_fig4,
    "fig5": _build_fig5,
}


# ----------------------------------------------------------------------
# renderers — rendered text per experiment, built on the same reports


def _join(blocks) -> str:
    return "\n\n".join(blocks)


def _run_table1(config: ExperimentConfig) -> str:
    return _build_table1(config).table1()


def _run_table2(config: ExperimentConfig) -> str:
    return _build_table2(config).table2()


def _run_fig2(config: ExperimentConfig) -> str:
    return _build_fig2(config).figure2()


def _run_fig3(config: ExperimentConfig) -> str:
    return _join(r.figure3() for r in _build_classification(config))


def _run_table3(config: ExperimentConfig) -> str:
    return _join(r.table3() for r in _build_classification(config))


def _run_table4(config: ExperimentConfig) -> str:
    return table4(_build_table4(config))


def _run_table5(config: ExperimentConfig) -> str:
    return _join(r.table5() for r in _build_table5(config))


def _run_fig4(config: ExperimentConfig) -> str:
    return _build_fig4(config).figure4()


def _run_fig5(config: ExperimentConfig) -> str:
    return _join(r.figure5() for r in _build_fig5(config))


EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
}


def _check_experiment(experiment_id: str) -> None:
    if experiment_id not in EXPERIMENTS:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )


def run_experiment(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> str:
    """Run one registered experiment and return its rendered report."""
    _check_experiment(experiment_id)
    return EXPERIMENTS[experiment_id](config or ExperimentConfig.fast())


def run_experiment_dict(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> Dict:
    """Run one experiment and return a JSON-safe dict of its report.

    Multi-dataset experiments (fig3/table3/table5/fig5) come back as
    ``{"experiment": id, "blocks": [...]}``, one block per dataset.
    """
    from repro.pipeline.serialization import (
        report_to_dict,
        weight_sensitivity_to_dict,
    )

    _check_experiment(experiment_id)
    built = EXPERIMENT_REPORTS[experiment_id](config or ExperimentConfig.fast())
    if experiment_id == "table4":
        return weight_sensitivity_to_dict(built)
    if isinstance(built, list):
        return {
            "experiment": experiment_id,
            "blocks": [report_to_dict(report) for report in built],
        }
    return report_to_dict(built)
