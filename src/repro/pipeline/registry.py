"""Experiment registry: one entry per paper table/figure.

Each runner takes an :class:`~repro.pipeline.config.ExperimentConfig`
and returns a report object exposing a render method; ``run_experiment``
returns the rendered text, which is what the benchmark harness prints.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.data.airbnb import generate_airbnb
from repro.data.compas import generate_compas
from repro.data.census import generate_census
from repro.data.credit import generate_credit
from repro.data.xing import generate_xing
from repro.exceptions import ValidationError
from repro.pipeline.classification import run_classification
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.datasets import run_dataset_statistics
from repro.pipeline.motivation import run_motivation
from repro.pipeline.obfuscation import run_obfuscation_study
from repro.pipeline.posthoc import run_posthoc
from repro.pipeline.ranking import run_ranking, run_weight_sensitivity, table4
from repro.pipeline.synthetic_study import run_synthetic_study


def _classification_datasets(config: ExperimentConfig):
    n = config.classification_records
    return [
        generate_compas(
            n, charge_levels=config.compas_charge_levels, random_state=config.random_state
        ),
        generate_census(n, random_state=config.random_state),
        generate_credit(min(n, 1000), random_state=config.random_state),
    ]


def _ranking_datasets(config: ExperimentConfig):
    xing = generate_xing(
        n_queries=config.ranking_queries,
        candidates_per_query=config.query_size,
        random_state=config.random_state,
    )
    airbnb = generate_airbnb(
        n_records=max(600, config.ranking_queries * config.query_size * 2),
        random_state=config.random_state,
    )
    return xing, airbnb


def _run_table1(config: ExperimentConfig) -> str:
    return run_motivation(config).table1()


def _run_table2(config: ExperimentConfig) -> str:
    full = config.classification_records >= 6901
    return run_dataset_statistics(
        full_scale=full, random_state=config.random_state
    ).table2()


def _run_fig2(config: ExperimentConfig) -> str:
    return run_synthetic_study(config).figure2()


def _run_fig3(config: ExperimentConfig) -> str:
    blocks = []
    for dataset in _classification_datasets(config):
        blocks.append(run_classification(dataset, config).figure3())
    return "\n\n".join(blocks)


def _run_table3(config: ExperimentConfig) -> str:
    blocks = []
    for dataset in _classification_datasets(config):
        blocks.append(run_classification(dataset, config).table3())
    return "\n\n".join(blocks)


def _run_table4(config: ExperimentConfig) -> str:
    xing, _ = _ranking_datasets(config)
    grid = [
        (0.0, 0.5, 1.0),
        (0.25, 0.75, 0.0),
        (0.5, 1.0, 0.25),
        (0.75, 0.0, 0.5),
        (0.75, 0.25, 0.0),
        (1.0, 0.25, 0.75),
        (1.0, 1.0, 1.0),
    ]
    rows = run_weight_sensitivity(xing, grid, config)
    return table4(rows)


def _run_table5(config: ExperimentConfig) -> str:
    xing, airbnb = _ranking_datasets(config)
    blocks = [
        run_ranking(xing, config, fair_ps=(0.5, 0.9), min_query_size=5).table5(),
        run_ranking(airbnb, config, fair_ps=(0.5, 0.6), min_query_size=10).table5(),
    ]
    return "\n\n".join(blocks)


def _run_fig4(config: ExperimentConfig) -> str:
    xing, airbnb = _ranking_datasets(config)
    datasets = _classification_datasets(config) + [xing, airbnb]
    return run_obfuscation_study(datasets, config).figure4()


def _run_fig5(config: ExperimentConfig) -> str:
    xing, airbnb = _ranking_datasets(config)
    blocks = [
        run_posthoc(xing, config, min_query_size=5).figure5(),
        run_posthoc(airbnb, config, min_query_size=10).figure5(),
    ]
    return "\n\n".join(blocks)


EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
}


def run_experiment(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> str:
    """Run one registered experiment and return its rendered report."""
    if experiment_id not in EXPERIMENTS:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](config or ExperimentConfig.fast())
