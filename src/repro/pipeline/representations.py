"""Unified representation-method framework for the experiment pipeline.

Each paper baseline is wrapped behind one interface so the
classification and ranking runners can iterate over methods uniformly:

    method = IFairMethod(params, init="protected_zero")
    method.fit(context)          # context carries train data + labels
    Z = method.transform(X)      # any split, same feature layout

Methods with hyper-parameters expose a ``candidates(config)``
classmethod returning the grid the paper searches.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.identity import mask_columns
from repro.baselines.kmeans import KMeansRepresentation
from repro.baselines.lfr import LFR
from repro.baselines.svd import SVDTransform
from repro.core.model import IFair
from repro.exceptions import ValidationError
from repro.pipeline.config import ExperimentConfig


@dataclass
class FitContext:
    """Everything a representation may need at fit time.

    ``y_train`` and ``protected_group_train`` are only consumed by LFR
    (the coupling to labels and a pre-specified group that iFair
    removes); application-agnostic methods ignore them.
    """

    X_train: np.ndarray
    protected_indices: np.ndarray
    y_train: Optional[np.ndarray] = None
    protected_group_train: Optional[np.ndarray] = None
    random_state: int = 0


class RepresentationMethod(abc.ABC):
    """One representation baseline with a uniform fit/transform API."""

    name: str = "abstract"

    def __init__(self, params: Optional[Dict] = None):
        self.params: Dict = dict(params or {})

    @abc.abstractmethod
    def fit(self, context: FitContext) -> "RepresentationMethod":
        """Learn the representation from training data."""

    @abc.abstractmethod
    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map records into the learned representation."""

    @classmethod
    def candidates(cls, config: ExperimentConfig) -> List[Dict]:
        """Hyper-parameter grid; parameter-free methods return [{}]."""
        return [{}]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.params})"


class FullDataMethod(RepresentationMethod):
    """The original data, unchanged."""

    name = "Full Data"

    def fit(self, context: FitContext) -> "FullDataMethod":
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X, dtype=np.float64).copy()


class MaskedDataMethod(RepresentationMethod):
    """Original data with protected columns zeroed."""

    name = "Masked Data"

    def fit(self, context: FitContext) -> "MaskedDataMethod":
        self._protected = context.protected_indices
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return mask_columns(X, self._protected)


class SVDMethod(RepresentationMethod):
    """Truncated-SVD reconstruction of the full data."""

    name = "SVD"
    masked = False

    def fit(self, context: FitContext) -> "SVDMethod":
        rank = int(self.params.get("rank", 10))
        self._protected = context.protected_indices
        X = context.X_train
        if self.masked:
            X = mask_columns(X, self._protected)
        self._svd = SVDTransform(rank=rank, random_state=context.random_state)
        self._svd.fit(X)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.masked:
            X = mask_columns(X, self._protected)
        return self._svd.transform(X)

    @classmethod
    def candidates(cls, config: ExperimentConfig) -> List[Dict]:
        return [{"rank": int(k)} for k in config.prototype_grid]


class SVDMaskedMethod(SVDMethod):
    """Truncated-SVD reconstruction of the masked data."""

    name = "SVD-masked"
    masked = True


class KMeansMethod(RepresentationMethod):
    """Masked-data hard clustering — the intro's dismissed straw man.

    Not part of the paper's method line-up; available as an extension
    baseline ("KMeans-masked") for ablations.
    """

    name = "KMeans-masked"

    def fit(self, context: FitContext) -> "KMeansMethod":
        self._model = KMeansRepresentation(
            n_clusters=int(self.params.get("n_clusters", 10)),
            random_state=context.random_state,
        )
        self._model.fit(context.X_train, context.protected_indices)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return self._model.transform(X)

    @classmethod
    def candidates(cls, config: ExperimentConfig) -> List[Dict]:
        return [{"n_clusters": int(k)} for k in config.prototype_grid]


class LFRMethod(RepresentationMethod):
    """Zemel et al. LFR; needs labels and a protected-group vector."""

    name = "LFR"

    def fit(self, context: FitContext) -> "LFRMethod":
        if context.y_train is None or context.protected_group_train is None:
            raise ValidationError(
                "LFR requires labels and a protected-group indicator at fit time"
            )
        self._model = LFR(
            n_prototypes=int(self.params.get("n_prototypes", 10)),
            a_x=float(self.params.get("a_x", 0.01)),
            a_y=float(self.params.get("a_y", 1.0)),
            a_z=float(self.params.get("a_z", 0.5)),
            n_restarts=int(self.params.get("n_restarts", 1)),
            max_iter=int(self.params.get("max_iter", 100)),
            random_state=context.random_state,
        )
        self._model.fit(context.X_train, context.y_train, context.protected_group_train)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return self._model.transform(X)

    @classmethod
    def candidates(cls, config: ExperimentConfig) -> List[Dict]:
        # The paper grid-searches the mixture coefficients; A_y is the
        # reference objective and stays at 1.
        grid = []
        for a_x, a_z, k in itertools.product(
            config.mixture_grid, config.mixture_grid, config.prototype_grid
        ):
            grid.append(
                {
                    "a_x": float(a_x),
                    "a_y": 1.0,
                    "a_z": float(a_z),
                    "n_prototypes": int(k),
                    "n_restarts": config.n_restarts,
                    "max_iter": config.max_iter,
                }
            )
        return grid


class IFairMethod(RepresentationMethod):
    """The paper's model; ``init`` picks the iFair-a / iFair-b variant."""

    name = "iFair"

    def __init__(self, params: Optional[Dict] = None, init: str = "protected_zero"):
        super().__init__(params)
        self.init = init
        self.name = "iFair-b" if init == "protected_zero" else "iFair-a"

    def fit(self, context: FitContext) -> "IFairMethod":
        self._model = IFair(
            n_prototypes=int(self.params.get("n_prototypes", 10)),
            lambda_util=float(self.params.get("lambda_util", 1.0)),
            mu_fair=float(self.params.get("mu_fair", 1.0)),
            init=self.init,
            n_restarts=int(self.params.get("n_restarts", 1)),
            max_iter=int(self.params.get("max_iter", 100)),
            max_pairs=self.params.get("max_pairs"),
            pair_mode=str(self.params.get("pair_mode", "auto")),
            n_landmarks=self.params.get("n_landmarks"),
            landmark_method=str(self.params.get("landmark_method", "kmeans++")),
            oracle_jobs=self.params.get("oracle_jobs"),
            oracle_shards=self.params.get("oracle_shards"),
            batch_mode=str(self.params.get("batch_mode", "full")),
            batch_size=self.params.get("batch_size"),
            n_jobs=self.params.get("n_jobs"),
            backend=str(self.params.get("backend", "process")),
            warm_start_theta=self.params.get("warm_start_theta"),
            random_state=context.random_state,
        )
        self._model.fit(context.X_train, context.protected_indices)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        return self._model.transform(X)

    @property
    def theta_(self) -> np.ndarray:
        """Fitted packed parameters — halving warm-starts from it."""
        return self._model.theta_

    @classmethod
    def candidates(cls, config: ExperimentConfig) -> List[Dict]:
        grid = []
        for lam, mu, k in itertools.product(
            config.mixture_grid, config.mixture_grid, config.prototype_grid
        ):
            if lam == 0.0 and mu == 0.0:
                continue
            point = {
                "lambda_util": float(lam),
                "mu_fair": float(mu),
                "n_prototypes": int(k),
                "n_restarts": config.n_restarts,
                "max_iter": config.max_iter,
                "max_pairs": config.max_pairs,
            }
            if config.pair_mode == "landmark":
                # The landmark oracle replaces pair subsampling.
                point["max_pairs"] = None
                point["pair_mode"] = "landmark"
                point["n_landmarks"] = config.n_landmarks
                point["landmark_method"] = config.landmark_method
                point["oracle_jobs"] = config.oracle_jobs
                point["oracle_shards"] = config.oracle_shards
                point["batch_mode"] = config.batch_mode
                point["batch_size"] = config.batch_size
            elif config.pair_mode != "auto":
                point["pair_mode"] = config.pair_mode
                if config.pair_mode == "full":
                    point["max_pairs"] = None
            grid.append(point)
        return grid


def make_method(name: str, params: Optional[Dict] = None) -> RepresentationMethod:
    """Factory mapping a paper method name to its implementation."""
    registry = {
        "Full Data": lambda p: FullDataMethod(p),
        "Masked Data": lambda p: MaskedDataMethod(p),
        "SVD": lambda p: SVDMethod(p),
        "SVD-masked": lambda p: SVDMaskedMethod(p),
        "KMeans-masked": lambda p: KMeansMethod(p),
        "LFR": lambda p: LFRMethod(p),
        "iFair-a": lambda p: IFairMethod(p, init="random"),
        "iFair-b": lambda p: IFairMethod(p, init="protected_zero"),
    }
    if name not in registry:
        raise ValidationError(
            f"unknown method {name!r}; choose from {sorted(registry)}"
        )
    return registry[name](params)


CLASSIFICATION_METHODS = (
    "Full Data",
    "Masked Data",
    "SVD",
    "SVD-masked",
    "LFR",
    "iFair-a",
    "iFair-b",
)

RANKING_METHODS = (
    "Full Data",
    "Masked Data",
    "SVD",
    "SVD-masked",
    "iFair-b",
)


def method_candidates(name: str, config: ExperimentConfig) -> List[Dict]:
    """Grid of hyper-parameter dicts for one method name."""
    classes = {
        "Full Data": FullDataMethod,
        "Masked Data": MaskedDataMethod,
        "SVD": SVDMethod,
        "SVD-masked": SVDMaskedMethod,
        "KMeans-masked": KMeansMethod,
        "LFR": LFRMethod,
        "iFair-a": IFairMethod,
        "iFair-b": IFairMethod,
    }
    if name not in classes:
        raise ValidationError(f"unknown method {name!r}")
    return classes[name].candidates(config)
