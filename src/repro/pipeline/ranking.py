"""Learning-to-rank experiment runner (Table IV and Table V).

Protocol (Section V-E): train a linear regression on each
representation to predict the deserved score; rank every query's
candidates by the predicted scores; report means of MAP(AP@10),
Kendall's tau, consistency yNN, and the protected share of the top 10
over all queries.  FA*IR enters as a post-processor of masked-data
scores (with the paper's fair-score interpolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.fair_ranking import FairRanker
from repro.core.tuning import GridSearch, HalvingConfig, TuningCriterion
from repro.data.schema import TabularDataset
from repro.data.splits import train_val_test_split
from repro.data.xing import DEFAULT_WEIGHTS, compute_scores
from repro.exceptions import ValidationError
from repro.learners.linear import LinearRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.group import protected_share_at_k
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.representations import (
    RANKING_METHODS,
    FitContext,
    make_method,
    method_candidates,
)
from repro.ranking.engine import RankingEvaluation, evaluate_scores
from repro.ranking.query import Query, build_queries
from repro.utils.tables import render_table


@dataclass
class RankingRow:
    """One Table V row: a method's mean ranking measures."""

    method: str
    map_score: float
    kendall: float
    consistency: float
    protected_share: float
    params: Dict = field(default_factory=dict)

    def as_row(self) -> List:
        return [
            self.method,
            self.map_score,
            self.kendall,
            self.consistency,
            100.0 * self.protected_share,
        ]


@dataclass
class RankingReport:
    """Per-dataset ranking results (Table V block)."""

    dataset: str
    n_queries: int
    rows: List[RankingRow] = field(default_factory=list)

    def row(self, method: str) -> RankingRow:
        for row in self.rows:
            if row.method == method:
                return row
        raise ValidationError(f"no row for method {method!r}")

    def table5(self) -> str:
        headers = ["Method", "MAP", "KT", "yNN", "% Protected@10"]
        return render_table(
            headers,
            [r.as_row() for r in self.rows],
            title=f"Table V — {self.dataset} ({self.n_queries} queries)",
        )


def _fit_score_model(
    Z_train: np.ndarray, y_train: np.ndarray
) -> LinearRegression:
    return LinearRegression().fit(Z_train, y_train)


def _evaluate_method(
    method_name: str,
    params: Dict,
    dataset: TabularDataset,
    X_scaled: np.ndarray,
    queries: Sequence[Query],
    train_idx: np.ndarray,
    config: ExperimentConfig,
    true_scores: Optional[np.ndarray] = None,
) -> Tuple[RankingEvaluation, Dict]:
    """Fit representation + regression, score all records, evaluate."""
    context = FitContext(
        X_train=X_scaled[train_idx],
        protected_indices=dataset.protected_indices,
        random_state=config.random_state,
    )
    method = make_method(method_name, params)
    method.fit(context)
    Z = method.transform(X_scaled)
    truth = dataset.y if true_scores is None else true_scores
    model = _fit_score_model(Z[train_idx], truth[train_idx])
    predicted = model.predict(Z)
    evaluation = evaluate_scores(
        dataset,
        queries,
        predicted,
        consistency_k=config.consistency_k,
        true_scores=truth,
        X_star=X_scaled[:, dataset.nonprotected_indices],
    )
    return evaluation, dict(params)


def _ranking_candidate(
    method_name, dataset, X_scaled, queries, train_idx, config, true_scores, params
) -> RankingEvaluation:
    """GridSearch build: fit + evaluate one ranking candidate.

    Module-level (used through :func:`functools.partial` over
    picklable arguments) so the search works under the ``spawn``
    start method, not only under ``fork``.
    """
    return _evaluate_method(
        method_name,
        params,
        dataset,
        X_scaled,
        queries,
        train_idx,
        config,
        true_scores=true_scores,
    )[0]


def _ranking_scores(evaluation: RankingEvaluation) -> Tuple[float, float]:
    """GridSearch evaluate: MAP is the utility, yNN the fairness."""
    return evaluation.map_score, evaluation.consistency


def _ranking_summary(evaluation: RankingEvaluation) -> Dict:
    """The four Table V measures, kept after the artifact is dropped."""
    return {
        "map_score": evaluation.map_score,
        "kendall": evaluation.kendall,
        "consistency": evaluation.consistency,
        "protected_share": evaluation.protected_share,
    }


def _evaluate_fair_ranker(
    dataset: TabularDataset,
    X_scaled: np.ndarray,
    queries: Sequence[Query],
    train_idx: np.ndarray,
    config: ExperimentConfig,
    p: float,
    true_scores: Optional[np.ndarray] = None,
    base_scores: Optional[np.ndarray] = None,
) -> RankingEvaluation:
    """FA*IR baseline: masked-data regression scores, re-ranked per query.

    ``base_scores`` may supply pre-computed candidate scores (used by the
    Figure 5 post-processing study on iFair representations).
    """
    truth = dataset.y if true_scores is None else true_scores
    if base_scores is None:
        context = FitContext(
            X_train=X_scaled[train_idx],
            protected_indices=dataset.protected_indices,
            random_state=config.random_state,
        )
        masked = make_method("Masked Data", {})
        masked.fit(context)
        Z = masked.transform(X_scaled)
        model = _fit_score_model(Z[train_idx], truth[train_idx])
        base_scores = model.predict(Z)
    ranker = FairRanker(p=p, random_state=config.random_state)
    fair_scores = np.array(base_scores, dtype=np.float64, copy=True)
    for query in queries:
        idx = query.indices
        prot = dataset.protected[idx]
        # FA*IR needs both groups present; degenerate queries keep
        # their original scores.
        if prot.min() == prot.max():
            continue
        result = ranker.rank(base_scores[idx], prot)
        # Re-express fair scores in original record order: the item at
        # output rank r gets the interpolated score of rank r.
        fair_scores[idx[result.ranking]] = np.sort(result.scores)[::-1]
    return evaluate_scores(
        dataset,
        queries,
        fair_scores,
        consistency_k=config.consistency_k,
        true_scores=truth,
        X_star=X_scaled[:, dataset.nonprotected_indices],
    )


def run_ranking(
    dataset: TabularDataset,
    config: Optional[ExperimentConfig] = None,
    *,
    methods: Tuple[str, ...] = RANKING_METHODS,
    fair_ps: Tuple[float, ...] = (0.5, 0.9),
    min_query_size: int = 10,
    max_queries: Optional[int] = None,
    true_scores: Optional[np.ndarray] = None,
) -> RankingReport:
    """Run the Table V protocol on one ranking dataset.

    Tuned methods (SVD variants, iFair-b) select their hyper-parameters
    by the paper's "Optimal" criterion — best harmonic mean of MAP and
    yNN — evaluated over the queries.
    """
    config = config or ExperimentConfig.fast()
    if dataset.task != "ranking":
        raise ValidationError(f"dataset {dataset.name!r} is not a ranking task")
    queries = build_queries(dataset, min_size=min_query_size, max_queries=max_queries)
    split = train_val_test_split(dataset.n_records, random_state=config.random_state)
    scaler = StandardScaler().fit(dataset.X[split.train])
    X_scaled = scaler.transform(dataset.X)

    report = RankingReport(dataset=dataset.name, n_queries=len(queries))
    for name in methods:
        # Tuned methods select by the paper's "Optimal" criterion
        # (harmonic mean of MAP and yNN).  Candidate fits route
        # through GridSearch, so ``config.tune_jobs`` fans them over
        # worker processes and ``tune_strategy="halving"`` prunes the
        # grid; only the four report measures leave each fit.
        search = GridSearch(
            partial(
                _ranking_candidate,
                name,
                dataset,
                X_scaled,
                queries,
                split.train,
                config,
                true_scores,
            ),
            _ranking_scores,
            method_candidates(name, config),
            n_jobs=config.tune_jobs,
            strategy=config.tune_strategy,
            halving=HalvingConfig(promote=config.tune_promote),
            keep_artifacts=False,
            summarize=_ranking_summary,
            theta_of=None,
            pool=config.tune_pool,
        )
        best = search.run().best(TuningCriterion.OPTIMAL)
        report.rows.append(
            RankingRow(
                method=name,
                params=dict(best.params),
                **best.info,
            )
        )
    for p in fair_ps:
        evaluation = _evaluate_fair_ranker(
            dataset, X_scaled, queries, split.train, config, p, true_scores=true_scores
        )
        report.rows.append(
            RankingRow(
                method=f"FA*IR (p={p})",
                map_score=evaluation.map_score,
                kendall=evaluation.kendall,
                consistency=evaluation.consistency,
                protected_share=evaluation.protected_share,
                params={"p": p},
            )
        )
    return report


@dataclass
class WeightSensitivityRow:
    """One Table IV row: score weights and resulting measures."""

    weights: Tuple[float, float, float]
    base_rate_protected: float
    map_score: float
    kendall: float
    consistency: float
    protected_share: float


def run_weight_sensitivity(
    dataset: TabularDataset,
    weight_grid: Sequence[Tuple[float, float, float]],
    config: Optional[ExperimentConfig] = None,
) -> List[WeightSensitivityRow]:
    """Table IV: iFair-b sensitivity to the Xing score weights.

    For each weight triple the deserved score is recomputed, iFair-b is
    tuned by the Optimal criterion, and the resulting measures (plus
    the ground-truth protected base rate in top-10s) are reported.
    """
    config = config or ExperimentConfig.fast()
    if dataset.name != "xing":
        raise ValidationError("weight sensitivity is defined on the Xing dataset")
    queries = build_queries(dataset, min_size=2)
    rows: List[WeightSensitivityRow] = []
    for weights in weight_grid:
        if all(w == 0.0 for w in weights):
            continue
        truth = compute_scores(dataset, weights)
        base_rate = float(
            np.mean(
                [
                    protected_share_at_k(
                        np.argsort(-truth[q.indices], kind="mergesort"),
                        dataset.protected[q.indices],
                        k=min(10, q.size),
                    )
                    for q in queries
                ]
            )
        )
        report = run_ranking(
            dataset,
            config,
            methods=("iFair-b",),
            fair_ps=(),
            min_query_size=2,
            true_scores=truth,
        )
        row = report.row("iFair-b")
        rows.append(
            WeightSensitivityRow(
                weights=tuple(weights),
                base_rate_protected=100.0 * base_rate,
                map_score=row.map_score,
                kendall=row.kendall,
                consistency=row.consistency,
                protected_share=100.0 * row.protected_share,
            )
        )
    return rows


def table4(rows: Sequence[WeightSensitivityRow]) -> str:
    """Render the Table IV block."""
    headers = [
        "w_work",
        "w_edu",
        "w_views",
        "Base-rate prot.",
        "MAP",
        "KT",
        "yNN",
        "% Protected",
    ]
    table_rows = [
        [
            row.weights[0],
            row.weights[1],
            row.weights[2],
            row.base_rate_protected,
            row.map_score,
            row.kendall,
            row.consistency,
            row.protected_share,
        ]
        for row in rows
    ]
    return render_table(headers, table_rows, title="Table IV — Xing weight sensitivity")
