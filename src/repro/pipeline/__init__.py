"""End-to-end experiment pipeline.

One module per paper artefact (table/figure) plus shared machinery:

* :mod:`repro.pipeline.config` — experiment configuration presets,
* :mod:`repro.pipeline.representations` — the unified representation
  method framework used by both tasks,
* :mod:`repro.pipeline.classification` — Figure 3 / Table III,
* :mod:`repro.pipeline.ranking` — Table IV / Table V,
* :mod:`repro.pipeline.obfuscation` — Figure 4,
* :mod:`repro.pipeline.posthoc` — Figure 5,
* :mod:`repro.pipeline.synthetic_study` — Figure 2,
* :mod:`repro.pipeline.motivation` — Table I,
* :mod:`repro.pipeline.datasets` — Table II,
* :mod:`repro.pipeline.registry` — experiment id -> runner.
"""

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.registry import (
    EXPERIMENTS,
    run_experiment,
    run_experiment_dict,
)

__all__ = [
    "ExperimentConfig",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_dict",
]
