"""The motivating example (Table I): group-fair yet individually unfair.

Reconstructs the paper's opening observation on a Xing-style job query:
a ranking can satisfy prefix statistical parity (FA*IR-style group
fairness) while placing nearly indistinguishable candidates at ranks
far apart.  The runner ranks one synthetic query with FA*IR and
reports, alongside the table, a quantitative *individual unfairness*
statistic: the mean rank gap among the most qualification-similar
candidate pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.fair_ranking import FairRanker, ranked_group_fairness_ok
from repro.data.schema import TabularDataset
from repro.data.xing import EDU_COLUMN, VIEWS_COLUMN, WORK_COLUMN, generate_xing
from repro.exceptions import ValidationError
from repro.pipeline.config import ExperimentConfig
from repro.utils.mathkit import pairwise_sq_euclidean
from repro.utils.tables import render_table


@dataclass
class MotivationRow:
    """One ranked candidate of the Table I reconstruction."""

    rank: int
    work_experience: float
    education_experience: float
    gender: str


@dataclass
class MotivationReport:
    """Table I reconstruction plus the unfairness statistics."""

    query: str
    rows: List[MotivationRow] = field(default_factory=list)
    group_fair: bool = False
    mean_rank_gap_similar_pairs: float = 0.0

    def table1(self) -> str:
        headers = ["Rank", "Work Exp.", "Edu. Exp.", "Gender"]
        table_rows = [
            [r.rank, r.work_experience, r.education_experience, r.gender]
            for r in self.rows
        ]
        title = (
            f"Table I — query {self.query!r} "
            f"(prefix group-fair: {self.group_fair}; mean rank gap of the "
            f"most similar pairs: {self.mean_rank_gap_similar_pairs:.1f})"
        )
        return render_table(headers, table_rows, title=title, precision=0)


def _similar_pair_rank_gap(
    qualifications: np.ndarray, ranks: np.ndarray, top_fraction: float = 0.1
) -> float:
    """Mean |rank_i - rank_j| over the most similar qualification pairs."""
    n = qualifications.shape[0]
    D = pairwise_sq_euclidean(qualifications)
    iu = np.triu_indices(n, k=1)
    distances = D[iu]
    n_keep = max(1, int(round(distances.size * top_fraction)))
    closest = np.argsort(distances, kind="mergesort")[:n_keep]
    gaps = np.abs(ranks[iu[0][closest]] - ranks[iu[1][closest]])
    return float(gaps.mean())


def run_motivation(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: Optional[TabularDataset] = None,
    query_index: int = 0,
    k: int = 10,
    p: float = 0.4,
) -> MotivationReport:
    """Build the Table I reconstruction for one job query."""
    config = config or ExperimentConfig.fast()
    if dataset is None:
        dataset = generate_xing(
            n_queries=max(1, query_index + 1),
            candidates_per_query=40,
            random_state=config.random_state,
        )
    if dataset.query_ids is None:
        raise ValidationError("motivation study needs a query-structured dataset")
    qids = np.unique(dataset.query_ids)
    if query_index >= qids.size:
        raise ValidationError(f"query_index {query_index} out of range")
    idx = np.flatnonzero(dataset.query_ids == qids[query_index])

    names = dataset.feature_names
    work = dataset.X[idx, names.index(WORK_COLUMN)]
    edu = dataset.X[idx, names.index(EDU_COLUMN)]
    protected = dataset.protected[idx]
    scores = dataset.y[idx]

    ranker = FairRanker(p=p, random_state=config.random_state)
    result = ranker.rank(scores, protected)
    ordered = result.ranking

    flags = protected[ordered].astype(np.int64)
    group_fair = ranked_group_fairness_ok(flags[:k], p=p)

    ranks = np.empty(idx.size, dtype=np.int64)
    ranks[ordered] = np.arange(1, idx.size + 1)
    qualifications = np.column_stack([work, edu])
    # Standardise so work experience does not dominate similarity.
    std = qualifications.std(axis=0)
    std[std == 0.0] = 1.0
    gap = _similar_pair_rank_gap(qualifications / std, ranks)

    report = MotivationReport(
        query="Brand Strategist",
        group_fair=bool(group_fair),
        mean_rank_gap_similar_pairs=gap,
    )
    for position, cand in enumerate(ordered[:k], start=1):
        report.rows.append(
            MotivationRow(
                rank=position,
                work_experience=float(work[cand]),
                education_experience=float(edu[cand]),
                gender="female" if protected[cand] == 1 else "male",
            )
        )
    return report
