"""Dataset statistics (Table II).

Regenerates the experimental-settings table from the synthetic
generators: record count N, encoded dimensionality M, base rates for
the protected and unprotected groups (classification datasets), the
outcome variable and the protected attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.data import DATASET_GENERATORS
from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.utils.tables import render_table

_OUTCOMES = {
    "compas": ("recidivism", "race"),
    "census": ("income", "gender"),
    "credit": ("loan default", "age"),
    "airbnb": ("rating/price", "gender"),
    "xing": ("work + education", "gender"),
}


@dataclass
class DatasetStats:
    """One Table II row."""

    name: str
    base_rate_protected: Optional[float]
    base_rate_unprotected: Optional[float]
    n_records: int
    n_encoded: int
    outcome: str
    protected: str


@dataclass
class DatasetsReport:
    """All Table II rows."""

    rows: List[DatasetStats] = field(default_factory=list)

    def table2(self) -> str:
        headers = [
            "Dataset",
            "Base-rate prot.",
            "Base-rate unprot.",
            "N",
            "M",
            "Outcome",
            "Protected",
        ]
        table_rows = [
            [
                r.name,
                "-" if r.base_rate_protected is None else r.base_rate_protected,
                "-" if r.base_rate_unprotected is None else r.base_rate_unprotected,
                r.n_records,
                r.n_encoded,
                r.outcome,
                r.protected,
            ]
            for r in self.rows
        ]
        return render_table(headers, table_rows, title="Table II — dataset statistics")


def dataset_stats(dataset: TabularDataset) -> DatasetStats:
    """Compute one dataset's Table II row."""
    if dataset.name not in _OUTCOMES:
        raise ValidationError(f"unknown dataset {dataset.name!r}")
    outcome, protected = _OUTCOMES[dataset.name]
    if dataset.task == "classification":
        rate_p = dataset.base_rate(1)
        rate_u = dataset.base_rate(0)
    else:
        rate_p = rate_u = None
    return DatasetStats(
        name=dataset.name,
        base_rate_protected=rate_p,
        base_rate_unprotected=rate_u,
        n_records=dataset.n_records,
        n_encoded=dataset.n_features,
        outcome=outcome,
        protected=protected,
    )


def run_dataset_statistics(
    *,
    full_scale: bool = False,
    random_state: int = 7,
) -> DatasetsReport:
    """Generate every dataset and collect its Table II row.

    ``full_scale`` uses the paper's record counts; otherwise a reduced
    scale keeps generation fast while preserving schema widths.
    """
    sizes = {
        "compas": {} if full_scale else {"n_records": 800},
        "census": {} if full_scale else {"n_records": 800},
        "credit": {} if full_scale else {"n_records": 600},
        "airbnb": {} if full_scale else {"n_records": 900},
        "xing": {} if full_scale else {"n_queries": 12, "candidates_per_query": 30},
    }
    report = DatasetsReport()
    for name, generator in DATASET_GENERATORS.items():
        dataset = generator(random_state=random_state, **sizes[name])
        report.rows.append(dataset_stats(dataset))
    return report
