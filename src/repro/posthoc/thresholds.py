"""Per-group threshold adjustment for classifier outputs.

Given calibration scores, group membership, and (for equal opportunity)
ground-truth labels, the adjuster picks one decision threshold per
group so that a chosen group-fairness criterion holds on the
calibration set:

* ``criterion='parity'`` — equal acceptance rates: each group's
  threshold is its own (1 - target_rate) score quantile, so every
  group accepts the same fraction;
* ``criterion='equal_opportunity'`` — equal true-positive rates: the
  threshold is the per-group (1 - target_rate) quantile *among
  positives*, equalising TPR across groups.

The target rate defaults to the overall rate the unadjusted 0.5
threshold would produce, so adjustment redistributes decisions rather
than changing their total volume.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_binary_labels, check_vector

_CRITERIA = ("parity", "equal_opportunity")


class GroupThresholdAdjuster:
    """Learn per-group thresholds enforcing a group-fairness criterion.

    Parameters
    ----------
    criterion:
        ``'parity'`` or ``'equal_opportunity'``.
    target_rate:
        The acceptance rate (parity) or true-positive rate (equal
        opportunity) every group should hit.  ``None`` derives it from
        the unadjusted classifier at threshold 0.5 on the calibration
        data.
    """

    def __init__(self, criterion: str = "parity", target_rate: Optional[float] = None):
        if criterion not in _CRITERIA:
            raise ValidationError(f"criterion must be one of {_CRITERIA}")
        if target_rate is not None and not 0.0 < target_rate < 1.0:
            raise ValidationError("target_rate must lie in (0, 1)")
        self.criterion = criterion
        self.target_rate = target_rate
        self.thresholds_: Dict[float, float] = {}

    def fit(self, scores, groups, y_true=None) -> "GroupThresholdAdjuster":
        """Calibrate per-group thresholds.

        Parameters
        ----------
        scores:
            Classifier scores/probabilities on calibration records.
        groups:
            0/1 group membership per record.
        y_true:
            Ground-truth labels — required for equal opportunity,
            ignored for parity.
        """
        scores = check_vector(scores, "scores")
        groups = check_binary_labels(groups, "groups", length=scores.size)
        if self.criterion == "equal_opportunity":
            if y_true is None:
                raise ValidationError(
                    "equal_opportunity calibration requires ground-truth labels"
                )
            y_true = check_binary_labels(y_true, "y_true", length=scores.size)

        rate = self.target_rate
        if rate is None:
            if self.criterion == "parity":
                rate = float(np.mean(scores >= 0.5))
            else:
                positives = scores[y_true == 1]
                if positives.size == 0:
                    raise ValidationError("no positive samples to calibrate on")
                rate = float(np.mean(positives >= 0.5))
            rate = float(np.clip(rate, 1e-6, 1 - 1e-6))

        self.thresholds_ = {}
        for group in (0.0, 1.0):
            mask = groups == group
            if not np.any(mask):
                raise ValidationError(f"group {group} absent from calibration data")
            if self.criterion == "parity":
                pool = scores[mask]
            else:
                pool = scores[mask & (y_true == 1)]
                if pool.size == 0:
                    raise ValidationError(
                        f"group {group} has no positive samples for equal opportunity"
                    )
            self.thresholds_[group] = float(np.quantile(pool, 1.0 - rate))
        return self

    def predict(self, scores, groups) -> np.ndarray:
        """Apply the calibrated per-group thresholds to new scores."""
        if not self.thresholds_:
            raise NotFittedError("GroupThresholdAdjuster must be fitted first")
        scores = check_vector(scores, "scores")
        groups = check_binary_labels(groups, "groups", length=scores.size)
        out = np.zeros(scores.size)
        for group, threshold in self.thresholds_.items():
            mask = groups == group
            out[mask] = (scores[mask] > threshold).astype(np.float64)
        return out

    def acceptance_rates(self, scores, groups) -> Dict[float, float]:
        """Post-adjustment acceptance rate per group (diagnostics)."""
        predictions = self.predict(scores, groups)
        groups = check_binary_labels(groups, "groups")
        return {
            group: float(predictions[groups == group].mean())
            for group in (0.0, 1.0)
        }
