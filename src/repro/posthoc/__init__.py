"""Post-hoc group-fairness enforcement.

The paper's conclusion: "Hard group-fairness constraints, based on
legal requirements, can be enforced post-hoc by adjusting the outputs
of iFair-based classifiers or rankings."  This subpackage implements
both halves:

* :class:`~repro.posthoc.thresholds.GroupThresholdAdjuster` — per-group
  decision thresholds that equalise acceptance rates (statistical
  parity) or true-positive rates (equal opportunity) of a classifier;
* the ranking half is :class:`repro.baselines.fair_ranking.FairRanker`
  applied to iFair scores (see :mod:`repro.pipeline.posthoc`).
"""

from repro.posthoc.thresholds import GroupThresholdAdjuster

__all__ = ["GroupThresholdAdjuster"]
